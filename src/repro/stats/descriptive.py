"""Descriptive statistics for cost distributions (the paper's boxplots).

Figures 4–6 report costs as boxplots over 80 experiments.  This module
provides the five-number summary those boxplots draw, plus small
helpers for comparing policies the way the paper's prose does
("X% lower median cost than ...").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np


@dataclass(frozen=True)
class BoxplotStats:
    """Five-number summary plus mean and count, as a boxplot would show."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    count: int

    @classmethod
    def from_samples(cls, samples: Sequence[float] | np.ndarray) -> "BoxplotStats":
        arr = np.asarray(list(samples), dtype=np.float64)
        if arr.size == 0:
            raise ValueError("cannot summarize zero samples")
        if not np.all(np.isfinite(arr)):
            raise ValueError("samples contain NaN or infinity")
        q1, med, q3 = np.percentile(arr, [25.0, 50.0, 75.0])
        return cls(
            minimum=float(arr.min()),
            q1=float(q1),
            median=float(med),
            q3=float(q3),
            maximum=float(arr.max()),
            mean=float(arr.mean()),
            count=int(arr.size),
        )

    @property
    def iqr(self) -> float:
        """Interquartile range — the paper's "range of the second and
        third quartile costs" (its low-variance argument for Adaptive)."""
        return self.q3 - self.q1

    def row(self) -> dict[str, float]:
        """Flat dict for table rendering."""
        return {
            "min": self.minimum,
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
            "max": self.maximum,
            "mean": self.mean,
            "n": self.count,
        }


def merge_samples(groups: Iterable[Sequence[float]]) -> np.ndarray:
    """Pool samples from several groups into one array.

    The paper merges the three zones' results into a single boxplot for
    each single-zone policy ("we merge the results from all three
    individual zones ... to generate one boxplot").
    """
    pooled = [np.asarray(list(g), dtype=np.float64) for g in groups]
    if not pooled:
        raise ValueError("no groups to merge")
    return np.concatenate(pooled)


def median_improvement(better: BoxplotStats, worse: BoxplotStats) -> float:
    """Relative median cost reduction of ``better`` vs ``worse``.

    Returns e.g. 0.239 for the paper's "23.9% lower costs than
    Periodic" comparison.
    """
    if worse.median <= 0:
        raise ValueError("reference median must be positive")
    return (worse.median - better.median) / worse.median


def best_policy_by_median(stats: Mapping[str, BoxplotStats]) -> tuple[str, BoxplotStats]:
    """Name and stats of the policy with the lowest median cost."""
    if not stats:
        raise ValueError("no policies to compare")
    name = min(stats, key=lambda k: stats[k].median)
    return name, stats[name]
