"""Markov model of spot-price movements (paper Appendix B).

The model discretizes the recent price history of a zone into its
distinct price levels (the state space), estimates a transition matrix
``TRANS`` between consecutive 5-minute samples, and propagates a
probability row-vector ``PROB`` through a censored Chapman–Kolmogorov
recurrence (Equation 2): at each step, states whose price exceeds the
bid are zeroed (the instance would be terminated there), so the
surviving mass is the probability the instance is still up.

The expected up time (Equation 3) is the discrete survival-time mean

    E[T_u] = sum_k k * P(terminated exactly at step k)

iterated until it is stable at seconds granularity.

For N zones with (near-)independent prices, Section 4.2 combines the
zones by summing their individual expected up times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.market.constants import SAMPLE_INTERVAL_S


class MarkovError(ValueError):
    """Raised for degenerate price histories."""


@dataclass(frozen=True)
class PriceMarkovModel:
    """Discrete Markov chain over a zone's distinct price levels.

    Attributes
    ----------
    levels:
        Sorted distinct prices observed in the history window.
    trans:
        Row-stochastic transition matrix between levels at 5-minute lag.
    initial:
        Probability row-vector for the current state; by default a
        point mass on the most recent observed price.
    step_s:
        Seconds per Markov step (the sampling interval).
    """

    levels: np.ndarray
    trans: np.ndarray
    initial: np.ndarray
    step_s: float = float(SAMPLE_INTERVAL_S)
    #: Length of the history window the chain was fitted on, seconds.
    #: An expected up time cannot be statistically justified beyond the
    #: window it was estimated from, so it is capped here.
    fit_window_s: float | None = None
    # Per-model result caches.  ``levels`` is sorted, so every bid maps
    # to an *up-state count* k (the k cheapest levels keep the instance
    # up); all statistics of a bid depend only on k, which is what lets
    # a whole bid grid share one eigendecomposition and one linear
    # solve per distinct up-state set.
    _stationary: np.ndarray | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _uptime_by_count: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _succ: tuple | None = field(
        default=None, init=False, repr=False, compare=False
    )
    # Chain-scoped cache shared across every ``with_initial`` copy of
    # this chain: stationary vector, successor lists, reachability sets
    # and absorbing-chain solve vectors depend on (levels, trans) only,
    # so per-(zone, bucket, level) refits of one bucket's chain all
    # read from the same table instead of re-deriving them.
    _chain_shared: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        n = self.levels.size
        if n == 0:
            raise MarkovError("empty state space")
        if self.trans.shape != (n, n):
            raise MarkovError(
                f"transition matrix shape {self.trans.shape} != ({n}, {n})"
            )
        if self.initial.shape != (n,):
            raise MarkovError(f"initial vector shape {self.initial.shape} != ({n},)")
        # max-abs checks with np.allclose's effective tolerance
        # (atol=1e-9 plus the default rtol of 1e-5 against 1.0), kept
        # cheap because every Markov fit runs through here.
        rows = self.trans.sum(axis=1)
        if float(np.abs(rows - 1.0).max()) > 1e-5 + 1e-9:
            raise MarkovError("transition matrix rows must sum to 1")
        if abs(float(self.initial.sum()) - 1.0) > 1e-5 + 1e-9:
            raise MarkovError("initial vector must sum to 1")

    @property
    def num_states(self) -> int:
        return int(self.levels.size)

    # ------------------------------------------------------------------

    @classmethod
    def fit(
        cls,
        prices: np.ndarray,
        current_price: float | None = None,
        step_s: float = float(SAMPLE_INTERVAL_S),
        smoothing: float | None = None,
    ) -> "PriceMarkovModel":
        """Estimate the chain from a price history window.

        Parameters
        ----------
        prices:
            The trailing price history (Section 5 uses 2 days = 576
            samples), oldest first.
        current_price:
            Price to condition the initial state on; defaults to the
            last history sample.  If it is not one of the observed
            levels, the nearest level is used.
        smoothing:
            Every row is mixed with the marginal next-state
            distribution at this weight: ``(1-s)*empirical +
            s*marginal``.  A finite history inevitably leaves some
            rare level's row with no observed path to a termination
            state; un-smoothed, such closed classes make the expected
            up time diverge on sampling noise alone.  Default:
            ``1 / (2 * number of transitions)`` — half a pseudo-count,
            negligible against observed structure.
        """
        prices = np.asarray(prices, dtype=np.float64)
        if prices.ndim != 1 or prices.size < 2:
            raise MarkovError("need at least two samples to fit transitions")
        levels, inverse = np.unique(prices, return_inverse=True)
        n = levels.size
        counts = np.bincount(
            inverse[:-1] * n + inverse[1:], minlength=n * n
        ).reshape(n, n).astype(np.float64)
        row_sums = counts.sum(axis=1, keepdims=True)
        trans = np.where(row_sums > 0, counts / np.where(row_sums == 0, 1, row_sums), 0.0)
        marginal = counts.sum(axis=0)
        total = marginal.sum()
        marginal = marginal / total if total > 0 else np.full(n, 1.0 / n)
        # Rows with no observed outgoing transition (a level appearing
        # only as the very last sample) back off to the marginal.
        empty = np.flatnonzero(row_sums[:, 0] == 0)
        if empty.size:
            trans[empty] = marginal
        if smoothing is None:
            smoothing = 1.0 / (2.0 * max(prices.size - 1, 1))
        if not (0.0 <= smoothing < 1.0):
            raise MarkovError(f"smoothing must be in [0, 1), got {smoothing}")
        if smoothing > 0.0:
            trans = (1.0 - smoothing) * trans + smoothing * marginal[np.newaxis, :]

        if current_price is None:
            current_price = float(prices[-1])
        start = int(np.argmin(np.abs(levels - current_price)))
        initial = np.zeros(n)
        initial[start] = 1.0
        return cls(levels=levels, trans=trans, initial=initial, step_s=step_s,
                   fit_window_s=prices.size * step_s)

    def with_initial(self, current_price: float) -> "PriceMarkovModel":
        """A copy of this chain conditioned on ``current_price``.

        Re-anchoring the initial state is the *only* thing a
        per-(zone, bucket, level) refit changes: the window — and
        therefore the levels, the transition matrix and every statistic
        derived from them — is identical.  The copy shares this chain's
        ``levels``/``trans`` arrays and its chain-scoped cache
        (:attr:`_chain_shared`), so stationary vectors and absorbing
        solves computed through any copy are visible to all of them.

        Bit-identical to ``PriceMarkovModel.fit`` on the same window
        with the new ``current_price``: the start state is the same
        nearest-level ``argmin`` and the point-mass solve fast path
        reproduces the dense ``p0 @ x`` contraction exactly.
        """
        start = int(np.argmin(np.abs(self.levels - current_price)))
        if (
            self.initial[start] == 1.0
            and np.count_nonzero(self.initial) == 1
        ):
            return self
        initial = np.zeros(self.num_states)
        initial[start] = 1.0
        clone = PriceMarkovModel(
            levels=self.levels,
            trans=self.trans,
            initial=initial,
            step_s=self.step_s,
            fit_window_s=self.fit_window_s,
        )
        object.__setattr__(clone, "_chain_shared", self._chain_shared)
        if self._stationary is not None:
            object.__setattr__(clone, "_stationary", self._stationary)
        if self._succ is not None:
            object.__setattr__(clone, "_succ", self._succ)
        return clone

    # ------------------------------------------------------------------

    def up_mask(self, bid: float) -> np.ndarray:
        """Indicator ``I(i) = 1`` iff level i keeps the instance up (P_i <= B)."""
        return (self.levels <= bid).astype(np.float64)

    def up_count(self, bid: float) -> int:
        """Number of up states at ``bid``: levels are sorted, so the up
        set is always the ``k`` cheapest levels."""
        return int(np.searchsorted(self.levels, bid, side="right"))

    def up_counts(self, bids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`up_count` over a bid grid."""
        return np.searchsorted(
            self.levels, np.asarray(bids, dtype=np.float64), side="right"
        )

    #: Absolute expected-uptime cap for chains whose up-states are
    #: absorbing (the censored walk never terminates): 30 days.  When
    #: the chain was fitted from data, the fit window length is the
    #: effective (smaller) cap.
    UPTIME_CAP_S: float = 30 * 24 * 3600.0

    def _uptime_cap(self) -> float:
        if self.fit_window_s is not None:
            return float(min(self.UPTIME_CAP_S, self.fit_window_s))
        return self.UPTIME_CAP_S

    def expected_uptime(self, bid: float) -> float:
        """Expected up time in seconds at bid ``bid`` (Appendix B, Eq. 3).

        The censored Chapman–Kolmogorov recurrence of Equation 2 zeroes
        the probability mass of every over-bid state after each step;
        Equation 3 sums ``k * P(first termination at step k)``.  That
        series has the exact closed form of an absorbing Markov chain:
        with ``Q`` the transition sub-matrix among up states and ``p0``
        the initial distribution conditioned on being up,

            E[steps up] = p0^T (I - Q)^{-1} 1

        which we evaluate with one linear solve instead of iterating
        Equation 2 to its horizon ``Th`` (identical result, and fast
        enough for Adaptive's per-permutation queries).  If the up
        states form an absorbing class (``I - Q`` singular: at this
        bid the chain can never terminate), the expected up time is
        truncated at :attr:`UPTIME_CAP_S`.

        The solve is memoized per distinct up-state set (thin wrapper
        over :meth:`expected_uptime_batch`'s machinery), so querying a
        whole bid grid factorizes ``I - Q`` once per distinct set.
        """
        return self._uptime_for_count(self.up_count(bid))

    def expected_uptime_batch(self, bids: np.ndarray) -> np.ndarray:
        """Expected up time for every bid of a grid, seconds.

        Bids selecting the same up-state set (the same count of
        cheapest levels) share one linear solve; on the paper's
        15-point grid against a trailing window with a handful of
        distinct price levels this collapses 15 solves into 2-4.
        """
        counts = self.up_counts(bids)
        return np.array(
            [self._uptime_for_count(int(k)) for k in counts], dtype=np.float64
        )

    def _successors(self) -> tuple:
        """Per-state lists of positive-probability successors, cached.

        Chain-scoped: the lists depend on ``trans`` only, so every
        ``with_initial`` copy reads (and writes) one shared entry.
        """
        s = self._succ
        if s is None:
            s = self._chain_shared.get("succ")
            if s is None:
                s = tuple(
                    np.flatnonzero(row > 0.0).tolist() for row in self.trans
                )
                self._chain_shared["succ"] = s
            object.__setattr__(self, "_succ", s)
        return s

    def _uptime_for_count(self, k: int) -> float:
        """Memoized expected up time when the ``k`` cheapest levels are up."""
        value = self._uptime_by_count.get(k)
        if value is None:
            value = self._solve_uptime(k)
            self._uptime_by_count[k] = value
        return value

    def _point_mass_state(self) -> int:
        """Start state when ``initial`` is an exact point mass, else -1."""
        s = self._chain_shared.get(("pm", self.initial.tobytes()))
        if s is None:
            nz = np.flatnonzero(self.initial)
            s = int(nz[0]) if nz.size == 1 and self.initial[nz[0]] == 1.0 else -1
            self._chain_shared[("pm", self.initial.tobytes())] = s
        return s

    def _solve_uptime(self, k: int) -> float:
        """One absorbing-chain solve for the up set = ``k`` cheapest levels.

        Fitted chains always start from a point mass, which admits a
        chain-shared evaluation: the reachable set depends only on
        (start state, k) and the solve vector only on (k, reachable
        set), so ``with_initial`` refits of one bucket's chain reuse
        each other's factorizations.  The dense path below remains the
        reference for arbitrary initial distributions.
        """
        if k <= 0:
            return 0.0
        s = self._point_mass_state()
        if s >= 0:
            return self._solve_uptime_point_mass(s, k)
        up_mask = np.zeros(self.num_states, dtype=bool)
        up_mask[:k] = True
        p0_full = self.initial * up_mask
        alive = float(p0_full.sum())
        if alive <= 0.0:
            return 0.0

        # Restrict to up states actually reachable from the initial
        # distribution: an unreachable closed class elsewhere in the
        # history would otherwise make (I - Q) singular even though the
        # censored walk from *here* terminates in finite expected time.
        # Depth-first over per-state successor lists (cached once per
        # model) — the up set is a prefix of the sorted levels, so
        # membership is just ``state < k``.
        cap = self._uptime_cap()
        succ = self._successors()
        seen = np.zeros(self.num_states, dtype=bool)
        stack = np.flatnonzero(p0_full > 0).tolist()
        seen[stack] = True
        while stack:
            for j in succ[stack.pop()]:
                if j < k and not seen[j]:
                    seen[j] = True
                    stack.append(j)
        reachable = np.flatnonzero(seen)
        q = self.trans[np.ix_(reachable, reachable)]
        # If the reachable class is closed (every row already sums to
        # 1 within the class), the walk never terminates at this bid.
        if np.all(q.sum(axis=1) > 1.0 - 1e-12):
            return cap
        p0 = p0_full[reachable] / alive
        n = reachable.size
        try:
            steps = float(p0 @ np.linalg.solve(np.eye(n) - q, np.ones(n)))
        except np.linalg.LinAlgError:
            # A closed sub-class is reachable with positive
            # probability: the expectation diverges.
            return cap
        if not np.isfinite(steps) or steps < 0:
            return cap
        return float(min(steps * self.step_s, cap))

    def _solve_uptime_point_mass(self, s: int, k: int) -> float:
        """Chain-shared absorbing solve for a point-mass start at ``s``.

        Replicates the dense path exactly: for ``p0 = e_s`` the
        contraction ``p0 @ x`` is ``x[s]`` when every component of
        ``x`` is finite, and NaN (→ cap) when any component is not —
        ``0.0 * inf`` poisons the dense dot product, so the shared
        entry caps for every start sharing the same reachable set,
        exactly as each dense solve would have.
        """
        if s >= k:
            # Current level is already over the bid: initial up mass 0.
            return 0.0
        cap = self._uptime_cap()
        shared = self._chain_shared
        rkey = ("reach", s, k)
        reachable = shared.get(rkey)
        if reachable is None:
            succ = self._successors()
            seen = np.zeros(self.num_states, dtype=bool)
            stack = [s]
            seen[stack] = True
            while stack:
                for j in succ[stack.pop()]:
                    if j < k and not seen[j]:
                        seen[j] = True
                        stack.append(j)
            reachable = np.flatnonzero(seen)
            reachable.setflags(write=False)
            shared[rkey] = reachable
        skey = ("solve", k, reachable.tobytes())
        entry = shared.get(skey)
        if entry is None:
            q = self.trans[np.ix_(reachable, reachable)]
            if np.all(q.sum(axis=1) > 1.0 - 1e-12):
                entry = "cap"
            else:
                n = reachable.size
                try:
                    x = np.linalg.solve(np.eye(n) - q, np.ones(n))
                except np.linalg.LinAlgError:
                    entry = "cap"
                else:
                    entry = x if np.all(np.isfinite(x)) else "cap"
            shared[skey] = entry
        if isinstance(entry, str):
            return cap
        steps = float(entry[int(np.searchsorted(reachable, s))])
        if steps < 0:
            return cap
        return float(min(steps * self.step_s, cap))

    def expected_uptime_iterative(
        self,
        bid: float,
        max_steps: int = 4096,
    ) -> float:
        """Reference implementation iterating Equation 2 literally.

        Used in tests to validate :meth:`expected_uptime`; O(max_steps
        * n^2), so not for production queries.
        """
        up = self.up_mask(bid)
        prob = self.initial * up
        alive = float(prob.sum())
        if alive <= 0.0:
            return 0.0
        prob = prob / alive
        expected_steps = 0.0
        for k in range(1, max_steps + 1):
            prob = prob @ self.trans
            dead = float((prob * (1.0 - up)).sum())
            expected_steps += k * dead
            prob = prob * up
            if float(prob.sum()) <= 1e-12:
                break
        expected_steps += max_steps * float(prob.sum())
        return min(expected_steps * self.step_s, self._uptime_cap())

    def stationary(self) -> np.ndarray:
        """Asymptotic state distribution of the chain, cached.

        The left eigenvector of ``trans`` at eigenvalue 1, normalized
        to a probability vector.  Computed once per model: the
        eigendecomposition is the dominant cost of every availability
        and expected-rate query, and it is identical for all of them.
        """
        v = self._stationary
        if v is None:
            v = self._chain_shared.get("stationary")
            if v is None:
                evals, evecs = np.linalg.eig(self.trans.T)
                i = int(np.argmin(np.abs(evals - 1.0)))
                v = np.abs(np.real(evecs[:, i]))
                total = v.sum()
                if total <= 0:
                    raise MarkovError("degenerate stationary distribution")
                v = v / total
                v.setflags(write=False)
                self._chain_shared["stationary"] = v
            object.__setattr__(self, "_stationary", v)
        return v

    def seed_stationary(self, v: np.ndarray) -> None:
        """Install a precomputed stationary vector for this chain.

        The sweep pool's shared-memory arena ships the parent's
        eigendecompositions to the workers so each process does not
        redo them; the vector must be the one :meth:`stationary` would
        compute (same chain, same arithmetic — which parent and worker
        share, making the substitution exact).  A vector already
        computed locally wins: seeding never overwrites.
        """
        v = np.asarray(v, dtype=np.float64)
        if v.shape != (self.num_states,):
            raise MarkovError(
                f"stationary vector shape {v.shape} != ({self.num_states},)"
            )
        self._chain_shared.setdefault("stationary", v)

    def availability(self, bid: float) -> float:
        """Asymptotic probability of being up at ``bid``.

        Computed from the *stationary left eigenvector* of the fitted
        transition matrix — the long-run occupancy the chain converges
        to — not the empirical level occupancy of the history window.
        The two agree when the window is long relative to the chain's
        mixing time, but only the eigenvector is well-defined from the
        fitted ``trans`` alone: the empirical occupancy cannot be
        reconstructed from a row-stochastic matrix, and ``initial`` is
        a point mass on the current price, so the asymptotic
        distribution is the principled stand-in for "fraction of time
        this zone is affordable".
        """
        return float(self.availability_batch(np.array([bid]))[0])

    def availability_batch(self, bids: np.ndarray) -> np.ndarray:
        """:meth:`availability` for a whole bid grid, one eig shared.

        Levels are sorted, so each bid's up mass is a prefix sum of the
        stationary vector.
        """
        cum = np.concatenate(([0.0], np.cumsum(self.stationary())))
        return cum[self.up_counts(bids)]

    def expected_price_given_up(self, bid: float) -> float:
        """Mean price over up states under the stationary distribution.

        This is the rate a bidder expects to be charged per billing
        hour while the zone is up — the quantity Adaptive's cost
        estimator needs.  Bids with no up mass fall back to the bid
        itself.
        """
        return float(self.expected_price_given_up_batch(np.array([bid]))[0])

    def expected_price_given_up_batch(self, bids: np.ndarray) -> np.ndarray:
        """:meth:`expected_price_given_up` for a whole bid grid."""
        bids = np.asarray(bids, dtype=np.float64)
        v = self.stationary()
        counts = self.up_counts(bids)
        mass = np.concatenate(([0.0], np.cumsum(v)))[counts]
        weighted = np.concatenate(([0.0], np.cumsum(v * self.levels)))[counts]
        safe_mass = np.where(mass > 0.0, mass, 1.0)
        return np.where(mass > 0.0, weighted / safe_mass, bids)


def _reachable_up_states(
    trans: np.ndarray, up_mask: np.ndarray, start_mask: np.ndarray
) -> np.ndarray:
    """Indices of up states reachable from ``start_mask`` via up states.

    Breadth-first closure over positive transition probabilities,
    never stepping through a down state (the walk would have been
    terminated there).
    """
    frontier = start_mask & up_mask
    seen = frontier.copy()
    adjacency = (trans > 0.0) & up_mask[np.newaxis, :]
    while frontier.any():
        frontier = adjacency[frontier].any(axis=0) & ~seen
        seen |= frontier
    return np.flatnonzero(seen)


def combined_expected_uptime(
    models: list[PriceMarkovModel], bid: float
) -> float:
    """Combined expected up time for redundant zones (Section 4.2).

    For zones with independent price movements the paper takes the
    combined ``E[T_u]`` as the *sum* of the per-zone expected up times,
    so redundancy always (weakly) increases the expected up time and
    therefore stretches the Daly checkpoint interval.
    """
    if not models:
        raise MarkovError("no zone models supplied")
    return float(sum(m.expected_uptime(bid) for m in models))


class RollingMarkovFitter:
    """Incremental refitter for a sliding window over one price series.

    The oracle re-fits each zone's chain on a trailing 2-day window
    whose boundaries advance one bucket at a time; recounting all 576
    samples per advance is pure waste when only a handful of samples
    enter and leave.  This fitter keeps the window's sufficient
    statistics — per-pair transition counts and per-level occupancy —
    and updates them in O(samples entering + leaving) as the window
    slides.  Materializing a model replays ``PriceMarkovModel.fit``'s
    exact floating-point pipeline on those counts, so the result is
    bit-identical to a full refit of the same window: same levels,
    same transition matrix, same stationary vector.

    Materialized chains are memoized by their count signature: calm
    stretches where consecutive windows share the same transition
    multiset (common on the low-volatility window) collapse to a
    single chain object, sharing its eigendecomposition and absorbing
    solves across buckets.
    """

    def __init__(
        self,
        prices: np.ndarray,
        step_s: float = float(SAMPLE_INTERVAL_S),
    ) -> None:
        self._prices = np.asarray(prices, dtype=np.float64)
        if self._prices.ndim != 1:
            raise MarkovError("price series must be one-dimensional")
        self._step_s = float(step_s)
        self._lo = 0
        self._hi = 0
        self._pair_counts: dict[tuple[float, float], int] = {}
        self._occupancy: dict[float, int] = {}
        self._chains: dict = {}

    @property
    def window(self) -> tuple[int, int]:
        """Current window as a half-open index span ``[lo, hi)``."""
        return (self._lo, self._hi)

    # -- statistic maintenance -----------------------------------------

    def _add_pairs(self, lo: int, hi: int) -> None:
        """Count pairs ``(p[i], p[i+1])`` for ``i`` in ``[lo, hi)``."""
        prices, pairs = self._prices, self._pair_counts
        for i in range(lo, hi):
            key = (float(prices[i]), float(prices[i + 1]))
            pairs[key] = pairs.get(key, 0) + 1

    def _remove_pairs(self, lo: int, hi: int) -> None:
        pairs = self._pair_counts
        prices = self._prices
        for i in range(lo, hi):
            key = (float(prices[i]), float(prices[i + 1]))
            left = pairs[key] - 1
            if left:
                pairs[key] = left
            else:
                del pairs[key]

    def _add_occupancy(self, lo: int, hi: int) -> None:
        occ, prices = self._occupancy, self._prices
        for i in range(lo, hi):
            level = float(prices[i])
            occ[level] = occ.get(level, 0) + 1

    def _remove_occupancy(self, lo: int, hi: int) -> None:
        occ, prices = self._occupancy, self._prices
        for i in range(lo, hi):
            level = float(prices[i])
            left = occ[level] - 1
            if left:
                occ[level] = left
            else:
                del occ[level]

    def _rebuild(self, lo: int, hi: int) -> None:
        """Recount from scratch (first use, or a jump past the window)."""
        self._pair_counts.clear()
        self._occupancy.clear()
        self._add_pairs(lo, hi - 1)
        self._add_occupancy(lo, hi)

    def set_window(self, lo: int, hi: int) -> None:
        """Slide the window to ``[lo, hi)``, updating stats by deltas.

        Overlapping moves touch only the samples entering and leaving;
        a disjoint jump (or a move larger than the overlap saves)
        recounts, which is never worse than the non-incremental path.
        """
        lo, hi = int(lo), int(hi)
        if not 0 <= lo <= hi <= self._prices.size:
            raise MarkovError(
                f"window [{lo}, {hi}) out of range for {self._prices.size} samples"
            )
        if (lo, hi) == (self._lo, self._hi):
            return
        overlap = min(hi, self._hi) - max(lo, self._lo)
        entering = (hi - lo) - max(overlap, 0)
        leaving = (self._hi - self._lo) - max(overlap, 0)
        if overlap <= 0 or entering + leaving >= hi - lo:
            self._rebuild(lo, hi)
        else:
            # Shared samples remain counted; pairs straddling a moving
            # edge are re-derived from the edge indices alone.
            if lo > self._lo:
                self._remove_pairs(self._lo, lo)
                self._remove_occupancy(self._lo, lo)
            elif lo < self._lo:
                self._add_pairs(lo, self._lo)
                self._add_occupancy(lo, self._lo)
            if hi > self._hi:
                self._add_pairs(self._hi - 1, hi - 1)
                self._add_occupancy(self._hi, hi)
            elif hi < self._hi:
                self._remove_pairs(hi - 1, self._hi - 1)
                self._remove_occupancy(hi, self._hi)
        self._lo, self._hi = lo, hi

    # -- materialization -----------------------------------------------

    def _materialize(self) -> PriceMarkovModel:
        """Build the chain from the maintained counts.

        Replays ``PriceMarkovModel.fit`` operation for operation on a
        counts matrix reconstructed from the pair dictionary — the
        integer counts are identical to ``bincount`` over the window,
        so every downstream float is bit-identical.
        """
        n_samples = self._hi - self._lo
        if n_samples < 2:
            raise MarkovError("need at least two samples to fit transitions")
        occ = self._occupancy
        levels = np.fromiter(sorted(occ), dtype=np.float64, count=len(occ))
        index = {level: i for i, level in enumerate(levels.tolist())}
        n = levels.size
        counts = np.zeros((n, n), dtype=np.int64)
        for (a, b), c in self._pair_counts.items():
            counts[index[a], index[b]] = c
        counts = counts.astype(np.float64)
        row_sums = counts.sum(axis=1, keepdims=True)
        trans = np.where(
            row_sums > 0, counts / np.where(row_sums == 0, 1, row_sums), 0.0
        )
        marginal = counts.sum(axis=0)
        total = marginal.sum()
        marginal = marginal / total if total > 0 else np.full(n, 1.0 / n)
        empty = np.flatnonzero(row_sums[:, 0] == 0)
        if empty.size:
            trans[empty] = marginal
        smoothing = 1.0 / (2.0 * max(n_samples - 1, 1))
        trans = (1.0 - smoothing) * trans + smoothing * marginal[np.newaxis, :]
        initial = np.zeros(n)
        initial[0] = 1.0
        return PriceMarkovModel(
            levels=levels,
            trans=trans,
            initial=initial,
            step_s=self.step_s,
            fit_window_s=n_samples * self.step_s,
        )

    @property
    def step_s(self) -> float:
        return self._step_s

    def model(self, current_price: float) -> PriceMarkovModel:
        """The current window's chain, conditioned on ``current_price``.

        Chains are memoized by (window length, transition multiset):
        windows with identical counts share one chain object — and
        therefore one stationary eigendecomposition and one absorbing
        solve table — across buckets.
        """
        key = (
            self._hi - self._lo,
            frozenset(self._pair_counts.items()),
        )
        base = self._chains.get(key)
        if base is None:
            base = self._materialize()
            self._chains[key] = base
        return base.with_initial(current_price)
