"""Vector autoregression for cross-zone price dependence (Section 3.1).

The paper justifies redundancy by fitting a VAR to the three zones'
price series (lag order chosen by the Akaike information criterion)
and observing that own-zone lagged effects dominate cross-zone ones by
1–2 orders of magnitude.  This module implements exactly that
analysis: least-squares VAR(p) estimation, AIC-based lag selection,
and the own- vs cross-zone coefficient magnitude summary.

Implementation is plain stacked least squares via
:func:`numpy.linalg.lstsq`; with three zones and a few lags the design
matrices are tiny.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class VARError(ValueError):
    """Raised for unusable inputs to the VAR estimator."""


@dataclass(frozen=True)
class VARResult:
    """A fitted VAR(p) model ``y_t = c + sum_l A_l y_{t-l} + e_t``.

    Attributes
    ----------
    order:
        Lag order ``p``.
    intercept:
        ``(k,)`` intercept vector.
    coefficients:
        ``(p, k, k)`` array; ``coefficients[l][i, j]`` is the effect of
        series ``j`` at lag ``l+1`` on series ``i`` now.
    sigma:
        ``(k, k)`` residual covariance (ML estimate).
    aic:
        Akaike information criterion of the fit.
    nobs:
        Number of usable observations (rows of the regression).
    """

    order: int
    intercept: np.ndarray
    coefficients: np.ndarray
    sigma: np.ndarray
    aic: float
    nobs: int

    @property
    def num_series(self) -> int:
        return int(self.intercept.size)

    def own_effect_magnitude(self) -> float:
        """Mean |coefficient| over own-zone (diagonal) lagged terms."""
        diags = [np.abs(np.diag(self.coefficients[l])) for l in range(self.order)]
        return float(np.mean(np.concatenate(diags)))

    def cross_effect_magnitude(self) -> float:
        """Mean |coefficient| over cross-zone (off-diagonal) lagged terms."""
        k = self.num_series
        if k < 2:
            raise VARError("cross effects need at least two series")
        mask = ~np.eye(k, dtype=bool)
        offs = [np.abs(self.coefficients[l][mask]) for l in range(self.order)]
        return float(np.mean(np.concatenate(offs)))

    def effect_ratio(self) -> float:
        """Own-zone / cross-zone mean magnitude ratio.

        Section 3.1 reports this ratio at 1–2 orders of magnitude,
        which is the statistical licence for treating zones as
        independent when combining expected up times.
        """
        cross = self.cross_effect_magnitude()
        if cross == 0.0:
            return float("inf")
        return self.own_effect_magnitude() / cross

    def predict_next(self, history: np.ndarray) -> np.ndarray:
        """One-step forecast given the last ``order`` rows of history."""
        history = np.asarray(history, dtype=np.float64)
        if history.shape != (self.order, self.num_series):
            raise VARError(
                f"history must be ({self.order}, {self.num_series}), "
                f"got {history.shape}"
            )
        out = self.intercept.copy()
        for l in range(self.order):
            out += self.coefficients[l] @ history[-(l + 1)]
        return out


def fit_var(series: np.ndarray, order: int) -> VARResult:
    """Least-squares VAR(p) fit.

    Parameters
    ----------
    series:
        ``(T, k)`` array, one column per zone, oldest row first.
    order:
        Lag order ``p >= 1``.
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 2:
        raise VARError(f"series must be 2-D (T, k), got shape {series.shape}")
    T, k = series.shape
    if order < 1:
        raise VARError(f"order must be >= 1, got {order}")
    nobs = T - order
    min_rows = 1 + k * order
    if nobs < min_rows:
        raise VARError(
            f"too few observations ({T}) for VAR({order}) on {k} series"
        )

    # Design matrix: [1, y_{t-1}, ..., y_{t-p}] rows.
    blocks = [np.ones((nobs, 1))]
    for l in range(1, order + 1):
        blocks.append(series[order - l : T - l])
    X = np.hstack(blocks)
    Y = series[order:]

    beta, _, _, _ = np.linalg.lstsq(X, Y, rcond=None)
    resid = Y - X @ beta
    sigma = (resid.T @ resid) / nobs

    intercept = beta[0]
    coefficients = np.empty((order, k, k))
    for l in range(order):
        # rows 1 + l*k ... 1 + (l+1)*k of beta map series j -> series i;
        # transpose so [i, j] means "effect of j on i".
        coefficients[l] = beta[1 + l * k : 1 + (l + 1) * k].T

    # Gaussian log-likelihood based AIC with the standard multivariate
    # form: AIC = log|Sigma| + 2 * (number of parameters) / nobs.
    sign, logdet = np.linalg.slogdet(
        sigma + 1e-12 * np.eye(k)  # guard exact collinearity
    )
    if sign <= 0:
        logdet = float("inf")
    n_params = k * (1 + k * order)
    aic = float(logdet + 2.0 * n_params / nobs)
    return VARResult(
        order=order,
        intercept=intercept,
        coefficients=coefficients,
        sigma=sigma,
        aic=aic,
        nobs=nobs,
    )


def select_order_aic(series: np.ndarray, max_order: int = 12) -> VARResult:
    """Fit VAR(1..max_order) and return the AIC-minimizing model.

    This is the paper's "Akaike criteria to determine the optimal
    number of lags" step.
    """
    if max_order < 1:
        raise VARError(f"max_order must be >= 1, got {max_order}")
    best: VARResult | None = None
    for p in range(1, max_order + 1):
        try:
            fit = fit_var(series, p)
        except VARError:
            break  # ran out of observations for higher orders
        if best is None or fit.aic < best.aic:
            best = fit
    if best is None:
        raise VARError("no VAR order could be fitted")
    return best


def zone_dependence_report(series: np.ndarray, max_order: int = 12) -> dict:
    """The Section 3.1 analysis as a plain dictionary.

    Returns the selected lag order, own/cross mean coefficient
    magnitudes, their ratio, and its base-10 order of magnitude.
    """
    fit = select_order_aic(series, max_order=max_order)
    ratio = fit.effect_ratio()
    return {
        "order": fit.order,
        "nobs": fit.nobs,
        "own_effect": fit.own_effect_magnitude(),
        "cross_effect": fit.cross_effect_magnitude(),
        "ratio": ratio,
        "orders_of_magnitude": float(np.log10(ratio)) if np.isfinite(ratio) else float("inf"),
    }
