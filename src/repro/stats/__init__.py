"""Analysis substrate: Markov uptime model, Daly intervals, VAR, availability."""

from repro.stats.markov import MarkovError, PriceMarkovModel, combined_expected_uptime
from repro.stats.daly import (
    daly_interval,
    daly_interval_first_order,
    expected_useful_fraction,
)
from repro.stats.var import (
    VARError,
    VARResult,
    fit_var,
    select_order_aic,
    zone_dependence_report,
)
from repro.stats.availability import (
    AvailabilityReport,
    Segment,
    availability_fraction,
    availability_report,
    combined_segments,
    mean_up_run_s,
    zone_segments,
)
from repro.stats.descriptive import (
    BoxplotStats,
    best_policy_by_median,
    median_improvement,
    merge_samples,
)

__all__ = [
    "MarkovError",
    "PriceMarkovModel",
    "combined_expected_uptime",
    "daly_interval",
    "daly_interval_first_order",
    "expected_useful_fraction",
    "VARError",
    "VARResult",
    "fit_var",
    "select_order_aic",
    "zone_dependence_report",
    "AvailabilityReport",
    "Segment",
    "availability_fraction",
    "availability_report",
    "combined_segments",
    "mean_up_run_s",
    "zone_segments",
    "BoxplotStats",
    "best_policy_by_median",
    "median_improvement",
    "merge_samples",
]
