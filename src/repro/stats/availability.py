"""Zone and combined availability analysis (Figure 2).

Figure 2 of the paper shows, for a 15-hour window, when each of the
three CC2 US-East zones was up at a given bid and the combined up time
(at least one zone up).  These helpers turn a
:class:`~repro.traces.model.SpotPriceTrace` plus a bid into exactly
that data: up/down segments per zone, the combined segment bar, and
availability fractions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.model import SpotPriceTrace, ZoneTrace


@dataclass(frozen=True)
class Segment:
    """A maximal run of consecutive samples in one state."""

    start_time: float
    end_time: float
    up: bool

    @property
    def duration_s(self) -> float:
        return self.end_time - self.start_time


def up_mask(zone: ZoneTrace, bid: float) -> np.ndarray:
    """Boolean per-sample "would a bid of ``bid`` keep this zone up"."""
    return zone.prices <= bid


def mask_to_segments(
    mask: np.ndarray, start_time: float, interval_s: float
) -> list[Segment]:
    """Collapse a boolean sample mask into maximal up/down segments."""
    mask = np.asarray(mask, dtype=bool)
    if mask.size == 0:
        return []
    change = np.flatnonzero(np.diff(mask)) + 1
    bounds = np.concatenate(([0], change, [mask.size]))
    return [
        Segment(
            start_time=start_time + interval_s * int(b0),
            end_time=start_time + interval_s * int(b1),
            up=bool(mask[b0]),
        )
        for b0, b1 in zip(bounds[:-1], bounds[1:])
    ]


def zone_segments(zone: ZoneTrace, bid: float) -> list[Segment]:
    """Up/down segments of one zone at a bid — one bar of Figure 2."""
    return mask_to_segments(up_mask(zone, bid), zone.start_time, zone.interval_s)


def combined_segments(trace: SpotPriceTrace, bid: float) -> list[Segment]:
    """Segments of "at least one zone up" — the top bar of Figure 2."""
    combined = (trace.matrix() <= bid).any(axis=0)
    return mask_to_segments(combined, trace.start_time, trace.interval_s)


def availability_fraction(segments: list[Segment]) -> float:
    """Fraction of covered time spent up."""
    total = sum(s.duration_s for s in segments)
    if total == 0:
        return 0.0
    return sum(s.duration_s for s in segments if s.up) / total


@dataclass(frozen=True)
class AvailabilityReport:
    """Figure 2 in data form: per-zone and combined availability."""

    bid: float
    window_start: float
    window_duration_s: float
    per_zone: dict[str, float]
    combined: float

    def redundancy_gain(self) -> float:
        """Combined availability minus the best single zone's."""
        return self.combined - max(self.per_zone.values())


def availability_report(trace: SpotPriceTrace, bid: float) -> AvailabilityReport:
    """Compute per-zone and combined availability over a trace window."""
    per_zone = {
        z.zone: availability_fraction(zone_segments(z, bid)) for z in trace.zones
    }
    combined = availability_fraction(combined_segments(trace, bid))
    return AvailabilityReport(
        bid=bid,
        window_start=trace.start_time,
        window_duration_s=trace.duration_s,
        per_zone=per_zone,
        combined=combined,
    )


def mean_up_run_s(zone: ZoneTrace, bid: float) -> float:
    """Mean length of an uninterrupted up run, in seconds.

    The Threshold policy's ``TimeThresh`` (Section 4.4) is the
    "probabilistic average up time of a zone"; the empirical mean up
    run over the history window is its estimator.
    """
    runs = [s.duration_s for s in zone_segments(zone, bid) if s.up]
    if not runs:
        return 0.0
    return float(np.mean(runs))
