"""Daly's optimum checkpoint interval.

The Markov-Daly policy (Section 4.2) feeds the Markov model's expected
up time ``E[T_u]`` — playing the role of the mean time between failures
``M`` — together with the checkpoint cost ``t_c`` (Daly's ``delta``)
into Daly's higher-order estimate of the optimum compute time between
checkpoints [Daly, FGCS 2006]:

    tau_opt = sqrt(2 * delta * M) * [1 + sqrt(delta/(2M))/3 + delta/(18M)] - delta
              (valid for delta < 2M)
    tau_opt = M                       (for delta >= 2M)

The first-order form ``sqrt(2*delta*M) - delta`` is also provided for
the ablation benchmarks.
"""

from __future__ import annotations

import math

import numpy as np


def daly_interval(mtbf_s: float, ckpt_cost_s: float) -> float:
    """Daly's higher-order optimum compute interval between checkpoints.

    Parameters
    ----------
    mtbf_s:
        Mean time between failures (here: expected zone up time), s.
    ckpt_cost_s:
        Time to take one checkpoint (``delta``), s.

    Returns
    -------
    Optimal *compute* seconds between checkpoint starts.  Never smaller
    than ``ckpt_cost_s`` (a shorter interval would spend more time
    checkpointing than computing, which the closed form excludes).
    """
    if ckpt_cost_s <= 0:
        raise ValueError(f"checkpoint cost must be positive, got {ckpt_cost_s}")
    if mtbf_s <= 0:
        # No expected up time: checkpoint as often as physically possible.
        return ckpt_cost_s
    delta, m = float(ckpt_cost_s), float(mtbf_s)
    if delta >= 2.0 * m:
        tau = m
    else:
        ratio = delta / (2.0 * m)
        tau = math.sqrt(2.0 * delta * m) * (
            1.0 + math.sqrt(ratio) / 3.0 + delta / (18.0 * m)
        ) - delta
    return max(tau, delta)


def daly_interval_batch(
    mtbf_s: np.ndarray, ckpt_cost_s: float
) -> np.ndarray:
    """:func:`daly_interval` over an array of MTBFs, one vector pass.

    Element-for-element identical to the scalar form (same operation
    order, so the same IEEE-754 roundings) — Adaptive's candidate grid
    relies on that to make vectorized and scalar cost predictions
    bit-equal.
    """
    if ckpt_cost_s <= 0:
        raise ValueError(f"checkpoint cost must be positive, got {ckpt_cost_s}")
    delta = float(ckpt_cost_s)
    m = np.asarray(mtbf_s, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = delta / (2.0 * m)
        tau = np.sqrt(2.0 * delta * m) * (
            1.0 + np.sqrt(ratio) / 3.0 + delta / (18.0 * m)
        ) - delta
    tau = np.where(delta >= 2.0 * m, m, tau)
    tau = np.maximum(tau, delta)
    return np.where(m <= 0.0, delta, tau)


def expected_useful_fraction_batch(
    mtbf_s: np.ndarray,
    ckpt_cost_s: float,
    interval_s: np.ndarray | float,
) -> np.ndarray:
    """:func:`expected_useful_fraction` over arrays, one vector pass.

    ``interval_s`` may be a scalar (Periodic's fixed interval) or an
    array aligned with ``mtbf_s`` (Markov-Daly's per-candidate
    intervals).  Bit-equal to the scalar form per element.
    """
    if ckpt_cost_s < 0:
        raise ValueError(f"checkpoint cost must be >= 0, got {ckpt_cost_s}")
    m = np.asarray(mtbf_s, dtype=np.float64)
    interval = np.asarray(interval_s, dtype=np.float64)
    if np.any(interval <= 0):
        raise ValueError("interval must be positive")
    overhead = interval / (interval + ckpt_cost_s)
    with np.errstate(divide="ignore", invalid="ignore"):
        rework = 1.0 - (interval / 2.0 + ckpt_cost_s) / m
    useful = np.minimum(np.maximum(overhead * rework, 0.0), 1.0)
    return np.where(m <= 0.0, 0.0, useful)


def daly_interval_first_order(mtbf_s: float, ckpt_cost_s: float) -> float:
    """Young/Daly first-order optimum: ``sqrt(2*delta*M) - delta``."""
    if ckpt_cost_s <= 0:
        raise ValueError(f"checkpoint cost must be positive, got {ckpt_cost_s}")
    if mtbf_s <= 0:
        return ckpt_cost_s
    tau = math.sqrt(2.0 * ckpt_cost_s * mtbf_s) - ckpt_cost_s
    return max(tau, ckpt_cost_s)


def expected_useful_fraction(
    mtbf_s: float, ckpt_cost_s: float, interval_s: float
) -> float:
    """Expected fraction of wall-clock time doing committed useful work.

    A standard first-order waste model for an exponential failure
    process with rate ``1/M`` and blocking checkpoints every
    ``interval`` compute seconds: the overhead fraction is
    ``delta/(delta+tau)`` and the expected rework per failure is half
    an interval plus the restart, giving

        useful ~= (tau / (tau + delta)) * (1 - (tau/2 + delta) / M)

    clipped to [0, 1].  Adaptive uses this to turn a candidate
    (policy, bid) pair's checkpoint interval and expected up time into
    a progress rate (Section 7.1's P/T estimate).
    """
    if interval_s <= 0:
        raise ValueError(f"interval must be positive, got {interval_s}")
    if ckpt_cost_s < 0:
        raise ValueError(f"checkpoint cost must be >= 0, got {ckpt_cost_s}")
    overhead = interval_s / (interval_s + ckpt_cost_s)
    if mtbf_s <= 0:
        return 0.0
    rework = 1.0 - (interval_s / 2.0 + ckpt_cost_s) / mtbf_s
    return float(min(max(overhead * rework, 0.0), 1.0))
