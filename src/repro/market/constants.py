"""Market-wide constants for the EC2 CC2 spot-market model.

All values come from Section 5 of Marathe et al. (HPDC 2014) and from
the Amazon EC2 price sheet as of the paper's study period (December
2012 -- January 2014).  Everything is expressed in SI seconds and US
dollars per instance-hour so that the rest of the code base never has
to guess at units.
"""

from __future__ import annotations

import numpy as np

#: Wall-clock length of one price sample in the traces (Section 5: the
#: state of spot prices in all zones is sampled at a 5-minute interval).
SAMPLE_INTERVAL_S: int = 300

#: Billing quantum on EC2 in the study period: one hour.
BILLING_HOUR_S: int = 3600

#: Number of price samples per billing hour.
SAMPLES_PER_HOUR: int = BILLING_HOUR_S // SAMPLE_INTERVAL_S

#: Fixed on-demand price for a CC2 (cc2.8xlarge) instance, $/hour.
ON_DEMAND_PRICE: float = 2.40

#: Reference lowest spot price observed in the paper's 14-month data,
#: used as the black reference line in Figures 4--6.
LOWEST_SPOT_PRICE: float = 0.27

#: The largest spot price the authors observed in 12 months of data
#: (Section 7.2.2): a $20.02 spike between March 13th and 14th, 2013.
MAX_OBSERVED_SPOT_PRICE: float = 20.02

#: The "effectively infinite" bid used by the Large-bid policy.
LARGE_BID: float = 100.0

#: The three CC2 availability zones in the US-East region (Figure 2).
ZONES: tuple[str, ...] = ("us-east-1a", "us-east-1b", "us-east-1c")

#: Number of zones available for redundancy.
NUM_ZONES: int = len(ZONES)

#: Bid grid explored by the evaluation and by the Adaptive policy
#: (Section 5): $0.27 to $3.07 in steps of $0.20.
BID_GRID_START: float = 0.27
BID_GRID_STOP: float = 3.07
BID_GRID_STEP: float = 0.20

#: Checkpoint/restart costs studied in the paper, in seconds.
CKPT_COST_LOW_S: float = 300.0
CKPT_COST_HIGH_S: float = 900.0

#: Uninterrupted application execution time assumed in the simulations
#: (Section 5): 20 hours.
BASE_COMPUTE_HOURS: float = 20.0

#: Slack fractions studied: 15% (low) and 50% (high) of C.
SLACK_LOW: float = 0.15
SLACK_HIGH: float = 0.50

#: Price history used to bootstrap the Markov model (Section 5): 2 days.
MARKOV_HISTORY_S: int = 2 * 24 * 3600

#: Queuing-delay statistics measured on the spot market for CC2
#: instances (Section 5): average / best case / worst case in seconds.
QUEUE_DELAY_MEAN_S: float = 299.6
QUEUE_DELAY_MIN_S: float = 143.0
QUEUE_DELAY_MAX_S: float = 880.0


def bid_grid() -> np.ndarray:
    """Return the paper's bid grid: $0.27 ... $3.07 in $0.20 steps.

    The grid has 15 points; the upper portion (> $2.40) exists to ride
    out occasional spot-price spikes of up to ~$3.00 (Section 5).
    """
    n = int(round((BID_GRID_STOP - BID_GRID_START) / BID_GRID_STEP)) + 1
    return np.round(BID_GRID_START + BID_GRID_STEP * np.arange(n), 2)


def hours_to_seconds(hours: float) -> float:
    """Convert hours to seconds."""
    return float(hours) * 3600.0


def seconds_to_hours(seconds: float) -> float:
    """Convert seconds to hours."""
    return float(seconds) / 3600.0
