"""EC2 market substrate: billing rules, instance lifecycle, price oracle."""

from repro.market.constants import (
    BILLING_HOUR_S,
    LARGE_BID,
    LOWEST_SPOT_PRICE,
    MAX_OBSERVED_SPOT_PRICE,
    ON_DEMAND_PRICE,
    SAMPLE_INTERVAL_S,
    ZONES,
    bid_grid,
)
from repro.market.billing import BillingError, BillingMeter, ChargedHour, ondemand_cost
from repro.market.instance import (
    RUNNING_STATES,
    InstanceError,
    ZoneInstance,
    ZoneState,
)
from repro.market.ioserver import DEFAULT_IO_SERVER_PRICE, IOServerBill, io_server_cost
from repro.market.queuing import FixedQueueDelay, QueueDelayModel
from repro.market.spot_market import PriceOracle

__all__ = [
    "BILLING_HOUR_S",
    "LARGE_BID",
    "LOWEST_SPOT_PRICE",
    "MAX_OBSERVED_SPOT_PRICE",
    "ON_DEMAND_PRICE",
    "SAMPLE_INTERVAL_S",
    "ZONES",
    "bid_grid",
    "BillingError",
    "BillingMeter",
    "ChargedHour",
    "ondemand_cost",
    "RUNNING_STATES",
    "InstanceError",
    "ZoneInstance",
    "ZoneState",
    "FixedQueueDelay",
    "QueueDelayModel",
    "PriceOracle",
    "DEFAULT_IO_SERVER_PRICE",
    "IOServerBill",
    "io_server_cost",
]
