"""Spot-instance queuing (acquisition) delay model.

Section 5 measures the delay between submitting a spot request (at
S <= B) and the instance accepting SSH logins: average 299.6 s, best
case 143 s, worst case 880 s over two months of twice-daily probes.

We model the delay as a log-normal clipped to the observed range —
boot/provisioning delays are classically right-skewed and the paper
reports exactly these three statistics, which the model matches (see
``tests/market/test_queuing.py``).  A deterministic variant is
provided for engine tests that need exact arithmetic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.market.constants import (
    QUEUE_DELAY_MAX_S,
    QUEUE_DELAY_MEAN_S,
    QUEUE_DELAY_MIN_S,
)


@dataclass(frozen=True)
class QueueDelayModel:
    """Log-normal queuing delay clipped to ``[min_s, max_s]``.

    The default parameters were chosen so the clipped mean lands on the
    paper's 299.6 s: ``median_s`` is the log-normal median and
    ``sigma`` the log-space standard deviation.
    """

    median_s: float = 265.0
    sigma: float = 0.50
    min_s: float = QUEUE_DELAY_MIN_S
    max_s: float = QUEUE_DELAY_MAX_S

    def __post_init__(self) -> None:
        if self.median_s <= 0 or self.sigma <= 0:
            raise ValueError("median_s and sigma must be positive")
        if not (0 < self.min_s < self.max_s):
            raise ValueError(f"bad clip range [{self.min_s}, {self.max_s}]")

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one acquisition delay in seconds."""
        raw = self.median_s * math.exp(self.sigma * rng.standard_normal())
        return float(min(max(raw, self.min_s), self.max_s))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` delays (vectorized)."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        raw = self.median_s * np.exp(self.sigma * rng.standard_normal(n))
        return np.clip(raw, self.min_s, self.max_s)

    def mean(self, rng: np.random.Generator | None = None, n: int = 200_000) -> float:
        """Monte-Carlo clipped mean (the statistic the paper reports)."""
        rng = rng if rng is not None else np.random.default_rng(0)
        return float(self.sample_many(rng, n).mean())


@dataclass(frozen=True)
class FixedQueueDelay:
    """Constant acquisition delay — deterministic engine tests."""

    delay_s: float = QUEUE_DELAY_MEAN_S

    def __post_init__(self) -> None:
        if self.delay_s < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay_s}")

    def sample(self, rng: np.random.Generator) -> float:  # rng unused by design
        return float(self.delay_s)

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.delay_s, dtype=np.float64)
