"""Optional I/O-server cost accounting.

Section 5: "Checkpoints are stored onto an I/O server that runs in an
on-demand instance as long as spot instances are running. ... A
typical I/O server setup (non-CC2) at the on-demand price costs only
a fraction of the total cost of running a tightly coupled MPI
application at scale.  Hence, we ignore the cost of running such I/O
server setup in our experiments."

The reproduction follows the paper (costs in all figures exclude the
I/O server), but a downstream user sizing a real deployment wants the
number the paper waves away.  :func:`io_server_cost` computes it from
a finished run: the I/O server runs on-demand from experiment start
until the spot phase ends (the on-demand switch, or completion), and
is billed in whole hours like any on-demand instance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoid the market <-> core import cycle
    from repro.core.engine import RunResult

#: On-demand price of a typical non-CC2 I/O node in the study period
#: (m1.large, US-East), $/hour.
DEFAULT_IO_SERVER_PRICE: float = 0.24


@dataclass(frozen=True)
class IOServerBill:
    """The I/O server's share of a run's cost."""

    hours: int
    price_per_hour: float
    cost: float
    #: the I/O server cost as a fraction of the run's per-instance
    #: cost scaled to the whole allocation
    fraction_of_total: float


def io_server_cost(
    result: "RunResult",
    num_nodes: int = 32,
    price_per_hour: float = DEFAULT_IO_SERVER_PRICE,
) -> IOServerBill:
    """Cost of the checkpoint I/O server for one finished run.

    Parameters
    ----------
    result:
        A finished run.
    num_nodes:
        Instances per zone of the actual allocation — the paper's
        "fraction of the total cost" claim only makes sense against a
        multi-node job (``result`` costs are per instance).
    price_per_hour:
        On-demand price of the I/O node.
    """
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    if price_per_hour <= 0:
        raise ValueError(f"price must be positive, got {price_per_hour}")
    spot_phase_end = (
        result.ondemand_switch_time
        if result.ondemand_switch_time is not None
        else result.finish_time
    )
    span_s = max(spot_phase_end - result.start_time, 0.0)
    hours = math.ceil(span_s / 3600.0) if span_s > 0 else 0
    cost = hours * price_per_hour
    total_allocation_cost = result.total_cost * num_nodes
    fraction = cost / total_allocation_cost if total_allocation_cost > 0 else 0.0
    return IOServerBill(
        hours=hours,
        price_per_hour=price_per_hour,
        cost=cost,
        fraction_of_total=fraction,
    )
