"""Hour-boundary billing of spot and on-demand instances (Section 2.1).

EC2's spot billing rules during the study period, all of which this
meter implements literally:

* **Hour-boundary pricing** — each billing hour is charged at the spot
  price in force at the *start* of that hour (never the bid); price
  movement inside the hour does not change the rate.
* **Partial-hour usage** — an hour cut short because EC2 terminated
  the instance (out-of-bid) is free.
* A partial hour ended by the *user* (manual termination or job
  completion) is charged in full, as EC2 did at the time.

One :class:`BillingMeter` tracks one instance (one zone); totals
aggregate across zones in the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class BillingError(RuntimeError):
    """Raised on out-of-order billing operations."""


@dataclass(frozen=True)
class ChargedHour:
    """One committed billing hour (or charged partial hour)."""

    hour_start: float
    rate: float
    #: seconds of the hour actually used (3600 unless the user ended it)
    used_s: float
    #: why the charge committed: "boundary", "user", or "complete"
    reason: str


@dataclass
class BillingMeter:
    """Billing state of one instance.

    The engine drives it with four calls:

    * :meth:`open_hour` when an instance is granted (or at each hour
      boundary, with the then-current spot price);
    * :meth:`roll_hour` when the clock crosses the open hour's end;
    * :meth:`provider_terminate` on out-of-bid termination (open
      partial hour forfeited);
    * :meth:`user_close` on manual termination or job completion
      (open hour charged in full).
    """

    charges: list[ChargedHour] = field(default_factory=list)
    hour_start: float | None = None
    rate: float = 0.0
    # Conservation ledger: every opened hour must end in exactly one of
    # {boundary charge, user-close charge, free sub-second close,
    # provider forfeiture}.  The audit layer checks
    # ``hours_opened == hours_charged + num_forfeited + num_free_closes``
    # at run end.
    hours_opened: int = 0
    num_forfeited: int = 0
    forfeited_total: float = 0.0
    num_free_closes: int = 0

    # -- queries ---------------------------------------------------------

    @property
    def is_open(self) -> bool:
        return self.hour_start is not None

    @property
    def total_cost(self) -> float:
        """Dollars committed so far (open hour excluded)."""
        return sum(c.rate for c in self.charges)

    @property
    def hours_charged(self) -> int:
        return len(self.charges)

    def hour_end(self) -> float:
        """End timestamp of the open billing hour."""
        if self.hour_start is None:
            raise BillingError("no billing hour is open")
        return self.hour_start + 3600.0

    def seconds_left_in_hour(self, now: float) -> float:
        """Seconds until the open hour's boundary (>= 0)."""
        return max(self.hour_end() - now, 0.0)

    # -- transitions ------------------------------------------------------

    def open_hour(self, start: float, rate: float) -> None:
        """Begin a billing hour at ``rate`` $/h."""
        if self.hour_start is not None:
            raise BillingError("billing hour already open")
        if rate <= 0:
            raise BillingError(f"rate must be positive, got {rate}")
        self.hour_start = start
        self.rate = rate
        self.hours_opened += 1

    def roll_hour(self, next_rate: float) -> None:
        """Commit the open hour at its rate and open the next one.

        ``next_rate`` is the spot price at the new hour's start.
        """
        if self.hour_start is None:
            raise BillingError("no billing hour open to roll")
        end = self.hour_end()
        self.charges.append(
            ChargedHour(hour_start=self.hour_start, rate=self.rate,
                        used_s=3600.0, reason="boundary")
        )
        self.hour_start = None
        self.open_hour(end, next_rate)

    def provider_terminate(self) -> float:
        """EC2 terminated the instance: the open partial hour is free.

        Returns the dollars forfeited by the provider (for reporting).
        """
        if self.hour_start is None:
            raise BillingError("no billing hour open")
        forfeited = self.rate
        self.hour_start = None
        self.rate = 0.0
        self.num_forfeited += 1
        self.forfeited_total += forfeited
        return forfeited

    def user_close(self, now: float, reason: str = "user") -> float:
        """User ended the instance: the open hour is charged in full.

        A close at the very boundary of a freshly opened hour (less
        than one second used) is free: terminating "at the hour
        boundary" consumes nothing of the new hour.  This is what lets
        Adaptive and Large-bid release a zone when its paid hour ends
        without being billed for the next one.

        Raises :class:`BillingError` if the open hour overran its
        boundary (the driver missed a :meth:`roll_hour`) or ``now``
        predates the hour's start — both indicate accounting bugs that
        clamping would silently paper over.

        Returns the dollars charged.
        """
        if self.hour_start is None:
            raise BillingError("no billing hour open")
        if now + 1e-6 < self.hour_start:
            raise BillingError(
                f"close at {now} predates the open hour's start "
                f"{self.hour_start}"
            )
        if now - self.hour_start > 3600.0 + 1e-6:
            # An overrunning open hour means a missed roll_hour — a
            # driver bug.  Clamping here used to fabricate an hour_start
            # of ``now - 3600`` inside the next (never-opened) hour and
            # silently drop the excess usage; fail loudly instead.
            raise BillingError(
                f"open hour started at {self.hour_start} overran its "
                f"boundary: close at {now} is "
                f"{now - self.hour_start - 3600.0:.3f}s past it "
                f"(roll_hour was not called)"
            )
        used = min(now - self.hour_start, 3600.0)
        hour_start = self.hour_start
        self.hour_start = None
        charged_rate = self.rate
        self.rate = 0.0
        if used < 1.0:
            self.num_free_closes += 1
            return 0.0
        self.charges.append(
            ChargedHour(hour_start=hour_start, rate=charged_rate,
                        used_s=used, reason=reason)
        )
        return charged_rate


def ondemand_cost(compute_s: float, price_per_hour: float) -> float:
    """Cost of running ``compute_s`` seconds on on-demand instances.

    On-demand is billed in whole hours; any started hour is charged.
    """
    if compute_s < 0:
        raise ValueError(f"compute seconds must be >= 0, got {compute_s}")
    if compute_s == 0:
        return 0.0
    import math

    return math.ceil(compute_s / 3600.0) * price_per_hour
