"""Spot-instance lifecycle state machine for one availability zone.

Algorithm 1 distinguishes *down*, *waiting* and *up* zones; "up" in
practice decomposes into the activities an instance passes through, so
the simulator uses six states:

====================  =====================================================
``DOWN``              spot price above bid (or zone released by the user)
``WAITING``           eligible (B >= S) but not yet granted a spot request
``QUEUING``           request granted; waiting out the acquisition delay
``RESTARTING``        loading the most recent checkpoint (t_r seconds)
``COMPUTING``         making progress on the application
``CHECKPOINTING``     writing a checkpoint (t_c seconds); computation blocked
====================  =====================================================

The four "running" states (QUEUING…CHECKPOINTING) hold an open billing
hour; DOWN and WAITING cost nothing.  Transitions are driven by the
engine; this class only enforces their legality and tracks per-zone
progress accounting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.market.billing import BillingMeter


class ZoneState(enum.Enum):
    DOWN = "down"
    WAITING = "waiting"
    QUEUING = "queuing"
    RESTARTING = "restarting"
    COMPUTING = "computing"
    CHECKPOINTING = "checkpointing"


#: States in which a spot instance exists and is being billed.
RUNNING_STATES = frozenset(
    {ZoneState.QUEUING, ZoneState.RESTARTING, ZoneState.COMPUTING,
     ZoneState.CHECKPOINTING}
)


class InstanceError(RuntimeError):
    """Raised on illegal lifecycle transitions."""


@dataclass
class ZoneInstance:
    """One zone's instance, progress, and billing state.

    Attributes
    ----------
    zone:
        Availability-zone name.
    state:
        Current :class:`ZoneState`.
    phase_remaining_s:
        Seconds left in the current timed activity (queuing delay,
        restart, or checkpoint); meaningless while COMPUTING.
    base_progress_s:
        Committed progress (seconds of C) this run restarted from.
    computed_s:
        Seconds of application compute completed since the restart.
    computing_since:
        Timestamp the zone last entered COMPUTING after a restart or a
        checkpoint — the Threshold policy's "execution time at B" anchor.
    pending_checkpoint_progress_s:
        Local progress captured when the in-flight checkpoint started
        (a checkpoint snapshots state at its *start*).
    billing:
        Per-instance billing meter.
    """

    zone: str
    state: ZoneState = ZoneState.DOWN
    phase_remaining_s: float = 0.0
    base_progress_s: float = 0.0
    computed_s: float = 0.0
    computing_since: float | None = None
    pending_checkpoint_progress_s: float = 0.0
    billing: BillingMeter = field(default_factory=BillingMeter)
    # counters for run diagnostics
    num_provider_terminations: int = 0
    num_restarts: int = 0
    num_checkpoints_started: int = 0
    #: Optional audit hook, called as ``observer(zone, old, new)`` on
    #: every state change (never on same-state no-ops).  The run-audit
    #: layer uses it to validate transition legality independently of
    #: this class's own guards.
    observer: Callable[[str, ZoneState, ZoneState], None] | None = field(
        default=None, repr=False, compare=False
    )

    # -- queries ---------------------------------------------------------

    @property
    def is_running(self) -> bool:
        return self.state in RUNNING_STATES

    @property
    def local_progress_s(self) -> float:
        """Speculative progress of this zone's run (lost if terminated)."""
        return self.base_progress_s + self.computed_s

    def execution_time_at_bid(self, now: float) -> float:
        """Seconds computing since the last restart or checkpoint end."""
        if self.computing_since is None:
            return 0.0
        return max(now - self.computing_since, 0.0)

    # -- transitions ------------------------------------------------------

    def mark_down(self) -> None:
        """Zone ineligible (S > B) while not running."""
        if self.is_running:
            raise InstanceError(f"{self.zone}: use provider_terminate when running")
        self._transition(ZoneState.DOWN)

    def mark_waiting(self) -> None:
        """Zone became eligible (B >= S) but no request submitted yet."""
        if self.is_running:
            raise InstanceError(f"{self.zone}: cannot wait while running")
        self._transition(ZoneState.WAITING)

    def provider_terminate(self) -> float:
        """Out-of-bid termination: lose speculative work and partial hour."""
        if not self.is_running:
            raise InstanceError(f"{self.zone}: not running")
        forfeited = self.billing.provider_terminate()
        self._reset_run()
        self._transition(ZoneState.DOWN)
        self.num_provider_terminations += 1
        return forfeited

    def user_release(self, now: float, reason: str = "user") -> float:
        """User-initiated termination: open hour charged, work discarded."""
        if not self.is_running:
            raise InstanceError(f"{self.zone}: not running")
        charged = self.billing.user_close(now, reason=reason)
        self._reset_run()
        self._transition(ZoneState.DOWN)
        return charged

    def start(
        self,
        now: float,
        spot_price: float,
        queue_delay_s: float,
        restart_cost_s: float,
        from_progress_s: float,
    ) -> None:
        """Submit the spot request: QUEUING, then restart, then compute.

        Billing opens immediately at the current spot price — the
        instance is "running" (and charged) while it boots and while it
        loads the checkpoint.
        """
        if self.state is not ZoneState.WAITING:
            raise InstanceError(f"{self.zone}: can only start from WAITING")
        if queue_delay_s < 0 or restart_cost_s < 0:
            raise InstanceError("delays must be >= 0")
        self._transition(ZoneState.QUEUING)
        # restart cost is folded into the timed pipeline: queue, then restore
        self.phase_remaining_s = queue_delay_s
        self._pending_restart_s = restart_cost_s
        self.base_progress_s = from_progress_s
        self.computed_s = 0.0
        self.computing_since = None
        self.billing.open_hour(now, spot_price)
        self.num_restarts += 1

    def begin_checkpoint(self, now: float, ckpt_cost_s: float) -> None:
        """Start writing a checkpoint; snapshots progress at start."""
        if self.state is not ZoneState.COMPUTING:
            raise InstanceError(f"{self.zone}: can only checkpoint while computing")
        if ckpt_cost_s <= 0:
            raise InstanceError("checkpoint cost must be positive")
        self.pending_checkpoint_progress_s = self.local_progress_s
        self._transition(ZoneState.CHECKPOINTING)
        self.phase_remaining_s = ckpt_cost_s
        self.num_checkpoints_started += 1

    # -- time advancement --------------------------------------------------

    def advance(
        self,
        now: float,
        dt: float,
        total_compute_s: float,
        compute_rate: float = 1.0,
    ) -> tuple[float, float | None]:
        """Advance this zone ``dt`` seconds of wall-clock time.

        Parameters
        ----------
        now:
            Wall-clock at the start of the step.
        dt:
            Step length, seconds.
        total_compute_s:
            The application's total compute requirement C, so the zone
            stops exactly when its local progress reaches C.
        compute_rate:
            Application performance factor for this step: progress
            accrues at ``compute_rate`` nominal seconds per wall
            second (1.0 = the profiled rate the user's C assumes).

        Returns
        -------
        (committed_progress, completion_offset):
            ``committed_progress`` is the progress value to commit if a
            checkpoint *finished* during this step, else ``-1``.
            ``completion_offset`` is seconds into the step at which the
            zone's local run reached C, or ``None``.
        """
        if not self.is_running:
            return -1.0, None
        remaining = dt
        committed = -1.0
        completion: float | None = None
        while remaining > 1e-9:
            if self.state is ZoneState.QUEUING:
                used = min(self.phase_remaining_s, remaining)
                self.phase_remaining_s -= used
                remaining -= used
                if self.phase_remaining_s <= 1e-9:
                    self._transition(ZoneState.RESTARTING)
                    self.phase_remaining_s = self._pending_restart_s
                    if self.phase_remaining_s <= 1e-9:
                        # fresh start: nothing to restore
                        self._transition(ZoneState.COMPUTING)
                        self.computing_since = now + (dt - remaining)
            elif self.state is ZoneState.RESTARTING:
                used = min(self.phase_remaining_s, remaining)
                self.phase_remaining_s -= used
                remaining -= used
                if self.phase_remaining_s <= 1e-9:
                    self._transition(ZoneState.COMPUTING)
                    self.computing_since = now + (dt - remaining)
            elif self.state is ZoneState.CHECKPOINTING:
                used = min(self.phase_remaining_s, remaining)
                self.phase_remaining_s -= used
                remaining -= used
                if self.phase_remaining_s <= 1e-9:
                    committed = self.pending_checkpoint_progress_s
                    self._transition(ZoneState.COMPUTING)
                    self.computing_since = now + (dt - remaining)
            elif self.state is ZoneState.COMPUTING:
                need = total_compute_s - self.local_progress_s
                if need <= 1e-9:
                    completion = dt - remaining
                    break
                if compute_rate <= 0.0:
                    # stalled application phase: wall time passes,
                    # nothing is accomplished
                    remaining = 0.0
                    break
                used = min(need / compute_rate, remaining)
                self.computed_s += used * compute_rate
                remaining -= used
                if total_compute_s - self.local_progress_s <= 1e-9:
                    completion = dt - remaining
                    break
            else:  # pragma: no cover - running states are exhaustive
                raise InstanceError(f"{self.zone}: advance in state {self.state}")
        return committed, completion

    # -- internals ----------------------------------------------------------

    def _transition(self, new: ZoneState) -> None:
        """Change state, notifying the observer on real edges only."""
        if self.observer is not None and new is not self.state:
            self.observer(self.zone, self.state, new)
        self.state = new

    def _reset_run(self) -> None:
        self.phase_remaining_s = 0.0
        self.computed_s = 0.0
        self.base_progress_s = 0.0
        self.computing_since = None
        self.pending_checkpoint_progress_s = 0.0

    _pending_restart_s: float = 0.0
