"""Market view and cached price-history oracle.

Policies never touch raw traces: they see a :class:`PriceOracle`,
which answers "what is the spot price of zone Z now", "what was the
trailing history", and the derived statistical questions (Markov
expected up time, stationary availability, mean up-run length) that
the Markov-Daly, Threshold, and Adaptive policies ask on every
scheduling decision.

The derived quantities are *cached per billing-hour bucket*: the
2-day history window slides by one sample every 5 minutes, which
changes the fitted Markov chain imperceptibly, but naively refitting
per query makes Adaptive (15 bids x 3 zone counts x policies, every 5
minutes) intractable.  Bucketing by hour keeps each experiment's
statistics fresh while letting the 80 overlapping experiments of each
evaluation window share almost all of the work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.market.constants import MARKOV_HISTORY_S, SAMPLE_INTERVAL_S
from repro.stats.availability import mean_up_run_s
from repro.stats.markov import PriceMarkovModel
from repro.traces.model import SpotPriceTrace, ZoneTrace


@dataclass
class PriceOracle:
    """Cached statistical view over one multi-zone price trace."""

    trace: SpotPriceTrace
    history_s: int = MARKOV_HISTORY_S
    _markov_cache: dict = field(default_factory=dict, repr=False)
    _uptime_cache: dict = field(default_factory=dict, repr=False)
    _stationary_cache: dict = field(default_factory=dict, repr=False)
    _uprun_cache: dict = field(default_factory=dict, repr=False)

    # -- raw prices -------------------------------------------------------

    @property
    def zone_names(self) -> tuple[str, ...]:
        return self.trace.zone_names

    def price(self, zone: str, t: float) -> float:
        """Spot price of ``zone`` in force at time ``t``."""
        return self.trace.zone(zone).price_at(t)

    def previous_price(self, zone: str, t: float) -> float:
        """Spot price one sample before ``t`` (clamped at trace start)."""
        z = self.trace.zone(zone)
        i = z.index_at(t)
        return float(z.prices[max(i - 1, 0)])

    def is_rising_edge(self, zone: str, t: float) -> bool:
        """True when the price moved upward at the sample covering ``t``."""
        return self.price(zone, t) > self.previous_price(zone, t)

    def history(self, zone: str, t: float) -> np.ndarray:
        """Trailing price history of ``zone``: samples in ``[t - H, t)``.

        Clamped to the trace start; always contains at least two
        samples so the Markov fit is defined.
        """
        z = self.trace.zone(zone)
        i1 = z.index_at(t)
        i0 = max(i1 - self.history_s // z.interval_s, 0)
        if i1 - i0 < 2:
            i1 = min(i0 + 2, len(z))
        return z.prices[i0:i1]

    def history_matrix(self, t: float) -> np.ndarray:
        """Trailing history of all zones, shape ``(samples, zones)``."""
        return np.column_stack([self.history(z, t) for z in self.zone_names])

    def min_price(self, zone: str, t: float) -> float:
        """Lowest price in the trailing history (Threshold's S_min)."""
        return float(self.history(zone, t).min())

    # -- cached derived statistics -----------------------------------------

    def _bucket(self, t: float) -> int:
        return int(t // 3600.0)

    def markov_model(self, zone: str, t: float) -> PriceMarkovModel:
        """Markov chain fitted on the trailing history, hourly refreshed."""
        key = (zone, self._bucket(t))
        model = self._markov_cache.get(key)
        if model is None:
            model = PriceMarkovModel.fit(
                self.history(zone, t), current_price=self.price(zone, t)
            )
            self._markov_cache[key] = model
        return model

    def expected_uptime(self, zone: str, t: float, bid: float) -> float:
        """Markov expected up time of ``zone`` at ``bid``, seconds."""
        model = self.markov_model(zone, t)
        # the model is conditioned on the bucket's fit; key also by the
        # current price level so intra-bucket price moves are honoured
        level = float(self.price(zone, t))
        key = (zone, self._bucket(t), round(bid, 4), level)
        value = self._uptime_cache.get(key)
        if value is None:
            if level != float(model.levels[int(np.argmax(model.initial))]):
                model = PriceMarkovModel.fit(
                    self.history(zone, t), current_price=level
                )
            value = model.expected_uptime(bid)
            self._uptime_cache[key] = value
        return value

    def combined_expected_uptime(self, zones: list[str], t: float, bid: float) -> float:
        """Sum of per-zone expected up times (Section 4.2's combination)."""
        if not zones:
            raise ValueError("no zones supplied")
        return float(sum(self.expected_uptime(z, t, bid) for z in zones))

    def _stationary(self, zone: str, t: float) -> tuple[np.ndarray, np.ndarray]:
        """(levels, stationary distribution) of the bucket's Markov chain."""
        key = (zone, self._bucket(t))
        cached = self._stationary_cache.get(key)
        if cached is None:
            model = self.markov_model(zone, t)
            evals, evecs = np.linalg.eig(model.trans.T)
            i = int(np.argmin(np.abs(evals - 1.0)))
            v = np.abs(np.real(evecs[:, i]))
            v = v / v.sum()
            cached = (model.levels, v)
            self._stationary_cache[key] = cached
        return cached

    def availability(self, zone: str, t: float, bid: float) -> float:
        """Stationary probability that ``zone`` is up at ``bid``."""
        levels, v = self._stationary(zone, t)
        return float(v[levels <= bid].sum())

    def expected_price_given_up(self, zone: str, t: float, bid: float) -> float:
        """Stationary mean charged rate while up at ``bid``, $/hour."""
        levels, v = self._stationary(zone, t)
        mask = levels <= bid
        mass = float(v[mask].sum())
        if mass <= 0.0:
            return float(bid)
        return float((v[mask] * levels[mask]).sum() / mass)

    def mean_up_run(self, zone: str, t: float, bid: float) -> float:
        """Empirical mean up-run length over the trailing history, seconds.

        The Threshold policy's ``TimeThresh``.
        """
        key = (zone, self._bucket(t), round(bid, 4))
        value = self._uprun_cache.get(key)
        if value is None:
            hist = self.history(zone, t)
            zt = ZoneTrace(zone=zone, start_time=0.0, prices=hist,
                           interval_s=SAMPLE_INTERVAL_S)
            value = mean_up_run_s(zt, bid)
            self._uprun_cache[key] = value
        return value
