"""Market view and cached price-history oracle.

Policies never touch raw traces: they see a :class:`PriceOracle`,
which answers "what is the spot price of zone Z now", "what was the
trailing history", and the derived statistical questions (Markov
expected up time, stationary availability, mean up-run length) that
the Markov-Daly, Threshold, and Adaptive policies ask on every
scheduling decision.

The derived quantities are *cached per billing-hour bucket*: the
2-day history window slides by one sample every 5 minutes, which
changes the fitted Markov chain imperceptibly, but naively refitting
per query makes Adaptive (15 bids x 3 zone counts x policies, every 5
minutes) intractable.  Bucketing by hour keeps each experiment's
statistics fresh while letting the 80 overlapping experiments of each
evaluation window share almost all of the work.

Two cache layers exist:

* **Per-model caches** live on :class:`PriceMarkovModel` — the
  stationary eigenvector and the absorbing-chain uptime solves are
  memoized on the fitted chain itself, so every consumer of the same
  bucket's model shares them for free.
* **Per-oracle caches** map ``(zone, hour bucket[, price level])`` to
  fitted models and to the batch statistics arrays that
  :meth:`zone_stats` serves, so the Adaptive grid, the per-policy
  scalar queries, and parallel sweep workers all hit the same entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.market.constants import MARKOV_HISTORY_S, SAMPLE_INTERVAL_S, bid_grid
from repro.stats.availability import mean_up_run_s
from repro.stats.markov import PriceMarkovModel, RollingMarkovFitter
from repro.traces.model import SpotPriceTrace, ZoneTrace


@dataclass
class PriceOracle:
    """Cached statistical view over one multi-zone price trace."""

    trace: SpotPriceTrace
    history_s: int = MARKOV_HISTORY_S
    #: Width of the statistics bucket, seconds.  ``None`` disables
    #: bucketing entirely: every query re-anchors the trailing window
    #: at its own timestamp and re-fits from scratch — the paper's
    #: literal per-decision protocol, kept as the reference (and
    #: benchmark baseline) for the bucketed production path.
    bucket_s: float | None = 3600.0
    #: Maintain per-zone rolling-window fitters and re-condition
    #: intra-bucket refits via ``with_initial`` instead of refitting.
    #: Bit-identical to the full refit path (tests enforce it); keep
    #: switchable so differential suites can compare both.
    incremental: bool = True
    #: (zone, bucket) -> bucket Markov model.
    _markov_cache: dict = field(default_factory=dict, repr=False)
    #: (zone, bucket, level) -> model re-conditioned on an intra-bucket
    #: price level (the memoized refits of :meth:`_model_at_level`).
    _refit_cache: dict = field(default_factory=dict, repr=False)
    #: (zone, bucket, level, bids-key) -> (avail, rate, uptime) arrays.
    _zone_stats_cache: dict = field(default_factory=dict, repr=False)
    #: (zone, bucket, rounded bid) -> empirical mean up-run seconds.
    _uprun_cache: dict = field(default_factory=dict, repr=False)
    #: (zone, i0, i1) -> min price over that exact sample range.
    _minprice_cache: dict = field(default_factory=dict, repr=False)
    #: zone -> rolling-window fitter maintaining the trailing window's
    #: transition counts incrementally as buckets advance.
    _fitters: dict = field(default_factory=dict, repr=False)
    #: (zone, bucket) -> precomputed stationary vector, installed by
    #: :meth:`seed_stationary` (the sweep pool's shared-memory arena).
    _warm_stationary: dict = field(default_factory=dict, repr=False)

    # -- raw prices -------------------------------------------------------

    @property
    def zone_names(self) -> tuple[str, ...]:
        return self.trace.zone_names

    def price(self, zone: str, t: float) -> float:
        """Spot price of ``zone`` in force at time ``t``."""
        return self.trace.zone(zone).price_at(t)

    def fingerprint(self) -> str:
        """Content hash of the underlying trace (run-cache identity).

        Every statistic this oracle serves is a deterministic pure
        function of the trace samples and the oracle's configuration
        (``history_s``, ``bucket_s``, ``incremental``) — the bucketed
        caches are query-order independent — so (trace fingerprint,
        configuration) fully identifies the oracle's observable
        behaviour.
        """
        return self.trace.fingerprint()

    def previous_price(self, zone: str, t: float) -> float:
        """Spot price one sample before ``t`` (clamped at trace start)."""
        z = self.trace.zone(zone)
        i = z.index_at(t)
        return float(z.prices[max(i - 1, 0)])

    def is_rising_edge(self, zone: str, t: float) -> bool:
        """True when the price moved upward at the sample covering ``t``.

        Served from the trace's cached rising-edge mask (one diff per
        trace) instead of two price lookups per query.
        """
        z = self.trace.zone(zone)
        return z.is_rising_edge_at(z.index_at(t))

    def _history_span(self, zone: str, t: float) -> tuple[int, int]:
        """Sample index range ``[i0, i1)`` of the trailing history."""
        z = self.trace.zone(zone)
        i1 = z.index_at(t)
        i0 = max(i1 - self.history_s // z.interval_s, 0)
        if i1 - i0 < 2:
            i1 = min(i0 + 2, len(z))
        return i0, i1

    def history(self, zone: str, t: float) -> np.ndarray:
        """Trailing price history of ``zone``: samples in ``[t - H, t)``.

        Clamped to the trace start; always contains at least two
        samples so the Markov fit is defined.
        """
        i0, i1 = self._history_span(zone, t)
        return self.trace.zone(zone).prices[i0:i1]

    def history_matrix(self, t: float) -> np.ndarray:
        """Trailing history of all zones, shape ``(samples, zones)``."""
        return np.column_stack([self.history(z, t) for z in self.zone_names])

    def min_price(self, zone: str, t: float) -> float:
        """Lowest price in the trailing history (Threshold's S_min).

        Cached by the exact sample range of the window, so the 80
        overlapping experiments querying the same absolute tick share
        one scan (the window slides one sample per tick, so the range
        identifies the window precisely — no bucket staleness).
        """
        key = (zone, *self._history_span(zone, t))
        value = self._minprice_cache.get(key)
        if value is None:
            value = float(self.history(zone, t).min())
            self._minprice_cache[key] = value
        return value

    # -- cached derived statistics -----------------------------------------

    def _bucket(self, t: float) -> float:
        if self.bucket_s is None:
            return float(t)
        return int(t // self.bucket_s)

    def stats_bucket(self, t: float) -> float:
        """Cache-key component identifying the statistics bucket of ``t``.

        Consumers that memoize per-decision statistics (Adaptive's
        controller-side caches) must key by this, not a hard-coded
        hour, so a reference oracle with ``bucket_s=None`` is never
        served stale hourly entries.
        """
        return self._bucket(t)

    def _anchor(self, t: float) -> float:
        """Measurement time of the hourly statistics: the bucket start.

        Anchoring the history window at the bucket boundary (instead of
        whatever tick happened to query first) makes every bucket-keyed
        cache entry a pure function of ``(zone, bucket)`` — the value no
        longer depends on query order, so sweep workers, the Adaptive
        grid, and both engine modes can seed the caches in any order
        and still agree bit for bit.

        With bucketing disabled (``bucket_s=None``) the anchor is the
        query time itself: statistics are re-measured per decision.
        """
        if self.bucket_s is None:
            return float(t)
        return int(t // self.bucket_s) * self.bucket_s

    def _fitter(self, zone: str) -> RollingMarkovFitter:
        fitter = self._fitters.get(zone)
        if fitter is None:
            fitter = RollingMarkovFitter(self.trace.zone(zone).prices)
            self._fitters[zone] = fitter
        return fitter

    def markov_model(self, zone: str, t: float) -> PriceMarkovModel:
        """Markov chain fitted on the trailing history, hourly refreshed.

        On the incremental path the fit consumes the zone's rolling
        window statistics (O(samples entering + leaving) per bucket
        advance); the full-window ``PriceMarkovModel.fit`` remains the
        reference and the two are bit-identical at every bucket
        boundary.
        """
        key = (zone, self._bucket(t))
        model = self._markov_cache.get(key)
        if model is None:
            anchor = self._anchor(t)
            if self.incremental:
                fitter = self._fitter(zone)
                fitter.set_window(*self._history_span(zone, anchor))
                model = fitter.model(self.price(zone, t))
            else:
                model = PriceMarkovModel.fit(
                    self.history(zone, anchor),
                    current_price=self.price(zone, t),
                )
            warm = self._warm_stationary.get(key)
            if warm is not None:
                model.seed_stationary(warm)
            self._markov_cache[key] = model
        return model

    def seed_stationary(self, tables: dict) -> None:
        """Adopt precomputed stationary vectors keyed ``(zone, bucket)``.

        Sweep workers call this with the tables the parent published in
        the shared-memory arena (:meth:`prewarm_stationary` on the
        parent side): a bucket's chain then skips its
        eigendecomposition entirely.  The vectors are pure functions of
        ``(zone, bucket)`` — the bucket-anchored window fixes the chain
        — so substituting the parent's result is exact.
        """
        self._warm_stationary.update(tables)

    def prewarm_stationary(self, t0: float, t1: float) -> dict:
        """Fit every ``(zone, bucket)`` chain over ``[t0, t1)`` and
        return the stationary vectors keyed for :meth:`seed_stationary`.

        The rolling fitters make the walk O(total samples) and chain
        dedup collapses calm stretches, so prewarming a whole
        evaluation window costs well under a second — paid once by the
        pool parent instead of once per worker.  Returns ``{}`` for a
        reference oracle (``bucket_s=None``): per-decision refits have
        no bucket grid to prewarm.
        """
        if self.bucket_s is None:
            return {}
        out: dict = {}
        z0 = self.trace.start_time
        lo = int(max(t0, z0) // self.bucket_s)
        hi = int(min(t1, self.trace.end_time - SAMPLE_INTERVAL_S) // self.bucket_s)
        for zone in self.zone_names:
            for b in range(lo, hi + 1):
                t = max(b * self.bucket_s, z0)
                out[(zone, self._bucket(t))] = self.markov_model(zone, t).stationary()
        return out

    def _model_at_level(self, zone: str, t: float) -> PriceMarkovModel:
        """The bucket model, re-conditioned on the current price level.

        The bucket model's initial state is the price at the bucket's
        first query; an intra-bucket price move must be honoured for
        the uptime prediction (the walk starts from *this* level).
        Refits are memoized by ``(zone, bucket, level)``; incrementally
        they are ``with_initial`` copies sharing the bucket chain's
        stationary vector and absorbing solves — only the start state
        changes, so nothing else needs recomputing.
        """
        model = self.markov_model(zone, t)
        level = float(self.price(zone, t))
        if level == float(model.levels[int(np.argmax(model.initial))]):
            return model
        key = (zone, self._bucket(t), level)
        refit = self._refit_cache.get(key)
        if refit is None:
            if self.incremental:
                refit = model.with_initial(level)
            else:
                refit = PriceMarkovModel.fit(
                    self.history(zone, self._anchor(t)), current_price=level
                )
            self._refit_cache[key] = refit
        return refit

    # -- batch statistics --------------------------------------------------

    def zone_stats(
        self, zone: str, t: float, bids: Sequence[float] | np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batch statistics of one zone over a bid grid.

        Returns ``(availability, expected charged rate, expected
        uptime)`` — one array each, aligned with ``bids`` (default: the
        paper's 15-point grid).  The Markov chain is fitted once per
        ``(zone, hour bucket)``, its stationary eigenvector is computed
        once per model, and the absorbing-chain uptime system is solved
        once per distinct up-state set of the grid; the scalar query
        methods are thin wrappers over the same machinery, so batch and
        scalar answers are identical to the last bit.
        """
        bids_arr = np.asarray(
            bid_grid() if bids is None else bids, dtype=np.float64
        )
        level = float(self.price(zone, t))
        key = (zone, self._bucket(t), level, bids_arr.tobytes())
        cached = self._zone_stats_cache.get(key)
        if cached is None:
            model = self.markov_model(zone, t)
            avail = model.availability_batch(bids_arr)
            rate = model.expected_price_given_up_batch(bids_arr)
            uptime = self._model_at_level(zone, t).expected_uptime_batch(bids_arr)
            for arr in (avail, rate, uptime):
                arr.setflags(write=False)
            cached = (avail, rate, uptime)
            self._zone_stats_cache[key] = cached
        return cached

    def zone_availability_rate(
        self, zone: str, t: float, bids: Sequence[float] | np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """The cheap two-thirds of :meth:`zone_stats`.

        Availability and expected charged rate need only the bucket
        chain's stationary vector — no absorbing solves — so Adaptive's
        pruning pass can rank candidates from these alone and pay for
        uptime solves (:meth:`zone_uptimes`) only where the lower bound
        says a candidate might win.  Same arrays, bit for bit, as
        :meth:`zone_stats`'s first two.
        """
        bids_arr = np.asarray(
            bid_grid() if bids is None else bids, dtype=np.float64
        )
        key = ("ar", zone, self._bucket(t), bids_arr.tobytes())
        cached = self._zone_stats_cache.get(key)
        if cached is None:
            model = self.markov_model(zone, t)
            avail = model.availability_batch(bids_arr)
            rate = model.expected_price_given_up_batch(bids_arr)
            for arr in (avail, rate):
                arr.setflags(write=False)
            cached = (avail, rate)
            self._zone_stats_cache[key] = cached
        return cached

    def zone_uptimes(
        self, zone: str, t: float, bids: Sequence[float] | np.ndarray
    ) -> np.ndarray:
        """Expected up times for an arbitrary bid subset.

        The per-up-state-count memo on the level-conditioned model is
        the cache, so querying a masked subset now and the rest later
        costs exactly the same solves as one full-grid call — and the
        values are bit-identical to :meth:`zone_stats`'s third array.
        """
        bids_arr = np.asarray(bids, dtype=np.float64)
        return self._model_at_level(zone, t).expected_uptime_batch(bids_arr)

    def combined_uptimes(
        self, zones: Sequence[str], t: float, bids: Sequence[float] | np.ndarray
    ) -> np.ndarray:
        """Summed per-zone expected up times over a bid grid
        (Section 4.2's combination rule), one array entry per bid."""
        if not zones:
            raise ValueError("no zones supplied")
        bids_arr = np.asarray(bids, dtype=np.float64)
        total = np.zeros(bids_arr.size, dtype=np.float64)
        for zone in zones:
            total += self._model_at_level(zone, t).expected_uptime_batch(bids_arr)
        return total

    # -- scalar wrappers ---------------------------------------------------

    def expected_uptime(self, zone: str, t: float, bid: float) -> float:
        """Markov expected up time of ``zone`` at ``bid``, seconds."""
        return float(self._model_at_level(zone, t).expected_uptime(bid))

    def combined_expected_uptime(self, zones: list[str], t: float, bid: float) -> float:
        """Sum of per-zone expected up times (Section 4.2's combination)."""
        return float(self.combined_uptimes(zones, t, (bid,))[0])

    def availability(self, zone: str, t: float, bid: float) -> float:
        """Stationary probability that ``zone`` is up at ``bid``."""
        return float(self.markov_model(zone, t).availability(bid))

    def expected_price_given_up(self, zone: str, t: float, bid: float) -> float:
        """Stationary mean charged rate while up at ``bid``, $/hour."""
        return float(self.markov_model(zone, t).expected_price_given_up(bid))

    def mean_up_run(self, zone: str, t: float, bid: float) -> float:
        """Empirical mean up-run length over the trailing history, seconds.

        The Threshold policy's ``TimeThresh``.
        """
        key = (zone, self._bucket(t), round(bid, 4))
        value = self._uprun_cache.get(key)
        if value is None:
            hist = self.history(zone, self._anchor(t))
            zt = ZoneTrace(zone=zone, start_time=0.0, prices=hist,
                           interval_s=SAMPLE_INTERVAL_S)
            value = mean_up_run_s(zt, bid)
            self._uprun_cache[key] = value
        return value

    def threshold_stats(self, zone: str, t: float, bid: float) -> tuple[float, float]:
        """The Threshold policy's two guards in one cached call:
        ``(S_min over the trailing history, mean up-run at bid)``."""
        return self.min_price(zone, t), self.mean_up_run(zone, t, bid)
