"""Market view and cached price-history oracle.

Policies never touch raw traces: they see a :class:`PriceOracle`,
which answers "what is the spot price of zone Z now", "what was the
trailing history", and the derived statistical questions (Markov
expected up time, stationary availability, mean up-run length) that
the Markov-Daly, Threshold, and Adaptive policies ask on every
scheduling decision.

The derived quantities are *cached per billing-hour bucket*: the
2-day history window slides by one sample every 5 minutes, which
changes the fitted Markov chain imperceptibly, but naively refitting
per query makes Adaptive (15 bids x 3 zone counts x policies, every 5
minutes) intractable.  Bucketing by hour keeps each experiment's
statistics fresh while letting the 80 overlapping experiments of each
evaluation window share almost all of the work.

Two cache layers exist:

* **Per-model caches** live on :class:`PriceMarkovModel` — the
  stationary eigenvector and the absorbing-chain uptime solves are
  memoized on the fitted chain itself, so every consumer of the same
  bucket's model shares them for free.
* **Per-oracle caches** map ``(zone, hour bucket[, price level])`` to
  fitted models and to the batch statistics arrays that
  :meth:`zone_stats` serves, so the Adaptive grid, the per-policy
  scalar queries, and parallel sweep workers all hit the same entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.market.constants import MARKOV_HISTORY_S, SAMPLE_INTERVAL_S, bid_grid
from repro.stats.availability import mean_up_run_s
from repro.stats.markov import PriceMarkovModel
from repro.traces.model import SpotPriceTrace, ZoneTrace


@dataclass
class PriceOracle:
    """Cached statistical view over one multi-zone price trace."""

    trace: SpotPriceTrace
    history_s: int = MARKOV_HISTORY_S
    #: (zone, bucket) -> bucket Markov model.
    _markov_cache: dict = field(default_factory=dict, repr=False)
    #: (zone, bucket, level) -> model re-conditioned on an intra-bucket
    #: price level (the memoized refits of :meth:`_model_at_level`).
    _refit_cache: dict = field(default_factory=dict, repr=False)
    #: (zone, bucket, level, bids-key) -> (avail, rate, uptime) arrays.
    _zone_stats_cache: dict = field(default_factory=dict, repr=False)
    #: (zone, bucket, rounded bid) -> empirical mean up-run seconds.
    _uprun_cache: dict = field(default_factory=dict, repr=False)
    #: (zone, i0, i1) -> min price over that exact sample range.
    _minprice_cache: dict = field(default_factory=dict, repr=False)

    # -- raw prices -------------------------------------------------------

    @property
    def zone_names(self) -> tuple[str, ...]:
        return self.trace.zone_names

    def price(self, zone: str, t: float) -> float:
        """Spot price of ``zone`` in force at time ``t``."""
        return self.trace.zone(zone).price_at(t)

    def previous_price(self, zone: str, t: float) -> float:
        """Spot price one sample before ``t`` (clamped at trace start)."""
        z = self.trace.zone(zone)
        i = z.index_at(t)
        return float(z.prices[max(i - 1, 0)])

    def is_rising_edge(self, zone: str, t: float) -> bool:
        """True when the price moved upward at the sample covering ``t``.

        Served from the trace's cached rising-edge mask (one diff per
        trace) instead of two price lookups per query.
        """
        z = self.trace.zone(zone)
        return z.is_rising_edge_at(z.index_at(t))

    def _history_span(self, zone: str, t: float) -> tuple[int, int]:
        """Sample index range ``[i0, i1)`` of the trailing history."""
        z = self.trace.zone(zone)
        i1 = z.index_at(t)
        i0 = max(i1 - self.history_s // z.interval_s, 0)
        if i1 - i0 < 2:
            i1 = min(i0 + 2, len(z))
        return i0, i1

    def history(self, zone: str, t: float) -> np.ndarray:
        """Trailing price history of ``zone``: samples in ``[t - H, t)``.

        Clamped to the trace start; always contains at least two
        samples so the Markov fit is defined.
        """
        i0, i1 = self._history_span(zone, t)
        return self.trace.zone(zone).prices[i0:i1]

    def history_matrix(self, t: float) -> np.ndarray:
        """Trailing history of all zones, shape ``(samples, zones)``."""
        return np.column_stack([self.history(z, t) for z in self.zone_names])

    def min_price(self, zone: str, t: float) -> float:
        """Lowest price in the trailing history (Threshold's S_min).

        Cached by the exact sample range of the window, so the 80
        overlapping experiments querying the same absolute tick share
        one scan (the window slides one sample per tick, so the range
        identifies the window precisely — no bucket staleness).
        """
        key = (zone, *self._history_span(zone, t))
        value = self._minprice_cache.get(key)
        if value is None:
            value = float(self.history(zone, t).min())
            self._minprice_cache[key] = value
        return value

    # -- cached derived statistics -----------------------------------------

    def _bucket(self, t: float) -> int:
        return int(t // 3600.0)

    def _anchor(self, t: float) -> float:
        """Measurement time of the hourly statistics: the bucket start.

        Anchoring the history window at the bucket boundary (instead of
        whatever tick happened to query first) makes every bucket-keyed
        cache entry a pure function of ``(zone, bucket)`` — the value no
        longer depends on query order, so sweep workers, the Adaptive
        grid, and both engine modes can seed the caches in any order
        and still agree bit for bit.
        """
        return int(t // 3600.0) * 3600.0

    def markov_model(self, zone: str, t: float) -> PriceMarkovModel:
        """Markov chain fitted on the trailing history, hourly refreshed."""
        key = (zone, self._bucket(t))
        model = self._markov_cache.get(key)
        if model is None:
            model = PriceMarkovModel.fit(
                self.history(zone, self._anchor(t)),
                current_price=self.price(zone, t),
            )
            self._markov_cache[key] = model
        return model

    def _model_at_level(self, zone: str, t: float) -> PriceMarkovModel:
        """The bucket model, re-conditioned on the current price level.

        The bucket model's initial state is the price at the bucket's
        first query; an intra-bucket price move must be honoured for
        the uptime prediction (the walk starts from *this* level).
        Refits are memoized by ``(zone, bucket, level)`` — previously
        each query recomputed and discarded the refit.
        """
        model = self.markov_model(zone, t)
        level = float(self.price(zone, t))
        if level == float(model.levels[int(np.argmax(model.initial))]):
            return model
        key = (zone, self._bucket(t), level)
        refit = self._refit_cache.get(key)
        if refit is None:
            refit = PriceMarkovModel.fit(
                self.history(zone, self._anchor(t)), current_price=level
            )
            self._refit_cache[key] = refit
        return refit

    # -- batch statistics --------------------------------------------------

    def zone_stats(
        self, zone: str, t: float, bids: Sequence[float] | np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batch statistics of one zone over a bid grid.

        Returns ``(availability, expected charged rate, expected
        uptime)`` — one array each, aligned with ``bids`` (default: the
        paper's 15-point grid).  The Markov chain is fitted once per
        ``(zone, hour bucket)``, its stationary eigenvector is computed
        once per model, and the absorbing-chain uptime system is solved
        once per distinct up-state set of the grid; the scalar query
        methods are thin wrappers over the same machinery, so batch and
        scalar answers are identical to the last bit.
        """
        bids_arr = np.asarray(
            bid_grid() if bids is None else bids, dtype=np.float64
        )
        level = float(self.price(zone, t))
        key = (zone, self._bucket(t), level, bids_arr.tobytes())
        cached = self._zone_stats_cache.get(key)
        if cached is None:
            model = self.markov_model(zone, t)
            avail = model.availability_batch(bids_arr)
            rate = model.expected_price_given_up_batch(bids_arr)
            uptime = self._model_at_level(zone, t).expected_uptime_batch(bids_arr)
            for arr in (avail, rate, uptime):
                arr.setflags(write=False)
            cached = (avail, rate, uptime)
            self._zone_stats_cache[key] = cached
        return cached

    def combined_uptimes(
        self, zones: Sequence[str], t: float, bids: Sequence[float] | np.ndarray
    ) -> np.ndarray:
        """Summed per-zone expected up times over a bid grid
        (Section 4.2's combination rule), one array entry per bid."""
        if not zones:
            raise ValueError("no zones supplied")
        bids_arr = np.asarray(bids, dtype=np.float64)
        total = np.zeros(bids_arr.size, dtype=np.float64)
        for zone in zones:
            total += self._model_at_level(zone, t).expected_uptime_batch(bids_arr)
        return total

    # -- scalar wrappers ---------------------------------------------------

    def expected_uptime(self, zone: str, t: float, bid: float) -> float:
        """Markov expected up time of ``zone`` at ``bid``, seconds."""
        return float(self._model_at_level(zone, t).expected_uptime(bid))

    def combined_expected_uptime(self, zones: list[str], t: float, bid: float) -> float:
        """Sum of per-zone expected up times (Section 4.2's combination)."""
        return float(self.combined_uptimes(zones, t, (bid,))[0])

    def availability(self, zone: str, t: float, bid: float) -> float:
        """Stationary probability that ``zone`` is up at ``bid``."""
        return float(self.markov_model(zone, t).availability(bid))

    def expected_price_given_up(self, zone: str, t: float, bid: float) -> float:
        """Stationary mean charged rate while up at ``bid``, $/hour."""
        return float(self.markov_model(zone, t).expected_price_given_up(bid))

    def mean_up_run(self, zone: str, t: float, bid: float) -> float:
        """Empirical mean up-run length over the trailing history, seconds.

        The Threshold policy's ``TimeThresh``.
        """
        key = (zone, self._bucket(t), round(bid, 4))
        value = self._uprun_cache.get(key)
        if value is None:
            hist = self.history(zone, self._anchor(t))
            zt = ZoneTrace(zone=zone, start_time=0.0, prices=hist,
                           interval_s=SAMPLE_INTERVAL_S)
            value = mean_up_run_s(zt, bid)
            self._uprun_cache[key] = value
        return value

    def threshold_stats(self, zone: str, t: float, bid: float) -> tuple[float, float]:
        """The Threshold policy's two guards in one cached call:
        ``(S_min over the trailing history, mean up-run at bid)``."""
        return self.min_price(zone, t), self.mean_up_run(zone, t, bid)
