"""Command-line interface: regenerate any of the paper's artifacts.

::

    repro-spotsim fig2                # availability bars (Figure 2)
    repro-spotsim var                 # §3.1 VAR dependence analysis
    repro-spotsim queuing             # §5 queuing-delay statistics
    repro-spotsim fig4 --window high --slack 0.15
    repro-spotsim table2 | table3
    repro-spotsim fig5 --tc 900
    repro-spotsim fig6 --window low
    repro-spotsim headline
    repro-spotsim run --policy markov-daly --bid 0.81 --zones 3
    repro-spotsim export-trace out.csv   # dump the canonical archive
    repro-spotsim surface build --store surfaces/ --slack 0.15 --slack 0.5
    repro-spotsim surface build --store surfaces/ --deadlines 24,30,36,48
    repro-spotsim surface ls --store surfaces/
    repro-spotsim advise --store surfaces/ --slack 0.5 --budget 25
    repro-spotsim serve --store surfaces/ < queries.jsonl

All commands accept ``--experiments N`` (default 20 here; the paper
and the benchmark suite use 80), ``--seed``, and ``--workers N`` to
fan experiment grids over worker processes (results are identical to
a serial run).  ``--audit`` attaches the run-audit layer
(:mod:`repro.audit`) to every simulation — invariants are checked on
each run, a summary is printed, and the process exits 1 if any
violation was found; ``--audit-out PATH`` additionally streams the
structured event log as JSONL.

``--cache-dir DIR`` enables the content-addressed run cache
(:mod:`repro.experiments.cache`): every engine run is memoized on
disk keyed by the hash of its inputs, so rerunning a figure against a
warm directory skips simulation entirely with identical output.  A
``run-cache: hits=... misses=...`` summary goes to stderr.  Inspect
or empty a cache directory with ``repro-spotsim cache DIR [--clear]``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.app.workload import paper_experiment
from repro.core.adaptive import AdaptiveController
from repro.core.engine import SpotSimulator
from repro.core.ondemand import on_demand_cost
from repro.experiments import figures, reporting
from repro.experiments.runner import POLICY_FACTORIES, ExperimentRunner
from repro.market.queuing import QueueDelayModel
from repro.market.spot_market import PriceOracle
from repro.traces.library import DEFAULT_SEED, canonical_dataset, evaluation_window
from repro.traces.io import write_trace


def _positive_int(value: str) -> int:
    n = int(value)
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {n}")
    return n


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--experiments", type=int, default=20,
                        help="overlapping experiment chunks per cell (paper: 80)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--workers", type=_positive_int, default=1,
                        help="worker processes for experiment grids "
                             "(results are identical to --workers 1)")
    parser.add_argument("--engine", choices=("fast", "tick", "vector"),
                        default="fast",
                        help="simulation engine: 'fast' skips event-free "
                             "segments, 'tick' is the reference tick-by-tick "
                             "loop, 'vector' advances each grid cell's whole "
                             "(bid x start) grid in lockstep through the "
                             "struct-of-arrays engine with per-run fast "
                             "fallback (results are bit-identical across "
                             "all three; a 'vector-engine: native=...' "
                             "summary goes to stderr)")
    parser.add_argument("--audit", action="store_true",
                        help="attach the run-audit layer: validate billing, "
                             "progress, state-machine and deadline invariants "
                             "on every run (exit status 1 on any violation)")
    parser.add_argument("--audit-out", metavar="PATH", default=None,
                        help="stream structured audit events as JSONL to PATH "
                             "(implies --audit; with --workers N each worker "
                             "appends to PATH.w<pid>)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="content-addressed run cache directory: engine "
                             "runs are memoized on disk, so warm reruns skip "
                             "simulation with identical results (created if "
                             "missing; see the 'cache' command to inspect)")


def _audit_enabled(args: argparse.Namespace) -> bool:
    return args.audit or args.audit_out is not None


def _make_auditor(args: argparse.Namespace):
    """Auditor for the direct-simulator commands (fig1, run)."""
    if not _audit_enabled(args):
        return None
    from repro.audit import JsonlSink, RunAuditor

    sink = JsonlSink(args.audit_out) if args.audit_out else None
    return RunAuditor(sink=sink)


def _report_audit(report) -> int:
    """Print the audit summary; the process exit status (1 = violations)."""
    for line in report.summary_lines():
        print(line)
    return 0 if report.ok else 1


def _make_cache(args: argparse.Namespace):
    """Run cache for the direct-simulator commands (fig1, run)."""
    if args.cache_dir is None:
        return None
    from repro.experiments.cache import RunCache

    return RunCache(args.cache_dir)


def _report_cache(args: argparse.Namespace, stats) -> None:
    """Print the hit/miss summary to stderr (CI greps for misses=0).

    ``stats`` is ``None`` when no cache is configured — then nothing is
    printed at all (no zero-hit noise on uncached commands).
    """
    if stats is None:
        return
    suffix = f" (dir={args.cache_dir})" if args.cache_dir is not None else ""
    print(f"{stats.line()}{suffix}", file=sys.stderr)


def _report_vector(args: argparse.Namespace, stats) -> None:
    """Print the vector engine's native/cloned/fallback tally to stderr.

    ``stats`` is ``None`` when no vector batch ran at all (engine !=
    vector and nothing routed through the start-axis batcher) — then
    nothing is printed, mirroring :func:`_report_cache`'s silence on
    uncached commands.  Fallback rows are broken down by reason so a
    grid that silently degraded to per-run simulation is visible.
    """
    if stats is None:
        return
    print(stats.line(), file=sys.stderr)


def _sim_engine(args: argparse.Namespace) -> str:
    """Engine mode for the direct single-run commands (fig1, run).

    ``--engine vector`` batches *grids*; a lone simulator run has no
    start axis to batch, so it degrades to the bit-identical fast path.
    """
    return "fast" if args.engine == "vector" else args.engine


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-spotsim",
        description="Reproduction harness for Marathe et al., HPDC 2014.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig1", help="Figure 1/3: state-transition timeline")
    p.add_argument("--policy", choices=("periodic", "edge"), default="periodic")
    p.add_argument("--window", choices=("low", "high"), default="high")
    p.add_argument("--bid", type=float, default=0.81)
    p.add_argument("--slack", type=float, default=0.5)
    p.add_argument("--start-hours", type=float, default=96.0)
    p.add_argument("--width", type=int, default=96)
    _add_common(p)

    p = sub.add_parser("fig2", help="Figure 2: zone/combined availability")
    p.add_argument("--bid", type=float, default=0.81)
    _add_common(p)

    p = sub.add_parser("var", help="Section 3.1: VAR dependence analysis")
    _add_common(p)

    p = sub.add_parser("queuing", help="Section 5: queuing-delay statistics")
    _add_common(p)

    p = sub.add_parser("fig4", help="Figure 4: policies vs best-case redundancy")
    p.add_argument("--window", choices=("low", "high"), default="low")
    p.add_argument("--slack", type=float, default=0.15)
    p.add_argument("--tc", type=float, default=300.0)
    _add_common(p)

    for name, help_text in (("table2", "Table 2 (t_c=300s)"), ("table3", "Table 3 (t_c=900s)")):
        p = sub.add_parser(name, help=help_text)
        _add_common(p)

    p = sub.add_parser("fig5", help="Figure 5: Adaptive vs other policies")
    p.add_argument("--window", choices=("low", "high"), default="low")
    p.add_argument("--slack", type=float, default=0.15)
    p.add_argument("--tc", type=float, default=300.0)
    _add_common(p)

    p = sub.add_parser("fig6", help="Figure 6: Large-bid vs Adaptive")
    p.add_argument("--window", choices=("low", "high"), default="low")
    p.add_argument("--slack", type=float, default=0.15)
    p.add_argument("--tc", type=float, default=300.0)
    _add_common(p)

    p = sub.add_parser("headline", help="abstract's quantitative claims")
    _add_common(p)

    p = sub.add_parser("run", help="simulate one experiment")
    p.add_argument("--policy", choices=tuple(POLICY_FACTORIES) + ("adaptive",),
                   default="markov-daly")
    p.add_argument("--window", choices=("low", "high"), default="high")
    p.add_argument("--bid", type=float, default=0.81)
    p.add_argument("--zones", type=int, default=1, help="redundancy degree N")
    p.add_argument("--slack", type=float, default=0.5)
    p.add_argument("--tc", type=float, default=300.0)
    p.add_argument("--start-hours", type=float, default=0.0,
                   help="offset into the window")
    _add_common(p)

    p = sub.add_parser("sweep", help="parameter sweep (ablations)")
    p.add_argument("--axis", choices=("slack", "tc", "bid", "zones"),
                   default="slack")
    p.add_argument("--window", choices=("low", "high"), default="high")
    p.add_argument("--policy", choices=("periodic", "markov-daly"),
                   default="markov-daly")
    p.add_argument("--redundant", action="store_true")
    _add_common(p)

    p = sub.add_parser("export-trace", help="dump the canonical archive to CSV")
    p.add_argument("path")
    _add_common(p)

    p = sub.add_parser("cache", help="inspect or clear a --cache-dir directory")
    p.add_argument("dir", help="run-cache directory")
    p.add_argument("--clear", action="store_true",
                   help="remove every cached entry instead of summarizing")

    p = sub.add_parser(
        "surface",
        help="precompute (build) or list advisor policy surfaces",
    )
    p.add_argument("action", choices=("build", "ls"))
    p.add_argument("--store", metavar="DIR", required=True,
                   help="surface artifact directory (created if missing)")
    p.add_argument("--window", choices=("low", "high"), default="low")
    p.add_argument("--compute-hours", type=float, default=20.0,
                   help="C, uninterrupted compute time (paper: 20h)")
    p.add_argument("--slack", type=float, action="append", default=None,
                   help="slack fraction(s); repeat to build one surface per "
                        "value (default: 0.5)")
    p.add_argument("--deadlines", default=None,
                   help="comma-separated deadlines in hours; builds the "
                        "whole ladder as one surface *family* — a single "
                        "(shape x bid x start) cube pass through the vector "
                        "engine emits one artifact per deadline "
                        "(mutually exclusive with --slack)")
    p.add_argument("--tc", type=float, default=300.0,
                   help="checkpoint (= restart) cost in seconds")
    p.add_argument("--policies", default=None,
                   help="comma-separated policy labels "
                        "(default: the retained periodic,markov-daly)")
    p.add_argument("--bids", default=None,
                   help="comma-separated bid levels (default: 0.27,0.81,2.40)")
    p.add_argument("--zone-counts", default=None,
                   help="comma-separated redundancy degrees (default: 1,3)")
    _add_common(p)

    p = sub.add_parser(
        "advise",
        help="recommend (policy, bid, zones) for a job spec from built "
             "surfaces (cold-builds the surface if none covers the job)",
    )
    p.add_argument("--store", metavar="DIR", required=True)
    p.add_argument("--window", choices=("low", "high"), default="low")
    p.add_argument("--compute-hours", type=float, default=20.0)
    p.add_argument("--deadline-hours", type=float, default=None,
                   help="D in hours (alternative to --slack)")
    p.add_argument("--slack", type=float, default=None,
                   help="slack fraction; D = C * (1 + slack) (default: 0.5)")
    p.add_argument("--tc", type=float, default=300.0)
    p.add_argument("--budget", type=float, default=None,
                   help="maximum acceptable expected cost in $")
    _add_common(p)

    p = sub.add_parser(
        "serve",
        help="answer JSON-lines advisory queries from stdin (one JSON "
             "object per line; responses on stdout, stats on stderr)",
    )
    p.add_argument("--store", metavar="DIR", required=True)
    p.add_argument("--batch", type=_positive_int, default=64,
                   help="queries gathered per concurrent batch (identical "
                        "queries within a batch coalesce)")
    _add_common(p)

    return parser


def _csv_floats(text: str) -> tuple[float, ...]:
    return tuple(float(x) for x in text.split(",") if x.strip())


def _surface_spec_kwargs(args: argparse.Namespace) -> dict:
    """Grid-axis overrides shared by ``surface build`` and ``advise``."""
    kwargs: dict = {"num_experiments": args.experiments, "seed": args.seed}
    if getattr(args, "policies", None):
        kwargs["policies"] = tuple(
            label.strip() for label in args.policies.split(",") if label.strip()
        )
    if getattr(args, "bids", None):
        kwargs["bids"] = _csv_floats(args.bids)
    if getattr(args, "zone_counts", None):
        kwargs["zone_counts"] = tuple(
            int(z) for z in args.zone_counts.split(",") if z.strip()
        )
    return kwargs


def _job_from_args(args: argparse.Namespace):
    from repro.service import JobSpec

    compute_s = args.compute_hours * 3600.0
    if args.deadline_hours is not None:
        deadline_s = args.deadline_hours * 3600.0
    else:
        slack = args.slack if args.slack is not None else 0.5
        deadline_s = compute_s * (1.0 + slack)
    return JobSpec(
        compute_s=compute_s,
        deadline_s=deadline_s,
        ckpt_cost_s=args.tc,
        budget=args.budget,
        window=args.window,
    )


def _advisor(args: argparse.Namespace):
    """An AdvisorService over ``--store`` (cold builds honor --workers,
    --experiments, --seed and --cache-dir)."""
    from repro.service import AdvisorService, SurfaceBuilder, SurfaceSpec, SurfaceStore

    store = SurfaceStore(args.store)
    builder = SurfaceBuilder(
        store=store, cache_dir=args.cache_dir, workers=args.workers
    )
    cold_spec = SurfaceSpec(
        window="low", compute_s=3600.0, deadline_s=7200.0, ckpt_cost_s=300.0,
        restart_cost_s=300.0, **_surface_spec_kwargs(args),
    )
    return AdvisorService(store, builder=builder, cold_spec=cold_spec)


def _cmd_surface(args: argparse.Namespace) -> int:
    from repro.app.workload import ExperimentConfig
    from repro.service import SurfaceBuilder, SurfaceSpec, SurfaceStore

    store = SurfaceStore(args.store)
    if args.action == "ls":
        count = 0
        for surface in store.surfaces():
            spec = surface.spec
            print(
                f"{surface.key[:12]}  window={spec.window} "
                f"C={spec.compute_s / 3600:.1f}h "
                f"D={spec.deadline_s / 3600:.1f}h t_c={spec.ckpt_cost_s:.0f}s "
                f"policies={','.join(spec.policies)} "
                f"bids={len(spec.bids)} zones={','.join(map(str, spec.zone_counts))} "
                f"runs/cell={spec.num_experiments} "
                f"built in {surface.build_seconds:.1f}s"
            )
            count += 1
        print(f"{args.store}: {count} surface(s)")
        return 0
    builder = SurfaceBuilder(
        store=store, cache_dir=args.cache_dir, workers=args.workers,
    )
    compute_s = args.compute_hours * 3600.0
    if args.deadlines:
        if args.slack:
            print("surface build: --deadlines and --slack are mutually "
                  "exclusive", file=sys.stderr)
            return 2
        specs = []
        for hours in _csv_floats(args.deadlines):
            config = ExperimentConfig(
                compute_s=compute_s,
                deadline_s=hours * 3600.0,
                ckpt_cost_s=args.tc,
                restart_cost_s=args.tc,
            )
            specs.append(
                SurfaceSpec.for_config(
                    args.window, config, **_surface_spec_kwargs(args)
                )
            )
        surfaces = builder.build_family(specs)
        for surface in surfaces:
            print(
                f"built surface {surface.key[:12]} "
                f"(window={args.window} "
                f"D={surface.spec.deadline_s / 3600:.1f}h "
                f"t_c={args.tc:.0f}s, {len(surface.cells)} cells) "
                f"-> {store.path(surface.key)}"
            )
        print(
            f"family of {len(surfaces)} surfaces built in one cube pass "
            f"({surfaces[0].build_seconds:.1f}s)"
        )
        _report_vector(args, builder.drain_vector_stats())
        return 0
    for slack in args.slack if args.slack else [0.5]:
        config = ExperimentConfig(
            compute_s=compute_s,
            deadline_s=compute_s * (1.0 + slack),
            ckpt_cost_s=args.tc,
            restart_cost_s=args.tc,
        )
        spec = SurfaceSpec.for_config(
            args.window, config, **_surface_spec_kwargs(args)
        )
        surface = builder.build(spec)
        print(
            f"built surface {surface.key[:12]} "
            f"(window={args.window} slack={slack:.0%} t_c={args.tc:.0f}s, "
            f"{len(surface.cells)} cells) in {surface.build_seconds:.1f}s "
            f"-> {store.path(surface.key)}"
        )
        # Same stderr contract as the figure commands: operators see
        # immediately when a build silently fell back to scalar runs.
        _report_vector(args, builder.drain_vector_stats())
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    import asyncio

    service = _advisor(args)
    advice = asyncio.run(service.advise(_job_from_args(args)))
    print(
        f"recommendation: policy={advice.policy} bid=${advice.bid:.2f} "
        f"zones={advice.zones}"
    )
    print(
        f"expected cost ${advice.expected_cost:.2f} "
        f"(worst observed ${advice.worst_cost:.2f}); "
        f"deadline-miss risk {advice.miss_risk:.1%}; "
        f"mean makespan {advice.mean_makespan_s / 3600:.1f}h"
    )
    print(f"source: {advice.source} (surface {advice.surface_key[:12]})")
    if not advice.within_budget:
        print("warning: no guaranteed plan fits the budget; "
              "showing the cheapest guaranteed plan instead")
    # A cold build-through ran engine batches: report them with the
    # same stderr line `surface build` prints (silent on warm paths).
    _report_vector(args, service.builder.drain_vector_stats())
    print(service.stats.line(), file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import serve_lines

    service = _advisor(args)
    answered = asyncio.run(
        serve_lines(service, sys.stdin, sys.stdout, batch_size=args.batch)
    )
    _report_vector(args, service.builder.drain_vector_stats())
    print(service.stats.line(), file=sys.stderr)
    return 0 if answered == service.stats.queries else 1


def _reference_lines() -> dict:
    return figures.fig4_reference_lines()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    status = 0

    if args.command == "fig1":
        from repro.core.edge import RisingEdgePolicy
        from repro.core.periodic import PeriodicPolicy as _Periodic
        from repro.experiments.timeline import render_timeline

        trace, eval_start = evaluation_window(args.window, args.seed)
        oracle = PriceOracle(trace)
        auditor = _make_auditor(args)
        cache = _make_cache(args)
        sim = SpotSimulator(oracle=oracle, queue_model=QueueDelayModel(),
                            rng=np.random.default_rng(args.seed),
                            record_timeline=True, engine_mode=_sim_engine(args),
                            auditor=auditor, run_cache=cache)
        config = paper_experiment(slack_fraction=args.slack)
        policy = _Periodic() if args.policy == "periodic" else RisingEdgePolicy()
        result = sim.run(config, policy, args.bid, trace.zone_names[:1],
                         eval_start + args.start_hours * 3600.0)
        print(render_timeline(result, oracle, width=args.width,
                              title=f"Figure 1-style timeline ({policy.name})"))
        if cache is not None:
            _report_cache(args, cache.stats)
        if auditor is not None:
            status = _report_audit(auditor.drain())
            auditor.close()
    elif args.command == "fig2":
        data = figures.fig2_availability(bid=args.bid, seed=args.seed)
        print(reporting.render_availability("Figure 2 — availability", data))
    elif args.command == "var":
        report = figures.sec31_var_analysis(seed=args.seed)
        print(reporting.render_var_report("Section 3.1 — VAR analysis", report))
    elif args.command == "queuing":
        stats = figures.sec5_queuing_stats()
        print(reporting.render_queuing("Section 5 — spot queuing delay", stats))
    elif args.command == "fig4":
        with ExperimentRunner(args.window, args.experiments, args.seed,
                              workers=args.workers, engine_mode=args.engine,
                              audit=args.audit, audit_out=args.audit_out,
                              cache_dir=args.cache_dir) as runner:
            cells = figures.fig4_quadrant(runner, args.slack, args.tc)
            _report_cache(args, runner.drain_cache_stats())
            _report_vector(args, runner.drain_vector_stats())
            if runner.audit:
                status = _report_audit(runner.drain_audit())
        title = f"Figure 4 — window={args.window} slack={args.slack:.0%} t_c={args.tc:.0f}s"
        print(reporting.render_cells(title, cells, _reference_lines()))
    elif args.command in ("table2", "table3"):
        fn = figures.table2 if args.command == "table2" else figures.table3
        rows = fn(num_experiments=args.experiments, seed=args.seed,
                  workers=args.workers, engine_mode=args.engine,
                  cache_dir=args.cache_dir)
        print(reporting.render_optimal_table(args.command.capitalize(), rows))
    elif args.command == "fig5":
        with ExperimentRunner(args.window, args.experiments, args.seed,
                              workers=args.workers, engine_mode=args.engine,
                              audit=args.audit, audit_out=args.audit_out,
                              cache_dir=args.cache_dir) as runner:
            cells = figures.fig5_quadrant(runner, args.slack, args.tc)
            _report_cache(args, runner.drain_cache_stats())
            _report_vector(args, runner.drain_vector_stats())
            if runner.audit:
                status = _report_audit(runner.drain_audit())
        title = f"Figure 5 — window={args.window} slack={args.slack:.0%} t_c={args.tc:.0f}s"
        print(reporting.render_cells(title, cells, _reference_lines()))
    elif args.command == "fig6":
        with ExperimentRunner(args.window, args.experiments, args.seed,
                              workers=args.workers, engine_mode=args.engine,
                              audit=args.audit, audit_out=args.audit_out,
                              cache_dir=args.cache_dir) as runner:
            cells = figures.fig6_panel(runner, args.slack, args.tc)
            _report_cache(args, runner.drain_cache_stats())
            _report_vector(args, runner.drain_vector_stats())
            if runner.audit:
                status = _report_audit(runner.drain_audit())
        title = f"Figure 6 — window={args.window} slack={args.slack:.0%} t_c={args.tc:.0f}s"
        print(reporting.render_cells(title, cells, _reference_lines()))
    elif args.command == "headline":
        claims = figures.headline_claims(num_experiments=args.experiments,
                                         seed=args.seed, workers=args.workers,
                                         engine_mode=args.engine,
                                         cache_dir=args.cache_dir)
        print(reporting.render_headline("Headline claims", claims))
    elif args.command == "run":
        trace, eval_start = evaluation_window(args.window, args.seed)
        oracle = PriceOracle(trace)
        auditor = _make_auditor(args)
        cache = _make_cache(args)
        sim = SpotSimulator(oracle=oracle, queue_model=QueueDelayModel(),
                            rng=np.random.default_rng(args.seed),
                            record_events=True, engine_mode=_sim_engine(args),
                            auditor=auditor, run_cache=cache)
        config = paper_experiment(slack_fraction=args.slack, ckpt_cost_s=args.tc)
        start = eval_start + args.start_hours * 3600.0
        if args.policy == "adaptive":
            controller = AdaptiveController()
            result = sim.run(config, POLICY_FACTORIES["periodic"](),
                             bid=args.bid, zones=trace.zone_names[:1],
                             start_time=start, controller=controller)
        else:
            policy = POLICY_FACTORIES[args.policy]()
            zones = trace.zone_names[: args.zones]
            result = sim.run(config, policy, args.bid, zones, start)
        shown = (
            f"adaptive (final: {result.policy_name})"
            if args.policy == "adaptive"
            else result.policy_name
        )
        print(f"policy={shown} bid=${result.bid:.2f} zones={len(result.zones)}")
        print(f"total cost ${result.total_cost:.2f} "
              f"(spot ${result.spot_cost:.2f} + on-demand ${result.ondemand_cost:.2f}); "
              f"on-demand reference ${on_demand_cost(config):.2f}")
        print(f"completed on {result.completed_on}; met deadline: {result.met_deadline}")
        print(f"checkpoints={result.num_checkpoints} restarts={result.num_restarts} "
              f"terminations={result.num_provider_terminations}")
        for event in result.events:
            offset_h = (event.time - start) / 3600.0
            zone = event.zone or "-"
            print(f"  {offset_h:7.2f}h  {event.kind:<22s} {zone:<12s} {event.detail}")
        if cache is not None:
            _report_cache(args, cache.stats)
        if auditor is not None:
            status = _report_audit(auditor.drain())
            auditor.close()
    elif args.command == "sweep":
        from repro.experiments import sweeps
        from repro.experiments.reporting import format_table

        runner = ExperimentRunner(args.window, args.experiments, args.seed,
                                  workers=args.workers,
                                  engine_mode=args.engine,
                                  audit=args.audit, audit_out=args.audit_out,
                                  cache_dir=args.cache_dir)
        if args.axis == "slack":
            points = sweeps.sweep_slack(
                runner, (0.10, 0.15, 0.25, 0.50, 0.75, 1.00),
                policy_label=args.policy, redundant=args.redundant,
            )
        elif args.axis == "tc":
            points = sweeps.sweep_ckpt_cost(
                runner, (60.0, 300.0, 600.0, 900.0, 1800.0),
                policy_label=args.policy, redundant=args.redundant,
            )
        elif args.axis == "bid":
            from repro.market.constants import bid_grid

            points = sweeps.sweep_bid(
                runner, bid_grid()[::2],
                policy_label=args.policy, redundant=args.redundant,
            )
        else:
            points = sweeps.sweep_zones(runner, (1, 2, 3),
                                        policy_label=args.policy)
        print(format_table(
            [args.axis, "median $", "q3 $", "max $", "violations"],
            [p.row() for p in points],
        ))
        _report_cache(args, runner.drain_cache_stats())
        _report_vector(args, runner.drain_vector_stats())
        if runner.audit:
            status = _report_audit(runner.drain_audit())
        runner.close()
    elif args.command == "export-trace":
        rows = write_trace(canonical_dataset(args.seed), args.path)
        print(f"wrote {rows} price-change rows to {args.path}")
    elif args.command == "cache":
        from repro.experiments.cache import RunCache

        cache = RunCache(args.dir)
        if args.clear:
            removed = cache.clear()
            print(f"cleared {removed} cached runs from {args.dir}")
        else:
            count, size = cache.disk_usage()
            print(f"{args.dir}: {count} cached runs, {size / 1e6:.2f} MB")
    elif args.command == "surface":
        status = _cmd_surface(args)
    elif args.command == "advise":
        status = _cmd_advise(args)
    elif args.command == "serve":
        status = _cmd_serve(args)
    return status


if __name__ == "__main__":
    sys.exit(main())
