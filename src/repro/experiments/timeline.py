"""ASCII timeline rendering — Figures 1 and 3 regenerated from runs.

Figure 1 of the paper shows, for one scenario, (a) the spot price
moving around the bid and (b) the instance's state transitions with
checkpoint/restart costs and the net progress bar.  Figure 3 shows the
same anatomy for the Rising Edge policy.  Given a run executed with
``record_timeline=True``, :func:`render_timeline` reproduces that
diagram in text::

    price za   ----^^^^----------^^--------
    state za   ##########..wwr#######c#####
    progress   ____________========________

Legend (per sample): price row — ``-`` at/below bid, ``^`` above bid;
state row — ``.`` down, ``w`` waiting, ``q`` queuing, ``r`` restoring,
``#`` computing, ``c`` checkpointing; progress row — ``=`` committed
fraction of C (scaled to the row), ``>`` speculative lead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import RunResult
from repro.market.spot_market import PriceOracle

#: ZoneState.value -> timeline glyph.
STATE_GLYPHS: dict[str, str] = {
    "down": ".",
    "waiting": "w",
    "queuing": "q",
    "restarting": "r",
    "computing": "#",
    "checkpointing": "c",
}


class TimelineError(ValueError):
    """Raised when a run cannot be rendered."""


@dataclass(frozen=True)
class TimelineRows:
    """The rendered rows before text assembly."""

    times: list[float]
    price_rows: dict[str, str]
    state_rows: dict[str, str]
    progress_row: str

    def span_hours(self) -> float:
        if len(self.times) < 2:
            return 0.0
        return (self.times[-1] - self.times[0]) / 3600.0


def _downsample(indices: int, width: int) -> list[int]:
    """Indices of the samples to display for a target width."""
    if indices <= width:
        return list(range(indices))
    step = indices / width
    return [int(i * step) for i in range(width)]


def build_rows(
    result: RunResult,
    oracle: PriceOracle,
    width: int = 96,
) -> TimelineRows:
    """Build the glyph rows from a recorded run."""
    if not result.timeline:
        raise TimelineError(
            "run has no timeline; execute with record_timeline=True"
        )
    points = result.timeline
    picks = _downsample(len(points), width)
    times = [points[i].time for i in picks]

    zones = [z for z, _ in points[0].zone_states]
    price_rows: dict[str, str] = {}
    state_rows: dict[str, str] = {}
    for zone_idx, zone in enumerate(zones):
        price_chars = []
        state_chars = []
        for i in picks:
            point = points[i]
            price = oracle.price(zone, point.time)
            price_chars.append("^" if price > result.bid else "-")
            state = point.zone_states[zone_idx][1]
            state_chars.append(STATE_GLYPHS.get(state, "?"))
        price_rows[zone] = "".join(price_chars)
        state_rows[zone] = "".join(state_chars)

    total = max(
        (p.leading_progress_s for p in points), default=0.0
    )
    compute_s = max(total, 1.0)
    progress_chars = []
    for i in picks:
        point = points[i]
        committed_frac = point.committed_progress_s / compute_s
        leading_frac = point.leading_progress_s / compute_s
        if committed_frac >= 0.999:
            progress_chars.append("=")
        elif leading_frac > committed_frac + 1e-9:
            progress_chars.append(">")
        elif committed_frac > 0:
            progress_chars.append("=")
        else:
            progress_chars.append("_")
    return TimelineRows(
        times=times,
        price_rows=price_rows,
        state_rows=state_rows,
        progress_row="".join(progress_chars),
    )


def render_timeline(
    result: RunResult,
    oracle: PriceOracle,
    width: int = 96,
    title: str | None = None,
) -> str:
    """Figure 1/3-style text diagram of one run."""
    rows = build_rows(result, oracle, width)
    label_width = max(len(f"price {z}") for z in rows.price_rows) + 2
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"{'':<{label_width}}start={rows.times[0]:.0f}s  "
        f"span={rows.span_hours():.1f}h  bid=${result.bid:.2f}  "
        f"cost=${result.total_cost:.2f} ({result.completed_on})"
    )
    for zone in rows.price_rows:
        lines.append(f"{f'price {zone}':<{label_width}}{rows.price_rows[zone]}")
        lines.append(f"{f'state {zone}':<{label_width}}{rows.state_rows[zone]}")
    lines.append(f"{'progress':<{label_width}}{rows.progress_row}")
    lines.append(
        f"{'':<{label_width}}legend: . down  w waiting  q queuing  "
        f"r restore  # compute  c checkpoint | ^ price>bid"
    )
    return "\n".join(lines)
