"""Run records and cost accounting for the evaluation harness.

A :class:`RunRecord` is one experiment's outcome tagged with the
labels the paper's figures group by (policy label, bid, window, slack,
checkpoint cost).  :class:`CostSample` collections turn lists of
records into the boxplot statistics of Figures 4–6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.engine import RunResult
from repro.stats.descriptive import BoxplotStats


@dataclass(frozen=True)
class RunRecord:
    """One experiment outcome plus the grouping labels of the figures."""

    label: str
    window: str
    slack_fraction: float
    ckpt_cost_s: float
    bid: float
    start_time: float
    result: RunResult

    @property
    def cost(self) -> float:
        return self.result.total_cost

    @property
    def met_deadline(self) -> bool:
        return self.result.met_deadline


def costs(records: Iterable[RunRecord]) -> np.ndarray:
    """Cost-per-instance array across records."""
    return np.array([r.cost for r in records], dtype=np.float64)


def box(records: Sequence[RunRecord]) -> BoxplotStats:
    """Boxplot statistics of the records' costs."""
    if not records:
        raise ValueError("no records to summarize")
    return BoxplotStats.from_samples(costs(records))


def group_by(
    records: Iterable[RunRecord], key: Callable[[RunRecord], object]
) -> dict:
    """Group records by an arbitrary key function (insertion-ordered)."""
    groups: dict = {}
    for record in records:
        groups.setdefault(key(record), []).append(record)
    return groups


def best_case_per_start(
    groups: Sequence[Sequence[RunRecord]],
) -> list[RunRecord]:
    """Per-experiment best case across several record groups.

    The paper's "best-case redundancy-based policy" boxplots take, for
    each experiment (start offset), the cheapest outcome among the
    candidate redundancy policies.  All groups must cover the same
    start offsets.
    """
    if not groups:
        raise ValueError("no groups supplied")
    by_start: dict[float, RunRecord] = {}
    expected = {r.start_time for r in groups[0]}
    for group in groups:
        starts = {r.start_time for r in group}
        if starts != expected:
            raise ValueError("groups do not cover identical start offsets")
        for record in group:
            cur = by_start.get(record.start_time)
            if cur is None or record.cost < cur.cost:
                by_start[record.start_time] = record
    return [by_start[s] for s in sorted(by_start)]


def deadline_violations(records: Iterable[RunRecord]) -> list[RunRecord]:
    """Records that missed their deadline (must be empty: Algorithm 1
    guarantees completion within D)."""
    return [r for r in records if not r.met_deadline]
