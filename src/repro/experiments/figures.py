"""Data assembly for every table and figure in the paper's evaluation.

Each ``figN_*`` / ``tableN_*`` function returns plain data structures
(dicts of :class:`~repro.stats.descriptive.BoxplotStats`, lists of
rows) that the benchmarks print and the tests assert on.  Rendering to
text lives in :mod:`repro.experiments.reporting`.

Index (see DESIGN.md §4):

========  ===================================================
F2        Figure 2 — zone and combined availability bars
VAR       §3.1 — cross-zone VAR dependence analysis
QD        §5 — spot queuing-delay statistics
F4        Figure 4 — single-zone policies vs best-case redundancy
T2/T3     Tables 2/3 — optimal policy per quadrant
F5        Figure 5 — Adaptive vs Periodic/Markov-Daly/Redundancy
F6        Figure 6 — Large-bid thresholds vs Adaptive
HL        headline claims (7x on-demand, 44%, bounded worst case)
========  ===================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.app.workload import paper_experiment
from repro.core.ondemand import on_demand_cost
from repro.experiments.metrics import RunRecord, box, deadline_violations
from repro.experiments.runner import RETAINED_POLICIES, ExperimentRunner
from repro.market.constants import CKPT_COST_HIGH_S, CKPT_COST_LOW_S, SLACK_HIGH, SLACK_LOW
from repro.market.queuing import QueueDelayModel
from repro.stats.availability import availability_report
from repro.stats.descriptive import BoxplotStats, best_policy_by_median
from repro.stats.var import zone_dependence_report
from repro.traces.library import DEFAULT_SEED, evaluation_window, month_start

#: The bids Figure 4's caption calls out.
FIGURE_BIDS: tuple[float, ...] = (0.27, 0.81, 2.40)

#: Quadrants of the evaluation: (volatility window, slack fraction).
QUADRANTS: tuple[tuple[str, float], ...] = (
    ("low", SLACK_LOW),
    ("low", SLACK_HIGH),
    ("high", SLACK_LOW),
    ("high", SLACK_HIGH),
)

SINGLE_ZONE_POLICIES: tuple[str, ...] = ("threshold", "edge", "periodic", "markov-daly")


# ----------------------------------------------------------------------
# F2 — Figure 2
# ----------------------------------------------------------------------

def fig2_availability(
    bid: float = 0.81,
    window_hours: float = 15.0,
    start_offset_hours: float = 150.0,
    seed: int = DEFAULT_SEED,
) -> dict:
    """Per-zone and combined availability over a 15-hour volatile window.

    The paper's Figure 2 uses December 19, 2012; the canonical archive's
    equivalent is any stormy stretch of the volatile window, selected by
    ``start_offset_hours`` from the window start.
    """
    trace, eval_start = evaluation_window("high", seed)
    t0 = eval_start + start_offset_hours * 3600.0
    sub = trace.window(t0, window_hours * 3600.0)
    report = availability_report(sub, bid)
    return {
        "bid": bid,
        "window_hours": window_hours,
        "per_zone": report.per_zone,
        "combined": report.combined,
        "redundancy_gain": report.redundancy_gain(),
    }


# ----------------------------------------------------------------------
# VAR — Section 3.1
# ----------------------------------------------------------------------

def sec31_var_analysis(
    months: int = 2, max_order: int = 8, seed: int = DEFAULT_SEED
) -> dict:
    """AIC-selected VAR over the archive: own vs cross-zone effects."""
    from repro.traces.library import canonical_dataset

    trace = canonical_dataset(seed)
    t0 = month_start(2013, 1)
    sub = trace.slice(t0, t0 + months * 31 * 86400.0)
    return zone_dependence_report(sub.matrix().T, max_order=max_order)


# ----------------------------------------------------------------------
# QD — Section 5 queuing delay
# ----------------------------------------------------------------------

def sec5_queuing_stats(
    num_probes: int = 120, seed: int = 7
) -> dict:
    """Replay the paper's two-month, twice-daily probing campaign.

    The paper reports avg 299.6 s / min 143 s / max 880 s over two
    months of 7 AM + 7 PM spot requests; we draw the same number of
    probes from the queuing model.
    """
    model = QueueDelayModel()
    rng = np.random.default_rng(seed)
    samples = model.sample_many(rng, num_probes)
    return {
        "num_probes": int(num_probes),
        "mean_s": float(samples.mean()),
        "min_s": float(samples.min()),
        "max_s": float(samples.max()),
        "population_mean_s": model.mean(),
    }


# ----------------------------------------------------------------------
# F4 — Figure 4
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PolicyCell:
    """One boxplot of Figure 4/5: a policy's cost distribution."""

    label: str
    bid: float
    stats: BoxplotStats
    violations: int


def _cell(label: str, bid: float, records: Sequence[RunRecord]) -> PolicyCell:
    return PolicyCell(
        label=label,
        bid=bid,
        stats=box(records),
        violations=len(deadline_violations(records)),
    )


def fig4_quadrant(
    runner: ExperimentRunner,
    slack_fraction: float,
    ckpt_cost_s: float = CKPT_COST_LOW_S,
    bids: Sequence[float] = FIGURE_BIDS,
    policies: Sequence[str] = SINGLE_ZONE_POLICIES,
) -> list[PolicyCell]:
    """One plot of Figure 4: T/E/P/M single-zone boxes + best-case R.

    Single-zone policies merge all three zones into one box per bid
    (the paper's protocol); the redundancy box is the per-experiment
    best case over the four redundancy-based policies.  Each policy's
    whole bid axis runs as one cell — under ``engine_mode="vector"``
    one fused (bid x start) lockstep tile — with per-bid records
    identical to ``run_single_zone`` called once per bid.  Audited
    runners take the per-bid per-run path so the auditor observes
    every run.
    """
    config = paper_experiment(slack_fraction=slack_fraction, ckpt_cost_s=ckpt_cost_s)
    per_policy = {
        label: runner.run_bid_axis(label, config, bids,
                                   batched=not runner.audit)
        for label in policies
    }
    cells: list[PolicyCell] = []
    for bid in bids:
        for label in policies:
            cells.append(_cell(label, bid, per_policy[label][bid]))
        cells.append(
            _cell("redundant-best", bid, runner.run_best_redundant(config, bid))
        )
    return cells


def fig4_reference_lines(config=None) -> dict:
    """The $48 on-demand and $5.40 lowest-spot reference lines."""
    config = config or paper_experiment()
    od = on_demand_cost(config)
    lowest = 0.27 * np.ceil(config.compute_s / 3600.0)
    return {"on_demand": float(od), "lowest_spot": float(lowest)}


# ----------------------------------------------------------------------
# T2/T3 — Tables 2 and 3
# ----------------------------------------------------------------------

def optimal_policy_table(
    ckpt_cost_s: float,
    num_experiments: int = 40,
    seed: int = DEFAULT_SEED,
    bids: Sequence[float] = FIGURE_BIDS,
    include_redundant: bool = True,
    workers: int = 1,
    engine_mode: str = "fast",
    cache_dir: str | None = None,
) -> list[dict]:
    """Tables 2/3: the least-median-cost (policy, bid) per quadrant.

    Single-zone candidates are Periodic and Markov-Daly (the policies
    the paper retains after Section 6); the redundancy candidate is
    the best-case redundancy box.  Returns one row per quadrant with
    the winner and the full per-candidate medians for inspection.
    ``workers > 1`` fans each cell's experiments over a process pool;
    ``cache_dir`` memoizes every engine run on disk so a warm rerun
    assembles the table without simulating.
    """
    rows = []
    for window, slack in QUADRANTS:
        with ExperimentRunner(window, num_experiments=num_experiments,
                              seed=seed, workers=workers,
                              engine_mode=engine_mode,
                              cache_dir=cache_dir) as runner:
            config = paper_experiment(slack_fraction=slack, ckpt_cost_s=ckpt_cost_s)
            # one bid-axis cell per candidate policy (a fused lockstep
            # tile under --engine vector); per-bid records match
            # run_single_zone exactly
            single = {
                label: runner.run_bid_axis(label, config, bids)
                for label in RETAINED_POLICIES
            }
            candidates: dict[str, BoxplotStats] = {}
            for bid in bids:
                for label in RETAINED_POLICIES:
                    candidates[f"{label}@{bid:.2f}"] = box(single[label][bid])
                if include_redundant:
                    records = runner.run_best_redundant(config, bid)
                    candidates[f"redundant@{bid:.2f}"] = box(records)
        winner, stats = best_policy_by_median(candidates)
        rows.append(
            {
                "window": window,
                "slack": slack,
                "ckpt_cost_s": ckpt_cost_s,
                "winner": winner,
                "winner_median": stats.median,
                "medians": {k: v.median for k, v in candidates.items()},
            }
        )
    return rows


def table2(
    num_experiments: int = 40, seed: int = DEFAULT_SEED, workers: int = 1,
    engine_mode: str = "fast", cache_dir: str | None = None,
) -> list[dict]:
    """Table 2: optimal policies at t_c = 300 s."""
    return optimal_policy_table(CKPT_COST_LOW_S, num_experiments, seed,
                                workers=workers, engine_mode=engine_mode,
                                cache_dir=cache_dir)


def table3(
    num_experiments: int = 40, seed: int = DEFAULT_SEED, workers: int = 1,
    engine_mode: str = "fast", cache_dir: str | None = None,
) -> list[dict]:
    """Table 3: optimal policies at t_c = 900 s."""
    return optimal_policy_table(CKPT_COST_HIGH_S, num_experiments, seed,
                                workers=workers, engine_mode=engine_mode,
                                cache_dir=cache_dir)


# ----------------------------------------------------------------------
# F5 — Figure 5
# ----------------------------------------------------------------------

def fig5_quadrant(
    runner: ExperimentRunner,
    slack_fraction: float,
    ckpt_cost_s: float,
    bid: float = 0.81,
) -> list[PolicyCell]:
    """One plot of Figure 5: Adaptive vs P / M / best-case R at B=$0.81.

    The paper fixes B = $0.81 for the non-adaptive boxes ("we observe
    that B=$0.81 generally results in better median costs"); Adaptive
    chooses its own bids.
    """
    config = paper_experiment(slack_fraction=slack_fraction, ckpt_cost_s=ckpt_cost_s)
    cells = [
        _cell("periodic", bid, runner.run_single_zone("periodic", config, bid)),
        _cell("markov-daly", bid, runner.run_single_zone("markov-daly", config, bid)),
        _cell("redundant-best", bid, runner.run_best_redundant(config, bid)),
        _cell("adaptive", float("nan"), runner.run_adaptive(config)),
    ]
    return cells


def fig5_all(
    num_experiments: int = 20, seed: int = DEFAULT_SEED, workers: int = 1,
    engine_mode: str = "fast", cache_dir: str | None = None,
) -> dict[tuple[str, float, float], list[PolicyCell]]:
    """All eight plots of Figure 5 keyed by (window, slack, t_c)."""
    out: dict[tuple[str, float, float], list[PolicyCell]] = {}
    for window, slack in QUADRANTS:
        with ExperimentRunner(window, num_experiments=num_experiments,
                              seed=seed, workers=workers,
                              engine_mode=engine_mode,
                              cache_dir=cache_dir) as runner:
            for tc in (CKPT_COST_LOW_S, CKPT_COST_HIGH_S):
                out[(window, slack, tc)] = fig5_quadrant(runner, slack, tc)
    return out


# ----------------------------------------------------------------------
# F6 — Figure 6
# ----------------------------------------------------------------------

#: The Large-bid control thresholds of Figure 6's x-axis; ``None`` is
#: the "Naive" (no threshold) point and 20.02 the "Max" point.
FIG6_THRESHOLDS: tuple[float | None, ...] = (0.27, 0.81, 2.40, 20.02, None)


def fig6_panel(
    runner: ExperimentRunner,
    slack_fraction: float,
    ckpt_cost_s: float,
    thresholds: Sequence[float | None] = FIG6_THRESHOLDS,
) -> list[PolicyCell]:
    """One Figure 6 panel: Large-bid across thresholds, plus Adaptive.

    The maximum of each cell's stats is the paper's "circle" (worst
    case incurred).
    """
    config = paper_experiment(slack_fraction=slack_fraction, ckpt_cost_s=ckpt_cost_s)
    cells = []
    for threshold in thresholds:
        records = runner.run_large_bid(config, threshold)
        label = "naive" if threshold is None else f"L={threshold:.2f}"
        cells.append(_cell(label, 100.0, records))
    cells.append(_cell("adaptive", float("nan"), runner.run_adaptive(config)))
    return cells


# ----------------------------------------------------------------------
# HL — headline claims
# ----------------------------------------------------------------------

def headline_claims(
    num_experiments: int = 20, seed: int = DEFAULT_SEED, workers: int = 1,
    engine_mode: str = "fast", cache_dir: str | None = None,
) -> dict:
    """The abstract's three quantitative claims, measured.

    1. Adaptive up to ~7x cheaper than on-demand (calm markets).
    2. Adaptive up to ~44% cheaper than the best-case non-redundant
       spot policy (low volatility, t_c = 900 s, low slack in the
       paper's data).
    3. Adaptive's worst case stays within ~20% above on-demand.
    """
    od = on_demand_cost(paper_experiment())
    best_ratio = 0.0
    best_single_improvement = 0.0
    worst_ratio = 0.0
    for window, slack in QUADRANTS:
        with ExperimentRunner(window, num_experiments=num_experiments,
                              seed=seed, workers=workers,
                              engine_mode=engine_mode,
                              cache_dir=cache_dir) as runner:
            for tc in (CKPT_COST_LOW_S, CKPT_COST_HIGH_S):
                config = paper_experiment(slack_fraction=slack, ckpt_cost_s=tc)
                adaptive = box(runner.run_adaptive(config))
                best_ratio = max(best_ratio, od / adaptive.median)
                worst_ratio = max(worst_ratio, adaptive.maximum / od)
                per_label = {
                    label: runner.run_bid_axis(label, config, FIGURE_BIDS)
                    for label in RETAINED_POLICIES
                }
                singles = [
                    box(per_label[label][bid]).median
                    for label in RETAINED_POLICIES
                    for bid in FIGURE_BIDS
                ]
                best_single = min(singles)
                improvement = (best_single - adaptive.median) / best_single
                best_single_improvement = max(best_single_improvement, improvement)
    return {
        "on_demand_cost": od,
        "max_on_demand_over_adaptive": best_ratio,
        "max_improvement_over_best_single": best_single_improvement,
        "worst_case_over_on_demand": worst_ratio,
    }
