"""Parameter sweeps over the evaluation grid.

The paper fixes slack ∈ {15%, 50%} and t_c ∈ {300, 900}; these helpers
sweep any axis — slack, checkpoint cost, bid, redundancy degree — and
return per-point boxplot statistics, powering the ablation benchmarks
and letting users map their own experiment onto the cost landscape.

Every sweep accepts ``workers``: when given, the runner's grid cells
are fanned out over that many worker processes (see
:mod:`repro.experiments.parallel`) with results identical to the
serial path; when ``None`` the runner's own ``workers`` setting
applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.app.workload import paper_experiment
from repro.experiments.metrics import RunRecord, box, deadline_violations
from repro.experiments.runner import ExperimentRunner
from repro.stats.descriptive import BoxplotStats


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sweep: the parameter value and its cost stats."""

    value: float | str
    stats: BoxplotStats
    violations: int

    def row(self) -> list:
        return [self.value, self.stats.median, self.stats.q3,
                self.stats.maximum, self.violations]


def _point(value, records: Sequence[RunRecord]) -> SweepPoint:
    return SweepPoint(
        value=value,
        stats=box(records),
        violations=len(deadline_violations(records)),
    )


def _with_workers(
    runner: ExperimentRunner, workers: int | None
) -> ExperimentRunner:
    return runner if workers is None else runner.with_workers(workers)


def sweep_slack(
    runner: ExperimentRunner,
    fractions: Sequence[float],
    policy_label: str = "markov-daly",
    bid: float = 0.81,
    ckpt_cost_s: float = 300.0,
    redundant: bool = False,
    workers: int | None = None,
) -> list[SweepPoint]:
    """Cost vs. slack fraction — how much headroom buys how much.

    The paper's qualitative claim: more slack lowers worst-case costs
    (more time to ride out storms before the on-demand switch) but
    barely moves medians once availability is high.
    """
    runner = _with_workers(runner, workers)
    points = []
    for fraction in fractions:
        config = paper_experiment(slack_fraction=fraction,
                                  ckpt_cost_s=ckpt_cost_s)
        if redundant:
            records = runner.run_redundant(policy_label, config, bid)
        else:
            records = runner.run_single_zone(policy_label, config, bid)
        points.append(_point(fraction, records))
    return points


def sweep_ckpt_cost(
    runner: ExperimentRunner,
    costs_s: Sequence[float],
    policy_label: str = "markov-daly",
    bid: float = 0.81,
    slack_fraction: float = 0.15,
    redundant: bool = False,
    workers: int | None = None,
) -> list[SweepPoint]:
    """Cost vs. checkpoint cost t_c (the Tables 2→3 axis, densified)."""
    runner = _with_workers(runner, workers)
    points = []
    for tc in costs_s:
        config = paper_experiment(slack_fraction=slack_fraction,
                                  ckpt_cost_s=tc)
        if redundant:
            records = runner.run_redundant(policy_label, config, bid)
        else:
            records = runner.run_single_zone(policy_label, config, bid)
        points.append(_point(tc, records))
    return points


def sweep_bid(
    runner: ExperimentRunner,
    bids: Sequence[float],
    policy_label: str = "markov-daly",
    slack_fraction: float = 0.5,
    ckpt_cost_s: float = 300.0,
    redundant: bool = False,
    workers: int | None = None,
    batched: bool = True,
) -> list[SweepPoint]:
    """Cost vs. bid — the sweet-spot curve behind Section 6's summary
    ("higher bid prices (after a sweet-spot) generally increase the
    median cost for redundancy-based policies").

    The whole axis goes through the batched bid-axis engine
    (:meth:`~repro.experiments.runner.ExperimentRunner.run_bid_axis`):
    bid-invariant policies run once per availability-equivalence class
    per start instead of once per bid, with identical per-point
    records; other policies (and ``batched=False``, the benchmark
    baseline) execute per-bid exactly as before.
    """
    runner = _with_workers(runner, workers)
    config = paper_experiment(slack_fraction=slack_fraction,
                              ckpt_cost_s=ckpt_cost_s)
    axis = runner.run_bid_axis(
        policy_label, config, bids, redundant=redundant, batched=batched
    )
    return [_point(float(b), axis[float(b)]) for b in dict.fromkeys(bids)]


def sweep_zones(
    runner: ExperimentRunner,
    degrees: Sequence[int],
    policy_label: str = "markov-daly",
    bid: float = 0.81,
    slack_fraction: float = 0.15,
    ckpt_cost_s: float = 300.0,
    workers: int | None = None,
) -> list[SweepPoint]:
    """Cost vs. redundancy degree N (Section 6's diminishing returns)."""
    runner = _with_workers(runner, workers)
    config = paper_experiment(slack_fraction=slack_fraction,
                              ckpt_cost_s=ckpt_cost_s)
    points = []
    for n in degrees:
        records = runner.run_redundant(policy_label, config, bid, num_zones=n)
        points.append(_point(n, records))
    return points
