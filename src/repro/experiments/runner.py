"""Experiment grids over the evaluation windows (Section 5's protocol).

The paper runs 80 experiments over partially overlapping chunks of
each volatility window, for each combination of policy, bid, slack and
checkpoint cost.  :class:`ExperimentRunner` owns one window's trace
and oracle (so Markov caches amortize across the whole grid) and
exposes the run shapes the figures need:

* single-zone policy sweeps, merged over the three zones (one boxplot
  per policy in Figure 4);
* redundancy-based sweeps over all three zones;
* Adaptive (controller-driven) sweeps;
* Large-bid sweeps over the control threshold L.

Every grid cell decomposes into independent per-start units of work —
a :class:`CellTask` plus one start offset — which is both the serial
execution order and the unit the parallel sweep executor
(:mod:`repro.experiments.parallel`) fans out over worker processes.
Per-start seeding is derived from the start offset alone, so the two
paths produce identical records.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

import numpy as np

from repro.app.workload import ExperimentConfig
from repro.core.adaptive import AdaptiveController
from repro.core.bid_batch import bid_equivalence_classes
from repro.core.edge import RisingEdgePolicy
from repro.core.engine import SpotSimulator
from repro.core.large_bid import LargeBidPolicy
from repro.core.markov_daly import MarkovDalyPolicy
from repro.core.periodic import PeriodicPolicy
from repro.core.policy import CheckpointPolicy
from repro.core.threshold import ThresholdPolicy
from repro.core.large_bid import naive_policy
from repro.experiments.cache import CacheStats, RunCache
from repro.experiments.metrics import RunRecord, best_case_per_start
from repro.market.constants import LARGE_BID, SAMPLE_INTERVAL_S
from repro.market.queuing import QueueDelayModel
from repro.market.spot_market import PriceOracle
from repro.traces.library import DEFAULT_SEED, evaluation_window
from repro.traces.model import SpotPriceTrace, overlapping_starts

#: Paper default: 80 partially overlapping chunks per window.
DEFAULT_NUM_EXPERIMENTS: int = 80

#: Factories for the four Algorithm-1 policies by label.
POLICY_FACTORIES: dict[str, Callable[[], CheckpointPolicy]] = {
    "periodic": PeriodicPolicy,
    "markov-daly": MarkovDalyPolicy,
    "edge": RisingEdgePolicy,
    "threshold": ThresholdPolicy,
}

#: Policies the paper keeps after Section 6 (Edge and Threshold are
#: dropped for high recovery costs).
RETAINED_POLICIES: tuple[str, ...] = ("periodic", "markov-daly")


def _rebid(record: RunRecord, bid: float) -> RunRecord:
    """``record`` as an independent run at ``bid`` would report it.

    Valid only for a bid in the same availability-equivalence class as
    the record's (under a bid-invariant policy): the trajectory — and
    hence every other field, the event log included — is bit-identical
    by construction, so only the recorded bid differs.  Event details
    embed prices, never the bid, which is what keeps the log clone-safe.
    """
    return replace(record, bid=bid, result=replace(record.result, bid=bid))


@dataclass(frozen=True)
class CellTask:
    """One grid cell's work, minus the start offset.

    The (task, start) pair is the atomic unit of the evaluation grid:
    serial runs iterate starts in order, the parallel executor ships
    the same pairs to worker processes.  Tasks must therefore be
    picklable; ``controller_factory`` must be a module-level callable
    (the default :class:`AdaptiveController` is) when a parallel run
    is intended.
    """

    kind: str  # "single-zone" | "redundant" | "adaptive" | "large-bid"
    config: ExperimentConfig
    policy_label: str | None = None
    bid: float | None = None
    zones: tuple[str, ...] | None = None
    num_zones: int = 3
    threshold: float | None = None
    controller_factory: Callable[[], AdaptiveController] | None = None


@dataclass
class ExperimentRunner:
    """Runs experiment grids against one evaluation window.

    Parameters
    ----------
    window:
        ``"low"`` or ``"high"`` — the Section 5 volatility windows.
    num_experiments:
        Overlapping start offsets per grid cell (paper: 80).
    seed:
        Seeds both the trace archive and the queuing-delay draws.
    workers:
        Worker processes for grid execution.  1 (default) runs
        serially in-process; N > 1 fans the per-start cells out over a
        process pool (see :mod:`repro.experiments.parallel`) with
        bit-identical results.
    engine_mode:
        ``"fast"`` (default) uses the engine's segment-skipping
        scheduler; ``"tick"`` forces the reference tick-by-tick loop
        (for debugging); ``"vector"`` batches each single-zone cell's
        whole start axis through the struct-of-arrays engine
        (:mod:`repro.core.vector_engine`), falling back to per-run
        fast simulation for everything the vector path can't express.
        Results are bit-identical across all three.
    audit:
        Attach a :class:`~repro.audit.auditor.RunAuditor` to every
        simulator: invariants are checked on each run and violations
        aggregate into :meth:`drain_audit`'s report.
    audit_out:
        JSONL path for the structured event stream (implies ``audit``).
        Under workers > 1 each worker appends to its own
        ``<audit_out>.w<pid>`` file, so the stream needs no locking.
    trace, eval_start:
        Prebuilt evaluation window.  Defaults to
        :func:`~repro.traces.library.evaluation_window` on
        ``window``/``seed``; sweep workers attached to a shared-memory
        arena pass the mapped (zero-copy) trace instead so each process
        skips regenerating the archive.  The arrays must equal the
        generated window's — results are bit-identical either way.
    cache_dir, cache:
        Cross-run memoization (:mod:`repro.experiments.cache`).
        ``cache_dir`` adds a persistent on-disk layer so warm figure
        reruns skip simulation entirely; ``cache`` injects a prebuilt
        :class:`~repro.experiments.cache.RunCache` (in-memory when its
        ``cache_dir`` is None).  With neither, no caching happens.
        Audited runs always simulate cold — the engine bypasses the
        cache whenever an auditor is attached — so ``audit=True`` and
        caching compose safely.
    """

    window: str
    num_experiments: int = DEFAULT_NUM_EXPERIMENTS
    seed: int = DEFAULT_SEED
    queue_model: QueueDelayModel = field(default_factory=QueueDelayModel)
    workers: int = 1
    engine_mode: str = "fast"
    audit: bool = False
    audit_out: str | None = None
    trace: "SpotPriceTrace | None" = None
    eval_start: float | None = None
    cache_dir: str | None = None
    cache: "RunCache | None" = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.audit_out is not None:
            self.audit = True
        if self.trace is None:
            self.trace, self.eval_start = evaluation_window(self.window, self.seed)
        elif self.eval_start is None:
            raise ValueError("eval_start is required with an explicit trace")
        if self.cache is None and self.cache_dir is not None:
            self.cache = RunCache(self.cache_dir)
        self.oracle = PriceOracle(self.trace)
        self._executor = None
        self._auditor = None
        self._vector = None

    @property
    def auditor(self):
        """The lazily created in-process auditor (``None`` if ``audit``
        is off; workers > 1 audit inside the worker processes instead)."""
        if not self.audit:
            return None
        if self._auditor is None:
            from repro.audit.auditor import RunAuditor
            from repro.audit.sink import JsonlSink

            sink = JsonlSink(self.audit_out) if self.audit_out else None
            self._auditor = RunAuditor(sink=sink)
        return self._auditor

    def drain_audit(self):
        """Collect (and clear) the audit outcome of everything run so
        far — both in-process runs and, for workers > 1, the reports
        the worker processes shipped back with their records."""
        from repro.audit.auditor import AuditReport

        report = AuditReport()
        if self._auditor is not None:
            report.merge(self._auditor.drain())
        if self._executor is not None:
            report.merge(self._executor.drain_audit())
        return report

    def drain_cache_stats(self) -> CacheStats | None:
        """Collect (and clear) run-cache counters — the in-process
        cache's own plus whatever the sweep workers shipped back with
        their results.  ``None`` when no cache is configured at all, so
        callers can distinguish "cache off" from "cache cold" instead
        of printing a zero-hit stats line on uncached commands."""
        if self.cache is None:
            # no cache here means none in the workers either — they
            # inherit this runner's cache_dir, which must be unset
            return None
        stats = CacheStats()
        stats.merge(self.cache.drain_stats())
        if self._executor is not None:
            # the executor reports None when it was built without a
            # cache_dir (e.g. this runner's cache is in-memory only)
            worker_stats = self._executor.drain_cache_stats()
            if worker_stats is not None:
                stats.merge(worker_stats)
        return stats

    @property
    def vector(self):
        """The lazily created batch engine.  All vector-served cells
        share one simulator so its native/cloned/fallback counters
        accumulate across the whole sweep for :meth:`drain_vector_stats`."""
        if self._vector is None:
            from repro.core.vector_engine import VectorSimulator

            self._vector = VectorSimulator(
                oracle=self.oracle, queue_model=self.queue_model,
                run_cache=self.cache,
            )
        return self._vector

    def drain_vector_stats(self):
        """Collect (and clear) the batch engine's native/cloned/fallback
        counters — the in-process simulator's own plus whatever the
        sweep workers shipped back with their results.  ``None`` when
        no batch ran at all, so the CLI only prints the vector summary
        line on commands that actually exercised the engine."""
        from repro.core.vector_engine import BatchStats

        stats = BatchStats()
        if self._vector is not None:
            stats.merge(self._vector.drain_stats())
        if self._executor is not None:
            stats.merge(self._executor.drain_vector_stats())
        return stats if stats.total else None

    # -- parallel execution ------------------------------------------------

    def with_workers(self, workers: int) -> "ExperimentRunner":
        """A runner over the same window/seed with a different degree of
        parallelism (the window trace is cached, so this is cheap)."""
        if workers == self.workers:
            return self
        return ExperimentRunner(
            self.window,
            num_experiments=self.num_experiments,
            seed=self.seed,
            queue_model=self.queue_model,
            workers=workers,
            engine_mode=self.engine_mode,
            audit=self.audit,
            audit_out=self.audit_out,
            cache_dir=self.cache_dir,
        )

    @property
    def executor(self):
        """The lazily created process-pool executor (workers > 1)."""
        if self._executor is None:
            from repro.experiments.parallel import SweepExecutor

            self._executor = SweepExecutor(
                window=self.window,
                num_experiments=self.num_experiments,
                seed=self.seed,
                workers=self.workers,
                queue_model=self.queue_model,
                engine_mode=self.engine_mode,
                audit=self.audit,
                audit_out=self.audit_out,
                cache_dir=self.cache_dir,
            )
        return self._executor

    def close(self) -> None:
        """Shut down the worker pool and audit sink, if started."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None
        if self._auditor is not None:
            self._auditor.close()
            self._auditor = None

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- experiment geometry ----------------------------------------------

    def starts(self, config: ExperimentConfig) -> np.ndarray:
        """Absolute start times of the overlapping experiment chunks.

        Deduplicated: when the feasible span is narrower than
        ``num_experiments`` grid steps, several raw offsets snap to the
        same 5-minute tick — identical seed, identical trajectory — so
        each colliding grid point is simulated once, not repeatedly.
        ``overlapping_starts`` is non-decreasing, so dropping
        duplicates preserves order.
        """
        eval_span = self.trace.end_time - self.eval_start
        # keep one tick of headroom at the trace end for the last tick's
        # price lookup
        usable = eval_span - SAMPLE_INTERVAL_S
        offsets = overlapping_starts(
            usable, config.deadline_s, self.num_experiments
        )
        return self.eval_start + np.unique(offsets)

    def _start_rng(self, start_time: float) -> np.random.Generator:
        """The per-start queue-delay stream, derived from the start
        offset alone — identical for every (policy, bid) cell and for
        the batched and per-run execution paths."""
        return np.random.default_rng(
            np.random.SeedSequence(
                entropy=self.seed, spawn_key=(int(start_time),)
            )
        )

    def simulator(self, start_time: float) -> SpotSimulator:
        """A simulator whose queue-delay stream is derived from the
        experiment's start offset, so every (policy, bid) cell sees the
        same acquisition delays at the same start.  Under
        ``engine_mode="vector"`` per-run simulators (cells the batch
        path doesn't serve) degrade to the bit-identical fast engine."""
        engine = "fast" if self.engine_mode == "vector" else self.engine_mode
        return SpotSimulator(
            oracle=self.oracle, queue_model=self.queue_model,
            rng=self._start_rng(start_time),
            engine_mode=engine, auditor=self.auditor,
            run_cache=self.cache,
        )

    # -- cell execution ----------------------------------------------------

    def _record(
        self,
        label: str,
        config: ExperimentConfig,
        bid: float,
        start: float,
        result,
    ) -> RunRecord:
        return RunRecord(
            label=label,
            window=self.window,
            slack_fraction=config.slack_fraction,
            ckpt_cost_s=config.ckpt_cost_s,
            bid=bid,
            start_time=start,
            result=result,
        )

    def run_cell(self, task: CellTask, start: float) -> list[RunRecord]:
        """Execute one (task, start) unit; the parallel worker entry point.

        One simulator per start: within a cell, every zone of a merged
        single-zone (or Large-bid) run draws from the same queue-delay
        stream, exactly as the serial loops always did.
        """
        sim = self.simulator(start)
        config = task.config
        if task.kind == "single-zone":
            factory = POLICY_FACTORIES[task.policy_label]
            records = []
            for zone in task.zones:
                result = sim.run(config, factory(), task.bid, (zone,), start)
                records.append(
                    self._record(task.policy_label, config, task.bid, start, result)
                )
            return records
        if task.kind == "redundant":
            factory = POLICY_FACTORIES[task.policy_label]
            zones = self.trace.zone_names[: task.num_zones]
            label = f"{task.policy_label}-r{task.num_zones}"
            result = sim.run(config, factory(), task.bid, zones, start)
            return [self._record(label, config, task.bid, start, result)]
        if task.kind == "adaptive":
            controller = (task.controller_factory or AdaptiveController)()
            result = sim.run(
                config,
                PeriodicPolicy(),
                bid=controller.bids[0],
                zones=self.trace.zone_names[:1],
                start_time=start,
                controller=controller,
            )
            return [self._record("adaptive", config, result.bid, start, result)]
        if task.kind == "large-bid":
            records = []
            for zone in task.zones:
                policy = (
                    naive_policy()
                    if task.threshold is None
                    else LargeBidPolicy(task.threshold)
                )
                result = sim.run(config, policy, LARGE_BID, (zone,), start)
                records.append(
                    self._record(policy.name, config, LARGE_BID, start, result)
                )
            return records
        raise ValueError(f"unknown cell task kind {task.kind!r}")

    def run_start_axis_cells(
        self, task: CellTask, starts: Sequence[float]
    ) -> list[RunRecord]:
        """Batch one cell's ``starts`` through the struct-of-arrays
        engine; the parallel chunk entry point.

        One RNG per start (the same :meth:`_start_rng` stream the
        per-run path uses) shared across the cell's zone waves, so a
        merged three-zone cell draws queue delays in exactly the order
        the serial ``run_cell`` loop would.  Single-zone and Large-bid
        records come back start-major, zone-minor — the serial order;
        redundant cells run all their zones as one multi-zone batch;
        Adaptive cells batch the whole axis through
        :meth:`~repro.core.vector_engine.VectorSimulator.run_adaptive_batch`.
        """
        if task.kind not in ("single-zone", "redundant", "adaptive",
                             "large-bid"):
            raise ValueError(
                f"start-axis batching is undefined for cell kind {task.kind!r}"
            )
        config = task.config
        starts = [float(s) for s in starts]
        rngs = [self._start_rng(s) for s in starts]
        vec = self.vector
        if task.kind == "adaptive":
            controller_factory = task.controller_factory or AdaptiveController
            results = vec.run_adaptive_batch(
                config, controller_factory, starts, rngs
            )
            return [
                self._record("adaptive", config, results[i].bid, start,
                             results[i])
                for i, start in enumerate(starts)
            ]
        if task.kind == "large-bid":
            if task.threshold is None:
                policy_factory = naive_policy
            else:
                policy_factory = lambda: LargeBidPolicy(task.threshold)  # noqa: E731
            label = policy_factory().name
            per_zone = [
                vec.run_batch(config, policy_factory, LARGE_BID, (zone,),
                              starts, rngs)
                for zone in task.zones
            ]
            records = []
            for i, start in enumerate(starts):
                for results in per_zone:
                    records.append(
                        self._record(label, config, LARGE_BID, start,
                                     results[i])
                    )
            return records
        factory = POLICY_FACTORIES[task.policy_label]
        if task.kind == "single-zone":
            per_zone = [
                vec.run_batch(config, factory, task.bid, (zone,), starts, rngs)
                for zone in task.zones
            ]
            records = []
            for i, start in enumerate(starts):
                for results in per_zone:
                    records.append(
                        self._record(task.policy_label, config, task.bid,
                                     start, results[i])
                    )
            return records
        zones = tuple(self.trace.zone_names[: task.num_zones])
        label = f"{task.policy_label}-r{task.num_zones}"
        results = vec.run_batch(config, factory, task.bid, zones,
                                starts, rngs)
        return [
            self._record(label, config, task.bid, start, results[i])
            for i, start in enumerate(starts)
        ]

    def run_start_axis(
        self,
        policy_label: str,
        config: ExperimentConfig,
        bid: float,
        zones: Sequence[str] | None = None,
    ) -> list[RunRecord]:
        """One single-zone cell over the full start grid, batched.

        Same records — values and order — as :meth:`run_single_zone`;
        the start axis is served by the struct-of-arrays engine (with
        per-run scalar fallback where the vector path doesn't apply)
        regardless of ``engine_mode``.  Audited runners fall back to
        per-run simulation so the auditor observes every run.
        """
        zones = tuple(zones) if zones is not None else self.trace.zone_names
        task = CellTask(kind="single-zone", config=config,
                        policy_label=policy_label, bid=bid, zones=zones)
        if self.audit:
            return self._run_grid(task)
        starts = [float(s) for s in self.starts(config)]
        if self.workers > 1 and len(starts) > 1:
            return self.executor.map_start_axis(task, starts)
        return self.run_start_axis_cells(task, starts)

    def _run_grid(self, task: CellTask) -> list[RunRecord]:
        """All starts of one cell — serial, or fanned out over workers.

        The parallel path merges worker results in start order, so the
        returned records are identical (values and order) to a serial
        run.  Under ``engine_mode="vector"`` single-zone, redundant,
        Adaptive and Large-bid cells route through the start-axis batch
        engine instead of the per-start loop (audited runners excepted
        — the vector path has no audit hooks, so those runs stay
        per-run on the fast engine).
        """
        starts = [float(s) for s in self.starts(task.config)]
        if (
            self.engine_mode == "vector"
            and task.kind in ("single-zone", "redundant", "adaptive",
                              "large-bid")
            and not self.audit
        ):
            if self.workers > 1 and len(starts) > 1:
                return self.executor.map_start_axis(task, starts)
            return self.run_start_axis_cells(task, starts)
        if self.workers > 1 and len(starts) > 1:
            return self.executor.map_cells(task, starts)
        records = []
        for start in starts:
            records.extend(self.run_cell(task, start))
        return records

    # -- batched bid axis --------------------------------------------------

    def run_bid_axis_cell(
        self, task: CellTask, bids: Sequence[float], start: float
    ) -> list[tuple[float, list[RunRecord]]]:
        """One start's worth of a batched bid axis; worker entry point.

        Partitions ``bids`` into availability-equivalence classes over
        this start's run horizon (:mod:`repro.core.bid_batch`), runs
        one representative per class and clones its records — bid
        field rewritten — for the other members.  Under a
        bid-invariant policy the clones are bit-identical to what
        independent runs at those bids would produce (trajectory,
        costs, event log, queue-delay draws — the differential tests
        in ``tests/experiments/test_bid_axis.py`` prove it), so one
        pass over the trace serves the whole axis.  Returns ``(bid,
        records)`` pairs in ascending-bid order.
        """
        if task.kind == "single-zone":
            cell_zones = task.zones
        elif task.kind == "redundant":
            cell_zones = self.trace.zone_names[: task.num_zones]
        else:
            raise ValueError(
                f"bid axis is undefined for cell kind {task.kind!r}"
            )
        classes = bid_equivalence_classes(
            self.trace, cell_zones, bids, start, task.config.deadline_s
        )
        pairs: list[tuple[float, list[RunRecord]]] = []
        for cls in classes:
            rep_records = self.run_cell(
                replace(task, bid=cls.representative), start
            )
            for bid in cls.members:
                if bid == cls.representative:
                    pairs.append((bid, rep_records))
                else:
                    pairs.append(
                        (bid, [_rebid(r, bid) for r in rep_records])
                    )
        return pairs

    def run_bid_axis(
        self,
        policy_label: str,
        config: ExperimentConfig,
        bids: Sequence[float],
        zones: Sequence[str] | None = None,
        redundant: bool = False,
        num_zones: int = 3,
        batched: bool = True,
    ) -> dict[float, list[RunRecord]]:
        """All bid levels of one sweep cell, sharing work across bids.

        For bid-invariant policies the batched engine runs one
        representative per equivalence class and clones the rest (see
        :meth:`run_bid_axis_cell`); the per-bid record lists — values
        *and* order — are identical to ``run_single_zone`` /
        ``run_redundant`` called once per bid.  Policies whose
        decisions consume the bid numerically (Markov-Daly's MTBF,
        Threshold's price target) fall back to exactly those per-bid
        runs automatically, as does ``batched=False`` (the benchmark
        baseline).  Returns ``{bid: records}`` over the unique bids.
        """
        bids = [float(b) for b in dict.fromkeys(float(b) for b in bids)]
        if batched and self.engine_mode == "vector" and not self.audit:
            # one fused (bid x start) lockstep tile per cell; identical
            # records, bid-equivalence clones included
            return self.run_grid(policy_label, config, bids, zones=zones,
                                 redundant=redundant, num_zones=num_zones)
        if redundant:
            task = CellTask(kind="redundant", config=config,
                            policy_label=policy_label, num_zones=num_zones)
        else:
            cell_zones = tuple(zones) if zones is not None else self.trace.zone_names
            task = CellTask(kind="single-zone", config=config,
                            policy_label=policy_label, zones=cell_zones)
        if not (batched and POLICY_FACTORIES[policy_label]().bid_invariant):
            return {
                bid: self._run_grid(replace(task, bid=bid)) for bid in bids
            }
        starts = [float(s) for s in self.starts(config)]
        if self.workers > 1 and len(starts) > 1:
            return self.executor.map_bid_axis(task, bids, starts)
        out: dict[float, list[RunRecord]] = {bid: [] for bid in bids}
        for start in starts:
            for bid, records in self.run_bid_axis_cell(task, bids, start):
                out[bid].extend(records)
        return out

    # -- fused (bid x start) grid ------------------------------------------

    def run_grid_cell(
        self, task: CellTask, bids: Sequence[float], starts: Sequence[float]
    ) -> list[tuple[float, list[RunRecord]]]:
        """One contiguous start-chunk of a fused (bid x start) tile;
        the parallel grid-chunk entry point.

        The whole tile advances through the vector engine in lockstep:
        rows are laid out start-major over the bid grid, each row gets
        the fresh per-start RNG a per-(bid, start) ``run_cell`` would
        build, and — for bid-invariant policies — the availability
        equivalence classes of :mod:`repro.core.bid_batch` collapse to
        one simulated representative per (class, start) with the other
        rows cloned inside the engine, exactly as
        :meth:`run_bid_axis_cell` clones records.  Returns ``(bid,
        records)`` pairs over the given bids; per bid the records are
        start-major (and zone-minor for merged single-zone cells) —
        bit-identical, values and order, to per-bid scalar runs.
        """
        if task.kind == "single-zone":
            cell_zones = task.zones
            waves = [(task.policy_label, (zone,)) for zone in task.zones]
        elif task.kind == "redundant":
            cell_zones = tuple(self.trace.zone_names[: task.num_zones])
            waves = [(f"{task.policy_label}-r{task.num_zones}", cell_zones)]
        else:
            raise ValueError(
                f"grid batching is undefined for cell kind {task.kind!r}"
            )
        factory = POLICY_FACTORIES[task.policy_label]
        config = task.config
        bids = [float(b) for b in bids]
        starts = [float(s) for s in starts]
        nb = len(bids)
        bcol = {bid: j for j, bid in enumerate(bids)}
        row_bids = [bid for _ in starts for bid in bids]
        row_starts = [start for start in starts for _ in bids]
        rngs = [self._start_rng(start) for start in row_starts]
        clone_of = None
        if nb > 1 and factory().bid_invariant:
            clone_of = [None] * (nb * len(starts))
            for si, start in enumerate(starts):
                classes = bid_equivalence_classes(
                    self.trace, cell_zones, bids, start, config.deadline_s
                )
                for cls in classes:
                    rep_row = si * nb + bcol[cls.representative]
                    for bid in cls.members:
                        if bid != cls.representative:
                            clone_of[si * nb + bcol[bid]] = rep_row
        vec = self.vector
        per_wave = [
            vec.run_grid(config, factory, wave_zones, row_bids, row_starts,
                         rngs, clone_of=clone_of)
            for _, wave_zones in waves
        ]
        pairs: list[tuple[float, list[RunRecord]]] = []
        for bj, bid in enumerate(bids):
            records = []
            for si, start in enumerate(starts):
                for (label, _), results in zip(waves, per_wave):
                    records.append(
                        self._record(label, config, bid, start,
                                     results[si * nb + bj])
                    )
            pairs.append((bid, records))
        return pairs

    def run_grid(
        self,
        policy_label: str,
        config: ExperimentConfig,
        bids: Sequence[float],
        zones: Sequence[str] | None = None,
        redundant: bool = False,
        num_zones: int = 3,
    ) -> dict[float, list[RunRecord]]:
        """One (policy, zone-set) cell over the full (bid x start) grid,
        fused through the vector engine.

        Same per-bid record lists — values *and* order — as
        :meth:`run_single_zone` / :meth:`run_redundant` called once per
        bid, regardless of ``engine_mode``; the whole grid advances in
        lockstep instead (with per-run scalar fallback inside the
        engine wherever the native path doesn't apply).  Audited
        runners fall back to per-run simulation so the auditor
        observes every run.  Returns ``{bid: records}`` over the
        unique bids.
        """
        bids = [float(b) for b in dict.fromkeys(float(b) for b in bids)]
        if redundant:
            task = CellTask(kind="redundant", config=config,
                            policy_label=policy_label, num_zones=num_zones)
        else:
            cell_zones = tuple(zones) if zones is not None else self.trace.zone_names
            task = CellTask(kind="single-zone", config=config,
                            policy_label=policy_label, zones=cell_zones)
        if self.audit:
            return {
                bid: self._run_grid(replace(task, bid=bid)) for bid in bids
            }
        starts = [float(s) for s in self.starts(config)]
        if self.workers > 1 and len(starts) > 1:
            return self.executor.map_grid(task, bids, starts)
        out: dict[float, list[RunRecord]] = {bid: [] for bid in bids}
        for bid, records in self.run_grid_cell(task, bids, starts):
            out[bid].extend(records)
        return out

    # -- fused (shape x bid x start) cube ----------------------------------

    def run_cube_cell(
        self,
        task: CellTask,
        configs: Sequence[ExperimentConfig],
        bids: Sequence[float],
        starts_per_shape: Sequence[Sequence[float]],
    ) -> list[list[tuple[float, list[RunRecord]]]]:
        """One contiguous start-chunk of a fused (shape x bid x start)
        cube; the parallel cube-chunk entry point.

        Each job shape brings its own start list (the overlapping-start
        grid depends on the deadline), laid out shape-major over the
        per-shape (bid x start) tiles of :meth:`run_grid_cell`; the
        whole cube advances through the vector engine in one lockstep
        pass, with bid-equivalence clones resolved per (shape, start)
        so clones never cross shapes.  Returns, per shape, the same
        ``(bid, records)`` pairs ``run_grid_cell`` would produce for
        that shape alone — bit-identical, values and order.
        """
        if task.kind == "single-zone":
            cell_zones = task.zones
            waves = [(task.policy_label, (zone,)) for zone in task.zones]
        elif task.kind == "redundant":
            cell_zones = tuple(self.trace.zone_names[: task.num_zones])
            waves = [(f"{task.policy_label}-r{task.num_zones}", cell_zones)]
        else:
            raise ValueError(
                f"cube batching is undefined for cell kind {task.kind!r}"
            )
        factory = POLICY_FACTORIES[task.policy_label]
        configs = list(configs)
        bids = [float(b) for b in bids]
        nb = len(bids)
        bcol = {bid: j for j, bid in enumerate(bids)}
        shape_idx: list[int] = []
        row_bids: list[float] = []
        row_starts: list[float] = []
        row0: list[int] = []  # first row of each shape's tile
        for k, shape_starts in enumerate(starts_per_shape):
            row0.append(len(row_bids))
            for start in shape_starts:
                for bid in bids:
                    shape_idx.append(k)
                    row_bids.append(bid)
                    row_starts.append(float(start))
        rngs = [self._start_rng(start) for start in row_starts]
        clone_of = None
        if nb > 1 and factory().bid_invariant:
            clone_of = [None] * len(row_bids)
            for k, shape_starts in enumerate(starts_per_shape):
                base = row0[k]
                for si, start in enumerate(shape_starts):
                    classes = bid_equivalence_classes(
                        self.trace, cell_zones, bids, float(start),
                        configs[k].deadline_s
                    )
                    for cls in classes:
                        rep_row = base + si * nb + bcol[cls.representative]
                        for bid in cls.members:
                            if bid != cls.representative:
                                clone_of[base + si * nb + bcol[bid]] = rep_row
        vec = self.vector
        per_wave = [
            vec.run_cube(configs, factory, wave_zones, shape_idx, row_bids,
                         row_starts, rngs, clone_of=clone_of)
            for _, wave_zones in waves
        ]
        out: list[list[tuple[float, list[RunRecord]]]] = []
        for k, shape_starts in enumerate(starts_per_shape):
            base = row0[k]
            pairs: list[tuple[float, list[RunRecord]]] = []
            for bj, bid in enumerate(bids):
                records = []
                for si, start in enumerate(shape_starts):
                    for (label, _), results in zip(waves, per_wave):
                        records.append(
                            self._record(label, configs[k], bid, float(start),
                                         results[base + si * nb + bj])
                        )
                pairs.append((bid, records))
            out.append(pairs)
        return out

    def run_cube(
        self,
        policy_label: str,
        configs: Sequence[ExperimentConfig],
        bids: Sequence[float],
        zones: Sequence[str] | None = None,
        redundant: bool = False,
        num_zones: int = 3,
    ) -> list[dict[float, list[RunRecord]]]:
        """One (policy, zone-set) cell over a whole (shape x bid x
        start) cube — a deadline ladder in one lockstep pass.

        Per shape, same ``{bid: records}`` — values *and* order — as
        :meth:`run_grid` called once per shape, regardless of
        ``engine_mode``; the shape rows share the zone-dynamics column
        work inside the vector engine instead.  Audited runners fall
        back to per-run simulation so the auditor observes every run.
        Returns one ``{bid: records}`` dict per shape, in ``configs``
        order.
        """
        configs = list(configs)
        if not configs:
            raise ValueError("at least one job shape is required")
        bids = [float(b) for b in dict.fromkeys(float(b) for b in bids)]
        if redundant:
            task = CellTask(kind="redundant", config=configs[0],
                            policy_label=policy_label, num_zones=num_zones)
        else:
            cell_zones = tuple(zones) if zones is not None else self.trace.zone_names
            task = CellTask(kind="single-zone", config=configs[0],
                            policy_label=policy_label, zones=cell_zones)
        if self.audit:
            return [
                {bid: self._run_grid(replace(task, config=config, bid=bid))
                 for bid in bids}
                for config in configs
            ]
        starts_per_shape = [
            [float(s) for s in self.starts(config)] for config in configs
        ]
        if self.workers > 1 and max(len(s) for s in starts_per_shape) > 1:
            return self.executor.map_cube(task, configs, bids,
                                          starts_per_shape)
        out: list[dict[float, list[RunRecord]]] = [
            {bid: [] for bid in bids} for _ in configs
        ]
        cell = self.run_cube_cell(task, configs, bids, starts_per_shape)
        for k, pairs in enumerate(cell):
            for bid, records in pairs:
                out[k][bid].extend(records)
        return out

    # -- grid cells -------------------------------------------------------

    def run_single_zone(
        self,
        policy_label: str,
        config: ExperimentConfig,
        bid: float,
        zones: Sequence[str] | None = None,
    ) -> list[RunRecord]:
        """One single-zone policy, merged over zones (paper's boxplots).

        Runs every (zone, start) pair; the returned records pool all
        zones, matching "we merge the results from all three individual
        zones ... to generate one boxplot".
        """
        zones = tuple(zones) if zones is not None else self.trace.zone_names
        return self._run_grid(
            CellTask(kind="single-zone", config=config,
                     policy_label=policy_label, bid=bid, zones=zones)
        )

    def run_redundant(
        self,
        policy_label: str,
        config: ExperimentConfig,
        bid: float,
        num_zones: int = 3,
    ) -> list[RunRecord]:
        """One redundancy-based policy over the first ``num_zones`` zones."""
        return self._run_grid(
            CellTask(kind="redundant", config=config,
                     policy_label=policy_label, bid=bid, num_zones=num_zones)
        )

    def run_best_redundant(
        self,
        config: ExperimentConfig,
        bid: float,
        policy_labels: Sequence[str] = RETAINED_POLICIES + ("edge", "threshold"),
        num_zones: int = 3,
    ) -> list[RunRecord]:
        """Best-case redundancy per experiment (Figure 4's "R" boxes)."""
        groups = [
            self.run_redundant(label, config, bid, num_zones)
            for label in policy_labels
        ]
        return best_case_per_start(groups)

    def run_adaptive(
        self,
        config: ExperimentConfig,
        controller_factory: Callable[[], AdaptiveController] = AdaptiveController,
    ) -> list[RunRecord]:
        """The Adaptive scheme: the controller picks bid/zones/policy.

        The initial configuration is a placeholder — the controller's
        first decision (before anything runs) replaces it.
        """
        return self._run_grid(
            CellTask(kind="adaptive", config=config,
                     controller_factory=controller_factory)
        )

    def run_large_bid(
        self,
        config: ExperimentConfig,
        threshold: float | None,
        zone: str | None = None,
    ) -> list[RunRecord]:
        """Large-bid at control threshold L (None = Naive), merged zones."""
        zones = (zone,) if zone is not None else self.trace.zone_names
        return self._run_grid(
            CellTask(kind="large-bid", config=config,
                     threshold=threshold, zones=zones)
        )
