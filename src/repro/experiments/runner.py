"""Experiment grids over the evaluation windows (Section 5's protocol).

The paper runs 80 experiments over partially overlapping chunks of
each volatility window, for each combination of policy, bid, slack and
checkpoint cost.  :class:`ExperimentRunner` owns one window's trace
and oracle (so Markov caches amortize across the whole grid) and
exposes the run shapes the figures need:

* single-zone policy sweeps, merged over the three zones (one boxplot
  per policy in Figure 4);
* redundancy-based sweeps over all three zones;
* Adaptive (controller-driven) sweeps;
* Large-bid sweeps over the control threshold L.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.app.workload import ExperimentConfig
from repro.core.adaptive import AdaptiveController
from repro.core.edge import RisingEdgePolicy
from repro.core.engine import SpotSimulator
from repro.core.large_bid import LargeBidPolicy
from repro.core.markov_daly import MarkovDalyPolicy
from repro.core.periodic import PeriodicPolicy
from repro.core.policy import CheckpointPolicy
from repro.core.threshold import ThresholdPolicy
from repro.core.large_bid import naive_policy
from repro.experiments.metrics import RunRecord, best_case_per_start
from repro.market.constants import LARGE_BID, SAMPLE_INTERVAL_S
from repro.market.queuing import QueueDelayModel
from repro.market.spot_market import PriceOracle
from repro.traces.library import DEFAULT_SEED, evaluation_window
from repro.traces.model import overlapping_starts

#: Paper default: 80 partially overlapping chunks per window.
DEFAULT_NUM_EXPERIMENTS: int = 80

#: Factories for the four Algorithm-1 policies by label.
POLICY_FACTORIES: dict[str, Callable[[], CheckpointPolicy]] = {
    "periodic": PeriodicPolicy,
    "markov-daly": MarkovDalyPolicy,
    "edge": RisingEdgePolicy,
    "threshold": ThresholdPolicy,
}

#: Policies the paper keeps after Section 6 (Edge and Threshold are
#: dropped for high recovery costs).
RETAINED_POLICIES: tuple[str, ...] = ("periodic", "markov-daly")


@dataclass
class ExperimentRunner:
    """Runs experiment grids against one evaluation window.

    Parameters
    ----------
    window:
        ``"low"`` or ``"high"`` — the Section 5 volatility windows.
    num_experiments:
        Overlapping start offsets per grid cell (paper: 80).
    seed:
        Seeds both the trace archive and the queuing-delay draws.
    """

    window: str
    num_experiments: int = DEFAULT_NUM_EXPERIMENTS
    seed: int = DEFAULT_SEED
    queue_model: QueueDelayModel = field(default_factory=QueueDelayModel)

    def __post_init__(self) -> None:
        trace, eval_start = evaluation_window(self.window, self.seed)
        self.trace = trace
        self.eval_start = eval_start
        self.oracle = PriceOracle(trace)

    # -- experiment geometry ----------------------------------------------

    def starts(self, config: ExperimentConfig) -> np.ndarray:
        """Absolute start times of the overlapping experiment chunks."""
        eval_span = self.trace.end_time - self.eval_start
        # keep one tick of headroom at the trace end for the last tick's
        # price lookup
        usable = eval_span - SAMPLE_INTERVAL_S
        offsets = overlapping_starts(
            usable, config.deadline_s, self.num_experiments
        )
        return self.eval_start + offsets

    def simulator(self, start_time: float) -> SpotSimulator:
        """A simulator whose queue-delay stream is derived from the
        experiment's start offset, so every (policy, bid) cell sees the
        same acquisition delays at the same start."""
        rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=self.seed, spawn_key=(int(start_time),)
            )
        )
        return SpotSimulator(
            oracle=self.oracle, queue_model=self.queue_model, rng=rng
        )

    # -- grid cells -------------------------------------------------------

    def _record(
        self,
        label: str,
        config: ExperimentConfig,
        bid: float,
        start: float,
        result,
    ) -> RunRecord:
        return RunRecord(
            label=label,
            window=self.window,
            slack_fraction=config.slack_fraction,
            ckpt_cost_s=config.ckpt_cost_s,
            bid=bid,
            start_time=start,
            result=result,
        )

    def run_single_zone(
        self,
        policy_label: str,
        config: ExperimentConfig,
        bid: float,
        zones: Sequence[str] | None = None,
    ) -> list[RunRecord]:
        """One single-zone policy, merged over zones (paper's boxplots).

        Runs every (zone, start) pair; the returned records pool all
        zones, matching "we merge the results from all three individual
        zones ... to generate one boxplot".
        """
        factory = POLICY_FACTORIES[policy_label]
        zones = tuple(zones) if zones is not None else self.trace.zone_names
        records = []
        for start in self.starts(config):
            sim = self.simulator(start)
            for zone in zones:
                result = sim.run(config, factory(), bid, (zone,), start)
                records.append(
                    self._record(policy_label, config, bid, start, result)
                )
        return records

    def run_redundant(
        self,
        policy_label: str,
        config: ExperimentConfig,
        bid: float,
        num_zones: int = 3,
    ) -> list[RunRecord]:
        """One redundancy-based policy over the first ``num_zones`` zones."""
        factory = POLICY_FACTORIES[policy_label]
        zones = self.trace.zone_names[:num_zones]
        label = f"{policy_label}-r{num_zones}"
        records = []
        for start in self.starts(config):
            sim = self.simulator(start)
            result = sim.run(config, factory(), bid, zones, start)
            records.append(self._record(label, config, bid, start, result))
        return records

    def run_best_redundant(
        self,
        config: ExperimentConfig,
        bid: float,
        policy_labels: Sequence[str] = RETAINED_POLICIES + ("edge", "threshold"),
        num_zones: int = 3,
    ) -> list[RunRecord]:
        """Best-case redundancy per experiment (Figure 4's "R" boxes)."""
        groups = [
            self.run_redundant(label, config, bid, num_zones)
            for label in policy_labels
        ]
        return best_case_per_start(groups)

    def run_adaptive(
        self,
        config: ExperimentConfig,
        controller_factory: Callable[[], AdaptiveController] = AdaptiveController,
    ) -> list[RunRecord]:
        """The Adaptive scheme: the controller picks bid/zones/policy.

        The initial configuration is a placeholder — the controller's
        first decision (before anything runs) replaces it.
        """
        records = []
        for start in self.starts(config):
            sim = self.simulator(start)
            controller = controller_factory()
            result = sim.run(
                config,
                PeriodicPolicy(),
                bid=controller.bids[0],
                zones=self.trace.zone_names[:1],
                start_time=start,
                controller=controller,
            )
            records.append(
                self._record("adaptive", config, result.bid, start, result)
            )
        return records

    def run_large_bid(
        self,
        config: ExperimentConfig,
        threshold: float | None,
        zone: str | None = None,
    ) -> list[RunRecord]:
        """Large-bid at control threshold L (None = Naive), merged zones."""
        zones = (zone,) if zone is not None else self.trace.zone_names
        records = []
        for start in self.starts(config):
            sim = self.simulator(start)
            for z in zones:
                policy = (
                    naive_policy()
                    if threshold is None
                    else LargeBidPolicy(threshold)
                )
                result = sim.run(config, policy, LARGE_BID, (z,), start)
                records.append(
                    self._record(policy.name, config, LARGE_BID, start, result)
                )
        return records
