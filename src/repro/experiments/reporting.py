"""Text rendering of the paper's tables and boxplot series.

Everything the benchmark harness prints flows through these helpers so
the output format stays consistent: an ASCII table per figure/table
whose rows correspond to the paper's boxes/rows.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.experiments.figures import PolicyCell


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Fixed-width ASCII table with a header rule."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    def line(parts: Sequence[str]) -> str:
        return "  ".join(p.ljust(w) for p, w in zip(parts, widths)).rstrip()

    out = [line([str(h) for h in headers])]
    out.append(line(["-" * w for w in widths]))
    out.extend(line(r) for r in cells)
    return "\n".join(out)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        return f"{value:.2f}"
    return str(value)


def render_cells(
    title: str,
    cells: Sequence[PolicyCell],
    reference_lines: Mapping[str, float] | None = None,
) -> str:
    """A Figure 4/5/6 plot as a table of five-number summaries."""
    headers = ["policy", "bid", "min", "q1", "median", "q3", "max", "n", "viol"]
    rows = []
    for cell in cells:
        s = cell.stats
        rows.append(
            [
                cell.label,
                cell.bid,
                s.minimum,
                s.q1,
                s.median,
                s.q3,
                s.maximum,
                s.count,
                cell.violations,
            ]
        )
    text = f"{title}\n{format_table(headers, rows)}"
    if reference_lines:
        refs = "  ".join(f"{k}=${v:.2f}" for k, v in reference_lines.items())
        text += f"\nreference lines: {refs}"
    return text


def render_optimal_table(title: str, rows: Sequence[Mapping]) -> str:
    """Tables 2/3 as the paper prints them: winner per quadrant."""
    headers = ["volatility", "slack", "optimal policy", "median $"]
    table_rows = [
        [
            row["window"],
            f"{row['slack']:.0%}",
            row["winner"],
            row["winner_median"],
        ]
        for row in rows
    ]
    return f"{title}\n{format_table(headers, table_rows)}"


def render_availability(title: str, data: Mapping) -> str:
    """Figure 2's availability numbers as a table."""
    headers = ["zone", "availability"]
    rows = [[zone, frac] for zone, frac in data["per_zone"].items()]
    rows.append(["combined", data["combined"]])
    text = f"{title} (bid=${data['bid']:.2f}, {data['window_hours']:.0f}h window)\n"
    text += format_table(headers, rows)
    text += f"\nredundancy gain over best single zone: {data['redundancy_gain']:.2%}"
    return text


def render_var_report(title: str, report: Mapping) -> str:
    """Section 3.1's VAR analysis summary."""
    rows = [
        ["AIC-selected lag order", report["order"]],
        ["observations", report["nobs"]],
        ["mean |own-zone coefficient|", report["own_effect"]],
        ["mean |cross-zone coefficient|", report["cross_effect"]],
        ["own/cross ratio", report["ratio"]],
        ["orders of magnitude", report["orders_of_magnitude"]],
    ]
    return f"{title}\n{format_table(['quantity', 'value'], rows)}"


def render_queuing(title: str, stats: Mapping) -> str:
    """Section 5's queuing-delay statistics."""
    rows = [
        ["probes", stats["num_probes"]],
        ["mean delay (s)", stats["mean_s"]],
        ["best case (s)", stats["min_s"]],
        ["worst case (s)", stats["max_s"]],
        ["paper: mean/best/worst", "299.6 / 143 / 880"],
    ]
    return f"{title}\n{format_table(['quantity', 'value'], rows)}"


def render_headline(title: str, claims: Mapping) -> str:
    """The abstract's quantitative claims, measured vs stated."""
    rows = [
        ["on-demand cost ($)", claims["on_demand_cost"], "48.00"],
        [
            "max on-demand / adaptive median",
            claims["max_on_demand_over_adaptive"],
            "up to 7x",
        ],
        [
            "max improvement over best single-zone",
            claims["max_improvement_over_best_single"],
            "up to 44%",
        ],
        [
            "adaptive worst case / on-demand",
            claims["worst_case_over_on_demand"],
            "<= 1.2x",
        ],
    ]
    return f"{title}\n{format_table(['claim', 'measured', 'paper'], rows)}"
