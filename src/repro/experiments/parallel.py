"""Parallel sweep executor — per-start grid cells over a process pool.

The evaluation protocol (Section 5) runs 80 overlapping experiments
per grid cell across policies x bids x zones x slack x checkpoint
costs — tens of thousands of tick-by-tick simulations that are
embarrassingly parallel across start offsets: per-start seeding is
derived from the start offset alone
(:meth:`~repro.experiments.runner.ExperimentRunner.simulator`), so no
work unit observes another's randomness.

Design:

* **Worker initializer builds the window once per process.**  Each
  worker constructs its own :class:`ExperimentRunner` (trace + oracle)
  at pool start-up; every cell that worker executes then shares the
  oracle's Markov/stationary/uptime caches, exactly as the serial
  runner amortizes them across the grid.  On fork-based platforms the
  parent's generated trace arrives copy-on-write for free.
* **Ordered merge.**  Futures are collected in submission (= start)
  order, so the record list is identical — values and order — to the
  serial path.  ``RunRecord`` trees are plain frozen dataclasses of
  floats/strings/tuples; pickling them is exact, so parallel results
  are bit-identical to serial runs.
* **Pool reuse.**  The pool outlives a single ``map_cells`` call: one
  :class:`SweepExecutor` serves a whole figure's worth of cells, so
  process start-up and trace construction are paid once per sweep,
  not once per cell.

Use it through ``ExperimentRunner(..., workers=N)`` (or the CLI's
``--workers N``); instantiating :class:`SweepExecutor` directly is
only needed for custom grids.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

from repro.audit.auditor import AuditReport
from repro.experiments.metrics import RunRecord
from repro.experiments.runner import CellTask, ExperimentRunner
from repro.market.queuing import QueueDelayModel
from repro.traces.library import DEFAULT_SEED

#: The per-process runner, created by :func:`_init_worker`.
_WORKER_RUNNER: ExperimentRunner | None = None


def _init_worker(
    window: str,
    num_experiments: int,
    seed: int,
    queue_model: QueueDelayModel,
    engine_mode: str = "fast",
    audit: bool = False,
    audit_out: str | None = None,
) -> None:
    """Build this worker's trace + oracle once; all cells share them.

    An audited pool gives each worker its own ``<audit_out>.w<pid>``
    JSONL file — concurrent appends to one shared file would interleave
    partial lines, and per-process files need no locking.
    """
    global _WORKER_RUNNER
    if audit_out is not None:
        audit_out = f"{audit_out}.w{os.getpid()}"
    _WORKER_RUNNER = ExperimentRunner(
        window,
        num_experiments=num_experiments,
        seed=seed,
        queue_model=queue_model,
        workers=1,
        engine_mode=engine_mode,
        audit=audit,
        audit_out=audit_out,
    )


def _run_cell(
    task: CellTask, start: float
) -> tuple[list[RunRecord], AuditReport | None]:
    """Worker entry point: one (task, start) unit on the shared runner.

    Returns the records plus the drained audit report (``None`` when
    auditing is off), so violations and counters observed inside the
    worker travel back to the parent with the results they describe.
    """
    if _WORKER_RUNNER is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker pool used before initialization")
    records = _WORKER_RUNNER.run_cell(task, start)
    report = _WORKER_RUNNER.drain_audit() if _WORKER_RUNNER.audit else None
    return records, report


@dataclass
class SweepExecutor:
    """Fans grid cells out over a :class:`ProcessPoolExecutor`.

    Parameters mirror :class:`ExperimentRunner` — the worker processes
    rebuild the same runner from them, so a task executed remotely is
    indistinguishable from one executed in-process.
    """

    window: str
    num_experiments: int
    seed: int = DEFAULT_SEED
    workers: int = 2
    queue_model: QueueDelayModel = field(default_factory=QueueDelayModel)
    engine_mode: str = "fast"
    audit: bool = False
    audit_out: str | None = None
    _pool: ProcessPoolExecutor | None = field(default=None, repr=False)
    _audit_report: AuditReport = field(default_factory=AuditReport, repr=False)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.audit_out is not None:
            self.audit = True

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(
                    self.window,
                    self.num_experiments,
                    self.seed,
                    self.queue_model,
                    self.engine_mode,
                    self.audit,
                    self.audit_out,
                ),
            )
        return self._pool

    def map_cells(
        self, task: CellTask, starts: Sequence[float]
    ) -> list[RunRecord]:
        """Run one cell task at every start; records in start order.

        The ordered merge makes the result indistinguishable from the
        serial loop: worker k's records for start i land at exactly the
        position the serial path would have appended them.
        """
        pool = self._ensure_pool()
        futures = [pool.submit(_run_cell, task, float(s)) for s in starts]
        records: list[RunRecord] = []
        for future in futures:
            cell_records, report = future.result()
            records.extend(cell_records)
            if report is not None:
                self._audit_report.merge(report)
        return records

    def drain_audit(self) -> AuditReport:
        """Hand off (and clear) the audit reports workers shipped back."""
        report = self._audit_report
        self._audit_report = AuditReport()
        return report

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
