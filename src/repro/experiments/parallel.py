"""Parallel sweep executor — per-start grid cells over a process pool.

The evaluation protocol (Section 5) runs 80 overlapping experiments
per grid cell across policies x bids x zones x slack x checkpoint
costs — tens of thousands of tick-by-tick simulations that are
embarrassingly parallel across start offsets: per-start seeding is
derived from the start offset alone
(:meth:`~repro.experiments.runner.ExperimentRunner.simulator`), so no
work unit observes another's randomness.

Design:

* **Shared-memory trace arena.**  The parent publishes each zone's
  price array once into a ``multiprocessing.shared_memory`` block,
  together with pre-warmed oracle statistic tables (per-bucket
  stationary vectors, per-threshold crossing indices).  Workers map
  the block zero-copy: their :class:`ZoneTrace` objects are views into
  the arena, their oracles are seeded with the parent's
  eigendecompositions, and the trace archive is generated exactly once
  per sweep instead of once per process.  When shared memory is
  unavailable (or the arena fails to build), workers fall back to
  regenerating the window locally — the previous copy-on-write path —
  with bit-identical results.
* **Ordered merge.**  Futures are collected in submission (= start)
  order, so the record list is identical — values and order — to the
  serial path.  ``RunRecord`` trees are plain frozen dataclasses of
  floats/strings/tuples; pickling them is exact, so parallel results
  are bit-identical to serial runs.
* **Pool reuse.**  The pool outlives a single ``map_cells`` call: one
  :class:`SweepExecutor` serves a whole figure's worth of cells, so
  process start-up and trace construction are paid once per sweep,
  not once per cell.

Use it through ``ExperimentRunner(..., workers=N)`` (or the CLI's
``--workers N``); instantiating :class:`SweepExecutor` directly is
only needed for custom grids.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.audit.auditor import AuditReport
from repro.core.vector_engine import BatchStats
from repro.experiments.cache import CacheStats
from repro.experiments.metrics import RunRecord
from repro.experiments.runner import CellTask, ExperimentRunner
from repro.market.constants import LARGE_BID, bid_grid
from repro.market.queuing import QueueDelayModel
from repro.market.spot_market import PriceOracle
from repro.traces.library import DEFAULT_SEED, evaluation_window
from repro.traces.model import SpotPriceTrace, ZoneTrace

#: The per-process runner, created by :func:`_init_worker`.
_WORKER_RUNNER: ExperimentRunner | None = None
#: The worker's attached arena segment, kept referenced so the mapping
#: (which the runner's trace arrays are views into) stays alive for the
#: life of the process.
_WORKER_SHM = None


@dataclass(frozen=True)
class ArenaSpec:
    """Picklable layout of a :class:`TraceArena` block.

    Travels to the workers via the pool initargs; every array is
    described as ``(key..., byte offset, length)`` into the named
    shared-memory segment.
    """

    name: str
    start_time: float
    interval_s: int
    eval_start: float
    #: (zone, byte offset, num samples) — float64 price arrays.
    zones: tuple
    #: (zone, bucket, byte offset, num states) — float64 stationary vectors.
    stationary: tuple
    #: (zone, threshold, byte offset, num crossings) — int64 indices.
    crossings: tuple


class TraceArena:
    """One shared-memory block holding a sweep's immutable inputs.

    The parent side: :meth:`publish` lays the window's per-zone price
    arrays, the per-``(zone, bucket)`` stationary vectors and the
    per-``(zone, threshold)`` crossing indices into a single
    ``multiprocessing.shared_memory`` segment and returns the arena
    plus its picklable :class:`ArenaSpec`.  The worker side:
    :func:`attach_arena` maps the segment and rebuilds zero-copy views.
    The parent owns the segment — it unlinks on :meth:`destroy`;
    workers only ever map it read-only-by-convention (every view is
    marked unwriteable).
    """

    def __init__(self, shm, spec: ArenaSpec) -> None:
        self._shm = shm
        self.spec = spec

    @classmethod
    def publish(
        cls,
        trace: SpotPriceTrace,
        eval_start: float,
        thresholds: tuple = (),
        warm_stationary: dict | None = None,
    ) -> "TraceArena":
        """Copy the sweep's shared inputs into a fresh segment."""
        from multiprocessing import shared_memory

        entries = []  # (category, key, array, byte offset)
        offset = 0
        def reserve(category, key, arr):
            nonlocal offset
            entries.append((category, key, arr, offset))
            offset += arr.nbytes
        for z in trace.zones:
            reserve("zone", (z.zone,), np.ascontiguousarray(z.prices))
        for z in trace.zones:
            for theta in thresholds:
                idx = np.ascontiguousarray(
                    z.threshold_crossings(theta), dtype=np.int64
                )
                reserve("crossing", (z.zone, float(theta)), idx)
        for (zone, bucket), v in (warm_stationary or {}).items():
            reserve("stationary", (zone, bucket), np.ascontiguousarray(v))
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        specs = {"zone": [], "crossing": [], "stationary": []}
        for category, key, arr, off in entries:
            dest = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=off)
            dest[:] = arr
            specs[category].append((*key, off, arr.size))
        spec = ArenaSpec(
            name=shm.name,
            start_time=trace.start_time,
            interval_s=trace.interval_s,
            eval_start=eval_start,
            zones=tuple(specs["zone"]),
            stationary=tuple(specs["stationary"]),
            crossings=tuple(specs["crossing"]),
        )
        return cls(shm, spec)

    def destroy(self) -> None:
        """Unmap and remove the segment (parent side, idempotent)."""
        if self._shm is None:
            return
        try:
            self._shm.close()
            self._shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - teardown race
            pass
        self._shm = None


def attach_arena(spec: ArenaSpec):
    """Map an arena in a worker: ``(shm, trace, eval_start, warm tables)``.

    Every returned array is a read-only view into the segment — zone
    prices, crossing indices and stationary vectors are never copied.
    The worker must keep the returned ``shm`` object referenced for as
    long as the views live.  Attaching normally registers the segment
    with the process's resource tracker, but the *parent* owns (and
    unlinks) it — tracker-side bookkeeping from the workers would
    produce double-unlink noise at shutdown — so registration is
    suppressed for the duration of the attach (the standard workaround
    while CPython's tracker has no owner concept).
    """
    from multiprocessing import resource_tracker, shared_memory

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        shm = shared_memory.SharedMemory(name=spec.name)
    finally:
        resource_tracker.register = original_register

    def view(off, n, dtype):
        arr = np.ndarray((n,), dtype=dtype, buffer=shm.buf, offset=off)
        arr.setflags(write=False)
        return arr

    zones = tuple(
        ZoneTrace(
            zone=zone,
            start_time=spec.start_time,
            prices=view(off, n, np.float64),
            interval_s=spec.interval_s,
        )
        for zone, off, n in spec.zones
    )
    trace = SpotPriceTrace(zones=zones)
    for zone, theta, off, n in spec.crossings:
        trace.zone(zone).seed_threshold_crossings(theta, view(off, n, np.int64))
    warm = {
        (zone, bucket): view(off, n, np.float64)
        for zone, bucket, off, n in spec.stationary
    }
    return shm, trace, spec.eval_start, warm


def _init_worker(
    window: str,
    num_experiments: int,
    seed: int,
    queue_model: QueueDelayModel,
    engine_mode: str = "fast",
    audit: bool = False,
    audit_out: str | None = None,
    arena: ArenaSpec | None = None,
    cache_dir: str | None = None,
) -> None:
    """Build this worker's trace + oracle once; all cells share them.

    With an arena spec the trace is mapped zero-copy from the parent's
    segment and the oracle is seeded with the pre-warmed stationary
    tables; without one (or if attaching fails — e.g. the platform
    lacks POSIX shared memory) the worker regenerates the window
    locally, the original copy-on-write path.  Either way the arrays
    are equal, so results are bit-identical.

    An audited pool gives each worker its own ``<audit_out>.w<pid>``
    JSONL file — concurrent appends to one shared file would interleave
    partial lines, and per-process files need no locking.  The sidecar
    is truncated at worker start-up: the OS recycles pids, so a
    leftover file from an earlier pool must not silently receive this
    worker's appended stream on top of stale events.  Sidecars are
    merged into the main ``audit_out`` file (and removed) when the
    executor closes.

    A ``cache_dir`` gives every worker a run cache over the *same*
    on-disk layer (entry writes are atomic, so concurrent workers are
    safe); trace fingerprints hash content, not storage, so an
    arena-mapped worker hits entries a locally-generated run stored
    and vice versa.
    """
    global _WORKER_RUNNER, _WORKER_SHM
    if audit_out is not None:
        audit_out = f"{audit_out}.w{os.getpid()}"
        try:
            os.unlink(audit_out)  # pid reuse: never append to stale events
        except OSError:
            pass
    trace = eval_start = warm = None
    if arena is not None:
        try:
            _WORKER_SHM, trace, eval_start, warm = attach_arena(arena)
        except Exception:
            _WORKER_SHM = trace = eval_start = warm = None
    _WORKER_RUNNER = ExperimentRunner(
        window,
        num_experiments=num_experiments,
        seed=seed,
        queue_model=queue_model,
        workers=1,
        engine_mode=engine_mode,
        audit=audit,
        audit_out=audit_out,
        trace=trace,
        eval_start=eval_start,
        cache_dir=cache_dir,
    )
    if warm:
        _WORKER_RUNNER.oracle.seed_stationary(warm)


def _worker_extras() -> tuple[
    AuditReport | None, CacheStats | None, BatchStats | None
]:
    """Drained per-call side channels: audit report, cache counters and
    the vector engine's native/fallback tallies."""
    report = _WORKER_RUNNER.drain_audit() if _WORKER_RUNNER.audit else None
    stats = (
        _WORKER_RUNNER.drain_cache_stats()
        if _WORKER_RUNNER.cache is not None
        else None
    )
    return report, stats, _WORKER_RUNNER.drain_vector_stats()


def _run_cell(task: CellTask, start: float) -> tuple:
    """Worker entry point: one (task, start) unit on the shared runner.

    Returns the records plus the drained audit report, run-cache
    counters and vector-batch counters (``None`` when the respective
    feature is off), so violations and hit/miss/native tallies observed
    inside the worker travel back to the parent with the results they
    describe.
    """
    if _WORKER_RUNNER is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker pool used before initialization")
    records = _WORKER_RUNNER.run_cell(task, start)
    return (records, *_worker_extras())


def _run_bid_axis_cell(task: CellTask, bids: tuple, start: float) -> tuple:
    """Worker entry point for one start of a batched bid axis."""
    if _WORKER_RUNNER is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker pool used before initialization")
    pairs = _WORKER_RUNNER.run_bid_axis_cell(task, bids, start)
    return (pairs, *_worker_extras())


def _run_start_axis_chunk(task: CellTask, starts: tuple) -> tuple:
    """Worker entry point for one contiguous chunk of a batched start
    axis: the whole chunk goes through the vector engine in one batch
    (:meth:`~repro.experiments.runner.ExperimentRunner.run_start_axis_cells`),
    so the per-run Python loop disappears inside the workers too."""
    if _WORKER_RUNNER is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker pool used before initialization")
    records = _WORKER_RUNNER.run_start_axis_cells(task, list(starts))
    return (records, *_worker_extras())


def _run_grid_chunk(task: CellTask, bids: tuple, starts: tuple) -> tuple:
    """Worker entry point for one start-chunk of a fused (bid x start)
    tile: the chunk's whole bid axis advances in one lockstep pass
    (:meth:`~repro.experiments.runner.ExperimentRunner.run_grid_cell`)."""
    if _WORKER_RUNNER is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker pool used before initialization")
    pairs = _WORKER_RUNNER.run_grid_cell(task, list(bids), list(starts))
    return (pairs, *_worker_extras())


def _run_cube_chunk(
    task: CellTask, configs: tuple, bids: tuple, starts_per_shape: tuple
) -> tuple:
    """Worker entry point for one start-chunk of a fused (shape x bid x
    start) cube: every shape's slice of the chunk advances in one
    lockstep pass
    (:meth:`~repro.experiments.runner.ExperimentRunner.run_cube_cell`)."""
    if _WORKER_RUNNER is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker pool used before initialization")
    cell = _WORKER_RUNNER.run_cube_cell(
        task, list(configs), list(bids),
        [list(starts) for starts in starts_per_shape],
    )
    return (cell, *_worker_extras())


@dataclass
class SweepExecutor:
    """Fans grid cells out over a :class:`ProcessPoolExecutor`.

    Parameters mirror :class:`ExperimentRunner` — the worker processes
    rebuild the same runner from them, so a task executed remotely is
    indistinguishable from one executed in-process.
    """

    window: str
    num_experiments: int
    seed: int = DEFAULT_SEED
    workers: int = 2
    queue_model: QueueDelayModel = field(default_factory=QueueDelayModel)
    engine_mode: str = "fast"
    audit: bool = False
    audit_out: str | None = None
    #: Shared on-disk run-cache directory handed to every worker
    #: (``None`` disables worker-side caching).
    cache_dir: str | None = None
    #: Publish the window into a shared-memory :class:`TraceArena` at
    #: pool start-up.  Off (or a failed publish) falls back to each
    #: worker regenerating the window — results are identical; the
    #: arena only removes redundant per-process work.
    use_arena: bool = True
    _pool: ProcessPoolExecutor | None = field(default=None, repr=False)
    _arena: "TraceArena | None" = field(default=None, repr=False)
    _audit_report: AuditReport = field(default_factory=AuditReport, repr=False)
    _cache_stats: CacheStats = field(default_factory=CacheStats, repr=False)
    _vector_stats: BatchStats = field(default_factory=BatchStats, repr=False)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.audit_out is not None:
            self.audit = True

    def _build_arena(self) -> "TraceArena | None":
        """Publish the window + warm statistic tables; ``None`` on failure.

        The pre-warmed tables cover the full evaluation span at the
        production oracle's bucket grid: per-bucket stationary vectors
        (one rolling-fitter walk in the parent replaces one
        eigendecomposition sweep *per worker*) and crossing indices for
        the bid grid plus the large-bid threshold (the fast engine's
        segment-skipping lookups).
        """
        try:
            trace, eval_start = evaluation_window(self.window, self.seed)
            oracle = PriceOracle(trace)
            warm = oracle.prewarm_stationary(eval_start, trace.end_time)
            thresholds = tuple(float(b) for b in bid_grid()) + (LARGE_BID,)
            return TraceArena.publish(
                trace, eval_start, thresholds=thresholds, warm_stationary=warm
            )
        except Exception:
            return None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            if self.use_arena and self._arena is None:
                self._arena = self._build_arena()
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(
                    self.window,
                    self.num_experiments,
                    self.seed,
                    self.queue_model,
                    self.engine_mode,
                    self.audit,
                    self.audit_out,
                    self._arena.spec if self._arena is not None else None,
                    self.cache_dir,
                ),
            )
        return self._pool

    def _absorb_extras(self, report, stats, vstats=None) -> None:
        if report is not None:
            self._audit_report.merge(report)
        if stats is not None:
            self._cache_stats.merge(stats)
        if vstats is not None:
            self._vector_stats.merge(vstats)

    def map_cells(
        self, task: CellTask, starts: Sequence[float]
    ) -> list[RunRecord]:
        """Run one cell task at every start; records in start order.

        The ordered merge makes the result indistinguishable from the
        serial loop: worker k's records for start i land at exactly the
        position the serial path would have appended them.
        """
        pool = self._ensure_pool()
        futures = [pool.submit(_run_cell, task, float(s)) for s in starts]
        records: list[RunRecord] = []
        for future in futures:
            cell_records, *extras = future.result()
            records.extend(cell_records)
            self._absorb_extras(*extras)
        return records

    def map_bid_axis(
        self, task: CellTask, bids: Sequence[float], starts: Sequence[float]
    ) -> dict[float, list[RunRecord]]:
        """Run a batched bid axis at every start; records in start order.

        Each worker partitions the bid grid into equivalence classes
        for its start and runs one representative per class
        (:meth:`~repro.experiments.runner.ExperimentRunner.run_bid_axis_cell`);
        the ordered merge makes every per-bid record list identical —
        values and order — to the serial batched path, which is itself
        identical to per-bid runs.
        """
        pool = self._ensure_pool()
        bids = tuple(float(b) for b in bids)
        futures = [
            pool.submit(_run_bid_axis_cell, task, bids, float(s))
            for s in starts
        ]
        out: dict[float, list[RunRecord]] = {bid: [] for bid in bids}
        for future in futures:
            pairs, *extras = future.result()
            for bid, records in pairs:
                out[bid].extend(records)
            self._absorb_extras(*extras)
        return out

    def map_grid(
        self, task: CellTask, bids: Sequence[float], starts: Sequence[float]
    ) -> dict[float, list[RunRecord]]:
        """Run a fused (bid x start) tile over the pool.

        The start grid splits into one contiguous chunk per worker
        (start order preserved); each chunk advances the whole bid axis
        in one lockstep pass
        (:meth:`~repro.experiments.runner.ExperimentRunner.run_grid_cell`).
        The ordered merge reproduces the serial fused tile — and
        therefore per-bid scalar runs — record for record.
        """
        pool = self._ensure_pool()
        bids = tuple(float(b) for b in bids)
        chunks = [
            tuple(float(s) for s in chunk)
            for chunk in np.array_split(
                np.asarray([float(s) for s in starts]), self.workers
            )
            if len(chunk)
        ]
        futures = [
            pool.submit(_run_grid_chunk, task, bids, chunk)
            for chunk in chunks
        ]
        out: dict[float, list[RunRecord]] = {bid: [] for bid in bids}
        for future in futures:
            pairs, *extras = future.result()
            for bid, records in pairs:
                out[bid].extend(records)
            self._absorb_extras(*extras)
        return out

    def map_cube(
        self,
        task: CellTask,
        configs: Sequence,
        bids: Sequence[float],
        starts_per_shape: Sequence[Sequence[float]],
    ) -> list[dict[float, list[RunRecord]]]:
        """Run a fused (shape x bid x start) cube over the pool.

        Every shape's start grid splits into one contiguous chunk per
        worker (start order preserved); chunk w carries shape k's w-th
        slice for *all* shapes, so each worker still advances a full
        shape ladder in one lockstep pass
        (:meth:`~repro.experiments.runner.ExperimentRunner.run_cube_cell`)
        and the zone-dynamics column sharing survives the fan-out.  The
        ordered merge reproduces, per shape, the serial fused tile —
        and therefore per-bid scalar runs — record for record.
        """
        pool = self._ensure_pool()
        configs = tuple(configs)
        bids = tuple(float(b) for b in bids)
        split_per_shape = [
            np.array_split(
                np.asarray([float(s) for s in starts]), self.workers
            )
            for starts in starts_per_shape
        ]
        chunks = []
        for w in range(self.workers):
            per_shape = tuple(
                tuple(float(s) for s in split_per_shape[k][w])
                for k in range(len(configs))
            )
            if any(per_shape):
                chunks.append(per_shape)
        futures = [
            pool.submit(_run_cube_chunk, task, configs, bids, per_shape)
            for per_shape in chunks
        ]
        out: list[dict[float, list[RunRecord]]] = [
            {bid: [] for bid in bids} for _ in configs
        ]
        for future in futures:
            cell, *extras = future.result()
            for k, pairs in enumerate(cell):
                for bid, records in pairs:
                    out[k][bid].extend(records)
            self._absorb_extras(*extras)
        return out

    def map_start_axis(
        self, task: CellTask, starts: Sequence[float]
    ) -> list[RunRecord]:
        """Run one single-zone cell's batched start axis over the pool.

        The start grid splits into one contiguous chunk per worker
        (start order preserved), each chunk runs as one vector-engine
        batch, and the ordered merge reproduces the serial path's
        records — values and order — exactly: per-start seeding means
        chunk boundaries cannot change any run.
        """
        pool = self._ensure_pool()
        starts = [float(s) for s in starts]
        chunks = [
            tuple(float(s) for s in chunk)
            for chunk in np.array_split(np.asarray(starts), self.workers)
            if len(chunk)
        ]
        futures = [
            pool.submit(_run_start_axis_chunk, task, chunk)
            for chunk in chunks
        ]
        records: list[RunRecord] = []
        for future in futures:
            chunk_records, *extras = future.result()
            records.extend(chunk_records)
            self._absorb_extras(*extras)
        return records

    def drain_audit(self) -> AuditReport:
        """Hand off (and clear) the audit reports workers shipped back."""
        report = self._audit_report
        self._audit_report = AuditReport()
        return report

    def drain_cache_stats(self) -> CacheStats | None:
        """Hand off (and clear) the run-cache counters workers shipped
        back with their results.

        ``None`` when no ``cache_dir`` is configured — the workers
        cannot have counted anything, and the contract matches
        :meth:`ExperimentRunner.drain_cache_stats` so direct executor
        callers can distinguish "cache off" from "cache cold" instead
        of printing a zero-hit stats line for uncached commands.
        """
        if self.cache_dir is None:
            return None
        stats = self._cache_stats
        self._cache_stats = CacheStats()
        return stats

    def drain_vector_stats(self) -> BatchStats:
        """Hand off (and clear) the vector-batch counters workers
        shipped back with their results (all-zero when no worker ran a
        vector batch)."""
        stats = self._vector_stats
        self._vector_stats = BatchStats()
        return stats

    def _merge_audit_sidecars(self) -> None:
        """Fold the workers' ``.w<pid>`` JSONL sidecars into the main
        ``audit_out`` stream and remove them.

        Runs after the pool has shut down, so every sidecar is complete
        (worker streams flush at run-end boundaries and on process
        exit).  Merge order is sorted by filename for determinism; the
        main file may already hold the parent's own in-process events —
        the sidecars are appended after them.
        """
        if self.audit_out is None:
            return
        from pathlib import Path

        main = Path(self.audit_out)
        sidecars = sorted(main.parent.glob(main.name + ".w*"))
        if not sidecars:
            return
        with main.open("a") as out:
            for sidecar in sidecars:
                try:
                    out.write(sidecar.read_text())
                    sidecar.unlink()
                except OSError:  # pragma: no cover - concurrent removal
                    continue

    def close(self) -> None:
        """Shut the pool down, merge audit sidecars, release the arena
        (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._merge_audit_sidecars()
        if self._arena is not None:
            self._arena.destroy()
            self._arena = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
