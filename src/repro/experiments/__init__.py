"""Evaluation harness: experiment grids, metrics, figure/table assembly."""

from repro.experiments.metrics import (
    RunRecord,
    best_case_per_start,
    box,
    costs,
    deadline_violations,
    group_by,
)
from repro.experiments.runner import (
    DEFAULT_NUM_EXPERIMENTS,
    POLICY_FACTORIES,
    RETAINED_POLICIES,
    ExperimentRunner,
)
from repro.experiments import figures, reporting, sweeps, timeline

__all__ = [
    "RunRecord",
    "best_case_per_start",
    "box",
    "costs",
    "deadline_violations",
    "group_by",
    "DEFAULT_NUM_EXPERIMENTS",
    "POLICY_FACTORIES",
    "RETAINED_POLICIES",
    "ExperimentRunner",
    "figures",
    "reporting",
    "sweeps",
    "timeline",
]
