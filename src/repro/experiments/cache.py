"""Content-addressed cross-run memoization for the experiment grids.

The evaluation protocol re-simulates the same (trace, engine config,
policy, bid, zones, start) tuples over and over: a warm figure rerun
repeats every cell of the cold run, a redundant ``N=1`` cell replays
exactly the trajectory its single-zone sibling already computed, and
two sweeps over the same window share most of their grid.  This module
gives every engine run a *content address* — a canonical hash of all
inputs the trajectory depends on — and a two-layer store behind it:

* an **in-process layer** (a plain dict), shared by every run a
  simulator family performs within one process (and, through the
  sweep executor, within each worker process);
* an optional **on-disk layer** (``--cache-dir`` on the CLI): pickled
  :class:`CachedRun` entries under ``<dir>/<key[:2]>/<key>.pkl``, so a
  warm rerun of a figure skips simulation entirely, across processes
  and across invocations.

Soundness rests on the engine being a deterministic pure function of
the hashed inputs.  The key therefore covers the trace content
(:meth:`~repro.traces.model.SpotPriceTrace.fingerprint`), the oracle's
statistical configuration, the engine mode and recording flags, the
experiment config, the policy's :meth:`canonical_params`, bid, zones,
start time, the queue-delay model *and the RNG state at call time* —
two runs share an entry only when a replay would be bit-identical.
Runs the key cannot honestly describe (attached auditor, run-time
dynamics callbacks, controllers without :meth:`canonical_params`)
bypass the cache entirely; see ``SpotSimulator._cache_key``.

Entries store the result *plus the number of queue-delay draws* the
run consumed, so a cache hit can burn the same number of samples from
the caller's RNG stream and leave every subsequent run — hit or miss —
on exactly the stream it would have seen cold.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, fields, is_dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import RunResult

#: Bumped whenever the key layout or the pickled entry format changes;
#: part of every key, so stale on-disk caches miss instead of
#: deserializing garbage.
CACHE_SCHEMA_VERSION = 1

#: Age (seconds since last modification) past which an orphaned
#: ``*.tmp`` file — left by a worker that died between ``mkstemp`` and
#: ``os.replace`` — is considered abandoned and swept.  Any live
#: writer finishes its rename in milliseconds; an hour of margin means
#: the sweep can never race a concurrent worker's in-flight entry.
STALE_TMP_AGE_S = 3600.0


def canonical_value(obj):
    """``obj`` reduced to a JSON-serializable canonical form.

    Two values canonicalize equal exactly when they are interchangeable
    as engine inputs: dataclasses reduce to ``{field: value}`` maps
    tagged with the class name, NumPy scalars/arrays to Python
    numbers/lists, tuples to lists.  Anything unrecognized raises
    ``TypeError`` — callers treat that as "not cacheable" rather than
    guessing at identity.
    """
    if obj is None or isinstance(obj, (bool, str)):
        return obj
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        return float(obj)
    if is_dataclass(obj) and not isinstance(obj, type):
        out = {"__type__": type(obj).__name__}
        for f in fields(obj):
            if f.name.startswith("_"):  # memo/scratch fields, not inputs
                continue
            out[f.name] = canonical_value(getattr(obj, f.name))
        return out
    if isinstance(obj, np.ndarray):
        return [canonical_value(x) for x in obj.tolist()]
    if isinstance(obj, Mapping):
        return {str(k): canonical_value(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonical_value(x) for x in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(canonical_value(x) for x in obj)
    raise TypeError(f"cannot canonicalize {type(obj).__name__!r} for cache keying")


def canonical_json(obj) -> str:
    """Deterministic JSON encoding of :func:`canonical_value`."""
    return json.dumps(
        canonical_value(obj), sort_keys=True, separators=(",", ":")
    )


def content_key(obj) -> str:
    """SHA-256 hex digest of the canonical encoding of ``obj``.

    Equal canonical values hash equal; distinct canonical values
    collide only with SHA-256 probability (treated as never).
    """
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`RunCache` (or a merged fleet)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Subset of ``hits`` served from the on-disk layer.
    disk_hits: int = 0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.disk_hits += other.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def line(self) -> str:
        """One-line summary (the CLI's stderr report; CI greps it)."""
        return (
            f"run-cache: hits={self.hits} misses={self.misses} "
            f"stores={self.stores} disk_hits={self.disk_hits}"
        )


@dataclass(frozen=True)
class CachedRun:
    """One memoized engine run.

    ``rng_draws`` is the number of queue-delay samples the cold run
    consumed; a hit draws (and discards) exactly that many from the
    live RNG so later runs on the same stream see the samples they
    would have seen had this run executed.
    """

    result: "RunResult"
    rng_draws: int


class RunCache:
    """Two-layer content-addressed store of :class:`CachedRun` entries.

    Parameters
    ----------
    cache_dir:
        Directory for the persistent layer, created if missing.
        ``None`` (default) keeps the cache purely in-process.

    Writes to the disk layer are atomic (temp file + ``os.replace``),
    so concurrent sweep workers sharing one directory can only ever
    observe complete entries; unreadable or truncated files are
    treated as misses.
    """

    def __init__(self, cache_dir: str | os.PathLike | None = None) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            self.sweep_stale_tmp()
        self._memory: dict[str, CachedRun] = {}
        self.stats = CacheStats()

    # -- keying -----------------------------------------------------------

    def run_key(self, parts: Mapping) -> str:
        """Content address of a run described by ``parts``.

        Raises ``TypeError`` when any part cannot be canonicalized —
        the caller's signal to bypass the cache for that run.
        """
        return content_key({"schema": CACHE_SCHEMA_VERSION, **parts})

    def _path(self, key: str) -> Path:
        return self.cache_dir / key[:2] / f"{key}.pkl"

    # -- lookup / store ---------------------------------------------------

    def get(self, key: str) -> CachedRun | None:
        entry = self._memory.get(key)
        if entry is not None:
            self.stats.hits += 1
            return entry
        if self.cache_dir is not None:
            try:
                entry = pickle.loads(self._path(key).read_bytes())
            except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
                entry = None
            if isinstance(entry, CachedRun):
                self._memory[key] = entry
                self.stats.hits += 1
                self.stats.disk_hits += 1
                return entry
        self.stats.misses += 1
        return None

    def put(self, key: str, entry: CachedRun) -> None:
        self._memory[key] = entry
        self.stats.stores += 1
        if self.cache_dir is None:
            return
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(entry, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            # a full/read-only disk degrades to in-memory caching
            pass

    # -- maintenance ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._memory)

    def disk_entries(self) -> Iterator[Path]:
        """Paths of every persisted entry (inspection / the CLI)."""
        if self.cache_dir is None:
            return iter(())
        return self.cache_dir.glob("??/*.pkl")

    def disk_usage(self) -> tuple[int, int]:
        """``(entry count, total bytes)`` of the on-disk layer."""
        count = size = 0
        for path in self.disk_entries():
            try:
                size += path.stat().st_size
            except OSError:  # pragma: no cover - concurrent removal
                continue
            count += 1
        return count, size

    def sweep_stale_tmp(self, max_age_s: float = STALE_TMP_AGE_S) -> int:
        """Remove abandoned ``*.tmp`` files older than ``max_age_s``.

        :meth:`put` writes entries as ``mkstemp`` temp file +
        ``os.replace``; a worker killed between the two leaks the temp
        file forever.  Runs on every open (and, with ``max_age_s=0``,
        from :meth:`clear`), so shared cache directories cannot
        accumulate orphans across sweeps.  Returns the number removed.
        """
        if self.cache_dir is None:
            return 0
        removed = 0
        cutoff = time.time() - max_age_s
        for pattern in ("*.tmp", "??/*.tmp"):
            for path in self.cache_dir.glob(pattern):
                try:
                    if path.stat().st_mtime <= cutoff:
                        path.unlink()
                        removed += 1
                except OSError:  # pragma: no cover - concurrent removal
                    continue
        return removed

    def clear(self) -> int:
        """Drop both layers; returns the number of disk entries removed.

        Also sweeps every ``*.tmp`` orphan regardless of age — an
        explicit clear means no writer is expected to be live.
        """
        self._memory.clear()
        self.sweep_stale_tmp(max_age_s=0.0)
        removed = 0
        for path in list(self.disk_entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - concurrent removal
                continue
        return removed

    def drain_stats(self) -> CacheStats:
        """Hand off (and reset) the counters — how sweep workers ship
        their hit/miss tallies back to the parent with each cell."""
        stats = self.stats
        self.stats = CacheStats()
        return stats
