"""Spot-price trace substrate: containers, synthesis, archive, CSV I/O.

The paper's policies observe the market exclusively through
:class:`~repro.traces.model.SpotPriceTrace`; everything else in this
subpackage exists to produce such traces — synthetically
(:mod:`repro.traces.generator`, calibrated by
:mod:`repro.traces.calibration`), as the canonical 14-month archive
(:mod:`repro.traces.library`), or from user-supplied AWS CSV dumps
(:mod:`repro.traces.io`).
"""

from repro.traces.model import SpotPriceTrace, TraceError, ZoneTrace, overlapping_starts
from repro.traces.generator import (
    ZoneRegimeConfig,
    calm_zone_config,
    generate_zones,
    inject_spike,
    volatile_zone_config,
)
from repro.traces.library import (
    DEFAULT_SEED,
    canonical_dataset,
    evaluation_window,
    month_trace,
    verify_calibration,
)
from repro.traces.io import read_trace, write_trace

__all__ = [
    "SpotPriceTrace",
    "ZoneTrace",
    "TraceError",
    "overlapping_starts",
    "ZoneRegimeConfig",
    "calm_zone_config",
    "volatile_zone_config",
    "generate_zones",
    "inject_spike",
    "DEFAULT_SEED",
    "canonical_dataset",
    "evaluation_window",
    "month_trace",
    "verify_calibration",
    "read_trace",
    "write_trace",
]
