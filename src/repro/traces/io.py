"""Reading and writing spot-price traces in the AWS CLI CSV format.

``aws ec2 describe-spot-price-history`` emits one row per price
*change* with an ISO-8601 timestamp; our simulator wants prices on a
uniform 5-minute grid.  This module converts both ways, so users can
replay their own downloaded price history through every policy in this
package, and export synthetic archives for inspection.

CSV schema (header required)::

    timestamp,availability_zone,instance_type,product_description,spot_price
    2013-01-01T00:00:00Z,us-east-1a,cc2.8xlarge,Linux/UNIX,0.270

Rows may arrive in any order; they are sorted per zone before
resampling.  Prices are forward-filled between change events, matching
how the market actually behaves.
"""

from __future__ import annotations

import csv
import io as _io
from datetime import datetime, timezone
from pathlib import Path
from typing import Iterable, TextIO

import numpy as np

from repro.market.constants import SAMPLE_INTERVAL_S
from repro.traces.model import SpotPriceTrace, TraceError, ZoneTrace

#: Column names, in order.
FIELDNAMES: tuple[str, ...] = (
    "timestamp",
    "availability_zone",
    "instance_type",
    "product_description",
    "spot_price",
)

DEFAULT_INSTANCE_TYPE = "cc2.8xlarge"
DEFAULT_PRODUCT = "Linux/UNIX"


def parse_timestamp(text: str) -> float:
    """Parse an ISO-8601 timestamp (``Z`` or offset suffix) to POSIX seconds."""
    text = text.strip()
    if text.endswith("Z"):
        text = text[:-1] + "+00:00"
    try:
        dt = datetime.fromisoformat(text)
    except ValueError as exc:
        raise TraceError(f"bad timestamp {text!r}: {exc}") from None
    if dt.tzinfo is None:
        dt = dt.replace(tzinfo=timezone.utc)
    return dt.timestamp()


def format_timestamp(t: float) -> str:
    """POSIX seconds to the AWS CLI's ``...Z`` ISO form.

    Sub-second precision is preserved (microseconds, the resolution of
    :class:`~datetime.datetime`): ``timespec="seconds"`` used to
    truncate fractional-second grid starts, silently shifting every
    change event of a round-tripped trace up to one second earlier.
    Whole-second times keep the compact ``...T00:00:00Z`` form.
    """
    return (
        datetime.fromtimestamp(t, tz=timezone.utc)
        .replace(tzinfo=None)
        .isoformat(timespec="auto")
        + "Z"
    )


def read_price_events(stream: TextIO) -> dict[str, list[tuple[float, float]]]:
    """Parse CSV rows into per-zone sorted ``(timestamp, price)`` events.

    When several rows of one zone carry the same timestamp, the last
    row in *file order* wins — the AWS CLI emits corrections as later
    rows — and the earlier duplicates are dropped, so downstream
    forward-filling cannot resolve an equal-timestamp pair to an
    arbitrary price.
    """
    reader = csv.DictReader(stream)
    if reader.fieldnames is None:
        raise TraceError("empty CSV: no header row")
    missing = {"timestamp", "availability_zone", "spot_price"} - set(reader.fieldnames)
    if missing:
        raise TraceError(f"CSV missing required columns: {sorted(missing)}")
    events: dict[str, list[tuple[float, float]]] = {}
    for lineno, row in enumerate(reader, start=2):
        try:
            t = parse_timestamp(row["timestamp"])
            price = float(row["spot_price"])
        except (TraceError, ValueError) as exc:
            raise TraceError(f"line {lineno}: {exc}") from None
        if price <= 0:
            raise TraceError(f"line {lineno}: non-positive price {price}")
        events.setdefault(row["availability_zone"], []).append((t, price))
    if not events:
        raise TraceError("CSV contains no price rows")
    for zone, zone_events in events.items():
        # Stable sort keeps equal timestamps in file order; the
        # trailing dedup then keeps only the last row per timestamp,
        # making "last in file order wins" explicit rather than an
        # accident of searchsorted's tie-breaking.
        zone_events.sort(key=lambda e: e[0])
        deduped = [
            ev
            for i, ev in enumerate(zone_events)
            if i + 1 == len(zone_events) or zone_events[i + 1][0] != ev[0]
        ]
        events[zone] = deduped
    return events


def resample_events(
    events: list[tuple[float, float]],
    start_time: float,
    num_samples: int,
    interval_s: int = SAMPLE_INTERVAL_S,
) -> np.ndarray:
    """Forward-fill change events onto a uniform grid.

    The first event must not postdate ``start_time`` (there would be no
    defined price at the start of the grid otherwise).
    """
    if not events:
        raise TraceError("no events to resample")
    times = np.array([t for t, _ in events])
    prices = np.array([p for _, p in events])
    if times[0] > start_time:
        raise TraceError(
            f"first event at {times[0]} is after grid start {start_time}"
        )
    grid = start_time + interval_s * np.arange(num_samples, dtype=np.float64)
    idx = np.searchsorted(times, grid, side="right") - 1
    return prices[idx]


def read_trace(
    source: str | Path | TextIO,
    interval_s: int = SAMPLE_INTERVAL_S,
) -> SpotPriceTrace:
    """Load a CSV price history and resample it onto the common grid.

    The grid spans the latest first-event to the earliest last-event
    across zones, so every zone has a defined price at every sample.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", newline="") as fh:
            events = read_price_events(fh)
    else:
        events = read_price_events(source)

    start = max(ev[0][0] for ev in events.values())
    stop = min(ev[-1][0] for ev in events.values())
    # snap the start up to a whole interval, then fill until stop
    start = float(np.ceil(start / interval_s) * interval_s)
    num = int((stop - start) // interval_s) + 1
    if num < 1:
        raise TraceError("zones do not overlap in time")
    zones = tuple(
        ZoneTrace(
            zone=name,
            start_time=start,
            prices=resample_events(evs, start, num, interval_s),
            interval_s=interval_s,
        )
        for name, evs in sorted(events.items())
    )
    return SpotPriceTrace(zones=zones)


def _change_events(zone: ZoneTrace) -> Iterable[tuple[float, float]]:
    """Yield ``(time, price)`` at the trace start and at every change."""
    times = zone.times
    yield times[0], float(zone.prices[0])
    changed = np.flatnonzero(np.diff(zone.prices) != 0) + 1
    for i in changed:
        yield float(times[i]), float(zone.prices[i])


def write_trace(
    trace: SpotPriceTrace,
    destination: str | Path | TextIO,
    instance_type: str = DEFAULT_INSTANCE_TYPE,
    product_description: str = DEFAULT_PRODUCT,
) -> int:
    """Write a trace as change-event CSV rows; returns the row count."""

    def _write(fh: TextIO) -> int:
        writer = csv.DictWriter(fh, fieldnames=FIELDNAMES)
        writer.writeheader()
        rows = 0
        for zone in trace.zones:
            for t, price in _change_events(zone):
                writer.writerow(
                    {
                        "timestamp": format_timestamp(t),
                        "availability_zone": zone.zone,
                        "instance_type": instance_type,
                        "product_description": product_description,
                        "spot_price": f"{price:.3f}",
                    }
                )
                rows += 1
        return rows

    if isinstance(destination, (str, Path)):
        with open(destination, "w", newline="") as fh:
            return _write(fh)
    return _write(destination)


def trace_to_csv_string(trace: SpotPriceTrace) -> str:
    """Render a trace as a CSV string (convenience for small traces)."""
    buf = _io.StringIO()
    write_trace(trace, buf)
    return buf.getvalue()
