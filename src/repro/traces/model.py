"""Spot-price trace containers.

A :class:`ZoneTrace` is a single availability zone's spot price sampled
on a regular 5-minute grid; a :class:`SpotPriceTrace` bundles one
``ZoneTrace`` per availability zone over a common time axis.  These are
the only objects through which every policy, statistic, and experiment
in this package observes prices, which is what makes synthetic traces a
faithful substitute for the paper's archived AWS price history.

Times are POSIX timestamps (seconds).  Prices are US dollars per
instance-hour.  Traces are immutable after construction; slicing
returns views wherever NumPy allows.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.market.constants import SAMPLE_INTERVAL_S


class TraceError(ValueError):
    """Raised for malformed or inconsistent trace data."""


@dataclass(frozen=True)
class ZoneTrace:
    """Spot price history of one availability zone on a uniform grid.

    Parameters
    ----------
    zone:
        Availability-zone name, e.g. ``"us-east-1a"``.
    start_time:
        POSIX timestamp of the first sample, seconds.
    prices:
        1-D float array of $/hour spot prices, one per 5-minute sample.
    interval_s:
        Sample spacing in seconds (default: 300 s, the paper's grid).
    """

    zone: str
    start_time: float
    prices: np.ndarray
    interval_s: int = SAMPLE_INTERVAL_S
    #: Memoized derived arrays (rising edges, per-threshold crossing
    #: indices).  Prices are immutable, so these never invalidate; the
    #: cache is excluded from equality/repr and shared by every
    #: consumer of the trace object — the engine's segment-skipping
    #: fast path, the Edge/Threshold policies, and all sweep workers
    #: holding the same trace.
    _derived: dict = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        prices = np.asarray(self.prices, dtype=np.float64)
        if prices.ndim != 1:
            raise TraceError(f"prices must be 1-D, got shape {prices.shape}")
        if prices.size == 0:
            raise TraceError("a ZoneTrace needs at least one sample")
        if not np.all(np.isfinite(prices)):
            raise TraceError("prices contain NaN or infinity")
        if np.any(prices <= 0):
            raise TraceError("spot prices must be strictly positive")
        if self.interval_s <= 0:
            raise TraceError(f"interval_s must be positive, got {self.interval_s}")
        prices.setflags(write=False)
        object.__setattr__(self, "prices", prices)
        object.__setattr__(self, "_derived", {})

    # -- basic geometry ------------------------------------------------

    def __len__(self) -> int:
        return int(self.prices.size)

    @property
    def end_time(self) -> float:
        """Timestamp one interval past the last sample (exclusive end)."""
        return self.start_time + len(self) * self.interval_s

    @property
    def duration_s(self) -> float:
        """Covered wall-clock span in seconds."""
        return len(self) * float(self.interval_s)

    @property
    def times(self) -> np.ndarray:
        """Timestamps of each sample (computed, not stored)."""
        return self.start_time + self.interval_s * np.arange(len(self), dtype=np.float64)

    # -- lookups ---------------------------------------------------------

    def index_at(self, t: float) -> int:
        """Grid index whose sample covers time ``t``.

        The sample at index ``i`` is in force on ``[start + i*dt,
        start + (i+1)*dt)``, i.e. prices are piecewise constant between
        samples, matching the paper's 5-minute market snapshots.
        """
        if t < self.start_time or t >= self.end_time:
            raise TraceError(
                f"time {t} outside trace [{self.start_time}, {self.end_time})"
            )
        return int((t - self.start_time) // self.interval_s)

    def price_at(self, t: float) -> float:
        """Spot price in force at time ``t``."""
        return float(self.prices[self.index_at(t)])

    def slice(self, t0: float, t1: float) -> "ZoneTrace":
        """Sub-trace covering ``[t0, t1)``; endpoints snap outward to the grid."""
        if t1 <= t0:
            raise TraceError(f"empty slice requested: [{t0}, {t1})")
        i0 = self.index_at(t0)
        # snap the right edge outward so t1 is covered
        i1 = int(np.ceil((min(t1, self.end_time) - self.start_time) / self.interval_s))
        return ZoneTrace(
            zone=self.zone,
            start_time=self.start_time + i0 * self.interval_s,
            prices=self.prices[i0:i1],
            interval_s=self.interval_s,
        )

    def window(self, t0: float, duration_s: float) -> "ZoneTrace":
        """Sub-trace of ``duration_s`` seconds starting at ``t0``."""
        return self.slice(t0, t0 + duration_s)

    # -- derived statistics ----------------------------------------------

    def mean(self) -> float:
        """Mean spot price over the trace."""
        return float(self.prices.mean())

    def variance(self) -> float:
        """Population variance of the spot price over the trace."""
        return float(self.prices.var())

    def minimum(self) -> float:
        """Lowest observed spot price."""
        return float(self.prices.min())

    def maximum(self) -> float:
        """Highest observed spot price."""
        return float(self.prices.max())

    def availability(self, bid: float) -> float:
        """Fraction of samples during which a bid of ``bid`` keeps the zone up."""
        return float(np.mean(self.prices <= bid))

    def rising_edges(self) -> np.ndarray:
        """Indices ``i`` where ``prices[i] > prices[i-1]`` (upward movements).

        The Rising Edge policy (Section 4.3) checkpoints at exactly
        these samples.  Computed once per trace; every policy
        invocation shares the cached diff.
        """
        edges = self._derived.get("rising_edges")
        if edges is None:
            edges = np.flatnonzero(np.diff(self.prices) > 0) + 1
            edges.setflags(write=False)
            self._derived["rising_edges"] = edges
        return edges

    def is_rising_edge_at(self, i: int) -> bool:
        """Did the price move upward at sample ``i``?  (``i=0`` is False:
        there is no earlier sample, matching the oracle's clamp.)"""
        mask = self._derived.get("rising_mask")
        if mask is None:
            mask = np.zeros(len(self), dtype=bool)
            mask[self.rising_edges()] = True
            mask.setflags(write=False)
            self._derived["rising_mask"] = mask
        return bool(mask[i])

    def next_rising_edge(self, i: int) -> int:
        """Smallest rising-edge index strictly greater than ``i``
        (``len(self)`` when no further edge exists)."""
        edges = self.rising_edges()
        j = int(np.searchsorted(edges, i, side="right"))
        return int(edges[j]) if j < edges.size else len(self)

    def threshold_crossings(self, theta: float) -> np.ndarray:
        """Sample indices where ``prices <= theta`` flips truth value.

        The run-length encoding of the zone's availability at bid (or
        control threshold) ``theta``: index ``k`` in the returned array
        is the first sample of a new up- or down-segment.  Cached per
        ``theta`` — the engine's fast path, Adaptive rollouts and sweep
        workers all share one index per (trace, threshold).
        """
        key = ("crossings", float(theta))
        crossings = self._derived.get(key)
        if crossings is None:
            crossings = np.flatnonzero(np.diff(self.prices <= theta)) + 1
            crossings.setflags(write=False)
            self._derived[key] = crossings
        return crossings

    def seed_threshold_crossings(self, theta: float, crossings: np.ndarray) -> None:
        """Install a precomputed crossing index for ``theta``.

        Sweep workers mapping the shared-memory arena seed the parent's
        cached indices instead of re-diffing a month of samples per
        threshold; the array must equal what
        :meth:`threshold_crossings` computes on this trace.  An index
        already computed locally wins: seeding never overwrites.
        """
        crossings = np.asarray(crossings, dtype=np.int64)
        crossings.setflags(write=False)
        self._derived.setdefault(("crossings", float(theta)), crossings)

    def next_threshold_crossing(self, i: int, theta: float) -> int:
        """Smallest index > ``i`` where ``prices <= theta`` flips
        (``len(self)`` when the segment runs to the end of the trace)."""
        crossings = self.threshold_crossings(theta)
        j = int(np.searchsorted(crossings, i, side="right"))
        return int(crossings[j]) if j < crossings.size else len(self)

    def distinct_prices(self) -> np.ndarray:
        """Sorted unique price levels; the Markov model's state space."""
        return np.unique(self.prices)

    # -- identity ---------------------------------------------------------

    def fingerprint(self) -> str:
        """Stable content hash of the zone's identity and every sample.

        SHA-256 over (zone name, start time, sample interval, raw
        price bytes): any change to any field — a single price sample
        included — yields a different digest, while equal traces hash
        equal regardless of how their arrays are stored (generated
        locally or mapped from a sweep worker's shared-memory arena).
        The run cache uses this as the trace component of its content
        addresses.  Memoized: a month-long window is hashed once per
        trace object.
        """
        fp = self._derived.get("fingerprint")
        if fp is None:
            h = hashlib.sha256()
            h.update(self.zone.encode("utf-8"))
            h.update(np.float64(self.start_time).tobytes())
            h.update(np.int64(self.interval_s).tobytes())
            h.update(np.ascontiguousarray(self.prices).tobytes())
            fp = h.hexdigest()
            self._derived["fingerprint"] = fp
        return fp


@dataclass(frozen=True)
class SpotPriceTrace:
    """Aligned spot-price history across several availability zones.

    All member :class:`ZoneTrace` objects share ``start_time``,
    ``interval_s`` and length, so a single index addresses the same
    instant in every zone — the property the multi-zone engine relies on.
    """

    zones: tuple[ZoneTrace, ...]
    _by_name: Mapping[str, ZoneTrace] = field(init=False, repr=False, compare=False)
    _matrix: np.ndarray | None = field(init=False, repr=False, compare=False)
    _fingerprint: str | None = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.zones:
            raise TraceError("a SpotPriceTrace needs at least one zone")
        ref = self.zones[0]
        for z in self.zones[1:]:
            if z.start_time != ref.start_time:
                raise TraceError("zone traces are not aligned in start_time")
            if z.interval_s != ref.interval_s:
                raise TraceError("zone traces disagree on interval_s")
            if len(z) != len(ref):
                raise TraceError("zone traces have different lengths")
        names = [z.zone for z in self.zones]
        if len(set(names)) != len(names):
            raise TraceError(f"duplicate zone names: {names}")
        object.__setattr__(self, "zones", tuple(self.zones))
        object.__setattr__(self, "_by_name", {z.zone: z for z in self.zones})
        object.__setattr__(self, "_matrix", None)
        object.__setattr__(self, "_fingerprint", None)

    # -- construction helpers ---------------------------------------------

    @classmethod
    def from_arrays(
        cls,
        start_time: float,
        prices_by_zone: Mapping[str, Sequence[float] | np.ndarray],
        interval_s: int = SAMPLE_INTERVAL_S,
    ) -> "SpotPriceTrace":
        """Build a trace from a ``{zone: price_array}`` mapping."""
        zones = tuple(
            ZoneTrace(zone=name, start_time=start_time,
                      prices=np.asarray(p, dtype=np.float64), interval_s=interval_s)
            for name, p in prices_by_zone.items()
        )
        return cls(zones=zones)

    # -- geometry -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.zones[0])

    def __iter__(self) -> Iterator[ZoneTrace]:
        return iter(self.zones)

    @property
    def zone_names(self) -> tuple[str, ...]:
        return tuple(z.zone for z in self.zones)

    @property
    def num_zones(self) -> int:
        return len(self.zones)

    @property
    def start_time(self) -> float:
        return self.zones[0].start_time

    @property
    def end_time(self) -> float:
        return self.zones[0].end_time

    @property
    def interval_s(self) -> int:
        return self.zones[0].interval_s

    @property
    def duration_s(self) -> float:
        return self.zones[0].duration_s

    def zone(self, name: str) -> ZoneTrace:
        """Zone trace by availability-zone name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise TraceError(f"unknown zone {name!r}; have {self.zone_names}") from None

    def matrix(self) -> np.ndarray:
        """Prices as a ``(num_zones, num_samples)`` read-only array.

        Memoized: ``prices_at`` / availability reductions and the
        figures call this repeatedly, and re-``vstack``-ing a month of
        samples per call dominated their runtime.
        """
        if self._matrix is None:
            stacked = np.vstack([z.prices for z in self.zones])
            stacked.setflags(write=False)
            object.__setattr__(self, "_matrix", stacked)
        return self._matrix

    def fingerprint(self) -> str:
        """Stable content hash of the whole window — the per-zone
        :meth:`ZoneTrace.fingerprint` digests combined in zone order.
        Changing any sample in any zone changes the result."""
        if self._fingerprint is None:
            h = hashlib.sha256()
            for z in self.zones:
                h.update(z.fingerprint().encode("ascii"))
            object.__setattr__(self, "_fingerprint", h.hexdigest())
        return self._fingerprint

    # -- slicing ----------------------------------------------------------

    def slice(self, t0: float, t1: float) -> "SpotPriceTrace":
        """Aligned sub-trace covering ``[t0, t1)`` across all zones."""
        return SpotPriceTrace(zones=tuple(z.slice(t0, t1) for z in self.zones))

    def window(self, t0: float, duration_s: float) -> "SpotPriceTrace":
        """Aligned sub-trace of ``duration_s`` seconds starting at ``t0``."""
        return self.slice(t0, t0 + duration_s)

    def select_zones(self, names: Sequence[str]) -> "SpotPriceTrace":
        """Sub-trace restricted to the given zones, in the given order."""
        return SpotPriceTrace(zones=tuple(self.zone(n) for n in names))

    def prices_at(self, t: float) -> dict[str, float]:
        """Spot price in force at ``t`` in every zone."""
        return {z.zone: z.price_at(t) for z in self.zones}

    def combined_availability(self, bid: float) -> float:
        """Fraction of samples during which *at least one* zone is ≤ bid.

        This is the "combined availability" bar of Figure 2: redundancy
        pays off exactly when this exceeds each zone's own availability.
        """
        return float(np.mean((self.matrix() <= bid).any(axis=0)))


def overlapping_starts(
    trace_duration_s: float,
    experiment_duration_s: float,
    count: int,
) -> np.ndarray:
    """Evenly spaced experiment start offsets with partial overlap.

    Section 5 runs 80 experiments over "partially overlapping chunks" of
    each volatility window.  We tile ``count`` starts uniformly over the
    feasible range ``[0, trace_duration - experiment_duration]`` and
    snap them to the 5-minute grid.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    span = trace_duration_s - experiment_duration_s
    if span < 0:
        raise ValueError(
            f"experiment ({experiment_duration_s} s) longer than trace "
            f"({trace_duration_s} s)"
        )
    raw = np.linspace(0.0, span, count)
    return np.floor(raw / SAMPLE_INTERVAL_S) * SAMPLE_INTERVAL_S
