"""The canonical synthetic dataset standing in for the paper's archive.

The paper uses the CC2/Linux spot price history of three US-East zones
from December 2012 through January 2014 at 5-minute sampling.  This
module reconstructs a statistically equivalent archive month by month:

* **January 2013** — the high-volatility evaluation window (per-zone
  means $0.70–$1.12, variance up to ≈2, spikes to ≈$3).
* **March 2013** — the low-volatility evaluation window (mean ≈$0.30,
  bulk variance < 0.01) with the one $20.02 spike on March 13–14 that
  drives Large-bid's $183.75 worst case (Section 7.2.2).
* All other months — moderate behaviour (calm base with occasional
  mild excursions), used only as Markov bootstrap history and by the
  ablation sweeps.

Each month is generated from an independent child seed of the dataset
seed, so tests can materialize a single month without paying for the
whole archive, and the full archive equals the concatenation of its
months no matter the order of generation.
"""

from __future__ import annotations

import calendar
import functools
from datetime import datetime, timezone

import numpy as np

from repro.market.constants import MARKOV_HISTORY_S, SAMPLE_INTERVAL_S, ZONES
from repro.traces import calibration
from repro.traces.generator import (
    ZoneRegimeConfig,
    calm_zone_config,
    generate_zones,
    inject_spike,
    vary_zone_configs,
    volatile_zone_config,
)
from repro.traces.model import SpotPriceTrace, TraceError, ZoneTrace

#: Default dataset seed; chosen once, fixed forever (HPDC'14 started
#: June 23, 2014).
DEFAULT_SEED: int = 20140623

#: Months covered by the archive, inclusive.
MONTHS: tuple[tuple[int, int], ...] = tuple(
    (y, m)
    for y in (2012, 2013, 2014)
    for m in range(1, 13)
    if (y, m) >= (2012, 12) and (y, m) <= (2014, 1)
)

#: The two evaluation windows of Section 5.
LOW_VOLATILITY_MONTH: tuple[int, int] = (2013, 3)
HIGH_VOLATILITY_MONTH: tuple[int, int] = (2013, 1)

#: The March 2013 freak event: $20.02 for four hours starting 18:00
#: UTC on March 13th.
FREAK_SPIKE_ZONE: str = ZONES[2]
FREAK_SPIKE_START: float = datetime(2013, 3, 13, 18, 0, tzinfo=timezone.utc).timestamp()
#: Nine hours: a 23-hour Large-bid/Naive run caught inside it pays
#: roughly 9 x $20.02 + 14 x $0.30 = $184 -- the paper's $183.75
#: worst case (Section 7.2.2).
FREAK_SPIKE_DURATION_S: float = 9 * 3600.0
FREAK_SPIKE_PRICE: float = 20.02


def month_start(year: int, month: int) -> float:
    """POSIX timestamp of 00:00 UTC on the first of the month."""
    return datetime(year, month, 1, tzinfo=timezone.utc).timestamp()


def month_num_samples(year: int, month: int) -> int:
    """Number of 5-minute samples in a calendar month."""
    days = calendar.monthrange(year, month)[1]
    return days * 24 * 3600 // SAMPLE_INTERVAL_S


def regime_name(year: int, month: int) -> str:
    """Which regime a month belongs to: ``calm``/``volatile``/``moderate``."""
    if (year, month) == HIGH_VOLATILITY_MONTH:
        return "volatile"
    if (year, month) == LOW_VOLATILITY_MONTH:
        return "calm"
    return "moderate"


def _moderate_zone_config() -> ZoneRegimeConfig:
    """Non-evaluation months: calm base with occasional mild excursions."""
    cfg = volatile_zone_config(
        base_price=0.32, spike_level=0.90, spike_prob=0.012,
        spike_mean_duration=4.0,
    )
    return cfg


def _month_configs(
    year: int, month: int, rng: np.random.Generator
) -> dict[str, ZoneRegimeConfig]:
    regime = regime_name(year, month)
    if regime == "calm":
        base = calm_zone_config()
        return vary_zone_configs(base, ZONES, rng, base_price_spread=0.03)
    if regime == "volatile":
        # Explicit heterogeneity: January 2013's per-zone means span
        # $0.70–$1.12 (Section 5), so the three zones get increasingly
        # heavy spike regimes rather than random jitter.
        # Spike onsets are rare but sustained (hours-long excursions),
        # matching the archive's up-run lengths of ~4-6 hours at the
        # $0.81 bid rather than constant churn.
        return {
            ZONES[0]: volatile_zone_config(
                base_price=0.45, spike_level=2.2, spike_prob=0.026,
                spike_mean_duration=10.0,
            ),
            ZONES[1]: volatile_zone_config(
                base_price=0.50, spike_level=2.5, spike_prob=0.030,
                spike_mean_duration=11.0,
            ),
            ZONES[2]: volatile_zone_config(
                base_price=0.55, spike_level=2.8, spike_prob=0.036,
                spike_mean_duration=12.0,
            ),
        }
    return vary_zone_configs(_moderate_zone_config(), ZONES, rng,
                             base_price_spread=0.08)


#: Storm/quiet alternation of the volatile month, in hours (means of
#: the exponential segment lengths) and the quiet-period hazard damping.
STORM_MEAN_H: float = 30.0
QUIET_MEAN_H: float = 18.0
QUIET_HAZARD_FACTOR: float = 0.10


def _storm_envelope(
    num_samples: int, rng: np.random.Generator
) -> np.ndarray:
    """Day-scale hazard multiplier: storms interleaved with quiet days.

    Real volatile months were episodic; the 80 overlapping experiment
    chunks then sample a mixture of stormy and workable conditions,
    which is what gives the paper's Figures 4–6 their wide cost ranges.
    """
    samples_per_hour = 3600 // SAMPLE_INTERVAL_S
    env = np.empty(num_samples, dtype=np.float64)
    pos = 0
    stormy = bool(rng.random() < STORM_MEAN_H / (STORM_MEAN_H + QUIET_MEAN_H))
    while pos < num_samples:
        mean_h = STORM_MEAN_H if stormy else QUIET_MEAN_H
        length = max(int(rng.exponential(mean_h) * samples_per_hour), 1)
        env[pos : pos + length] = 1.0 if stormy else QUIET_HAZARD_FACTOR
        pos += length
        stormy = not stormy
    return env


@functools.lru_cache(maxsize=64)
def month_trace(year: int, month: int, seed: int = DEFAULT_SEED) -> SpotPriceTrace:
    """Generate (and cache) one calendar month of the canonical archive."""
    if (year, month) not in MONTHS:
        raise TraceError(f"({year}, {month}) outside the archive span {MONTHS[0]}..{MONTHS[-1]}")
    child = np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(year, month))
    )
    configs = _month_configs(year, month, child)
    num_samples = month_num_samples(year, month)
    envelopes = None
    if regime_name(year, month) == "volatile":
        envelopes = {z: _storm_envelope(num_samples, child) for z in ZONES}
    trace = generate_zones(
        configs,
        num_samples=num_samples,
        rng=child,
        start_time=month_start(year, month),
        hazard_envelopes=envelopes,
    )
    if (year, month) == LOW_VOLATILITY_MONTH:
        trace = inject_spike(
            trace,
            zone=FREAK_SPIKE_ZONE,
            t0=FREAK_SPIKE_START,
            duration_s=FREAK_SPIKE_DURATION_S,
            price=FREAK_SPIKE_PRICE,
        )
    return trace


def concat_traces(parts: list[SpotPriceTrace]) -> SpotPriceTrace:
    """Concatenate time-adjacent multi-zone traces into one.

    Parts must share the zone set and interval, and each part must
    start exactly where the previous one ends.
    """
    if not parts:
        raise TraceError("nothing to concatenate")
    ref = parts[0]
    for prev, nxt in zip(parts, parts[1:]):
        if nxt.zone_names != ref.zone_names:
            raise TraceError("zone sets differ across parts")
        if nxt.interval_s != ref.interval_s:
            raise TraceError("sample intervals differ across parts")
        if abs(nxt.start_time - prev.end_time) > 1e-6:
            raise TraceError(
                f"gap between parts: {prev.end_time} -> {nxt.start_time}"
            )
    zones = tuple(
        ZoneTrace(
            zone=name,
            start_time=ref.start_time,
            prices=np.concatenate([p.zone(name).prices for p in parts]),
            interval_s=ref.interval_s,
        )
        for name in ref.zone_names
    )
    return SpotPriceTrace(zones=zones)


@functools.lru_cache(maxsize=8)
def canonical_dataset(seed: int = DEFAULT_SEED) -> SpotPriceTrace:
    """The full 14-month archive (Dec 2012 – Jan 2014), all three zones."""
    return concat_traces([month_trace(y, m, seed) for (y, m) in MONTHS])


def _previous_month(year: int, month: int) -> tuple[int, int]:
    return (year - 1, 12) if month == 1 else (year, month - 1)


@functools.lru_cache(maxsize=16)
def evaluation_window(
    name: str,
    seed: int = DEFAULT_SEED,
    history_s: int = MARKOV_HISTORY_S,
) -> tuple[SpotPriceTrace, float]:
    """An evaluation window plus leading Markov-bootstrap history.

    Parameters
    ----------
    name:
        ``"low"`` (March 2013) or ``"high"`` (January 2013).
    history_s:
        Seconds of preceding archive prepended so policies can read
        price history before the window opens (Section 5: 2 days).

    Returns
    -------
    (trace, eval_start):
        ``trace`` spans ``[month_start - history_s, month_end)``;
        ``eval_start`` is the month-start timestamp — experiments must
        begin at or after it.
    """
    months = {"low": LOW_VOLATILITY_MONTH, "high": HIGH_VOLATILITY_MONTH}
    try:
        year, month = months[name]
    except KeyError:
        raise TraceError(f"unknown window {name!r}; expected 'low' or 'high'") from None
    this = month_trace(year, month, seed)
    prev = month_trace(*_previous_month(year, month), seed)
    joined = concat_traces([prev, this])
    eval_start = this.start_time
    return joined.slice(eval_start - history_s, this.end_time), eval_start


def verify_calibration(seed: int = DEFAULT_SEED) -> None:
    """Assert both evaluation windows meet the paper's published stats."""
    low = month_trace(*LOW_VOLATILITY_MONTH, seed)
    calibration.verify_window(list(low.zones), calibration.LOW_VOLATILITY_TARGET)
    high = month_trace(*HIGH_VOLATILITY_MONTH, seed)
    calibration.verify_window(list(high.zones), calibration.HIGH_VOLATILITY_TARGET)
