"""Synthetic EC2 spot-price generation.

The paper drives its simulations with 14 months of archived CC2 spot
prices.  That archive is no longer redistributable, so this module
generates statistically equivalent series: piecewise-constant prices on
the 5-minute grid, produced by a two-regime (calm / spike) Markov
process per zone with a weak cross-zone coupling.

Design notes
------------
* **Piecewise-constant levels.**  Real EC2 prices dwell on discrete
  cent-quantized levels for many samples at a time; the price only
  "moves" occasionally.  We model a per-sample move probability and
  draw new levels from a log-normal centred on the zone's base price.
  This yields a modest set of distinct levels — exactly the state
  space the paper's Markov model (Appendix B) operates on.
* **Spike regime.**  Volatile months are dominated by excursions far
  above base price (up to ~$3 in January 2013, one freak $20.02 event
  in March 2013).  A calm→spike transition starts a geometric-length
  excursion whose level is drawn from a separate log-normal.
* **Weak cross-zone coupling.**  Section 3.1's VAR analysis found
  cross-zone lagged effects 1–2 orders of magnitude below own-zone
  effects.  We reproduce that by letting each zone's move probability
  rise slightly while any *other* zone is spiking — enough for the VAR
  to detect, far too little to defeat redundancy.

All randomness flows through a caller-supplied :class:`numpy.random.
Generator`, so every dataset in this package is reproducible from a
single seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.market.constants import SAMPLE_INTERVAL_S
from repro.traces.model import SpotPriceTrace, ZoneTrace

#: Generated price levels are quantized to whole cents.  EC2 published
#: prices with three decimals, but CC2 spot prices clustered on a
#: modest set of recurring levels; cent quantization reproduces that
#: clustering, which matters because the distinct levels are the
#: Markov model's state space (Appendix B) — thousands of one-off
#: levels would degenerate the fitted chain into a path graph.
PRICE_QUANTUM: float = 0.01


@dataclass(frozen=True)
class ZoneRegimeConfig:
    """Price-process parameters for one zone in one regime window.

    Parameters
    ----------
    base_price:
        Centre of the calm-level distribution, $/hour.
    calm_sigma:
        Log-space standard deviation of calm levels (small: calm months
        wobble by a cent or two).
    move_prob:
        Per-sample probability that the price steps to a new calm level.
    spike_prob:
        Per-sample probability of entering the spike regime.
    spike_mean_duration:
        Mean spike length, in samples (geometric distribution).
    spike_level:
        Centre of the spike-level distribution, $/hour.
    spike_sigma:
        Log-space standard deviation of spike levels.
    max_price:
        Hard cap on generated prices (the market never cleared above
        ~$3 in volatile months outside the one $20.02 freak event,
        which is injected separately).
    floor_price:
        Hard floor; EC2 spot never fell below the reserve price.
    cross_excitation:
        Added to ``spike_prob`` per *other* zone currently spiking —
        the weak coupling Section 3.1 measures.
    calm_quantum / spike_quantum:
        Grids the calm and spike levels snap to.  Real CC2 spot prices
        cleared on a *small recurring set* of levels; that clustering
        is what gives the paper's Markov model (Appendix B) dense,
        well-estimated transition rows.  A generator emitting one-off
        levels instead would overfit the fitted chain into spurious
        closed classes.
    """

    base_price: float
    calm_sigma: float
    move_prob: float
    spike_prob: float
    spike_mean_duration: float
    spike_level: float
    spike_sigma: float
    max_price: float
    floor_price: float
    cross_excitation: float = 0.0
    calm_quantum: float = 0.01
    spike_quantum: float = 0.05

    def __post_init__(self) -> None:
        if self.base_price <= 0:
            raise ValueError(f"base_price must be positive, got {self.base_price}")
        if not (0 <= self.move_prob <= 1 and 0 <= self.spike_prob <= 1):
            raise ValueError("move_prob and spike_prob must be probabilities")
        if self.spike_mean_duration < 1:
            raise ValueError("spike_mean_duration must be >= 1 sample")
        if self.floor_price <= 0:
            raise ValueError("floor_price must be positive")
        if self.max_price < self.base_price or self.max_price < self.floor_price:
            raise ValueError("max_price must be >= base_price and >= floor_price")
        # base_price may sit *below* the floor: the sub-floor mass of
        # the level distribution clips to the floor, producing the
        # floor-dwelling behaviour of calm months.


def calm_zone_config(base_price: float = 0.215) -> ZoneRegimeConfig:
    """Parameters matching the paper's low-volatility window (March 2013).

    The log-normal calm-level distribution deliberately puts ~70% of
    its mass at or below the $0.27 reserve floor (where draws clip to
    the floor), because the archive's calm months dwell *at* the floor
    for long stretches — that dwell mass is what keeps the bulk mean
    near $0.30 while making bid = $0.27 viable for redundancy-based
    policies (Table 3, low volatility / 15% slack, t_c = 900 s).
    """
    return ZoneRegimeConfig(
        base_price=base_price,
        calm_sigma=0.35,
        move_prob=0.03,
        spike_prob=0.0008,
        spike_mean_duration=3.0,
        spike_level=0.55,
        spike_sigma=0.15,
        max_price=0.90,
        floor_price=0.27,
        calm_quantum=0.02,
    )


def volatile_zone_config(
    base_price: float = 0.45,
    spike_level: float = 2.2,
    spike_prob: float = 0.055,
    spike_mean_duration: float = 5.0,
) -> ZoneRegimeConfig:
    """Parameters matching the paper's high-volatility window (January 2013).

    With these defaults the long-run mean lands in the paper's
    $0.70–$1.12 band and the variance reaches ≈ 0.5–2.0 depending on
    the spike parameters, with excursions up to ~$3.
    """
    return ZoneRegimeConfig(
        base_price=base_price,
        calm_sigma=0.25,
        move_prob=0.15,
        spike_prob=spike_prob,
        spike_mean_duration=spike_mean_duration,
        spike_level=spike_level,
        spike_sigma=0.25,
        max_price=3.30,
        floor_price=0.27,
        cross_excitation=0.004,
        calm_quantum=0.05,
        spike_quantum=0.25,
    )


def _quantize(price: float, cfg: ZoneRegimeConfig, quantum: float | None = None) -> float:
    """Clip to [floor, max] and snap to the regime's level grid."""
    q = PRICE_QUANTUM if quantum is None else quantum
    p = round(round(price / q) * q, 3)
    return min(max(p, cfg.floor_price), cfg.max_price)


def generate_zones(
    configs: dict[str, ZoneRegimeConfig],
    num_samples: int,
    rng: np.random.Generator,
    start_time: float = 0.0,
    interval_s: int = SAMPLE_INTERVAL_S,
    hazard_envelopes: dict[str, np.ndarray] | None = None,
) -> SpotPriceTrace:
    """Generate an aligned multi-zone trace.

    Zones evolve jointly so the cross-excitation term can see the other
    zones' regime state, but all level draws are independent — this is
    what produces the "statistically significant but 1–2 orders of
    magnitude smaller" cross-zone effects of Section 3.1.

    ``hazard_envelopes`` optionally scales each zone's per-sample spike
    probability with a day-scale multiplier series (same length as the
    trace).  Real volatile months were *episodic* — storm days with
    frequent excursions interleaved with quiet days — and several of
    the paper's findings (wide boxplots over the 80 overlapping chunks,
    Adaptive reacting to current conditions) only emerge from that
    structure.
    """
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    names = list(configs)
    n_zones = len(names)
    cfgs = [configs[name] for name in names]
    if hazard_envelopes is not None:
        envelopes = []
        for name in names:
            env = np.asarray(hazard_envelopes[name], dtype=np.float64)
            if env.shape != (num_samples,):
                raise ValueError(
                    f"hazard envelope for {name!r} must have shape "
                    f"({num_samples},), got {env.shape}"
                )
            if np.any(env < 0):
                raise ValueError("hazard multipliers must be >= 0")
            envelopes.append(env)
        hazard = np.column_stack(envelopes)
    else:
        hazard = None

    prices = np.empty((n_zones, num_samples), dtype=np.float64)
    level = np.array([_quantize(c.base_price, c, c.calm_quantum) for c in cfgs])
    spiking = np.zeros(n_zones, dtype=bool)
    spike_left = np.zeros(n_zones, dtype=np.int64)

    # Pre-draw the per-sample uniforms in bulk; level draws are lazy
    # because they are comparatively rare.
    u_move = rng.random((num_samples, n_zones))
    u_spike = rng.random((num_samples, n_zones))

    for t in range(num_samples):
        n_spiking = int(spiking.sum())
        for j, cfg in enumerate(cfgs):
            if spiking[j]:
                spike_left[j] -= 1
                if spike_left[j] <= 0:
                    spiking[j] = False
                    level[j] = _quantize(
                        cfg.base_price * np.exp(cfg.calm_sigma * rng.standard_normal()),
                        cfg,
                        cfg.calm_quantum,
                    )
            else:
                others = n_spiking - int(spiking[j])
                base_hazard = cfg.spike_prob
                if hazard is not None:
                    base_hazard *= hazard[t, j]
                p_spike = min(1.0, base_hazard + cfg.cross_excitation * others)
                if u_spike[t, j] < p_spike:
                    spiking[j] = True
                    spike_left[j] = 1 + rng.geometric(
                        1.0 / cfg.spike_mean_duration
                    )
                    level[j] = _quantize(
                        cfg.spike_level
                        * np.exp(cfg.spike_sigma * rng.standard_normal()),
                        cfg,
                        cfg.spike_quantum,
                    )
                elif u_move[t, j] < cfg.move_prob:
                    level[j] = _quantize(
                        cfg.base_price * np.exp(cfg.calm_sigma * rng.standard_normal()),
                        cfg,
                        cfg.calm_quantum,
                    )
            prices[j, t] = level[j]

    zones = tuple(
        ZoneTrace(zone=name, start_time=start_time, prices=prices[j],
                  interval_s=interval_s)
        for j, name in enumerate(names)
    )
    return SpotPriceTrace(zones=zones)


def inject_spike(
    trace: SpotPriceTrace,
    zone: str,
    t0: float,
    duration_s: float,
    price: float,
) -> SpotPriceTrace:
    """Return a copy of ``trace`` with a flat spike written into one zone.

    Used by the canonical dataset to plant the $20.02 March 13–14, 2013
    event that produces Large-bid's worst case (Section 7.2.2).
    """
    new_zones = []
    for z in trace.zones:
        if z.zone != zone:
            new_zones.append(z)
            continue
        i0 = z.index_at(t0)
        i1 = min(len(z), i0 + int(round(duration_s / z.interval_s)))
        if i1 <= i0:
            raise ValueError("spike duration shorter than one sample")
        p = z.prices.copy()
        p[i0:i1] = price
        new_zones.append(
            ZoneTrace(zone=z.zone, start_time=z.start_time, prices=p,
                      interval_s=z.interval_s)
        )
    return SpotPriceTrace(zones=tuple(new_zones))


def vary_zone_configs(
    base: ZoneRegimeConfig,
    zone_names: tuple[str, ...],
    rng: np.random.Generator,
    base_price_spread: float = 0.0,
    spike_level_spread: float = 0.0,
) -> dict[str, ZoneRegimeConfig]:
    """Per-zone parameter jitter around a shared regime configuration.

    The paper's January 2013 window has per-zone means spread across
    $0.70–$1.12: zones share the regime but not the exact parameters.
    """
    out: dict[str, ZoneRegimeConfig] = {}
    for name in zone_names:
        bp = base.base_price * float(
            1.0 + base_price_spread * (2.0 * rng.random() - 1.0)
        )
        sl = base.spike_level * float(
            1.0 + spike_level_spread * (2.0 * rng.random() - 1.0)
        )
        # base_price may legitimately sit below the floor (the clipped
        # mass dwells at the floor), so only spike levels are clamped.
        out[name] = replace(base, base_price=max(bp, 0.01),
                            spike_level=min(sl, base.max_price))
    return out
