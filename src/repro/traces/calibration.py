"""Published trace statistics used to calibrate the synthetic generator.

The paper evaluates policies against two representative windows of its
14-month CC2 price archive (Section 5):

* **Low volatility** — March 2013: average spot price ≈ $0.30 and
  variance < 0.01 in each zone.  One anomaly rides inside this window:
  a $20.02 spike between March 13th and 14th, 2013 (Section 7.2.2),
  which produces Large-bid's worst case of $183.75.  The paper's
  variance figure clearly describes the bulk behaviour, so our
  calibration checks use a *robust* variance that excludes such
  out-of-band spikes (prices above ``SPIKE_CUTOFF_FACTOR`` × median).

* **High volatility** — January 2013: per-zone average spot prices
  between $0.70 and $1.12 and variance up to 2.02, with occasional
  spikes up to ≈ $3.00 (which is why the bid grid extends past $2.40).

These targets are what make the synthetic traces a valid stand-in for
the proprietary archive: every policy only ever sees the price series,
and the price series match the archive on every statistic the paper
reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.model import ZoneTrace

#: Prices above this multiple of the window median are treated as
#: out-of-band spikes for the purpose of bulk-statistics checks.
SPIKE_CUTOFF_FACTOR: float = 5.0


@dataclass(frozen=True)
class WindowTarget:
    """Bulk statistics a calibrated window must satisfy, per zone."""

    name: str
    mean_low: float
    mean_high: float
    variance_max: float
    #: Inclusive band the per-zone minimum must land in — the paper's
    #: reference "lowest spot price" line sits at $0.27.
    min_price_low: float
    min_price_high: float

    def check(self, zone: ZoneTrace) -> list[str]:
        """Return a list of violation messages (empty = calibrated)."""
        problems: list[str] = []
        bulk = robust_bulk(zone.prices)
        mean = float(bulk.mean())
        var = float(bulk.var())
        lo = float(zone.prices.min())
        if not (self.mean_low <= mean <= self.mean_high):
            problems.append(
                f"{zone.zone}: bulk mean {mean:.3f} outside "
                f"[{self.mean_low}, {self.mean_high}]"
            )
        if var > self.variance_max:
            problems.append(
                f"{zone.zone}: bulk variance {var:.4f} > {self.variance_max}"
            )
        if not (self.min_price_low <= lo <= self.min_price_high):
            problems.append(
                f"{zone.zone}: min price {lo:.3f} outside "
                f"[{self.min_price_low}, {self.min_price_high}]"
            )
        return problems


def robust_bulk(prices: np.ndarray) -> np.ndarray:
    """Samples that are not out-of-band spikes.

    Keeps prices at or below ``SPIKE_CUTOFF_FACTOR`` times the window
    median; with at least half the samples at the bulk level this never
    empties the array.
    """
    prices = np.asarray(prices, dtype=np.float64)
    cutoff = SPIKE_CUTOFF_FACTOR * float(np.median(prices))
    return prices[prices <= cutoff]


#: March 2013 — the paper's low-volatility evaluation window.
LOW_VOLATILITY_TARGET = WindowTarget(
    name="low",
    mean_low=0.27,
    mean_high=0.34,
    variance_max=0.01,
    min_price_low=0.25,
    min_price_high=0.29,
)

#: January 2013 — the paper's high-volatility evaluation window.
HIGH_VOLATILITY_TARGET = WindowTarget(
    name="high",
    mean_low=0.60,
    mean_high=1.25,
    variance_max=2.10,
    min_price_low=0.25,
    min_price_high=0.35,
)

#: Per-zone mean band the paper states for January 2013 ($0.70-$1.12);
#: the generator aims inside it, the checker allows the slightly wider
#: band above to absorb sampling noise.
HIGH_VOLATILITY_MEAN_BAND: tuple[float, float] = (0.70, 1.12)

#: Spike ceiling for the high-volatility window ("occasional spot price
#: spikes of up to $3.00", Section 5).
HIGH_VOLATILITY_SPIKE_MAX: float = 3.30


def verify_window(zones: list[ZoneTrace], target: WindowTarget) -> None:
    """Raise ``ValueError`` listing every calibration violation."""
    problems: list[str] = []
    for z in zones:
        problems.extend(target.check(z))
    if problems:
        raise ValueError(
            f"window {target.name!r} fails calibration:\n  " + "\n  ".join(problems)
        )
