"""The engine-facing audit façade.

One :class:`RunAuditor` serves many runs sequentially (a whole sweep
worker's worth): the engine calls :meth:`begin_run` / :meth:`finish_run`
around each experiment and the cheap per-occurrence hooks in between.
The auditor fans everything out to a sink (tracing), the
:class:`~repro.audit.invariants.InvariantChecker` (validation) and
:class:`~repro.audit.events.RunCounters` (metrics), and aggregates
violations and counters across runs so sweep harnesses can report one
:class:`AuditReport` at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import TYPE_CHECKING

from repro.audit.events import AuditEvent, RunCounters
from repro.audit.invariants import (
    EPS,
    InvariantChecker,
    InvariantError,
    InvariantViolation,
)
from repro.audit.sink import AuditSink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.app.checkpoint import CheckpointRecord, CheckpointStore
    from repro.app.workload import ExperimentConfig
    from repro.core.engine import RunResult
    from repro.market.instance import ZoneInstance, ZoneState


@dataclass
class AuditReport:
    """Aggregated audit outcome of one or more runs."""

    violations: list[InvariantViolation] = field(default_factory=list)
    counters: RunCounters = field(default_factory=RunCounters)

    @property
    def ok(self) -> bool:
        return not self.violations

    def merge(self, other: "AuditReport") -> None:
        self.violations.extend(other.violations)
        self.counters.add(other.counters)

    def summary_lines(self) -> list[str]:
        c = self.counters
        lines = [
            f"audit: {c.runs} runs, {len(self.violations)} invariant "
            f"violations, {c.events} events",
            f"audit: {c.ticks} ticks executed, {c.ticks_skipped} skipped "
            f"in {c.segments} segments, {c.commits} commits, "
            f"{c.restores} restores, {c.transitions} transitions",
        ]
        if c.crossing_cache_hits or c.crossing_cache_misses:
            lines.append(
                f"audit: crossing cache {c.crossing_cache_hits} hits / "
                f"{c.crossing_cache_misses} misses"
            )
        if c.decisions:
            lines.append(
                f"audit: {c.decisions} controller decisions, "
                f"{c.mean_decision_latency_s * 1e6:.0f}us mean latency"
            )
        for v in self.violations[:20]:
            lines.append(f"audit: VIOLATION {v}")
        if len(self.violations) > 20:
            lines.append(f"audit: ... and {len(self.violations) - 20} more")
        return lines


class RunAuditor:
    """Streams one simulator's runs into a sink + invariant checker.

    Parameters
    ----------
    sink:
        Where structured events go (``None`` = validate only).
    strict:
        Raise :class:`InvariantError` at the end of any run that
        violated an invariant (after recording and emitting it).
    """

    def __init__(self, sink: AuditSink | None = None, strict: bool = False) -> None:
        self.sink = sink
        self.strict = strict
        self.checker = InvariantChecker()
        #: Counters of the run in flight (reset by :meth:`begin_run`).
        self.counters = RunCounters()
        #: Aggregate over all finished, undrained runs.
        self.totals = RunCounters()
        #: Violations of all finished, undrained runs.
        self.violations: list[InvariantViolation] = []
        self._run = 0
        self._seq = 0
        self._mark = 0

    # -- run lifecycle -----------------------------------------------------

    def begin_run(
        self,
        *,
        policy_name: str,
        bid: float,
        zones: tuple[str, ...],
        start_time: float,
        deadline: float,
        engine_mode: str,
        config: "ExperimentConfig",
        store: "CheckpointStore",
        instances: dict[str, "ZoneInstance"],
    ) -> None:
        self._run += 1
        self._seq = 0
        self.counters = RunCounters(runs=1)
        self.checker.begin_run(
            config=config,
            deadline=deadline,
            store=store,
            instances=instances,
            start_time=start_time,
        )
        self._mark = len(self.checker.violations)
        store.observer = self._on_commit
        for inst in instances.values():
            inst.observer = self._on_transition
        self.event(
            start_time,
            "run-start",
            None,
            f"policy={policy_name} B={bid:.2f} N={len(zones)}",
            policy=policy_name,
            bid=bid,
            zones=",".join(zones),
            deadline=deadline,
            engine_mode=engine_mode,
        )

    def finish_run(self, result: "RunResult") -> "RunResult":
        """Run-end validation; returns ``result`` unchanged.

        In strict mode raises :class:`InvariantError` after recording
        and emitting every violation.
        """
        self.checker.finish(result)
        fresh = self.checker.violations[self._mark:]
        self._mark = len(self.checker.violations)
        for v in fresh:
            self.event(v.time, "violation", v.zone, v.message,
                       invariant=v.invariant)
        if (
            result.finish_time > result.deadline + EPS
            and self.checker.deadline_contracted
        ):
            self.event(
                result.finish_time, "infeasible-deadline", None,
                f"deadline contracted below feasibility; finished "
                f"{result.finish_time - result.deadline:.0f}s late",
            )
        self.counters.violations += len(fresh)
        self.event(
            result.finish_time, "run-end", None,
            f"completed_on={result.completed_on} cost={result.total_cost:.2f}",
            **self.counters.as_dict(),
        )
        if self.sink is not None:
            self.sink.flush()
        self.violations.extend(fresh)
        self.totals.add(self.counters)
        if self.strict and fresh:
            raise InvariantError(
                f"{len(fresh)} invariant violation(s) in audited run "
                f"{self._run}: " + "; ".join(str(v) for v in fresh)
            )
        return result

    def drain(self) -> AuditReport:
        """Hand off (and clear) accumulated violations and counters."""
        report = AuditReport(
            violations=list(self.violations), counters=replace(self.totals)
        )
        self.violations.clear()
        self.totals = RunCounters()
        return report

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()

    # -- engine hooks (hot; all O(1) except tick's small state scan) -------

    def event(
        self,
        time: float,
        kind: str,
        zone: str | None,
        detail: str = "",
        **data: object,
    ) -> None:
        """Record one structured event."""
        self.counters.events += 1
        if self.sink is not None:
            self.sink.emit(
                AuditEvent(
                    run=self._run,
                    seq=self._seq,
                    time=time,
                    kind=kind,
                    zone=zone,
                    detail=detail,
                    data=tuple(sorted(data.items())),
                )
            )
        self._seq += 1

    def tick(self, t: float) -> None:
        self.counters.ticks += 1
        self.checker.tick(t)

    def segment(self, t_end: float, k: int) -> None:
        """The fast path skipped ``k`` ticks, landing at ``t_end``."""
        self.counters.segments += 1
        self.counters.ticks_skipped += k

    def crossing_cache(self, hit: bool) -> None:
        if hit:
            self.counters.crossing_cache_hits += 1
        else:
            self.counters.crossing_cache_misses += 1

    def decision_begin(self) -> float:
        return perf_counter()

    def decision_end(self, started: float) -> None:
        self.counters.decisions += 1
        self.counters.decision_time_s += perf_counter() - started

    def deadline_changed(self, t: float, old: float, new: float) -> None:
        self.checker.deadline_changed(t, old, new)

    def restore(self, zone: str, t: float, from_progress_s: float) -> None:
        self.counters.restores += 1
        self.checker.restore(zone, t, from_progress_s)

    # -- observer callbacks -------------------------------------------------

    def _on_commit(self, record: "CheckpointRecord", previous_progress_s: float) -> None:
        self.counters.commits += 1
        self.checker.commit(record, previous_progress_s)

    def _on_transition(self, zone: str, old: "ZoneState", new: "ZoneState") -> None:
        self.counters.transitions += 1
        self.checker.transition(zone, old, new)
        self.event(self.checker.now, "transition", zone,
                   f"{old.value}->{new.value}")
