"""Differential replay: fast vs. tick engines, diffed field by field.

The segment-skipping engine promises results *bit-identical* to the
reference tick loop.  This module turns that promise into a reusable
check: :func:`differential_run` executes one configuration under both
engine modes — fresh oracle, policy, RNG and auditor per mode, so each
engine seeds every cache through its own query pattern — and diffs

* every scalar field of the two :class:`~repro.core.engine.RunResult`
  objects, and
* the two audited event streams, position by position and field by
  field (meta events excluded: ``run-end`` counters legitimately
  differ — that is the point of the fast path).

A non-empty report pinpoints the first divergent event, which is the
fastest way to localize a fast-path bug: the divergence names the
simulation time, zone and event kind where the engines disagree.

:func:`vector_differential_run` extends the same contract to the
struct-of-arrays batch engine (:mod:`repro.core.vector_engine`): a
whole start axis runs once through the vector engine and once through
per-run audited fast simulations, and every run is diffed field by
field — RunResults, engine event logs, and the vector log against the
scalar side's *audited* stream (meta and transition events filtered
out), so the batch path is held to the exact event sequence the audit
layer certifies.  :func:`vector_differential_grid` does the same for a
fused (bid x start) tile — bid-equivalence clone rows included, each
held to a fully independent audited run at its own bid — and
:func:`vector_differential_cube` for a (shape x bid x start) cube,
where every shape row is held to an independent audited run at its own
(compute, deadline, checkpoint-cost) shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Callable, Sequence

import numpy as np

from repro.audit.auditor import AuditReport, RunAuditor
from repro.audit.events import META_KINDS, AuditEvent
from repro.audit.sink import MemorySink

#: Cap on reported diffs; past the first few, more add noise not signal.
MAX_DIFFS = 50

#: Audited kinds with no counterpart in an engine event log: auditor
#: meta events plus the state-machine transition narration.
NON_LOG_KINDS: frozenset[str] = META_KINDS | {"transition"}


@dataclass(frozen=True)
class FieldDiff:
    """One disagreement between the two engines."""

    where: str  # "result" or "event[<index>]"
    field: str
    fast: object
    tick: object

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.where}.{self.field}: fast={self.fast!r} tick={self.tick!r}"


@dataclass
class DifferentialReport:
    """Outcome of one fast-vs-tick differential replay."""

    result_diffs: list[FieldDiff] = field(default_factory=list)
    event_diffs: list[FieldDiff] = field(default_factory=list)
    fast_audit: AuditReport = field(default_factory=AuditReport)
    tick_audit: AuditReport = field(default_factory=AuditReport)
    fast_result: object = None
    tick_result: object = None

    @property
    def identical(self) -> bool:
        return not self.result_diffs and not self.event_diffs

    @property
    def ok(self) -> bool:
        """Identical streams *and* zero invariant violations either side."""
        return self.identical and self.fast_audit.ok and self.tick_audit.ok

    def summary_lines(self) -> list[str]:
        lines = []
        if self.identical:
            lines.append("differential: engines agree on every field")
        else:
            lines.append(
                f"differential: {len(self.result_diffs)} result field diffs, "
                f"{len(self.event_diffs)} event diffs"
            )
            for d in (self.result_diffs + self.event_diffs)[:MAX_DIFFS]:
                lines.append(f"differential: {d}")
        for name, audit in (("fast", self.fast_audit), ("tick", self.tick_audit)):
            if not audit.ok:
                lines.append(
                    f"differential: {name} engine reported "
                    f"{len(audit.violations)} invariant violations"
                )
        return lines


def _comparable(events: Sequence[AuditEvent]) -> list[AuditEvent]:
    """Engine-originated events only (meta kinds carry mode-dependent data)."""
    return [e for e in events if e.kind not in META_KINDS]


def diff_event_streams(
    fast_events: Sequence[AuditEvent],
    tick_events: Sequence[AuditEvent],
) -> list[FieldDiff]:
    """Positional, field-by-field diff of two audited event streams.

    ``seq`` and ``run`` are excluded: they number the streams, they are
    not simulation content, and one early insertion would otherwise
    cascade into a diff at every later event.
    """
    a, b = _comparable(fast_events), _comparable(tick_events)
    diffs: list[FieldDiff] = []
    for i, (ea, eb) in enumerate(zip(a, b)):
        for name in ("time", "kind", "zone", "detail", "data"):
            va, vb = getattr(ea, name), getattr(eb, name)
            if va != vb:
                diffs.append(FieldDiff(f"event[{i}]", name, va, vb))
                if len(diffs) >= MAX_DIFFS:
                    return diffs
    if len(a) != len(b):
        diffs.append(FieldDiff("event-stream", "length", len(a), len(b)))
        longer, label = (a, "fast") if len(a) > len(b) else (b, "tick")
        extra = longer[min(len(a), len(b))]
        diffs.append(
            FieldDiff(f"event[{min(len(a), len(b))}]", "only-in-" + label,
                      extra.kind, extra.detail)
        )
    return diffs


def diff_results(fast_result, tick_result) -> list[FieldDiff]:
    """Field-by-field diff of two RunResults (event logs included)."""
    diffs: list[FieldDiff] = []
    for f in fields(fast_result):
        va, vb = getattr(fast_result, f.name), getattr(tick_result, f.name)
        if va != vb:
            diffs.append(FieldDiff("result", f.name, va, vb))
    return diffs


def differential_run(
    trace,
    config,
    policy_factory: Callable[[], object],
    bid: float,
    zones: tuple[str, ...],
    start_time: float,
    *,
    queue_model=None,
    seed: int = 0,
    controller_factory: Callable[[], object] | None = None,
    deadline_schedule=None,
    performance=None,
) -> DifferentialReport:
    """Replay one configuration under both engine modes and diff them.

    Every per-mode ingredient is constructed fresh — oracle (so each
    engine seeds the hour-bucket statistic caches through its own query
    pattern), policy (stateful per run), RNG (so queue-delay draws
    match), controller, and auditor — exactly mirroring how the two
    modes run in production.
    """
    from repro.core.engine import SpotSimulator
    from repro.market.queuing import QueueDelayModel
    from repro.market.spot_market import PriceOracle

    runs = {}
    sinks = {}
    audits = {}
    for mode in ("fast", "tick"):
        sink = MemorySink()
        auditor = RunAuditor(sink=sink, strict=False)
        sim = SpotSimulator(
            oracle=PriceOracle(trace),
            queue_model=queue_model or QueueDelayModel(),
            rng=np.random.default_rng(seed),
            record_events=True,
            engine_mode=mode,
            auditor=auditor,
        )
        controller = controller_factory() if controller_factory else None
        runs[mode] = sim.run(
            config,
            policy_factory(),
            bid,
            zones,
            start_time,
            controller=controller,
            deadline_schedule=deadline_schedule,
            performance=performance,
        )
        sinks[mode] = sink
        audits[mode] = auditor.drain()
    return DifferentialReport(
        result_diffs=diff_results(runs["fast"], runs["tick"]),
        event_diffs=diff_event_streams(
            sinks["fast"].events, sinks["tick"].events
        ),
        fast_audit=audits["fast"],
        tick_audit=audits["tick"],
        fast_result=runs["fast"],
        tick_result=runs["tick"],
    )


@dataclass
class VectorDifferentialReport:
    """Outcome of one vector-vs-fast batch replay.

    Diffs reuse :class:`FieldDiff` with the vector engine's value in
    ``fast`` and the scalar fast engine's in ``tick`` (the comparison
    baseline); ``where`` carries a ``start[i]`` prefix naming the run.
    """

    #: RunResult field diffs (events included — tuple equality).
    result_diffs: list[FieldDiff] = field(default_factory=list)
    #: Vector event log vs the scalar side's audited stream, positional.
    audit_stream_diffs: list[FieldDiff] = field(default_factory=list)
    #: The scalar side's invariant-check outcome.
    fast_audit: AuditReport = field(default_factory=AuditReport)
    vector_results: list = field(default_factory=list)
    fast_results: list = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return not self.result_diffs and not self.audit_stream_diffs

    @property
    def ok(self) -> bool:
        """Bit-identical batch *and* a violation-free scalar audit."""
        return self.identical and self.fast_audit.ok

    def summary_lines(self) -> list[str]:
        lines = []
        if self.identical:
            lines.append(
                f"vector-differential: {len(self.fast_results)} runs "
                "bit-identical (results and audited event streams)"
            )
        else:
            lines.append(
                f"vector-differential: {len(self.result_diffs)} result "
                f"field diffs, {len(self.audit_stream_diffs)} audited "
                "event diffs"
            )
            for d in (self.result_diffs + self.audit_stream_diffs)[:MAX_DIFFS]:
                lines.append(f"vector-differential: {d}")
        if not self.fast_audit.ok:
            lines.append(
                "vector-differential: scalar side reported "
                f"{len(self.fast_audit.violations)} invariant violations"
            )
        return lines


def diff_log_vs_audit_stream(
    log_events: Sequence[object],
    audited: Sequence[AuditEvent],
    where: str = "event",
) -> list[FieldDiff]:
    """Positional diff of an engine event log against an audited stream.

    The audited stream is first filtered to the kinds an engine log
    carries (:data:`NON_LOG_KINDS` removed); the remaining events must
    then match the log entry for entry on the four shared fields.
    """
    b = [e for e in audited if e.kind not in NON_LOG_KINDS]
    diffs: list[FieldDiff] = []
    for i, (ea, eb) in enumerate(zip(log_events, b)):
        for name in ("time", "kind", "zone", "detail"):
            va, vb = getattr(ea, name), getattr(eb, name)
            if va != vb:
                diffs.append(FieldDiff(f"{where}[{i}]", name, va, vb))
                if len(diffs) >= MAX_DIFFS:
                    return diffs
    if len(log_events) != len(b):
        diffs.append(
            FieldDiff(where, "length", len(log_events), len(b))
        )
    return diffs


def vector_differential_run(
    trace,
    config,
    policy_factory: Callable[[], object],
    bid: float,
    zones: tuple[str, ...],
    starts: Sequence[float],
    *,
    queue_model=None,
    seed: int = 0,
) -> VectorDifferentialReport:
    """Replay a start axis under the vector and fast engines and diff.

    The vector side runs the whole batch at once through
    :class:`~repro.core.vector_engine.VectorSimulator` (native lockstep
    or per-run fallback, whatever the policy admits); the scalar side
    runs every start through an *audited* fast simulator.  Both sides
    get fresh oracles and runner-style per-start RNG streams
    (``SeedSequence(entropy=seed, spawn_key=(start,))``), mirroring how
    ``ExperimentRunner`` seeds the grid.  Every run is then diffed:
    RunResult fields (the engine event logs ride along as a field) plus
    the vector log against the audited stream, which pins the batch
    engine to the event sequence the invariant checker certified.
    """
    from repro.core.engine import SpotSimulator
    from repro.core.vector_engine import VectorSimulator
    from repro.market.queuing import QueueDelayModel
    from repro.market.spot_market import PriceOracle

    qm = queue_model or QueueDelayModel()
    starts = [float(s) for s in starts]

    def start_rngs():
        return [
            np.random.default_rng(
                np.random.SeedSequence(entropy=seed, spawn_key=(int(s),))
            )
            for s in starts
        ]

    fast_oracle = PriceOracle(trace)
    sink = MemorySink()
    auditor = RunAuditor(sink=sink, strict=False)
    fast_results = []
    audited_streams: list[list[AuditEvent]] = []
    for s, rng in zip(starts, start_rngs()):
        before = len(sink.events)
        sim = SpotSimulator(
            oracle=fast_oracle, queue_model=qm, rng=rng,
            record_events=True, engine_mode="fast", auditor=auditor,
        )
        fast_results.append(sim.run(config, policy_factory(), bid, zones, s))
        audited_streams.append(list(sink.events[before:]))
    fast_audit = auditor.drain()

    vec = VectorSimulator(
        oracle=PriceOracle(trace), queue_model=qm, record_events=True
    )
    vector_results = vec.run_batch(
        config, policy_factory, bid, zones, starts, start_rngs()
    )

    report = VectorDifferentialReport(
        fast_audit=fast_audit,
        vector_results=vector_results,
        fast_results=fast_results,
    )
    for i, (v, f) in enumerate(zip(vector_results, fast_results)):
        for d in diff_results(v, f):
            report.result_diffs.append(
                FieldDiff(f"start[{i}].{d.where}", d.field, d.fast, d.tick)
            )
        report.audit_stream_diffs.extend(
            diff_log_vs_audit_stream(
                v.events, audited_streams[i], where=f"start[{i}].event"
            )
        )
    return report


def vector_differential_adaptive(
    trace,
    config,
    controller_factory: Callable[[], object],
    starts: Sequence[float],
    *,
    queue_model=None,
    seed: int = 0,
) -> VectorDifferentialReport:
    """Replay an Adaptive-controller start axis under both engines.

    The scalar side runs every start through an audited fast simulator
    with a fresh controller, bootstrapped exactly like the experiment
    runner's Adaptive cells (``PeriodicPolicy`` at ``bids[0]`` on the
    trace's first zone); the vector side serves the whole axis through
    :meth:`~repro.core.vector_engine.VectorSimulator.run_adaptive_batch`.
    Beyond the usual field-by-field diffs, bit-identical event streams
    here certify *winner-identical controller decisions*: every
    ``config-switch`` event carries the chosen policy, bid and zone
    count, so a single divergent decision anywhere shows up as an
    event diff.
    """
    from repro.core.engine import SpotSimulator
    from repro.core.periodic import PeriodicPolicy
    from repro.core.vector_engine import VectorSimulator
    from repro.market.queuing import QueueDelayModel
    from repro.market.spot_market import PriceOracle

    qm = queue_model or QueueDelayModel()
    starts = [float(s) for s in starts]
    zones = tuple(trace.zone_names[:1])

    def start_rngs():
        return [
            np.random.default_rng(
                np.random.SeedSequence(entropy=seed, spawn_key=(int(s),))
            )
            for s in starts
        ]

    fast_oracle = PriceOracle(trace)
    sink = MemorySink()
    auditor = RunAuditor(sink=sink, strict=False)
    fast_results = []
    audited_streams: list[list[AuditEvent]] = []
    for s, rng in zip(starts, start_rngs()):
        before = len(sink.events)
        sim = SpotSimulator(
            oracle=fast_oracle, queue_model=qm, rng=rng,
            record_events=True, engine_mode="fast", auditor=auditor,
        )
        controller = controller_factory()
        fast_results.append(sim.run(
            config, PeriodicPolicy(), controller.bids[0], zones, s,
            controller=controller,
        ))
        audited_streams.append(list(sink.events[before:]))
    fast_audit = auditor.drain()

    vec = VectorSimulator(
        oracle=PriceOracle(trace), queue_model=qm, record_events=True
    )
    vector_results = vec.run_adaptive_batch(
        config, controller_factory, starts, start_rngs()
    )

    report = VectorDifferentialReport(
        fast_audit=fast_audit,
        vector_results=vector_results,
        fast_results=fast_results,
    )
    for i, (v, f) in enumerate(zip(vector_results, fast_results)):
        for d in diff_results(v, f):
            report.result_diffs.append(
                FieldDiff(f"start[{i}].{d.where}", d.field, d.fast, d.tick)
            )
        report.audit_stream_diffs.extend(
            diff_log_vs_audit_stream(
                v.events, audited_streams[i], where=f"start[{i}].event"
            )
        )
    return report


def vector_differential_grid(
    trace,
    config,
    policy_factory: Callable[[], object],
    bids: Sequence[float],
    zones: tuple[str, ...],
    starts: Sequence[float],
    *,
    queue_model=None,
    seed: int = 0,
) -> VectorDifferentialReport:
    """Replay a fused (bid x start) tile and diff it row by row.

    Rows are laid out start-major over the bid grid — the layout
    ``ExperimentRunner.run_grid_cell`` feeds the engine — including the
    availability-equivalence clone plan for bid-invariant policies.
    The scalar side simulates *every* row independently through an
    audited fast engine, so cloned rows are held to the strongest
    standard: bit-identical to a full independent run at their own
    (bid, start), not merely to the representative they were copied
    from.
    """
    from repro.core.bid_batch import bid_equivalence_classes
    from repro.core.engine import SpotSimulator
    from repro.core.vector_engine import VectorSimulator
    from repro.market.queuing import QueueDelayModel
    from repro.market.spot_market import PriceOracle

    qm = queue_model or QueueDelayModel()
    bids = [float(b) for b in bids]
    starts = [float(s) for s in starts]
    zones = tuple(zones)
    nb = len(bids)
    row_bids = [bid for _ in starts for bid in bids]
    row_starts = [s for s in starts for _ in bids]

    def row_rngs():
        return [
            np.random.default_rng(
                np.random.SeedSequence(entropy=seed, spawn_key=(int(s),))
            )
            for s in row_starts
        ]

    clone_of = None
    if nb > 1 and getattr(type(policy_factory()), "bid_invariant", False):
        clone_of = [None] * len(row_bids)
        bcol = {bid: j for j, bid in enumerate(bids)}
        for si, s in enumerate(starts):
            classes = bid_equivalence_classes(
                trace, zones, bids, s, config.deadline_s
            )
            for cls in classes:
                rep_row = si * nb + bcol[cls.representative]
                for bid in cls.members:
                    if bid != cls.representative:
                        clone_of[si * nb + bcol[bid]] = rep_row

    fast_oracle = PriceOracle(trace)
    sink = MemorySink()
    auditor = RunAuditor(sink=sink, strict=False)
    fast_results = []
    audited_streams: list[list[AuditEvent]] = []
    for bid, s, rng in zip(row_bids, row_starts, row_rngs()):
        before = len(sink.events)
        sim = SpotSimulator(
            oracle=fast_oracle, queue_model=qm, rng=rng,
            record_events=True, engine_mode="fast", auditor=auditor,
        )
        fast_results.append(sim.run(config, policy_factory(), bid, zones, s))
        audited_streams.append(list(sink.events[before:]))
    fast_audit = auditor.drain()

    vec = VectorSimulator(
        oracle=PriceOracle(trace), queue_model=qm, record_events=True
    )
    vector_results = vec.run_grid(
        config, policy_factory, zones, row_bids, row_starts, row_rngs(),
        clone_of=clone_of,
    )

    report = VectorDifferentialReport(
        fast_audit=fast_audit,
        vector_results=vector_results,
        fast_results=fast_results,
    )
    for i, (v, f) in enumerate(zip(vector_results, fast_results)):
        where = f"row[{i}](bid={row_bids[i]:.2f})"
        for d in diff_results(v, f):
            report.result_diffs.append(
                FieldDiff(f"{where}.{d.where}", d.field, d.fast, d.tick)
            )
        report.audit_stream_diffs.extend(
            diff_log_vs_audit_stream(
                v.events, audited_streams[i], where=f"{where}.event"
            )
        )
    return report


def vector_differential_cube(
    trace,
    configs: Sequence,
    policy_factory: Callable[[], object],
    bids: Sequence[float],
    zones: tuple[str, ...],
    starts_per_shape: Sequence[Sequence[float]],
    *,
    queue_model=None,
    seed: int = 0,
) -> VectorDifferentialReport:
    """Replay a fused (shape x bid x start) cube and diff it row by row.

    Rows are laid out shape-major over per-shape (bid x start) tiles —
    the layout ``ExperimentRunner.run_cube_cell`` feeds the engine —
    with the availability-equivalence clone plan resolved per
    (shape, start) so clones never cross shapes.  The scalar side
    simulates *every* row independently through an audited fast engine
    at that row's own :class:`~repro.app.workload.ExperimentConfig`:
    sharing the zone-dynamics column work across the shape ladder must
    leave each shape's RunResults, event logs and queue-delay draw
    sequences exactly what standalone runs at that shape produce.
    """
    from repro.core.bid_batch import bid_equivalence_classes
    from repro.core.engine import SpotSimulator
    from repro.core.vector_engine import VectorSimulator
    from repro.market.queuing import QueueDelayModel
    from repro.market.spot_market import PriceOracle

    qm = queue_model or QueueDelayModel()
    configs = list(configs)
    bids = [float(b) for b in bids]
    zones = tuple(zones)
    nb = len(bids)
    shape_idx: list[int] = []
    row_bids: list[float] = []
    row_starts: list[float] = []
    row0: list[int] = []
    for k, shape_starts in enumerate(starts_per_shape):
        row0.append(len(row_bids))
        for s in shape_starts:
            for bid in bids:
                shape_idx.append(k)
                row_bids.append(bid)
                row_starts.append(float(s))

    def row_rngs():
        return [
            np.random.default_rng(
                np.random.SeedSequence(entropy=seed, spawn_key=(int(s),))
            )
            for s in row_starts
        ]

    clone_of = None
    if nb > 1 and getattr(type(policy_factory()), "bid_invariant", False):
        clone_of = [None] * len(row_bids)
        bcol = {bid: j for j, bid in enumerate(bids)}
        for k, shape_starts in enumerate(starts_per_shape):
            for si, s in enumerate(shape_starts):
                classes = bid_equivalence_classes(
                    trace, zones, bids, float(s), configs[k].deadline_s
                )
                for cls in classes:
                    rep_row = row0[k] + si * nb + bcol[cls.representative]
                    for bid in cls.members:
                        if bid != cls.representative:
                            clone_of[row0[k] + si * nb + bcol[bid]] = rep_row

    fast_oracle = PriceOracle(trace)
    sink = MemorySink()
    auditor = RunAuditor(sink=sink, strict=False)
    fast_results = []
    audited_streams: list[list[AuditEvent]] = []
    for k, bid, s, rng in zip(shape_idx, row_bids, row_starts, row_rngs()):
        before = len(sink.events)
        sim = SpotSimulator(
            oracle=fast_oracle, queue_model=qm, rng=rng,
            record_events=True, engine_mode="fast", auditor=auditor,
        )
        fast_results.append(
            sim.run(configs[k], policy_factory(), bid, zones, s)
        )
        audited_streams.append(list(sink.events[before:]))
    fast_audit = auditor.drain()

    vec = VectorSimulator(
        oracle=PriceOracle(trace), queue_model=qm, record_events=True
    )
    vector_results = vec.run_cube(
        configs, policy_factory, zones, shape_idx, row_bids, row_starts,
        row_rngs(), clone_of=clone_of,
    )

    report = VectorDifferentialReport(
        fast_audit=fast_audit,
        vector_results=vector_results,
        fast_results=fast_results,
    )
    for i, (v, f) in enumerate(zip(vector_results, fast_results)):
        where = f"row[{i}](shape={shape_idx[i]},bid={row_bids[i]:.2f})"
        for d in diff_results(v, f):
            report.result_diffs.append(
                FieldDiff(f"{where}.{d.where}", d.field, d.fast, d.tick)
            )
        report.audit_stream_diffs.extend(
            diff_log_vs_audit_stream(
                v.events, audited_streams[i], where=f"{where}.event"
            )
        )
    return report
