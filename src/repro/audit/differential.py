"""Differential replay: fast vs. tick engines, diffed field by field.

The segment-skipping engine promises results *bit-identical* to the
reference tick loop.  This module turns that promise into a reusable
check: :func:`differential_run` executes one configuration under both
engine modes — fresh oracle, policy, RNG and auditor per mode, so each
engine seeds every cache through its own query pattern — and diffs

* every scalar field of the two :class:`~repro.core.engine.RunResult`
  objects, and
* the two audited event streams, position by position and field by
  field (meta events excluded: ``run-end`` counters legitimately
  differ — that is the point of the fast path).

A non-empty report pinpoints the first divergent event, which is the
fastest way to localize a fast-path bug: the divergence names the
simulation time, zone and event kind where the engines disagree.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Callable, Sequence

import numpy as np

from repro.audit.auditor import AuditReport, RunAuditor
from repro.audit.events import META_KINDS, AuditEvent
from repro.audit.sink import MemorySink

#: Cap on reported diffs; past the first few, more add noise not signal.
MAX_DIFFS = 50


@dataclass(frozen=True)
class FieldDiff:
    """One disagreement between the two engines."""

    where: str  # "result" or "event[<index>]"
    field: str
    fast: object
    tick: object

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.where}.{self.field}: fast={self.fast!r} tick={self.tick!r}"


@dataclass
class DifferentialReport:
    """Outcome of one fast-vs-tick differential replay."""

    result_diffs: list[FieldDiff] = field(default_factory=list)
    event_diffs: list[FieldDiff] = field(default_factory=list)
    fast_audit: AuditReport = field(default_factory=AuditReport)
    tick_audit: AuditReport = field(default_factory=AuditReport)
    fast_result: object = None
    tick_result: object = None

    @property
    def identical(self) -> bool:
        return not self.result_diffs and not self.event_diffs

    @property
    def ok(self) -> bool:
        """Identical streams *and* zero invariant violations either side."""
        return self.identical and self.fast_audit.ok and self.tick_audit.ok

    def summary_lines(self) -> list[str]:
        lines = []
        if self.identical:
            lines.append("differential: engines agree on every field")
        else:
            lines.append(
                f"differential: {len(self.result_diffs)} result field diffs, "
                f"{len(self.event_diffs)} event diffs"
            )
            for d in (self.result_diffs + self.event_diffs)[:MAX_DIFFS]:
                lines.append(f"differential: {d}")
        for name, audit in (("fast", self.fast_audit), ("tick", self.tick_audit)):
            if not audit.ok:
                lines.append(
                    f"differential: {name} engine reported "
                    f"{len(audit.violations)} invariant violations"
                )
        return lines


def _comparable(events: Sequence[AuditEvent]) -> list[AuditEvent]:
    """Engine-originated events only (meta kinds carry mode-dependent data)."""
    return [e for e in events if e.kind not in META_KINDS]


def diff_event_streams(
    fast_events: Sequence[AuditEvent],
    tick_events: Sequence[AuditEvent],
) -> list[FieldDiff]:
    """Positional, field-by-field diff of two audited event streams.

    ``seq`` and ``run`` are excluded: they number the streams, they are
    not simulation content, and one early insertion would otherwise
    cascade into a diff at every later event.
    """
    a, b = _comparable(fast_events), _comparable(tick_events)
    diffs: list[FieldDiff] = []
    for i, (ea, eb) in enumerate(zip(a, b)):
        for name in ("time", "kind", "zone", "detail", "data"):
            va, vb = getattr(ea, name), getattr(eb, name)
            if va != vb:
                diffs.append(FieldDiff(f"event[{i}]", name, va, vb))
                if len(diffs) >= MAX_DIFFS:
                    return diffs
    if len(a) != len(b):
        diffs.append(FieldDiff("event-stream", "length", len(a), len(b)))
        longer, label = (a, "fast") if len(a) > len(b) else (b, "tick")
        extra = longer[min(len(a), len(b))]
        diffs.append(
            FieldDiff(f"event[{min(len(a), len(b))}]", "only-in-" + label,
                      extra.kind, extra.detail)
        )
    return diffs


def diff_results(fast_result, tick_result) -> list[FieldDiff]:
    """Field-by-field diff of two RunResults (event logs included)."""
    diffs: list[FieldDiff] = []
    for f in fields(fast_result):
        va, vb = getattr(fast_result, f.name), getattr(tick_result, f.name)
        if va != vb:
            diffs.append(FieldDiff("result", f.name, va, vb))
    return diffs


def differential_run(
    trace,
    config,
    policy_factory: Callable[[], object],
    bid: float,
    zones: tuple[str, ...],
    start_time: float,
    *,
    queue_model=None,
    seed: int = 0,
    controller_factory: Callable[[], object] | None = None,
    deadline_schedule=None,
    performance=None,
) -> DifferentialReport:
    """Replay one configuration under both engine modes and diff them.

    Every per-mode ingredient is constructed fresh — oracle (so each
    engine seeds the hour-bucket statistic caches through its own query
    pattern), policy (stateful per run), RNG (so queue-delay draws
    match), controller, and auditor — exactly mirroring how the two
    modes run in production.
    """
    from repro.core.engine import SpotSimulator
    from repro.market.queuing import QueueDelayModel
    from repro.market.spot_market import PriceOracle

    runs = {}
    sinks = {}
    audits = {}
    for mode in ("fast", "tick"):
        sink = MemorySink()
        auditor = RunAuditor(sink=sink, strict=False)
        sim = SpotSimulator(
            oracle=PriceOracle(trace),
            queue_model=queue_model or QueueDelayModel(),
            rng=np.random.default_rng(seed),
            record_events=True,
            engine_mode=mode,
            auditor=auditor,
        )
        controller = controller_factory() if controller_factory else None
        runs[mode] = sim.run(
            config,
            policy_factory(),
            bid,
            zones,
            start_time,
            controller=controller,
            deadline_schedule=deadline_schedule,
            performance=performance,
        )
        sinks[mode] = sink
        audits[mode] = auditor.drain()
    return DifferentialReport(
        result_diffs=diff_results(runs["fast"], runs["tick"]),
        event_diffs=diff_event_streams(
            sinks["fast"].events, sinks["tick"].events
        ),
        fast_audit=audits["fast"],
        tick_audit=audits["tick"],
        fast_result=runs["fast"],
        tick_result=runs["tick"],
    )
