"""Structured audit events and per-run counters.

An :class:`AuditEvent` is one simulation occurrence with enough
structure to be machine-diffed: run number, per-run sequence number,
simulation time, event kind, zone, and a free-form detail string (the
same narration the engine's legacy :class:`~repro.core.engine.Event`
carried, kept for human readers).

Event kinds fall in two groups:

* **engine events** — emitted by the simulation itself (``waiting``,
  ``restarted``, ``hour-rolled``, ``checkpoint-started``,
  ``checkpoint-committed``, ``provider-terminated``, ``user-released``,
  ``ondemand-switch``, ``completed``, ``transition``, …).  These must
  be identical between the ``fast`` and ``tick`` engines and are what
  the differential harness compares.
* **meta events** (:data:`META_KINDS`) — emitted by the auditor about
  the audit itself (``run-start``, ``run-end``, ``violation``,
  ``infeasible-deadline``).  Excluded from differential comparison:
  ``run-end`` carries mode-dependent counters (ticks vs. skipped
  segments differ between engines by design).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields

#: Auditor-originated kinds, excluded from fast-vs-tick diffs.
META_KINDS: frozenset[str] = frozenset(
    {"run-start", "run-end", "violation", "infeasible-deadline"}
)


@dataclass(frozen=True)
class AuditEvent:
    """One structured simulation event."""

    run: int
    seq: int
    time: float
    kind: str
    zone: str | None = None
    detail: str = ""
    #: Structured payload as sorted ``(key, value)`` pairs; values are
    #: JSON-representable scalars.
    data: tuple[tuple[str, object], ...] = ()

    def to_dict(self) -> dict:
        d = {
            "run": self.run,
            "seq": self.seq,
            "time": self.time,
            "kind": self.kind,
            "zone": self.zone,
            "detail": self.detail,
        }
        d.update(self.data)
        return d

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=False)


@dataclass
class RunCounters:
    """Per-run (or aggregated) audit counters.

    ``ticks`` counts full reference-loop iterations actually executed;
    ``segments`` and ``ticks_skipped`` count the fast path's bulk
    jumps; their sum ``ticks + ticks_skipped`` equals the tick engine's
    ``ticks`` for the same run (that identity is itself useful when
    debugging a divergence).
    """

    ticks: int = 0
    segments: int = 0
    ticks_skipped: int = 0
    crossing_cache_hits: int = 0
    crossing_cache_misses: int = 0
    decisions: int = 0
    decision_time_s: float = 0.0
    events: int = 0
    transitions: int = 0
    commits: int = 0
    restores: int = 0
    violations: int = 0
    runs: int = 0

    def add(self, other: "RunCounters") -> None:
        """Accumulate ``other`` into this instance (for aggregation)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def as_dict(self) -> dict:
        return asdict(self)

    @property
    def mean_decision_latency_s(self) -> float:
        """Mean wall-clock latency of controller decisions (0 if none)."""
        if self.decisions == 0:
            return 0.0
        return self.decision_time_s / self.decisions
