"""Invariant checking over audited runs.

Every property the simulator's correctness argument relies on, checked
at runtime from independently tracked state:

**Per tick or segment**

* *time monotonicity* — the clock never goes backwards;
* *progress monotonicity* — committed progress never regresses, and
  ``committed <= leading <= C`` (a checkpoint can never claim more
  progress than any zone has computed, and no zone computes past C);
* *zone-state-machine legality* — only the DOWN/WAITING/QUEUING/
  RESTARTING/COMPUTING/CHECKPOINTING edges of Algorithm 1's lifecycle
  occur (observed via :class:`~repro.market.instance.ZoneInstance`
  transition observers, not trusted from the engine's narration).

**Per store operation**

* *checkpoint-store consistency* — commits are monotone in both time
  and progress, bounded by C; every restore loads exactly the progress
  the checker has itself seen committed (restores only from committed
  checkpoints).

**At run end**

* *billing conservation* — every opened billing hour is accounted for
  exactly once (charged at a boundary, charged at user close, free
  sub-second close, or forfeited by provider termination); the
  reported spot cost equals the sum of committed charges; no meter is
  left open; boundary-committed hours used exactly 3600 s; on-demand
  cost is consistent with the §2.1 whole-hour rule;
* *deadline guarantee* — ``finish_time <= deadline`` whenever the
  guard could fire; a run that legitimately misses (the user
  contracted the deadline below feasibility mid-run) must be flagged
  by an explicit infeasibility event rather than counted as a
  violation.

The checker only *records* violations; raising is the auditor's
decision (``strict=True``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.market.constants import ON_DEMAND_PRICE
from repro.market.instance import ZoneState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.app.checkpoint import CheckpointRecord, CheckpointStore
    from repro.app.workload import ExperimentConfig
    from repro.core.engine import RunResult
    from repro.market.instance import ZoneInstance

#: Numeric tolerance for money, progress and time comparisons.
EPS = 1e-6

#: The legal zone-lifecycle edges.  Any running state may fall to DOWN
#: (provider termination or user release); everything else follows the
#: queue -> restore -> compute -> checkpoint pipeline of Algorithm 1.
LEGAL_TRANSITIONS: dict[ZoneState, frozenset[ZoneState]] = {
    ZoneState.DOWN: frozenset({ZoneState.WAITING}),
    ZoneState.WAITING: frozenset({ZoneState.DOWN, ZoneState.QUEUING}),
    ZoneState.QUEUING: frozenset(
        {ZoneState.RESTARTING, ZoneState.COMPUTING, ZoneState.DOWN}
    ),
    ZoneState.RESTARTING: frozenset({ZoneState.COMPUTING, ZoneState.DOWN}),
    ZoneState.COMPUTING: frozenset({ZoneState.CHECKPOINTING, ZoneState.DOWN}),
    ZoneState.CHECKPOINTING: frozenset({ZoneState.COMPUTING, ZoneState.DOWN}),
}


class InvariantError(RuntimeError):
    """Raised (in strict mode) when an audited run violates an invariant."""


@dataclass(frozen=True)
class InvariantViolation:
    """One detected invariant breach."""

    invariant: str
    time: float
    zone: str | None
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f" zone={self.zone}" if self.zone else ""
        return f"[{self.invariant}] t={self.time:.0f}{where}: {self.message}"


class InvariantChecker:
    """Validates one run's invariants from independently tracked state.

    The checker deliberately keeps its *own* view of committed
    progress (built from commit observations) rather than reading the
    store's, so a store that mis-reports would be caught, not trusted.
    """

    def __init__(self) -> None:
        self.violations: list[InvariantViolation] = []
        self._reset()

    # -- lifecycle ---------------------------------------------------------

    def _reset(self) -> None:
        self._store: "CheckpointStore | None" = None
        self._instances: dict[str, "ZoneInstance"] = {}
        self._config: "ExperimentConfig | None" = None
        self._deadline = float("inf")
        self._now = float("-inf")
        self._committed = 0.0
        self._last_commit_time = float("-inf")
        self._deadline_contracted = False

    def begin_run(
        self,
        *,
        config: "ExperimentConfig",
        deadline: float,
        store: "CheckpointStore",
        instances: dict[str, "ZoneInstance"],
        start_time: float,
    ) -> None:
        self._reset()
        self._config = config
        self._deadline = deadline
        self._store = store
        self._instances = instances
        self._now = start_time

    @property
    def now(self) -> float:
        """Latest simulation time the checker has observed."""
        return self._now

    # -- recording ---------------------------------------------------------

    def _violate(self, invariant: str, time: float, zone: str | None, message: str) -> None:
        self.violations.append(
            InvariantViolation(invariant=invariant, time=time, zone=zone,
                               message=message)
        )

    # -- per-event checks --------------------------------------------------

    def transition(self, zone: str, old: ZoneState, new: ZoneState) -> None:
        """Zone-state-machine legality (observer on every instance)."""
        if new not in LEGAL_TRANSITIONS.get(old, frozenset()):
            self._violate(
                "zone-transition", self._now, zone,
                f"illegal edge {old.value} -> {new.value}",
            )

    def tick(self, t: float) -> None:
        """Per-tick (and per-segment-end) state validation."""
        if t + EPS < self._now:
            self._violate("time-monotonic", t, None,
                          f"clock moved backwards: {self._now} -> {t}")
        self._now = max(self._now, t)
        store = self._store
        config = self._config
        if store is None or config is None:
            return
        committed = store.committed_progress_s
        if committed + EPS < self._committed:
            self._violate(
                "progress-monotonic", t, None,
                f"committed progress regressed: {self._committed} -> {committed}",
            )
        # leading progress: the farthest any live computation has got
        leading = committed
        for inst in self._instances.values():
            if inst.state in (ZoneState.COMPUTING, ZoneState.CHECKPOINTING):
                leading = max(leading, inst.local_progress_s)
        if committed > leading + EPS:
            self._violate(
                "progress-bounds", t, None,
                f"committed {committed} exceeds leading {leading}",
            )
        if leading > config.compute_s + EPS:
            self._violate(
                "progress-bounds", t, None,
                f"leading progress {leading} exceeds C={config.compute_s}",
            )
        self._committed = max(self._committed, committed)

    def commit(self, record: "CheckpointRecord", previous_progress_s: float) -> None:
        """Checkpoint-store consistency at each commit."""
        if record.progress_s + EPS < previous_progress_s:
            self._violate(
                "store-consistency", record.time, record.zone,
                f"commit regressed progress: {previous_progress_s} -> "
                f"{record.progress_s}",
            )
        if record.time + EPS < self._last_commit_time:
            self._violate(
                "store-consistency", record.time, record.zone,
                f"commit time regressed: {self._last_commit_time} -> {record.time}",
            )
        if self._config is not None and record.progress_s > self._config.compute_s + EPS:
            self._violate(
                "store-consistency", record.time, record.zone,
                f"commit claims progress {record.progress_s} beyond "
                f"C={self._config.compute_s}",
            )
        self._last_commit_time = max(self._last_commit_time, record.time)
        self._committed = max(self._committed, record.progress_s)

    def restore(self, zone: str, t: float, from_progress_s: float) -> None:
        """Restores must load exactly the committed progress."""
        if abs(from_progress_s - self._committed) > EPS:
            self._violate(
                "store-consistency", t, zone,
                f"restore from {from_progress_s}, but committed progress "
                f"is {self._committed}",
            )

    def deadline_changed(self, t: float, old: float, new: float) -> None:
        if new < old - EPS:
            self._deadline_contracted = True
        self._deadline = new

    # -- run-end checks ----------------------------------------------------

    @property
    def deadline_contracted(self) -> bool:
        return self._deadline_contracted

    def finish(self, result: "RunResult") -> None:
        """Billing conservation + deadline guarantee at run end."""
        instances = self._instances
        spot_total = 0.0
        hours_total = 0
        for inst in instances.values():
            m = inst.billing
            if m.is_open:
                self._violate(
                    "billing-conservation", result.finish_time, inst.zone,
                    "billing meter left open at run end",
                )
            spot_total += m.total_cost
            hours_total += m.hours_charged
            accounted = m.hours_charged + m.num_forfeited + m.num_free_closes
            if accounted != m.hours_opened:
                self._violate(
                    "billing-conservation", result.finish_time, inst.zone,
                    f"{m.hours_opened} hours opened but {accounted} accounted "
                    f"({m.hours_charged} charged + {m.num_forfeited} forfeited "
                    f"+ {m.num_free_closes} free closes)",
                )
            last_start = float("-inf")
            for charge in m.charges:
                if charge.reason == "boundary" and abs(charge.used_s - 3600.0) > EPS:
                    self._violate(
                        "billing-conservation", result.finish_time, inst.zone,
                        f"boundary-committed hour used {charge.used_s}s != 3600s",
                    )
                if charge.used_s < -EPS or charge.used_s > 3600.0 + EPS:
                    self._violate(
                        "billing-conservation", result.finish_time, inst.zone,
                        f"charged hour used {charge.used_s}s outside [0, 3600]",
                    )
                if charge.hour_start + EPS < last_start:
                    self._violate(
                        "billing-conservation", result.finish_time, inst.zone,
                        f"charge hour_start regressed: {last_start} -> "
                        f"{charge.hour_start}",
                    )
                last_start = max(last_start, charge.hour_start)
        if abs(spot_total - result.spot_cost) > EPS:
            self._violate(
                "billing-conservation", result.finish_time, None,
                f"reported spot cost {result.spot_cost} != metered {spot_total}",
            )
        if hours_total != result.spot_hours_charged:
            self._violate(
                "billing-conservation", result.finish_time, None,
                f"reported {result.spot_hours_charged} spot hours != metered "
                f"{hours_total}",
            )

        # On-demand side of the conservation identity (§2.1 whole hours).
        if result.completed_on == "spot":
            if result.ondemand_cost != 0.0:
                self._violate(
                    "billing-conservation", result.finish_time, None,
                    f"spot completion with on-demand cost {result.ondemand_cost}",
                )
            if result.ondemand_switch_time is not None:
                self._violate(
                    "billing-conservation", result.finish_time, None,
                    "spot completion reports an on-demand switch time",
                )
        else:
            hours = result.ondemand_cost / ON_DEMAND_PRICE
            if result.ondemand_cost < -EPS or abs(hours - round(hours)) > EPS:
                self._violate(
                    "billing-conservation", result.finish_time, None,
                    f"on-demand cost {result.ondemand_cost} is not a whole "
                    f"number of ${ON_DEMAND_PRICE}/h hours",
                )
            if result.ondemand_switch_time is None:
                self._violate(
                    "billing-conservation", result.finish_time, None,
                    "on-demand completion without a switch time",
                )

        # Deadline guarantee (the paper's central claim).
        if result.finish_time > result.deadline + EPS and not self._deadline_contracted:
            self._violate(
                "deadline-guarantee", result.finish_time, None,
                f"finished at {result.finish_time} after deadline "
                f"{result.deadline} with no infeasible contraction",
            )
