"""Audit sinks: where structured events go.

A sink receives every :class:`~repro.audit.events.AuditEvent` the
auditor emits.  :class:`JsonlSink` appends one JSON object per line —
the single durable source for timelines and debugging (replacing the
ad-hoc in-memory ``Event`` narration for anything that needs to
survive the process).  :class:`MemorySink` keeps events in a list (the
differential harness and tests use it).  :class:`NullSink` drops
everything (invariant checking without tracing).
"""

from __future__ import annotations

import abc
from pathlib import Path
from typing import TextIO

from repro.audit.events import AuditEvent


class AuditSink(abc.ABC):
    """Receives audit events; must tolerate multiple runs per sink."""

    @abc.abstractmethod
    def emit(self, event: AuditEvent) -> None:
        """Record one event."""

    def flush(self) -> None:
        """Make everything emitted so far durable (no-op by default)."""

    def close(self) -> None:
        """Release resources (no-op by default)."""

    def __enter__(self) -> "AuditSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullSink(AuditSink):
    """Discards all events."""

    def emit(self, event: AuditEvent) -> None:
        pass


class MemorySink(AuditSink):
    """Keeps events in memory; ``events_for(run)`` slices one run."""

    def __init__(self) -> None:
        self.events: list[AuditEvent] = []

    def emit(self, event: AuditEvent) -> None:
        self.events.append(event)

    def events_for(self, run: int) -> list[AuditEvent]:
        return [e for e in self.events if e.run == run]

    def clear(self) -> None:
        self.events.clear()


class JsonlSink(AuditSink):
    """Appends events as JSON lines to a file (opened lazily).

    The file is opened on the first emit, so constructing a sink for a
    path that may never receive events (e.g. an audited sweep whose
    cells all run on other workers) costs nothing.  Buffered writes
    are flushed at every ``run-end`` boundary by the auditor.
    """

    def __init__(self, destination: str | Path | TextIO) -> None:
        self._destination = destination
        self._fh: TextIO | None = None
        self._owns_fh = isinstance(destination, (str, Path))

    @property
    def path(self) -> str | None:
        """Target path, or ``None`` for a caller-supplied stream."""
        return str(self._destination) if self._owns_fh else None

    def _handle(self) -> TextIO:
        if self._fh is None:
            if self._owns_fh:
                self._fh = open(self._destination, "a")
            else:
                self._fh = self._destination
        return self._fh

    def emit(self, event: AuditEvent) -> None:
        self._handle().write(event.to_json() + "\n")

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None and self._owns_fh:
            self._fh.close()
        self._fh = None
