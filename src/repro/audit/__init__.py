"""Run-audit layer: structured event tracing + invariant checking.

The simulator's correctness story rests on properties that used to be
asserted only in tests: billing conservation (§2.1's hour rules),
progress monotonicity, zone-state-machine legality, the deadline
guarantee of Algorithm 1, and the fast engine's bit-identity to the
reference tick loop.  This package turns each of those claims into a
*runtime-checked* property:

* :class:`RunAuditor` — the engine-facing façade.  Attach one to a
  :class:`~repro.core.engine.SpotSimulator` and every run streams
  structured events into it (JSONL via :class:`JsonlSink`, in-memory
  via :class:`MemorySink`) while the :class:`InvariantChecker`
  validates state per tick-or-segment and at run end.
* :mod:`repro.audit.differential` — replays a configuration in the
  other engine mode and diffs the two event streams field by field,
  promoting the fast-vs-tick equivalence claim into a reusable check.

Auditing is default-off and adds <10% overhead when disabled (a
handful of ``is None`` branches per tick).
"""

from repro.audit.auditor import AuditReport, RunAuditor
from repro.audit.differential import (
    DifferentialReport,
    FieldDiff,
    diff_event_streams,
    diff_results,
    differential_run,
)
from repro.audit.events import META_KINDS, AuditEvent, RunCounters
from repro.audit.invariants import (
    LEGAL_TRANSITIONS,
    InvariantChecker,
    InvariantError,
    InvariantViolation,
)
from repro.audit.sink import AuditSink, JsonlSink, MemorySink, NullSink

__all__ = [
    "AuditEvent",
    "AuditReport",
    "AuditSink",
    "DifferentialReport",
    "FieldDiff",
    "InvariantChecker",
    "InvariantError",
    "InvariantViolation",
    "JsonlSink",
    "LEGAL_TRANSITIONS",
    "META_KINDS",
    "MemorySink",
    "NullSink",
    "RunAuditor",
    "RunCounters",
    "diff_event_streams",
    "diff_results",
    "differential_run",
]
