"""Threshold policy — Edge with price and time guards (Section 4.4).

Jung et al.'s refinement of Rising Edge.  ``CheckpointCondition()``
fires in an executing zone when either:

1. **Price threshold** — the price shows a rising edge *and* has
   climbed at least halfway from the historical minimum toward the
   bid: ``PriceThresh = (S_min + B) / 2`` and ``S >= PriceThresh``.
   Low wobbles far from the bid no longer trigger checkpoints.
2. **Time threshold** — the zone has been executing at bid B since
   its last restart or checkpoint for longer than ``TimeThresh``, the
   probabilistic average up time of the zone (estimated here as the
   mean up-run length at B over the trailing history).  Long quiet
   stretches still get committed occasionally.

``ScheduleNextCheckpoint()`` is again a no-op: both conditions are
evaluated instantaneously.
"""

from __future__ import annotations

import math

from repro.core.policy import CheckpointPolicy, PolicyContext
from repro.market.instance import ZoneInstance, ZoneState


class ThresholdPolicy(CheckpointPolicy):
    """Two-threshold checkpoint scheduling (price + execution time)."""

    name = "threshold"
    reschedule_is_noop = True
    # the vector engine evaluates the price/execution-time tests per
    # run against the oracle's memoized threshold statistics
    vector_kind = "threshold"

    def price_threshold(self, ctx: PolicyContext, zone: str) -> float:
        """``(S_min + B) / 2`` with S_min from the trailing history."""
        s_min, _ = ctx.oracle.threshold_stats(zone, ctx.now, ctx.bid)
        return 0.5 * (s_min + ctx.bid)

    def time_threshold(self, ctx: PolicyContext, zone: str) -> float:
        """Probabilistic average up time of the zone at B, seconds."""
        return ctx.oracle.threshold_stats(zone, ctx.now, ctx.bid)[1]

    def checkpoint_due(self, ctx: PolicyContext, leader: ZoneInstance) -> bool:
        if leader.local_progress_s <= ctx.run.committed_progress_s() + 1e-9:
            return False
        for zone, inst in ctx.instances.items():
            if zone not in ctx.zones or inst.state is not ZoneState.COMPUTING:
                continue
            # One cached oracle call serves both guards: S_min is
            # memoized by the window's exact sample range and the mean
            # up-run by (zone, hour bucket, bid), so the per-tick cost
            # across the sweep's overlapping experiments is two
            # dictionary lookups.
            s_min, time_thresh = ctx.oracle.threshold_stats(
                zone, ctx.now, ctx.bid
            )
            price = ctx.price(zone)
            if (
                ctx.oracle.is_rising_edge(zone, ctx.now)
                and price >= 0.5 * (s_min + ctx.bid)
            ):
                return True
            exec_time = inst.execution_time_at_bid(ctx.now)
            if time_thresh > 0 and exec_time > time_thresh:
                return True
        return False

    def schedule_next_checkpoint(self, ctx: PolicyContext) -> None:
        """No-op: thresholds are evaluated from current state."""

    def fast_forward_until(self, ctx: PolicyContext) -> float:
        """Earliest possible trigger: the next rising edge or the next
        time-threshold expiry.

        This mirrors :meth:`checkpoint_due`'s evaluation at ``ctx.now``
        — same zone order, same ``threshold_stats`` calls, same early
        return on a trigger.  ``TimeThresh`` is refreshed every hour
        bucket, but the oracle anchors each bucket's statistics at the
        bucket boundary, so future buckets' thresholds are computable
        *now*: the expiry scan walks bucket by bucket up to the next
        rising edge (where the engine stops anyway) instead of clamping
        every skip to the current hour.
        """
        leader = ctx.leader()
        if leader is None:
            return ctx.now
        if leader.local_progress_s <= ctx.run.committed_progress_s() + 1e-9:
            # checkpoint_due short-circuits before any oracle query
            return ctx.now
        oracle = ctx.oracle
        bound = math.inf
        for zone, inst in ctx.instances.items():
            if zone not in ctx.zones or inst.state is not ZoneState.COMPUTING:
                continue
            s_min, time_thresh = oracle.threshold_stats(
                zone, ctx.now, ctx.bid
            )
            z = oracle.trace.zone(zone)
            i = z.index_at(ctx.now)
            if z.is_rising_edge_at(i) and float(z.prices[i]) >= 0.5 * (
                s_min + ctx.bid
            ):
                return ctx.now  # checkpoint_due returns True right here
            exec_time = inst.execution_time_at_bid(ctx.now)
            if time_thresh > 0 and exec_time > time_thresh:
                return ctx.now
            j = z.next_rising_edge(i)
            edge_t = z.start_time + j * z.interval_s
            zone_bound = edge_t
            cs = inst.computing_since
            if cs is not None:
                bucket_start = math.floor(ctx.now / 3600.0) * 3600.0
                thresh = time_thresh
                while True:
                    bucket_end = bucket_start + 3600.0
                    if thresh > 0 and cs + thresh < min(bucket_end, edge_t):
                        zone_bound = max(cs + thresh, bucket_start)
                        break
                    if bucket_end >= edge_t:
                        break
                    bucket_start = bucket_end
                    thresh = oracle.mean_up_run(zone, bucket_start, ctx.bid)
            bound = min(bound, zone_bound)
        return bound
