"""Threshold policy — Edge with price and time guards (Section 4.4).

Jung et al.'s refinement of Rising Edge.  ``CheckpointCondition()``
fires in an executing zone when either:

1. **Price threshold** — the price shows a rising edge *and* has
   climbed at least halfway from the historical minimum toward the
   bid: ``PriceThresh = (S_min + B) / 2`` and ``S >= PriceThresh``.
   Low wobbles far from the bid no longer trigger checkpoints.
2. **Time threshold** — the zone has been executing at bid B since
   its last restart or checkpoint for longer than ``TimeThresh``, the
   probabilistic average up time of the zone (estimated here as the
   mean up-run length at B over the trailing history).  Long quiet
   stretches still get committed occasionally.

``ScheduleNextCheckpoint()`` is again a no-op: both conditions are
evaluated instantaneously.
"""

from __future__ import annotations

from repro.core.policy import CheckpointPolicy, PolicyContext
from repro.market.instance import ZoneInstance, ZoneState


class ThresholdPolicy(CheckpointPolicy):
    """Two-threshold checkpoint scheduling (price + execution time)."""

    name = "threshold"

    def price_threshold(self, ctx: PolicyContext, zone: str) -> float:
        """``(S_min + B) / 2`` with S_min from the trailing history."""
        s_min, _ = ctx.oracle.threshold_stats(zone, ctx.now, ctx.bid)
        return 0.5 * (s_min + ctx.bid)

    def time_threshold(self, ctx: PolicyContext, zone: str) -> float:
        """Probabilistic average up time of the zone at B, seconds."""
        return ctx.oracle.threshold_stats(zone, ctx.now, ctx.bid)[1]

    def checkpoint_due(self, ctx: PolicyContext, leader: ZoneInstance) -> bool:
        if leader.local_progress_s <= ctx.run.committed_progress_s() + 1e-9:
            return False
        for zone, inst in ctx.instances.items():
            if zone not in ctx.zones or inst.state is not ZoneState.COMPUTING:
                continue
            # One cached oracle call serves both guards: S_min is
            # memoized by the window's exact sample range and the mean
            # up-run by (zone, hour bucket, bid), so the per-tick cost
            # across the sweep's overlapping experiments is two
            # dictionary lookups.
            s_min, time_thresh = ctx.oracle.threshold_stats(
                zone, ctx.now, ctx.bid
            )
            price = ctx.price(zone)
            if (
                ctx.oracle.is_rising_edge(zone, ctx.now)
                and price >= 0.5 * (s_min + ctx.bid)
            ):
                return True
            exec_time = inst.execution_time_at_bid(ctx.now)
            if time_thresh > 0 and exec_time > time_thresh:
                return True
        return False

    def schedule_next_checkpoint(self, ctx: PolicyContext) -> None:
        """No-op: thresholds are evaluated from current state."""
