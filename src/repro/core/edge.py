"""Rising Edge policy — checkpoint on upward price movement (Section 4.3).

``CheckpointCondition()`` is true whenever the spot price of an
executing zone just moved upward: a rising S signals that S > B may
follow, so progress is saved immediately.
``ScheduleNextCheckpoint()`` is a no-op — the decision is made
instantaneously from the current and previous samples of S.

For a zone with stable prices Edge saves checkpoint cost relative to
Periodic; on a sharp spike it can lose everything since the last lucky
edge (which is why Section 6 finds it weak at low bids and excludes it
from further evaluation).
"""

from __future__ import annotations

from repro.core.policy import CheckpointPolicy, PolicyContext
from repro.market.instance import ZoneInstance, ZoneState


class RisingEdgePolicy(CheckpointPolicy):
    """Checkpoint at every upward movement of an executing zone's price."""

    name = "edge"
    reschedule_is_noop = True
    vector_kind = "edge"
    # triggers on price *movements* (diffs), never on the bid's value
    bid_invariant = True

    def checkpoint_due(self, ctx: PolicyContext, leader: ZoneInstance) -> bool:
        if leader.local_progress_s <= ctx.run.committed_progress_s() + 1e-9:
            return False
        # Any executing zone's rising price triggers a save of the
        # application's best state (the leader's).
        for zone, inst in ctx.instances.items():
            if zone not in ctx.zones:
                continue
            if inst.state is ZoneState.COMPUTING and ctx.oracle.is_rising_edge(
                zone, ctx.now
            ):
                return True
        return False

    def schedule_next_checkpoint(self, ctx: PolicyContext) -> None:
        """No-op: Edge reacts to prices, it does not schedule."""

    def fast_forward_until(self, ctx: PolicyContext) -> float:
        """Time of the next rising-edge sample in any executing zone.

        Served by the trace's cached edge index; the current sample is
        included (an edge in force right now means no skipping at all).
        """
        bound = float("inf")
        for zone, inst in ctx.instances.items():
            if zone not in ctx.zones or inst.state is not ZoneState.COMPUTING:
                continue
            z = ctx.oracle.trace.zone(zone)
            i = z.index_at(ctx.now)
            if z.is_rising_edge_at(i):
                return ctx.now
            j = z.next_rising_edge(i)
            bound = min(bound, z.start_time + j * z.interval_s)
        return bound
