"""Periodic policy — checkpointing at hour boundaries (Section 4.1).

``ScheduleNextCheckpoint()`` arms a checkpoint at regular intervals —
the end of every billing hour in the paper — such that the checkpoint
*completes* within the hour boundary (``T_s = hour - t_c``): work paid
for in an hour is committed before the next hour can be interrupted.
``CheckpointCondition()`` fires when the leader's open billing hour
has exactly ``t_c`` seconds left, at most once per billing hour.
"""

from __future__ import annotations

from repro.core.policy import CheckpointPolicy, PolicyContext
from repro.market.instance import ZoneInstance, ZoneState


class PeriodicPolicy(CheckpointPolicy):
    """Hour-boundary checkpointing (Yi et al.'s scheme, generalized to N zones)."""

    name = "periodic"
    reschedule_is_noop = True
    vector_kind = "periodic"
    # decisions track billing-hour geometry, never the bid's value
    bid_invariant = True

    def __init__(self) -> None:
        self._done_hours: set[tuple[str, float]] = set()

    def reset(self, ctx: PolicyContext) -> None:
        self._done_hours.clear()

    def checkpoint_due(self, ctx: PolicyContext, leader: ZoneInstance) -> bool:
        """True when the leader's billing hour has <= t_c seconds left.

        A 1-second tolerance absorbs float drift from second-granular
        phase accounting; the per-(zone, hour) latch guarantees one
        checkpoint per paid hour even if the condition stays true for
        several ticks (e.g. t_c = 900 s spans three ticks).
        """
        meter = leader.billing
        if not meter.is_open:
            return False
        left = meter.seconds_left_in_hour(ctx.now)
        if left > ctx.config.ckpt_cost_s + 1e-6:
            return False
        key = (leader.zone, meter.hour_start)
        if key in self._done_hours:
            return False
        # Nothing new to commit yet (still queuing/restarting this hour)
        if leader.local_progress_s <= ctx.run.committed_progress_s() + 1e-9:
            return False
        self._done_hours.add(key)
        return True

    def schedule_next_checkpoint(self, ctx: PolicyContext) -> None:
        """No-op: the schedule is implied by the billing-hour clock."""

    def fast_forward_until(self, ctx: PolicyContext) -> float:
        """Next ``hour_end - t_c`` of any computing zone's open hour.

        A zone whose current hour is already latched cannot fire again
        until the hour rolls, so its bound moves one billing hour out.
        No oracle queries are involved, so the fast path may jump here
        freely.
        """
        bound = float("inf")
        for zone, inst in ctx.instances.items():
            if zone not in ctx.zones or inst.state is not ZoneState.COMPUTING:
                continue
            meter = inst.billing
            if not meter.is_open:
                continue
            due_at = meter.hour_end() - ctx.config.ckpt_cost_s
            if (zone, meter.hour_start) in self._done_hours:
                due_at += 3600.0
            bound = min(bound, due_at)
        return bound
