"""The paper's contribution: Algorithm 1 engine, checkpoint policies, Adaptive.

Quick map (paper section → class):

* §3.2 Algorithm 1 → :class:`~repro.core.engine.SpotSimulator`
* §4.1 Periodic → :class:`~repro.core.periodic.PeriodicPolicy`
* §4.2 Markov-Daly → :class:`~repro.core.markov_daly.MarkovDalyPolicy`
* §4.3 Rising Edge → :class:`~repro.core.edge.RisingEdgePolicy`
* §4.4 Threshold → :class:`~repro.core.threshold.ThresholdPolicy`
* §7 Adaptive → :class:`~repro.core.adaptive.AdaptiveController`
* §7.2.2 Large-bid → :class:`~repro.core.large_bid.LargeBidPolicy`
* on-demand baseline → :func:`~repro.core.ondemand.run_on_demand`
"""

from repro.core.engine import (
    Controller,
    EngineError,
    Event,
    RunResult,
    SpotSimulator,
    SwitchDecision,
)
from repro.core.policy import CheckpointPolicy, NeverCheckpoint, PolicyContext
from repro.core.periodic import PeriodicPolicy
from repro.core.markov_daly import MarkovDalyPolicy
from repro.core.edge import RisingEdgePolicy
from repro.core.threshold import ThresholdPolicy
from repro.core.large_bid import LargeBidPolicy, naive_policy
from repro.core.adaptive import AdaptiveController, CandidateEstimate, make_policy
from repro.core.ondemand import on_demand_cost, run_on_demand

__all__ = [
    "Controller",
    "EngineError",
    "Event",
    "RunResult",
    "SpotSimulator",
    "SwitchDecision",
    "CheckpointPolicy",
    "NeverCheckpoint",
    "PolicyContext",
    "PeriodicPolicy",
    "MarkovDalyPolicy",
    "RisingEdgePolicy",
    "ThresholdPolicy",
    "LargeBidPolicy",
    "naive_policy",
    "AdaptiveController",
    "CandidateEstimate",
    "make_policy",
    "on_demand_cost",
    "run_on_demand",
]
