"""Markov-Daly policy — predicted up time drives the checkpoint interval.

Section 4.2 / Algorithm 2: ``ScheduleNextCheckpoint()`` asks the
Markov model (Appendix B) for the expected up time ``E[T_u]`` at the
current bid, then arms the next checkpoint Daly's optimal interval
into the future (``T_s = T + opt_ckpt(E[T_u], t_c)``).

For redundant configurations the combined ``E[T_u]`` is the *sum* of
the per-zone expected up times (price movements across zones being
near-independent, Section 3.1), so the interval stretches — fewer
checkpoints — as N grows.
"""

from __future__ import annotations

from repro.core.policy import CheckpointPolicy, PolicyContext
from repro.market.instance import ZoneInstance
from repro.stats.daly import daly_interval


class MarkovDalyPolicy(CheckpointPolicy):
    """Expected-uptime-driven checkpoint scheduling (single or multi zone)."""

    name = "markov-daly"
    # the vector engine carries the re-arm clock T_s as a batch column
    # and replays schedule_next_checkpoint's arithmetic per run
    vector_kind = "markov-daly"

    def __init__(self) -> None:
        self._next_checkpoint_at: float | None = None

    def reset(self, ctx: PolicyContext) -> None:
        self._next_checkpoint_at = None

    @property
    def scheduled_at(self) -> float | None:
        """The currently armed T_s (None before the first schedule)."""
        return self._next_checkpoint_at

    def expected_uptime(self, ctx: PolicyContext) -> float:
        """Combined E[T_u] over the configuration's zones, seconds.

        Served by the oracle's batch uptime API: the absorbing-chain
        solve is memoized per (zone, hour bucket, price level, up-state
        set), so re-arming the schedule after every commit and restart
        costs a dictionary lookup, not a linear solve.
        """
        return float(
            ctx.oracle.combined_uptimes(ctx.zones, ctx.now, (ctx.bid,))[0]
        )

    def schedule_next_checkpoint(self, ctx: PolicyContext) -> None:
        """Daly's interval, clamped into the deadline-feasible band.

        The engine guarantees D on *committed* progress, so two
        deadline constraints bound the usable interval beyond Daly's
        market-driven optimum:

        * **Afford-all-commits floor** — each commit burns ``t_c`` of
          slack; finishing the remaining computation within the slack
          budget needs intervals of at least ``C_r * t_c / budget``.
          Checkpointing more often than that spends slack faster than
          it buys safety, which degenerates into an early switch to
          on-demand.
        * **Committed-lag ceiling** — the committed margin decays one
          second per second between commits, so an interval longer
          than the current margin (minus the engine's forced-commit
          reserve) would trip the forced-commit floor anyway.

        When the band is empty (the experiment cannot afford Daly-rate
        commits *and* has little margin), the ceiling wins: commit as
        late as the margin allows and maximize spot progress before
        the inevitable on-demand switch.
        """
        config = ctx.config
        uptime = self.expected_uptime(ctx)
        interval = daly_interval(uptime, config.ckpt_cost_s)

        committed = ctx.run.committed_progress_s()
        remaining_compute = max(config.compute_s - committed, 0.0)
        margin = (
            ctx.run.remaining_time_s(ctx.now)
            - remaining_compute
            - config.ckpt_cost_s
            - config.restart_cost_s
        )
        reserve = config.ckpt_cost_s + 4.0 * 300.0  # forced-commit window + ticks
        budget = margin - reserve
        if budget > 0:
            afford_floor = remaining_compute * config.ckpt_cost_s / budget
            interval = max(interval, afford_floor)
            interval = min(interval, max(budget, config.ckpt_cost_s))
        else:
            interval = max(margin, config.ckpt_cost_s)
        self._next_checkpoint_at = ctx.now + interval

    def checkpoint_due(self, ctx: PolicyContext, leader: ZoneInstance) -> bool:
        if self._next_checkpoint_at is None:
            # engine always schedules at start; be safe if driven manually
            self.schedule_next_checkpoint(ctx)
        if ctx.now + 1e-6 < self._next_checkpoint_at:
            return False
        # Nothing new to commit: push the schedule instead of writing a
        # no-progress checkpoint.
        if leader.local_progress_s <= ctx.run.committed_progress_s() + 1e-9:
            self.schedule_next_checkpoint(ctx)
            return False
        return True

    def fast_forward_until(self, ctx: PolicyContext) -> float:
        """The armed T_s: :meth:`checkpoint_due` is False (and performs
        no oracle queries) strictly before it."""
        if self._next_checkpoint_at is None:
            return ctx.now
        return self._next_checkpoint_at - 1e-6
