"""Pure on-demand baseline — the naive strategy the paper's headline
numbers are measured against.

Running the whole experiment on dedicated on-demand instances needs no
checkpointing and no bidding: cost is simply the compute time rounded
up to whole hours at $2.40/hour, and the finish time is ``start + C``.
For the paper's 20-hour experiment this is the $48.00 grey reference
line of Figures 4–6.
"""

from __future__ import annotations

import math

from repro.app.workload import ExperimentConfig
from repro.core.engine import RunResult
from repro.market.constants import ON_DEMAND_PRICE


def run_on_demand(config: ExperimentConfig, start_time: float) -> RunResult:
    """Synthesize the RunResult of an uninterrupted on-demand run."""
    finish = start_time + config.compute_s
    cost = math.ceil(config.compute_s / 3600.0) * ON_DEMAND_PRICE
    return RunResult(
        policy_name="on-demand",
        bid=ON_DEMAND_PRICE,
        zones=(),
        start_time=start_time,
        finish_time=finish,
        deadline=start_time + config.deadline_s,
        completed_on="ondemand",
        spot_cost=0.0,
        ondemand_cost=cost,
        num_checkpoints=0,
        num_restarts=0,
        num_provider_terminations=0,
        ondemand_switch_time=start_time,
    )


def on_demand_cost(config: ExperimentConfig) -> float:
    """Dollar cost of the pure on-demand run (per instance)."""
    return math.ceil(config.compute_s / 3600.0) * ON_DEMAND_PRICE
