"""Algorithm 1 — the multi-zone checkpoint-scheduling execution engine.

This is the paper's framework (Section 3.2) made executable against a
price trace:

* per-zone instance state driven by bid vs. spot price (lines 2–8 of
  Algorithm 1), including the *waiting* state that lets an eligible
  zone receive a checkpoint before starting;
* the deadline guard (line 11): when the remaining wall-clock time
  equals the remaining computation plus migration overhead, checkpoint
  and finish on the on-demand market — this is what turns a spot-market
  heuristic into a *guaranteed* time-constrained run;
* pluggable ``CheckpointCondition()`` / ``ScheduleNextCheckpoint()``
  via :class:`~repro.core.policy.CheckpointPolicy`;
* an optional :class:`Controller` hook that lets the Adaptive policy
  re-choose (bid, zone set, policy) at its decision points.

Time advances in 5-minute ticks (the price-sampling interval); timed
activities inside a tick (checkpoints, restarts, queuing remainders)
are accounted at seconds granularity by the per-zone state machine.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.app.application import ApplicationRun
from repro.app.checkpoint import CheckpointStore
from repro.app.dynamics import DeadlineSchedule, PerformanceProfile
from repro.app.workload import ExperimentConfig
from repro.core.policy import CheckpointPolicy, PolicyContext
from repro.market.constants import ON_DEMAND_PRICE, SAMPLE_INTERVAL_S
from repro.market.instance import ZoneInstance, ZoneState
from repro.market.queuing import QueueDelayModel
from repro.market.spot_market import PriceOracle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.audit.auditor import RunAuditor


class EngineError(RuntimeError):
    """Raised when a run cannot be simulated (e.g. trace too short)."""


@dataclass(frozen=True)
class Event:
    """One notable simulation event, for narration and debugging."""

    time: float
    kind: str
    zone: str | None = None
    detail: str = ""


@dataclass(frozen=True)
class TimelinePoint:
    """Per-tick snapshot for Figure 1/3-style timeline rendering."""

    time: float
    #: ``(zone, ZoneState.value)`` for every zone, in trace order.
    zone_states: tuple[tuple[str, str], ...]
    committed_progress_s: float
    leading_progress_s: float


@dataclass(frozen=True)
class SwitchDecision:
    """A controller's re-configuration: new bid, zone set, and policy."""

    bid: float
    zones: tuple[str, ...]
    policy: CheckpointPolicy


class Controller(abc.ABC):
    """Run-time re-configuration hook (the Adaptive scheme's seat)."""

    def reset(self, ctx: PolicyContext) -> None:
        """Called once at experiment start."""

    @abc.abstractmethod
    def decide(self, ctx: PolicyContext) -> SwitchDecision | None:
        """Return a new configuration, or ``None`` to keep the current one."""

    def next_decision_time(self, now: float) -> float | None:
        """Earliest future time :meth:`decide` could act or mutate state,
        assuming no zone terminates and no billing hour rolls before it.

        The fast path stops at termination and hour-boundary events
        anyway; this hook only needs to cover the controller's own
        timers.  ``None`` (the default) disables segment skipping while
        this controller is attached — always safe.
        """
        return None

    def canonical_params(self) -> dict | None:
        """The controller's identity for run-cache keying.

        ``None`` (the default) declares the controller *not*
        canonicalizable: runs it drives bypass the run cache.
        Returning a dict asserts that, after :meth:`reset`, the
        controller's decisions are a pure function of these parameters
        plus the run's other hashed inputs (trace, oracle config,
        config, start) — i.e. a replay would be bit-identical.
        """
        return None


@dataclass(frozen=True)
class RunResult:
    """Outcome of one simulated experiment.

    Costs are *per instance* (one node per zone), exactly the unit of
    the paper's figures; multiply by ``config.num_nodes`` for a whole
    allocation.
    """

    policy_name: str
    bid: float
    zones: tuple[str, ...]
    start_time: float
    finish_time: float
    deadline: float
    completed_on: str  # "spot" or "ondemand"
    spot_cost: float
    ondemand_cost: float
    num_checkpoints: int
    num_restarts: int
    num_provider_terminations: int
    ondemand_switch_time: float | None = None
    #: committed spot billing hours across all zones
    spot_hours_charged: int = 0
    events: tuple[Event, ...] = ()
    timeline: tuple[TimelinePoint, ...] = ()

    @property
    def total_cost(self) -> float:
        return self.spot_cost + self.ondemand_cost

    @property
    def met_deadline(self) -> bool:
        return self.finish_time <= self.deadline + 1e-6

    @property
    def makespan_s(self) -> float:
        return self.finish_time - self.start_time


@dataclass
class SpotSimulator:
    """Trace-driven simulator of Algorithm 1.

    Parameters
    ----------
    oracle:
        Price oracle over the evaluation trace (shared across runs so
        its statistical caches amortize over the 80 experiments).
    queue_model:
        Spot acquisition delay model.
    rng:
        Randomness source for queuing delays.  Each call of
        :meth:`run` consumes from it, so construct one per experiment
        stream for reproducibility.
    record_events:
        Keep the full event log on the result (off by default: the
        evaluation harness runs tens of thousands of experiments).
    engine_mode:
        ``"fast"`` (default) enables the segment-skipping scheduler:
        provably event-free stretches of ticks are applied in bulk,
        jumping straight to the next price crossing, scheduled
        checkpoint, billing boundary, deadline-guard trigger or
        controller decision point.  Results are bit-identical to
        ``"tick"``, the reference tick-by-tick loop kept for debugging
        and differential testing.
    """

    oracle: PriceOracle
    queue_model: QueueDelayModel
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))
    record_events: bool = False
    #: Record a per-tick state snapshot (for timeline rendering).
    record_timeline: bool = False
    engine_mode: str = "fast"
    #: Optional run auditor (:mod:`repro.audit`): streams structured
    #: events into its sink and validates the simulation invariants per
    #: tick/segment and at run end.  ``None`` (the default) costs only
    #: a few ``is None`` branches per tick.
    auditor: "RunAuditor | None" = None
    #: Optional content-addressed run cache
    #: (:class:`repro.experiments.cache.RunCache`).  When set, every
    #: cacheable run is looked up by the hash of its inputs before
    #: simulating and stored after; hits replay the queue-delay draws
    #: against ``rng`` so subsequent runs see an unchanged stream.
    #: Runs with an attached auditor, run-time dynamics callbacks or a
    #: non-canonicalizable controller bypass the cache.
    run_cache: "object | None" = None
    #: Queue-delay draws consumed by the current run (cache bookkeeping).
    _rng_draws: int = field(default=0, repr=False)

    # ------------------------------------------------------------------

    def run(
        self,
        config: ExperimentConfig,
        policy: CheckpointPolicy,
        bid: float,
        zones: tuple[str, ...],
        start_time: float,
        controller: Controller | None = None,
        deadline_schedule: "DeadlineSchedule | None" = None,
        performance: "PerformanceProfile | None" = None,
    ) -> RunResult:
        """Simulate one experiment; returns its :class:`RunResult`.

        ``deadline_schedule`` and ``performance`` realize Section 3.2's
        run-time dynamics: because the engine re-reads ``T_r`` and ``P``
        every tick, user deadline changes take effect at the next tick,
        and performance variation simply scales progress accrual.  A
        deadline *contraction* that is already infeasible when it
        arrives triggers an immediate migration; the result then
        reports ``met_deadline=False`` honestly (no scheduler can
        rewind wall-clock time).  The guard converts remaining compute
        to wall time with the *current* performance factor (capped at
        nominal), the strongest statement possible without foresight
        of future slowdowns.

        With a :attr:`run_cache` attached, runs whose inputs can be
        canonically hashed are served from the cache when present:
        the stored result is returned as-is (it is bit-identical to
        what simulating would produce — the key covers every input,
        the RNG state included) after burning the cold run's
        queue-delay draws from ``rng``.  Cache-ineligible runs (see
        :meth:`_cache_key`) simulate unconditionally.
        """
        cache = self.run_cache
        if cache is not None:
            key = self._cache_key(
                config, policy, bid, zones, start_time,
                controller, deadline_schedule, performance,
            )
            if key is not None:
                entry = cache.get(key)
                if entry is not None:
                    for _ in range(entry.rng_draws):
                        self.queue_model.sample(self.rng)
                    return entry.result
                self._rng_draws = 0
                result = self._simulate(
                    config, policy, bid, zones, start_time,
                    controller, deadline_schedule, performance,
                )
                from repro.experiments.cache import CachedRun

                cache.put(key, CachedRun(result=result, rng_draws=self._rng_draws))
                return result
        return self._simulate(
            config, policy, bid, zones, start_time,
            controller, deadline_schedule, performance,
        )

    def _cache_key(
        self,
        config: ExperimentConfig,
        policy: CheckpointPolicy,
        bid: float,
        zones: tuple[str, ...],
        start_time: float,
        controller: Controller | None,
        deadline_schedule: "DeadlineSchedule | None",
        performance: "PerformanceProfile | None",
    ) -> str | None:
        """Content address of this run, or ``None`` when not cacheable.

        Not cacheable: an attached auditor (a hit would silently skip
        the audited event stream), run-time dynamics callbacks (opaque
        callables), a controller without :meth:`Controller.canonical_params`,
        or any input the canonicalizer rejects.  The key covers the
        trace content, the oracle's statistical configuration, the
        engine mode and recording flags, all run parameters *and the
        RNG state* — so a hit stands in for a replay that would be
        bit-identical, queue delays included.
        """
        if (
            self.auditor is not None
            or deadline_schedule is not None
            or performance is not None
        ):
            return None
        controller_params = None
        if controller is not None:
            controller_params = controller.canonical_params()
            if controller_params is None:
                return None
        oracle = self.oracle
        try:
            return self.run_cache.run_key({
                "trace": oracle.trace.fingerprint(),
                "oracle": {
                    "history_s": oracle.history_s,
                    "bucket_s": oracle.bucket_s,
                    "incremental": oracle.incremental,
                },
                "engine_mode": self.engine_mode,
                "record_events": self.record_events,
                "record_timeline": self.record_timeline,
                "config": config,
                "policy": policy.canonical_params(),
                "bid": float(bid),
                "zones": tuple(zones),
                "start_time": float(start_time),
                "controller": controller_params,
                "queue_model": self.queue_model,
                "rng": self.rng.bit_generator.state,
            })
        except TypeError:
            return None

    def _simulate(
        self,
        config: ExperimentConfig,
        policy: CheckpointPolicy,
        bid: float,
        zones: tuple[str, ...],
        start_time: float,
        controller: Controller | None = None,
        deadline_schedule: "DeadlineSchedule | None" = None,
        performance: "PerformanceProfile | None" = None,
    ) -> RunResult:
        """The uncached simulation loop behind :meth:`run`."""
        if self.engine_mode not in ("fast", "tick"):
            raise EngineError(
                f"engine_mode must be 'fast' or 'tick', got {self.engine_mode!r}"
            )
        if not zones:
            raise EngineError("at least one zone is required")
        for z in zones:
            if z not in self.oracle.zone_names:
                raise EngineError(f"zone {z!r} not in trace {self.oracle.zone_names}")
        if bid <= 0:
            raise EngineError(f"bid must be positive, got {bid}")
        deadline = start_time + config.deadline_s
        if deadline > self.oracle.trace.end_time:
            raise EngineError(
                f"trace ends at {self.oracle.trace.end_time}, before the "
                f"deadline {deadline}"
            )

        state = _RunState(
            config=config,
            policy=policy,
            bid=bid,
            active_zones=tuple(zones),
            start_time=start_time,
            deadline=deadline,
            store=CheckpointStore(),
            instances={z: ZoneInstance(zone=z) for z in self.oracle.zone_names},
            record=self.record_events,
        )
        state.run_view = ApplicationRun(
            config=config, start_time=start_time, store=state.store
        )
        ctx = self._make_ctx(state, start_time)
        policy.reset(ctx)
        policy.schedule_next_checkpoint(ctx)
        if controller is not None:
            controller.reset(ctx)
        state.zone_traces = {
            z: self.oracle.trace.zone(z) for z in self.oracle.zone_names
        }
        state.fast_ctx = self._make_ctx(state, start_time)

        state.deadline_schedule = deadline_schedule
        state.performance = performance

        aud = self.auditor
        if aud is not None:
            state.aud = aud
            aud.begin_run(
                policy_name=policy.name,
                bid=bid,
                zones=tuple(zones),
                start_time=start_time,
                deadline=deadline,
                engine_mode=self.engine_mode,
                config=config,
                store=state.store,
                instances=state.instances,
            )

        dt = float(SAMPLE_INTERVAL_S)
        t = float(start_time)
        # The fast path needs per-tick determinism it can reason about:
        # timeline snapshots want every tick, and run-time dynamics
        # (deadline edits, performance variation) re-read external
        # state each tick.  Fall back to the reference loop for those.
        fast = (
            self.engine_mode == "fast"
            and not self.record_timeline
            and deadline_schedule is None
            and performance is None
        )
        while True:
            if aud is not None:
                aud.tick(t)
            if deadline_schedule is not None:
                new_deadline = deadline_schedule.deadline_at(t, deadline)
                if new_deadline != state.deadline:
                    state.log(t, "deadline-updated", None,
                              f"D={new_deadline:.0f}")
                    if aud is not None:
                        aud.deadline_changed(t, state.deadline, new_deadline)
                    state.deadline = new_deadline
            self._roll_billing(state, t)
            self._market_transitions(state, t)
            if self.record_timeline:
                self._snapshot(state, t)

            result = self._deadline_guard(state, t, dt)
            if result is not None:
                return self._finalize(state, result)

            if controller is not None:
                if aud is not None:
                    started = aud.decision_begin()
                    decision = controller.decide(self._make_ctx(state, t))
                    aud.decision_end(started)
                else:
                    decision = controller.decide(self._make_ctx(state, t))
                if decision is not None:
                    self._apply_switch(state, t, decision)

            self._policy_actions(state, t)

            result = self._advance(state, t, dt)
            if result is not None:
                return self._finalize(state, result)
            t += dt

            if fast:
                k = self._quiescent_ticks(state, t, dt, controller)
                if k > 0:
                    t = self._bulk_advance(state, t, dt, k)
                    if aud is not None:
                        aud.segment(t, k)

    # -- tick phases -------------------------------------------------------

    def _roll_billing(self, state: "_RunState", t: float) -> None:
        """Commit billing hours whose boundary has been reached."""
        for inst in state.instances.values():
            if not inst.is_running:
                continue
            while inst.billing.hour_end() <= t + 1e-6:
                boundary = inst.billing.hour_end()
                inst.billing.roll_hour(self.oracle.price(inst.zone, boundary))
                state.log(boundary, "hour-rolled", inst.zone,
                          f"rate={inst.billing.rate:.3f}")

    def _market_transitions(self, state: "_RunState", t: float) -> None:
        """Lines 2–8: terminate out-of-bid zones, mark eligible ones."""
        ctx = None
        for zone in state.active_zones:
            inst = state.instances[zone]
            price = self.oracle.price(zone, t)
            if inst.is_running:
                if price > state.bid:
                    inst.provider_terminate()
                    state.release_on_commit.discard(zone)
                    state.log(t, "provider-terminated", zone, f"S={price:.3f}")
            else:
                if ctx is None:
                    ctx = self._make_ctx(state, t)
                if price <= state.bid and state.policy.eligible_to_start(
                    ctx, zone, price
                ):
                    if inst.state is ZoneState.DOWN:
                        inst.mark_waiting()
                        state.log(t, "waiting", zone, f"S={price:.3f}")
                elif inst.state is ZoneState.WAITING:
                    inst.mark_down()
        # zones outside the active set stay wherever they are (DOWN)

    def _deadline_guard(
        self, state: "_RunState", t: float, dt: float
    ) -> RunResult | None:
        """Line 11: switch to on-demand just in time to meet D.

        The guard evaluates the best achievable migration: checkpoint
        a computing leader (progress = its local run, overhead =
        ``t_c + t_r``), ride out an in-flight checkpoint (progress =
        its pending snapshot, overhead = remaining checkpoint time +
        ``t_r``), or restore the last committed checkpoint (overhead =
        ``t_r``).  Because a computing zone gains progress at wall
        speed, the guard margin never shrinks by more than one tick per
        tick, so checking with a one-tick cushion cannot overshoot.
        The final migration checkpoint is assumed to succeed (the same
        idealization the paper makes); its spot time is billed through
        the full final hour charged at user termination.
        """
        committed = state.store.committed_progress_s
        # The guard margin is measured on *committed* progress (the
        # paper's P): speculative progress can be destroyed by a
        # termination in the very next tick, so counting it could make
        # the trigger late.  Committed margin shrinks by at most one
        # tick per tick, so a one-tick cushion cannot be jumped over.
        # Policies that declare termination effectively impossible
        # (Large-bid) opt into counting speculative progress.
        guard_progress = committed
        if state.policy.trust_speculative:
            for inst in state.instances.values():
                if inst.state is ZoneState.COMPUTING:
                    guard_progress = max(guard_progress, inst.local_progress_s)
        def _wall_for(compute_s: float) -> float:
            if state.performance is None:
                return compute_s
            return state.performance.wall_time_for(compute_s, t)

        trigger_needed = (
            _wall_for(max(state.config.compute_s - guard_progress, 0.0))
            + state.config.ckpt_cost_s
            + state.config.restart_cost_s
        )
        remaining_time = state.deadline - t
        margin = remaining_time - trigger_needed

        # Forced commit: while speculative progress exists, burning the
        # last of the committed margin on an immediate checkpoint
        # converts it into guaranteed progress and restores the margin
        # — strictly better than migrating.  The window is wider than
        # one checkpoint duration, so the shrinking margin cannot skip
        # it, and even a termination mid-forced-checkpoint leaves one
        # tick of margin for the on-demand switch below.
        if margin > dt + 1e-6:
            if margin <= state.config.ckpt_cost_s + 3.0 * dt:
                self._force_commit(state, t)
            return None

        # Execute the cheapest migration actually available right now —
        # checkpoint a computing leader, ride out an in-flight
        # checkpoint, or restore the last committed checkpoint.  Every
        # candidate needs at most ``trigger_needed`` seconds, so the
        # deadline holds.  The second tuple element is the spot-side
        # overhead before the on-demand phase begins (a fresh start
        # with zero progress has no state to restore, so t_r applies
        # only when actual progress migrates).
        candidates: list[tuple[float, float]] = [(committed, 0.0)]
        for inst in state.instances.values():
            if inst.state is ZoneState.COMPUTING:
                candidates.append(
                    (inst.local_progress_s, state.config.ckpt_cost_s)
                )
            elif inst.state is ZoneState.CHECKPOINTING:
                candidates.append(
                    (inst.pending_checkpoint_progress_s, inst.phase_remaining_s)
                )
        def _restore_s(progress: float) -> float:
            return state.config.restart_cost_s if progress > 0 else 0.0

        progress, pre_od = min(
            candidates,
            key=lambda c: max(state.config.compute_s - c[0], 0.0)
            + c[1]
            + _restore_s(c[0]),
        )
        overhead = pre_od + _restore_s(progress)
        remaining_compute = _wall_for(max(state.config.compute_s - progress, 0.0))

        # Switch: checkpoint the leader (if computing), stop all spot
        # instances, finish the remainder on on-demand.
        state.log(t, "ondemand-switch", None,
                  f"C_r={remaining_compute:.0f}s T_r={remaining_time:.0f}s")
        for inst in state.instances.values():
            if inst.is_running:
                inst.user_release(t, reason="user")
        finish = t + overhead + remaining_compute
        od_seconds = _restore_s(progress) + remaining_compute
        od_cost = (
            math.ceil(od_seconds / 3600.0) * ON_DEMAND_PRICE if od_seconds > 0 else 0.0
        )
        return RunResult(
            policy_name=state.policy.name,
            bid=state.bid,
            zones=state.active_zones,
            start_time=state.start_time,
            finish_time=finish,
            deadline=state.deadline,
            completed_on="ondemand",
            spot_cost=0.0,  # filled by _finalize
            ondemand_cost=od_cost,
            num_checkpoints=state.store.num_checkpoints,
            num_restarts=0,
            num_provider_terminations=0,
            ondemand_switch_time=t,
        )

    def _policy_actions(self, state: "_RunState", t: float) -> None:
        """Checkpoint condition and waiting-zone restarts (lines 16–35)."""
        ctx = self._make_ctx(state, t)
        policy = state.policy

        # Line 23: a committed checkpoint re-arms the schedule for the
        # zones that keep running.
        if state.checkpoint_just_committed:
            policy.schedule_next_checkpoint(ctx)

        # One checkpoint in flight at a time, taken by the leader.
        leader = ctx.leader()
        any_checkpointing = any(
            i.state is ZoneState.CHECKPOINTING for i in state.instances.values()
        )
        # Join-commit: an eligible zone in WAITING can only start from a
        # checkpoint (Algorithm 1 lines 19-24), so redundancy is real
        # only if checkpoints actually happen while it waits.  When the
        # computation is thin (fewer than two zones carrying it) and the
        # leader has accumulated at least one checkpoint's worth of
        # uncommitted progress, commit now to bring a waiting replica
        # in.  With two or more zones already computing, waiting zones
        # join at the policy's own cadence — rejoining on every price
        # dip would buy little safety and pay for extra instance-hours.
        waiting_exists = any(
            state.instances[z].state is ZoneState.WAITING
            for z in state.active_zones
        )
        running_count = sum(
            1 for z in state.active_zones if state.instances[z].is_running
        )
        join_due = (
            waiting_exists
            and running_count < 2
            and leader is not None
            and leader.local_progress_s
            >= state.store.committed_progress_s + state.config.ckpt_cost_s
        )
        if (
            leader is not None
            and not any_checkpointing
            and (join_due or policy.checkpoint_due(ctx, leader))
        ):
            leader.begin_checkpoint(t, state.config.ckpt_cost_s)
            state.log(t, "checkpoint-started", leader.zone,
                      f"P={leader.pending_checkpoint_progress_s:.0f}s")
            if policy.release_after_checkpoint(ctx, leader):
                state.release_on_commit.add(leader.zone)

        waiting = [
            i
            for z, i in state.instances.items()
            if z in state.active_zones and i.state is ZoneState.WAITING
        ]
        if not waiting:
            state.checkpoint_just_committed = False
            return
        any_running = any(
            i.is_running
            for z, i in state.instances.items()
            if z in state.active_zones
        )
        if not any_running or state.checkpoint_just_committed:
            source = "recent" if state.checkpoint_just_committed else "previous"
            for inst in waiting:
                self._start_instance(state, inst, t)
                state.log(t, "restarted", inst.zone,
                          f"from-{source}-ckpt P={state.store.committed_progress_s:.0f}s")
            policy.schedule_next_checkpoint(self._make_ctx(state, t))
        state.checkpoint_just_committed = False

    def _advance(self, state: "_RunState", t: float, dt: float) -> RunResult | None:
        """Advance all running zones one tick; handle commits/completion."""
        finish: float | None = None
        rate = 1.0
        if state.performance is not None:
            rate = state.performance.rate_at(t)
        for inst in state.instances.values():
            if not inst.is_running:
                continue
            committed, completion = inst.advance(
                t, dt, state.config.compute_s, compute_rate=rate
            )
            if committed >= 0.0:
                state.store.commit(t + dt, committed, inst.zone)
                state.checkpoint_just_committed = True
                state.log(t + dt, "checkpoint-committed", inst.zone,
                          f"P={committed:.0f}s")
                if inst.zone in state.release_on_commit:
                    state.release_on_commit.discard(inst.zone)
                    inst.user_release(t + dt, reason="user")
                    state.log(t + dt, "user-released", inst.zone, "cost-control")
            if completion is not None:
                finish = t + completion if finish is None else min(finish, t + completion)
        if finish is None:
            return None
        for inst in state.instances.values():
            if inst.is_running:
                inst.user_release(finish, reason="complete")
        state.log(finish, "completed", None, "on spot")
        return RunResult(
            policy_name=state.policy.name,
            bid=state.bid,
            zones=state.active_zones,
            start_time=state.start_time,
            finish_time=finish,
            deadline=state.deadline,
            completed_on="spot",
            spot_cost=0.0,  # filled by _finalize
            ondemand_cost=0.0,
            num_checkpoints=state.store.num_checkpoints,
            num_restarts=0,
            num_provider_terminations=0,
        )

    # -- segment-skipping fast path ----------------------------------------

    def _quiescent_ticks(
        self, state: "_RunState", t: float, dt: float, controller: Controller | None
    ) -> int:
        """Number of upcoming ticks, starting with the one at ``t``,
        that are provably no-ops except for compute-progress accrual
        and deterministic billing rolls.

        A tick is quiescent when no market transition, checkpoint
        start/commit, restart, deadline-guard action, completion or
        controller evaluation can occur at it.  Each hazard yields an
        upper bound on the skippable stretch:

        * next crossing of ``price <= threshold`` in any active zone
          (bid for running zones, the policy's start threshold for
          down/waiting ones), from the trace's shared crossing index;
        * the deadline guard's forced-commit window, approached at most
          one tick of margin per tick;
        * the leader reaching C (completion) or the join-commit
          progress threshold;
        * the policy's own ``fast_forward_until`` schedule;
        * with a controller attached: the next billing-hour boundary
          (a decision point) and the controller's re-evaluation timer.

        Every bound is conservative — stopping early only costs a full
        tick that then behaves exactly like the reference engine — so
        the fast path's results are bit-identical to ``"tick"`` mode.
        """
        instances = state.instances
        active = state.active_zones
        computing: list[ZoneInstance] = []
        transient: list[ZoneInstance] = []
        running_count = 0
        waiting = False
        for zone, inst in instances.items():
            s = inst.state
            if s is ZoneState.COMPUTING:
                computing.append(inst)
                running_count += 1
            elif s is ZoneState.WAITING:
                waiting = True
            elif s is ZoneState.QUEUING or s is ZoneState.RESTARTING:
                # timed countdown: quiescent until the phase runs out
                transient.append(inst)
                running_count += 1
            elif s is not ZoneState.DOWN:
                return 0  # a checkpoint is in flight: commits next tick
        drop_commit_flag = False
        if state.checkpoint_just_committed:
            if waiting or not state.policy.reschedule_is_noop:
                return 0  # restarts / re-arming need the post-commit tick
            # The post-commit tick's only remaining effect would be
            # dropping this flag (reschedule is a no-op and nothing is
            # waiting to restart) — if every other hazard clears too,
            # drop it on the way out and keep skipping.  Any early
            # ``return 0`` below leaves the flag for the full tick.
            drop_commit_flag = True
        if running_count == 0 and (waiting or controller is not None):
            return 0  # restarts fire now / controller evaluates every tick

        k = 1 << 30
        config = state.config
        bid = state.bid
        zone_traces = state.zone_traces
        crossing = state.next_crossing
        aud = self.auditor
        start_theta = -1.0  # computed lazily; prices are positive

        # market transitions: stop at the next availability crossing.
        # All zone traces share one grid, so the index is computed once.
        ref = zone_traces[active[0]]
        i = int((t - ref.start_time) // ref.interval_s)
        for zone in active:
            inst = instances[zone]
            z = zone_traces[zone]
            if inst.is_running:  # computing / queuing / restarting
                theta = bid
                if z.prices[i] > theta:
                    return 0  # termination due this tick
            else:
                if start_theta < 0.0:
                    start_theta = min(
                        bid, state.policy.start_price_threshold(bid)
                    )
                theta = start_theta
                if bool(z.prices[i] <= theta) != (
                    inst.state is ZoneState.WAITING
                ):
                    return 0  # down/waiting flip due this tick
            key = (zone, theta)
            nc = crossing.get(key)
            if aud is not None:
                aud.crossing_cache(nc is not None and nc > i)
            if nc is None or nc <= i:
                nc = z.next_threshold_crossing(i, theta)
                crossing[key] = nc
            if nc - i < k:
                k = nc - i
                if k <= 0:
                    return 0

        # queue / restore countdowns: stop before a phase runs out (the
        # 1e-6 cushion keeps the remainder clear of advance()'s 1e-9
        # exhaustion tolerance, repeated-subtraction drift included)
        for inst in transient:
            n = int((inst.phase_remaining_s - 1e-6) // dt)
            if n < 1:
                return 0
            if n < k:
                k = n

        # deadline guard: margin shrinks at most one tick per tick
        committed = state.store.committed_progress_s
        guard_progress = committed
        if state.policy.trust_speculative:
            for inst in computing:
                local = inst.base_progress_s + inst.computed_s
                if local > guard_progress:
                    guard_progress = local
        margin = (
            (state.deadline - t)
            - max(config.compute_s - guard_progress, 0.0)
            - config.ckpt_cost_s
            - config.restart_cost_s
        )
        k = min(k, math.floor((margin - config.ckpt_cost_s - 3.0 * dt) / dt) - 1)
        if k <= 0:
            return 0

        if computing:
            # completion: the leader gains exactly dt per quiescent tick
            max_local = max(
                inst.base_progress_s + inst.computed_s for inst in computing
            )
            k = min(k, math.floor((config.compute_s - max_local) / dt) - 2)
            if k <= 0:
                return 0
            # join-commit: fires once the leader is t_c ahead of the store
            if waiting and running_count < 2:
                k = min(
                    k,
                    math.floor(
                        (committed + config.ckpt_cost_s - max_local) / dt
                    )
                    - 1,
                )
                if k <= 0:
                    return 0
            # the policy's own checkpoint schedule, via the reusable ctx
            ctx = state.fast_ctx
            ctx.now = t
            ctx.bid = bid
            ctx.zones = active
            horizon = state.policy.fast_forward_until(ctx)
            if not math.isinf(horizon):
                k = min(k, int(math.ceil((horizon - t - 1e-6) / dt)))
                if k <= 0:
                    return 0

        if controller is not None:
            horizon = controller.next_decision_time(t)
            if horizon is None:
                return 0
            k = min(k, int(math.ceil((horizon - t - 1e-6) / dt)))
            if k <= 0:
                return 0
            # hour boundaries are decision points (rule 2): stop on them
            for inst in computing + transient:
                k = min(k, int(round((inst.billing.hour_end() - t) / dt)))
                if k <= 0:
                    return 0

        if drop_commit_flag:
            state.checkpoint_just_committed = False
        return k

    def _bulk_advance(
        self, state: "_RunState", t: float, dt: float, k: int
    ) -> float:
        """Apply ``k`` quiescent ticks in bulk; returns the new clock.

        Replays exactly what the reference loop would have done on
        these ticks — billing hours roll at their boundaries (same
        instance order, same price lookups, same event log entries),
        each computing zone's ``computed_s`` accrues ``dt`` per tick as
        a repeated float addition, and queue/restore countdowns shed
        ``dt`` per tick — so state after the jump is bit-identical to
        ticking through.
        """
        accruing: list[tuple[ZoneInstance, bool]] = []  # (inst, computing?)
        for inst in state.instances.values():
            s = inst.state
            if s is ZoneState.COMPUTING:
                accruing.append((inst, True))
            elif s is ZoneState.QUEUING or s is ZoneState.RESTARTING:
                accruing.append((inst, False))
        if not accruing:
            # nothing running: nothing rolls, nothing accrues
            if t.is_integer():  # grid times are integral: closed form is exact
                return t + k * dt
            for _ in range(k):
                t += dt
            return t
        last = t + (k - 1) * dt
        if t.is_integer():  # grid times are integral: closed forms are exact
            # Billing hours roll at their exact boundary times, per
            # instance; when recording, log entries are re-merged into
            # the reference loop's (tick, instance) emission order.
            # Progress accrues in closed form when the accumulator is
            # integral (exact below 2**53); fractional accumulators
            # (queue-delay remainders) replay the float ops on a local.
            entries = []
            recording = state.record or state.aud is not None
            for idx, (inst, is_computing) in enumerate(accruing):
                while inst.billing.hour_end() <= last + 1e-6:
                    boundary = inst.billing.hour_end()
                    inst.billing.roll_hour(self.oracle.price(inst.zone, boundary))
                    if recording:
                        tick = int(math.ceil((boundary - t - 1e-6) / dt))
                        entries.append(
                            (max(tick, 0), idx, boundary, inst.zone,
                             f"rate={inst.billing.rate:.3f}")
                        )
                if is_computing:
                    cs = inst.computed_s
                    if cs.is_integer():
                        inst.computed_s = cs + k * dt
                    else:
                        for _ in range(k):
                            cs += dt
                        inst.computed_s = cs
                else:
                    ph = inst.phase_remaining_s
                    if ph.is_integer():
                        inst.phase_remaining_s = ph - k * dt
                    else:
                        for _ in range(k):
                            ph -= dt
                        inst.phase_remaining_s = ph
            if entries:
                entries.sort(key=lambda e: (e[0], e[1]))
                for _, _, boundary, zone, detail in entries:
                    state.log(boundary, "hour-rolled", zone, detail)
            return t + k * dt
        for _ in range(k):
            for inst, is_computing in accruing:
                while inst.billing.hour_end() <= t + 1e-6:
                    boundary = inst.billing.hour_end()
                    inst.billing.roll_hour(self.oracle.price(inst.zone, boundary))
                    state.log(boundary, "hour-rolled", inst.zone,
                              f"rate={inst.billing.rate:.3f}")
                if is_computing:
                    inst.computed_s += dt
                else:
                    inst.phase_remaining_s -= dt
            t += dt
        return t

    # -- helpers -----------------------------------------------------------

    def _snapshot(self, state: "_RunState", t: float) -> None:
        committed = state.store.committed_progress_s
        leading = committed
        for inst in state.instances.values():
            if inst.state in (ZoneState.COMPUTING, ZoneState.CHECKPOINTING):
                leading = max(leading, inst.local_progress_s)
        state.timeline.append(
            TimelinePoint(
                time=t,
                zone_states=tuple(
                    (z, state.instances[z].state.value)
                    for z in self.oracle.zone_names
                ),
                committed_progress_s=committed,
                leading_progress_s=leading,
            )
        )

    def _force_commit(self, state: "_RunState", t: float) -> None:
        """Deadline-pressure checkpoint of the leading computing zone.

        No-op when a checkpoint is already in flight (its commit will
        restore the margin) or no zone holds uncommitted progress.
        """
        if any(
            i.state is ZoneState.CHECKPOINTING for i in state.instances.values()
        ):
            return
        computing = [
            i
            for i in state.instances.values()
            if i.state is ZoneState.COMPUTING
        ]
        if not computing:
            return
        leader = max(computing, key=lambda i: i.local_progress_s)
        if leader.local_progress_s <= state.store.committed_progress_s + 1e-9:
            return
        leader.begin_checkpoint(t, state.config.ckpt_cost_s)
        state.log(t, "checkpoint-started", leader.zone,
                  f"forced P={leader.pending_checkpoint_progress_s:.0f}s")

    def _start_instance(self, state: "_RunState", inst: ZoneInstance, t: float) -> None:
        delay = self.queue_model.sample(self.rng)
        self._rng_draws += 1
        committed = state.store.committed_progress_s
        # a fresh start (no checkpoint yet) has no state to restore
        restore = state.config.restart_cost_s if committed > 0 else 0.0
        inst.start(
            now=t,
            spot_price=self.oracle.price(inst.zone, t),
            queue_delay_s=delay,
            restart_cost_s=restore,
            from_progress_s=committed,
        )
        if state.aud is not None:
            state.aud.restore(inst.zone, t, committed)

    def _apply_switch(self, state: "_RunState", t: float, decision: SwitchDecision) -> None:
        """Apply a controller's (bid, zones, policy) re-configuration."""
        for z in decision.zones:
            if z not in self.oracle.zone_names:
                raise EngineError(f"controller chose unknown zone {z!r}")
        dropped = set(state.active_zones) - set(decision.zones)
        for z in dropped:
            inst = state.instances[z]
            if inst.is_running:
                inst.user_release(t, reason="user")
                state.log(t, "user-released", z, "config-switch")
            elif inst.state is ZoneState.WAITING:
                inst.mark_down()
        state.bid = decision.bid
        state.active_zones = tuple(decision.zones)
        state.policy = decision.policy
        ctx = self._make_ctx(state, t)
        state.policy.reset(ctx)
        state.policy.schedule_next_checkpoint(ctx)
        state.log(
            t,
            "config-switch",
            None,
            f"policy={decision.policy.name} B={decision.bid:.2f} "
            f"N={len(decision.zones)}",
        )

    def _make_ctx(self, state: "_RunState", t: float) -> PolicyContext:
        return PolicyContext(
            now=t,
            bid=state.bid,
            zones=state.active_zones,
            oracle=self.oracle,
            config=state.config,
            run=state.run_view,
            instances=state.instances,
        )

    def _finalize(self, state: "_RunState", result: RunResult) -> RunResult:
        spot_cost = sum(i.billing.total_cost for i in state.instances.values())
        open_meters = [
            i.zone for i in state.instances.values() if i.billing.is_open
        ]
        if open_meters:  # pragma: no cover - internal invariant
            raise EngineError(f"billing meters left open: {open_meters}")
        result = replace(
            result,
            spot_cost=spot_cost,
            spot_hours_charged=sum(
                i.billing.hours_charged for i in state.instances.values()
            ),
            num_restarts=sum(i.num_restarts for i in state.instances.values()),
            num_provider_terminations=sum(
                i.num_provider_terminations for i in state.instances.values()
            ),
            events=tuple(state.events) if self.record_events else (),
            timeline=tuple(state.timeline) if self.record_timeline else (),
        )
        if state.aud is not None:
            return state.aud.finish_run(result)
        return result


@dataclass
class _RunState:
    """Mutable state of one run (internal)."""

    config: ExperimentConfig
    policy: CheckpointPolicy
    bid: float
    active_zones: tuple[str, ...]
    start_time: float
    deadline: float
    store: CheckpointStore
    instances: dict[str, ZoneInstance]
    run_view: ApplicationRun | None = None  # set right after construction
    checkpoint_just_committed: bool = False
    release_on_commit: set[str] = field(default_factory=set)
    record: bool = False
    events: list[Event] = field(default_factory=list)
    timeline: list[TimelinePoint] = field(default_factory=list)
    deadline_schedule: DeadlineSchedule | None = None
    performance: PerformanceProfile | None = None
    # fast-path scratch: per-zone trace objects (shared grid), a cache of
    # next-crossing indices keyed (zone, threshold), and a reusable
    # PolicyContext for the per-stretch fast_forward_until hook.
    zone_traces: dict = field(default_factory=dict)
    next_crossing: dict = field(default_factory=dict)
    fast_ctx: PolicyContext | None = None
    #: Attached run auditor, or None (audit off).
    aud: "RunAuditor | None" = None

    def log(self, time: float, kind: str, zone: str | None, detail: str = "") -> None:
        if self.record:
            self.events.append(Event(time=time, kind=kind, zone=zone, detail=detail))
        if self.aud is not None:
            self.aud.event(time, kind, zone, detail)
