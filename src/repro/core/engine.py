"""Algorithm 1 — the multi-zone checkpoint-scheduling execution engine.

This is the paper's framework (Section 3.2) made executable against a
price trace:

* per-zone instance state driven by bid vs. spot price (lines 2–8 of
  Algorithm 1), including the *waiting* state that lets an eligible
  zone receive a checkpoint before starting;
* the deadline guard (line 11): when the remaining wall-clock time
  equals the remaining computation plus migration overhead, checkpoint
  and finish on the on-demand market — this is what turns a spot-market
  heuristic into a *guaranteed* time-constrained run;
* pluggable ``CheckpointCondition()`` / ``ScheduleNextCheckpoint()``
  via :class:`~repro.core.policy.CheckpointPolicy`;
* an optional :class:`Controller` hook that lets the Adaptive policy
  re-choose (bid, zone set, policy) at its decision points.

Time advances in 5-minute ticks (the price-sampling interval); timed
activities inside a tick (checkpoints, restarts, queuing remainders)
are accounted at seconds granularity by the per-zone state machine.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro.app.application import ApplicationRun
from repro.app.checkpoint import CheckpointStore
from repro.app.dynamics import DeadlineSchedule, PerformanceProfile
from repro.app.workload import ExperimentConfig
from repro.core.policy import CheckpointPolicy, PolicyContext
from repro.market.constants import ON_DEMAND_PRICE, SAMPLE_INTERVAL_S
from repro.market.instance import ZoneInstance, ZoneState
from repro.market.queuing import QueueDelayModel
from repro.market.spot_market import PriceOracle


class EngineError(RuntimeError):
    """Raised when a run cannot be simulated (e.g. trace too short)."""


@dataclass(frozen=True)
class Event:
    """One notable simulation event, for narration and debugging."""

    time: float
    kind: str
    zone: str | None = None
    detail: str = ""


@dataclass(frozen=True)
class TimelinePoint:
    """Per-tick snapshot for Figure 1/3-style timeline rendering."""

    time: float
    #: ``(zone, ZoneState.value)`` for every zone, in trace order.
    zone_states: tuple[tuple[str, str], ...]
    committed_progress_s: float
    leading_progress_s: float


@dataclass(frozen=True)
class SwitchDecision:
    """A controller's re-configuration: new bid, zone set, and policy."""

    bid: float
    zones: tuple[str, ...]
    policy: CheckpointPolicy


class Controller(abc.ABC):
    """Run-time re-configuration hook (the Adaptive scheme's seat)."""

    def reset(self, ctx: PolicyContext) -> None:
        """Called once at experiment start."""

    @abc.abstractmethod
    def decide(self, ctx: PolicyContext) -> SwitchDecision | None:
        """Return a new configuration, or ``None`` to keep the current one."""


@dataclass(frozen=True)
class RunResult:
    """Outcome of one simulated experiment.

    Costs are *per instance* (one node per zone), exactly the unit of
    the paper's figures; multiply by ``config.num_nodes`` for a whole
    allocation.
    """

    policy_name: str
    bid: float
    zones: tuple[str, ...]
    start_time: float
    finish_time: float
    deadline: float
    completed_on: str  # "spot" or "ondemand"
    spot_cost: float
    ondemand_cost: float
    num_checkpoints: int
    num_restarts: int
    num_provider_terminations: int
    ondemand_switch_time: float | None = None
    #: committed spot billing hours across all zones
    spot_hours_charged: int = 0
    events: tuple[Event, ...] = ()
    timeline: tuple[TimelinePoint, ...] = ()

    @property
    def total_cost(self) -> float:
        return self.spot_cost + self.ondemand_cost

    @property
    def met_deadline(self) -> bool:
        return self.finish_time <= self.deadline + 1e-6

    @property
    def makespan_s(self) -> float:
        return self.finish_time - self.start_time


@dataclass
class SpotSimulator:
    """Trace-driven simulator of Algorithm 1.

    Parameters
    ----------
    oracle:
        Price oracle over the evaluation trace (shared across runs so
        its statistical caches amortize over the 80 experiments).
    queue_model:
        Spot acquisition delay model.
    rng:
        Randomness source for queuing delays.  Each call of
        :meth:`run` consumes from it, so construct one per experiment
        stream for reproducibility.
    record_events:
        Keep the full event log on the result (off by default: the
        evaluation harness runs tens of thousands of experiments).
    """

    oracle: PriceOracle
    queue_model: QueueDelayModel
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))
    record_events: bool = False
    #: Record a per-tick state snapshot (for timeline rendering).
    record_timeline: bool = False

    # ------------------------------------------------------------------

    def run(
        self,
        config: ExperimentConfig,
        policy: CheckpointPolicy,
        bid: float,
        zones: tuple[str, ...],
        start_time: float,
        controller: Controller | None = None,
        deadline_schedule: "DeadlineSchedule | None" = None,
        performance: "PerformanceProfile | None" = None,
    ) -> RunResult:
        """Simulate one experiment; returns its :class:`RunResult`.

        ``deadline_schedule`` and ``performance`` realize Section 3.2's
        run-time dynamics: because the engine re-reads ``T_r`` and ``P``
        every tick, user deadline changes take effect at the next tick,
        and performance variation simply scales progress accrual.  A
        deadline *contraction* that is already infeasible when it
        arrives triggers an immediate migration; the result then
        reports ``met_deadline=False`` honestly (no scheduler can
        rewind wall-clock time).  The guard converts remaining compute
        to wall time with the *current* performance factor (capped at
        nominal), the strongest statement possible without foresight
        of future slowdowns.
        """
        if not zones:
            raise EngineError("at least one zone is required")
        for z in zones:
            if z not in self.oracle.zone_names:
                raise EngineError(f"zone {z!r} not in trace {self.oracle.zone_names}")
        if bid <= 0:
            raise EngineError(f"bid must be positive, got {bid}")
        deadline = start_time + config.deadline_s
        if deadline > self.oracle.trace.end_time:
            raise EngineError(
                f"trace ends at {self.oracle.trace.end_time}, before the "
                f"deadline {deadline}"
            )

        state = _RunState(
            config=config,
            policy=policy,
            bid=bid,
            active_zones=tuple(zones),
            start_time=start_time,
            deadline=deadline,
            store=CheckpointStore(),
            instances={z: ZoneInstance(zone=z) for z in self.oracle.zone_names},
            record=self.record_events,
        )
        state.run_view = ApplicationRun(
            config=config, start_time=start_time, store=state.store
        )
        ctx = self._make_ctx(state, start_time)
        policy.reset(ctx)
        policy.schedule_next_checkpoint(ctx)
        if controller is not None:
            controller.reset(ctx)

        state.deadline_schedule = deadline_schedule
        state.performance = performance

        dt = float(SAMPLE_INTERVAL_S)
        t = float(start_time)
        while True:
            if deadline_schedule is not None:
                new_deadline = deadline_schedule.deadline_at(t, deadline)
                if new_deadline != state.deadline:
                    state.log(t, "deadline-updated", None,
                              f"D={new_deadline:.0f}")
                    state.deadline = new_deadline
            self._roll_billing(state, t)
            self._market_transitions(state, t)
            if self.record_timeline:
                self._snapshot(state, t)

            result = self._deadline_guard(state, t, dt)
            if result is not None:
                return self._finalize(state, result)

            if controller is not None:
                decision = controller.decide(self._make_ctx(state, t))
                if decision is not None:
                    self._apply_switch(state, t, decision)

            self._policy_actions(state, t)

            result = self._advance(state, t, dt)
            if result is not None:
                return self._finalize(state, result)
            t += dt

    # -- tick phases -------------------------------------------------------

    def _roll_billing(self, state: "_RunState", t: float) -> None:
        """Commit billing hours whose boundary has been reached."""
        for inst in state.instances.values():
            if not inst.is_running:
                continue
            while inst.billing.hour_end() <= t + 1e-6:
                boundary = inst.billing.hour_end()
                inst.billing.roll_hour(self.oracle.price(inst.zone, boundary))
                state.log(boundary, "hour-rolled", inst.zone,
                          f"rate={inst.billing.rate:.3f}")

    def _market_transitions(self, state: "_RunState", t: float) -> None:
        """Lines 2–8: terminate out-of-bid zones, mark eligible ones."""
        ctx = None
        for zone in state.active_zones:
            inst = state.instances[zone]
            price = self.oracle.price(zone, t)
            if inst.is_running:
                if price > state.bid:
                    inst.provider_terminate()
                    state.release_on_commit.discard(zone)
                    state.log(t, "provider-terminated", zone, f"S={price:.3f}")
            else:
                if ctx is None:
                    ctx = self._make_ctx(state, t)
                if price <= state.bid and state.policy.eligible_to_start(
                    ctx, zone, price
                ):
                    if inst.state is ZoneState.DOWN:
                        inst.mark_waiting()
                        state.log(t, "waiting", zone, f"S={price:.3f}")
                elif inst.state is ZoneState.WAITING:
                    inst.mark_down()
        # zones outside the active set stay wherever they are (DOWN)

    def _deadline_guard(
        self, state: "_RunState", t: float, dt: float
    ) -> RunResult | None:
        """Line 11: switch to on-demand just in time to meet D.

        The guard evaluates the best achievable migration: checkpoint
        a computing leader (progress = its local run, overhead =
        ``t_c + t_r``), ride out an in-flight checkpoint (progress =
        its pending snapshot, overhead = remaining checkpoint time +
        ``t_r``), or restore the last committed checkpoint (overhead =
        ``t_r``).  Because a computing zone gains progress at wall
        speed, the guard margin never shrinks by more than one tick per
        tick, so checking with a one-tick cushion cannot overshoot.
        The final migration checkpoint is assumed to succeed (the same
        idealization the paper makes); its spot time is billed through
        the full final hour charged at user termination.
        """
        committed = state.store.committed_progress_s
        # The guard margin is measured on *committed* progress (the
        # paper's P): speculative progress can be destroyed by a
        # termination in the very next tick, so counting it could make
        # the trigger late.  Committed margin shrinks by at most one
        # tick per tick, so a one-tick cushion cannot be jumped over.
        # Policies that declare termination effectively impossible
        # (Large-bid) opt into counting speculative progress.
        guard_progress = committed
        if state.policy.trust_speculative:
            for inst in state.instances.values():
                if inst.state is ZoneState.COMPUTING:
                    guard_progress = max(guard_progress, inst.local_progress_s)
        def _wall_for(compute_s: float) -> float:
            if state.performance is None:
                return compute_s
            return state.performance.wall_time_for(compute_s, t)

        trigger_needed = (
            _wall_for(max(state.config.compute_s - guard_progress, 0.0))
            + state.config.ckpt_cost_s
            + state.config.restart_cost_s
        )
        remaining_time = state.deadline - t
        margin = remaining_time - trigger_needed

        # Forced commit: while speculative progress exists, burning the
        # last of the committed margin on an immediate checkpoint
        # converts it into guaranteed progress and restores the margin
        # — strictly better than migrating.  The window is wider than
        # one checkpoint duration, so the shrinking margin cannot skip
        # it, and even a termination mid-forced-checkpoint leaves one
        # tick of margin for the on-demand switch below.
        if margin > dt + 1e-6:
            if margin <= state.config.ckpt_cost_s + 3.0 * dt:
                self._force_commit(state, t)
            return None

        # Execute the cheapest migration actually available right now —
        # checkpoint a computing leader, ride out an in-flight
        # checkpoint, or restore the last committed checkpoint.  Every
        # candidate needs at most ``trigger_needed`` seconds, so the
        # deadline holds.  The second tuple element is the spot-side
        # overhead before the on-demand phase begins (a fresh start
        # with zero progress has no state to restore, so t_r applies
        # only when actual progress migrates).
        candidates: list[tuple[float, float]] = [(committed, 0.0)]
        for inst in state.instances.values():
            if inst.state is ZoneState.COMPUTING:
                candidates.append(
                    (inst.local_progress_s, state.config.ckpt_cost_s)
                )
            elif inst.state is ZoneState.CHECKPOINTING:
                candidates.append(
                    (inst.pending_checkpoint_progress_s, inst.phase_remaining_s)
                )
        def _restore_s(progress: float) -> float:
            return state.config.restart_cost_s if progress > 0 else 0.0

        progress, pre_od = min(
            candidates,
            key=lambda c: max(state.config.compute_s - c[0], 0.0)
            + c[1]
            + _restore_s(c[0]),
        )
        overhead = pre_od + _restore_s(progress)
        remaining_compute = _wall_for(max(state.config.compute_s - progress, 0.0))

        # Switch: checkpoint the leader (if computing), stop all spot
        # instances, finish the remainder on on-demand.
        state.log(t, "ondemand-switch", None,
                  f"C_r={remaining_compute:.0f}s T_r={remaining_time:.0f}s")
        for inst in state.instances.values():
            if inst.is_running:
                inst.user_release(t, reason="user")
        finish = t + overhead + remaining_compute
        od_seconds = _restore_s(progress) + remaining_compute
        od_cost = (
            math.ceil(od_seconds / 3600.0) * ON_DEMAND_PRICE if od_seconds > 0 else 0.0
        )
        return RunResult(
            policy_name=state.policy.name,
            bid=state.bid,
            zones=state.active_zones,
            start_time=state.start_time,
            finish_time=finish,
            deadline=state.deadline,
            completed_on="ondemand",
            spot_cost=0.0,  # filled by _finalize
            ondemand_cost=od_cost,
            num_checkpoints=state.store.num_checkpoints,
            num_restarts=0,
            num_provider_terminations=0,
            ondemand_switch_time=t,
        )

    def _policy_actions(self, state: "_RunState", t: float) -> None:
        """Checkpoint condition and waiting-zone restarts (lines 16–35)."""
        ctx = self._make_ctx(state, t)
        policy = state.policy

        # Line 23: a committed checkpoint re-arms the schedule for the
        # zones that keep running.
        if state.checkpoint_just_committed:
            policy.schedule_next_checkpoint(ctx)

        # One checkpoint in flight at a time, taken by the leader.
        leader = ctx.leader()
        any_checkpointing = any(
            i.state is ZoneState.CHECKPOINTING for i in state.instances.values()
        )
        # Join-commit: an eligible zone in WAITING can only start from a
        # checkpoint (Algorithm 1 lines 19-24), so redundancy is real
        # only if checkpoints actually happen while it waits.  When the
        # computation is thin (fewer than two zones carrying it) and the
        # leader has accumulated at least one checkpoint's worth of
        # uncommitted progress, commit now to bring a waiting replica
        # in.  With two or more zones already computing, waiting zones
        # join at the policy's own cadence — rejoining on every price
        # dip would buy little safety and pay for extra instance-hours.
        waiting_exists = any(
            state.instances[z].state is ZoneState.WAITING
            for z in state.active_zones
        )
        running_count = sum(
            1 for z in state.active_zones if state.instances[z].is_running
        )
        join_due = (
            waiting_exists
            and running_count < 2
            and leader is not None
            and leader.local_progress_s
            >= state.store.committed_progress_s + state.config.ckpt_cost_s
        )
        if (
            leader is not None
            and not any_checkpointing
            and (join_due or policy.checkpoint_due(ctx, leader))
        ):
            leader.begin_checkpoint(t, state.config.ckpt_cost_s)
            state.log(t, "checkpoint-started", leader.zone,
                      f"P={leader.pending_checkpoint_progress_s:.0f}s")
            if policy.release_after_checkpoint(ctx, leader):
                state.release_on_commit.add(leader.zone)

        waiting = [
            i
            for z, i in state.instances.items()
            if z in state.active_zones and i.state is ZoneState.WAITING
        ]
        if not waiting:
            state.checkpoint_just_committed = False
            return
        any_running = any(
            i.is_running
            for z, i in state.instances.items()
            if z in state.active_zones
        )
        if not any_running or state.checkpoint_just_committed:
            source = "recent" if state.checkpoint_just_committed else "previous"
            for inst in waiting:
                self._start_instance(state, inst, t)
                state.log(t, "restarted", inst.zone,
                          f"from-{source}-ckpt P={state.store.committed_progress_s:.0f}s")
            policy.schedule_next_checkpoint(self._make_ctx(state, t))
        state.checkpoint_just_committed = False

    def _advance(self, state: "_RunState", t: float, dt: float) -> RunResult | None:
        """Advance all running zones one tick; handle commits/completion."""
        finish: float | None = None
        rate = 1.0
        if state.performance is not None:
            rate = state.performance.rate_at(t)
        for inst in state.instances.values():
            if not inst.is_running:
                continue
            committed, completion = inst.advance(
                t, dt, state.config.compute_s, compute_rate=rate
            )
            if committed >= 0.0:
                state.store.commit(t + dt, committed, inst.zone)
                state.checkpoint_just_committed = True
                state.log(t + dt, "checkpoint-committed", inst.zone,
                          f"P={committed:.0f}s")
                if inst.zone in state.release_on_commit:
                    state.release_on_commit.discard(inst.zone)
                    inst.user_release(t + dt, reason="user")
                    state.log(t + dt, "user-released", inst.zone, "cost-control")
            if completion is not None:
                finish = t + completion if finish is None else min(finish, t + completion)
        if finish is None:
            return None
        for inst in state.instances.values():
            if inst.is_running:
                inst.user_release(finish, reason="complete")
        state.log(finish, "completed", None, "on spot")
        return RunResult(
            policy_name=state.policy.name,
            bid=state.bid,
            zones=state.active_zones,
            start_time=state.start_time,
            finish_time=finish,
            deadline=state.deadline,
            completed_on="spot",
            spot_cost=0.0,  # filled by _finalize
            ondemand_cost=0.0,
            num_checkpoints=state.store.num_checkpoints,
            num_restarts=0,
            num_provider_terminations=0,
        )

    # -- helpers -----------------------------------------------------------

    def _snapshot(self, state: "_RunState", t: float) -> None:
        committed = state.store.committed_progress_s
        leading = committed
        for inst in state.instances.values():
            if inst.state in (ZoneState.COMPUTING, ZoneState.CHECKPOINTING):
                leading = max(leading, inst.local_progress_s)
        state.timeline.append(
            TimelinePoint(
                time=t,
                zone_states=tuple(
                    (z, state.instances[z].state.value)
                    for z in self.oracle.zone_names
                ),
                committed_progress_s=committed,
                leading_progress_s=leading,
            )
        )

    def _force_commit(self, state: "_RunState", t: float) -> None:
        """Deadline-pressure checkpoint of the leading computing zone.

        No-op when a checkpoint is already in flight (its commit will
        restore the margin) or no zone holds uncommitted progress.
        """
        if any(
            i.state is ZoneState.CHECKPOINTING for i in state.instances.values()
        ):
            return
        computing = [
            i
            for i in state.instances.values()
            if i.state is ZoneState.COMPUTING
        ]
        if not computing:
            return
        leader = max(computing, key=lambda i: i.local_progress_s)
        if leader.local_progress_s <= state.store.committed_progress_s + 1e-9:
            return
        leader.begin_checkpoint(t, state.config.ckpt_cost_s)
        state.log(t, "checkpoint-started", leader.zone,
                  f"forced P={leader.pending_checkpoint_progress_s:.0f}s")

    def _start_instance(self, state: "_RunState", inst: ZoneInstance, t: float) -> None:
        delay = self.queue_model.sample(self.rng)
        committed = state.store.committed_progress_s
        # a fresh start (no checkpoint yet) has no state to restore
        restore = state.config.restart_cost_s if committed > 0 else 0.0
        inst.start(
            now=t,
            spot_price=self.oracle.price(inst.zone, t),
            queue_delay_s=delay,
            restart_cost_s=restore,
            from_progress_s=committed,
        )

    def _apply_switch(self, state: "_RunState", t: float, decision: SwitchDecision) -> None:
        """Apply a controller's (bid, zones, policy) re-configuration."""
        for z in decision.zones:
            if z not in self.oracle.zone_names:
                raise EngineError(f"controller chose unknown zone {z!r}")
        dropped = set(state.active_zones) - set(decision.zones)
        for z in dropped:
            inst = state.instances[z]
            if inst.is_running:
                inst.user_release(t, reason="user")
                state.log(t, "user-released", z, "config-switch")
            elif inst.state is ZoneState.WAITING:
                inst.mark_down()
        state.bid = decision.bid
        state.active_zones = tuple(decision.zones)
        state.policy = decision.policy
        ctx = self._make_ctx(state, t)
        state.policy.reset(ctx)
        state.policy.schedule_next_checkpoint(ctx)
        state.log(
            t,
            "config-switch",
            None,
            f"policy={decision.policy.name} B={decision.bid:.2f} "
            f"N={len(decision.zones)}",
        )

    def _make_ctx(self, state: "_RunState", t: float) -> PolicyContext:
        return PolicyContext(
            now=t,
            bid=state.bid,
            zones=state.active_zones,
            oracle=self.oracle,
            config=state.config,
            run=state.run_view,
            instances=state.instances,
        )

    def _finalize(self, state: "_RunState", result: RunResult) -> RunResult:
        spot_cost = sum(i.billing.total_cost for i in state.instances.values())
        open_meters = [
            i.zone for i in state.instances.values() if i.billing.is_open
        ]
        if open_meters:  # pragma: no cover - internal invariant
            raise EngineError(f"billing meters left open: {open_meters}")
        return replace(
            result,
            spot_cost=spot_cost,
            spot_hours_charged=sum(
                i.billing.hours_charged for i in state.instances.values()
            ),
            num_restarts=sum(i.num_restarts for i in state.instances.values()),
            num_provider_terminations=sum(
                i.num_provider_terminations for i in state.instances.values()
            ),
            events=tuple(state.events) if self.record_events else (),
            timeline=tuple(state.timeline) if self.record_timeline else (),
        )


@dataclass
class _RunState:
    """Mutable state of one run (internal)."""

    config: ExperimentConfig
    policy: CheckpointPolicy
    bid: float
    active_zones: tuple[str, ...]
    start_time: float
    deadline: float
    store: CheckpointStore
    instances: dict[str, ZoneInstance]
    run_view: ApplicationRun | None = None  # set right after construction
    checkpoint_just_committed: bool = False
    release_on_commit: set[str] = field(default_factory=set)
    record: bool = False
    events: list[Event] = field(default_factory=list)
    timeline: list[TimelinePoint] = field(default_factory=list)
    deadline_schedule: DeadlineSchedule | None = None
    performance: PerformanceProfile | None = None

    def log(self, time: float, kind: str, zone: str | None, detail: str = "") -> None:
        if self.record:
            self.events.append(Event(time=time, kind=kind, zone=zone, detail=detail))
