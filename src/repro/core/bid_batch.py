"""Batched bid-axis planning: bid equivalence classes over a run horizon.

A Figure-5-style sweep runs the same (policy, zones, start, slack)
cell at every bid of a grid, and for *bid-invariant* policies
(:attr:`~repro.core.policy.CheckpointPolicy.bid_invariant`) the whole
trajectory depends on the bid only through the boolean availability
pattern ``price <= bid`` over the samples the run can observe.  Two
bids with identical patterns in every zone of the cell therefore
produce bit-identical runs: same terminations, same starts (and hence
the same queue-delay draws in the same order), same checkpoint
schedule, same billing — the results differ in nothing but the
recorded ``bid`` field.

This module computes those equivalence classes in one vectorized pass
per zone: the window's prices are sorted once and each bid's pattern
is reduced to its ``searchsorted`` count of samples at or below the
bid.  For bids sorted ascending, equal counts mean no sample lies
between the two bids, which is exactly pattern equality — so the
classes are contiguous runs of equal count signatures.  The batched
executor (:meth:`~repro.experiments.runner.ExperimentRunner.run_bid_axis`)
runs one representative per class and clones its results for the
other members, sharing the price scan, crossing indices and
checkpoint-schedule computation across the whole bid axis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.traces.model import SpotPriceTrace


@dataclass(frozen=True)
class BidClass:
    """One equivalence class of a bid axis.

    ``representative`` is the lowest member; any member would do — the
    trajectories are bit-identical by construction.  ``signature`` is
    the per-zone count of window samples at or below the class's bids
    (diagnostic; equal across members by definition).
    """

    representative: float
    members: tuple[float, ...]
    signature: tuple[int, ...]


def bid_equivalence_classes(
    trace: SpotPriceTrace,
    zones: Sequence[str],
    bids: Sequence[float],
    start_time: float,
    deadline_s: float,
) -> list[BidClass]:
    """Partition ``bids`` into availability-equivalence classes.

    The observable window is every sample a run starting at
    ``start_time`` with deadline ``start_time + deadline_s`` could
    read: from the sample covering the start through the one covering
    the deadline instant.  Duplicate bids join their class once;
    classes come back ordered by ascending representative.

    This is a *necessary and sufficient* condition for trajectory
    equality only under a bid-invariant policy — callers must check
    :attr:`~repro.core.policy.CheckpointPolicy.bid_invariant` first.
    """
    unique_bids = np.asarray(sorted({float(b) for b in bids}), dtype=np.float64)
    if unique_bids.size == 0:
        return []
    ref = trace.zones[0]
    i0 = ref.index_at(start_time)
    # snap the horizon's right edge outward so the sample in force at
    # the deadline instant is included
    end = min(start_time + deadline_s, ref.end_time)
    i1 = min(int(math.ceil((end - ref.start_time) / ref.interval_s)) + 1, len(ref))
    signatures = np.empty((len(zones), unique_bids.size), dtype=np.int64)
    for row, zone in enumerate(zones):
        window = np.sort(trace.zone(zone).prices[i0:i1])
        signatures[row] = np.searchsorted(window, unique_bids, side="right")
    classes: list[BidClass] = []
    lo = 0
    for j in range(1, unique_bids.size + 1):
        if j < unique_bids.size and np.array_equal(
            signatures[:, j], signatures[:, lo]
        ):
            continue
        classes.append(
            BidClass(
                representative=float(unique_bids[lo]),
                members=tuple(float(b) for b in unique_bids[lo:j]),
                signature=tuple(int(c) for c in signatures[:, lo]),
            )
        )
        lo = j
    return classes
