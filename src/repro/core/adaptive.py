"""Adaptive policy selection (Section 7).

Adaptive bootstraps from the spot-price history prior to the
experiment, then at each decision point evaluates every permutation of
bid price B (the $0.27–$3.07 grid), zone count N (1, 2 or 3 — every
zone subset), and checkpoint policy (Periodic or Markov-Daly; Edge and
Threshold are excluded after Section 6, and Large-bid offers no cost
bound so it is not a candidate either).  Per permutation it predicts
the remaining cost and switches to the cheapest — but only when the
spot market's rules make a switch free:

1. the configuration's zones have all been terminated (nothing is
   running, so nothing paid-for is abandoned);
2. a running zone's billing hour has just ended (the committed hour
   was fully used); or
3. the new configuration does not change any running zone or the bid
   in the current billing hour (pure policy change / zone addition).

Cost prediction (Section 7.1).  For a permutation, the Markov model of
each zone's trailing history yields the stationary availability
``a_z(B)``, the expected charged rate ``E[S | S <= B, up]`` and the
expected up time ``E[T_u]``; the policy determines the checkpoint
interval (hourly for Periodic, Daly's interval on the combined
``E[T_u]`` for Markov-Daly), from which a useful-work fraction and
hence a progress rate ``P/T`` follows.  Inequality (1),
``C_r - T_r * (P/T) > 0``, decides whether a switch to on-demand will
eventually occur; solving the guard condition linearly splits the
remaining time into a spot phase and an on-demand phase, each costed
at its expected rate.  The permutation with the least predicted
remaining cost wins.
"""

from __future__ import annotations

import hashlib
import itertools
import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.engine import Controller, SwitchDecision
from repro.core.markov_daly import MarkovDalyPolicy
from repro.core.periodic import PeriodicPolicy
from repro.core.policy import CheckpointPolicy, PolicyContext
from repro.market.constants import ON_DEMAND_PRICE, bid_grid
from repro.market.instance import ZoneState
from repro.stats.daly import (
    daly_interval,
    daly_interval_batch,
    expected_useful_fraction,
    expected_useful_fraction_batch,
)

#: Cost-comparison epsilon shared by the candidate tie-break, the
#: rule-3 same-bid guard, and the guard-branch denominator clamp of the
#: cost estimators.  Two predicted costs within this of each other are
#: "the same cost" and tie-break toward fewer zones, then lower bid.
COST_EPS: float = 1e-9

#: Safety margin for lower-bound pruning, orders of magnitude above
#: both COST_EPS and the float rounding between a candidate's bound and
#: its exact cost: a permutation is skipped only when its bound cannot
#: come within this of the incumbent, so the pruned search provably
#: evaluates every candidate that could win *or tie* under COST_EPS.
PRUNE_MARGIN: float = 1e-6


@dataclass(frozen=True)
class CandidateEstimate:
    """Predicted remaining cost of one (bid, zones, policy) permutation."""

    bid: float
    zones: tuple[str, ...]
    policy_kind: str
    progress_rate: float
    spot_hours: float
    ondemand_hours: float
    predicted_cost: float


def make_policy(kind: str) -> CheckpointPolicy:
    """Fresh policy instance for a candidate kind."""
    if kind == "periodic":
        return PeriodicPolicy()
    if kind == "markov-daly":
        return MarkovDalyPolicy()
    raise ValueError(f"unknown candidate policy kind {kind!r}")


class _FrozenClock:
    """A run view pinned to a recorded deadline clock.

    Stands in for :class:`~repro.app.application.ApplicationRun` when a
    deferred visit-one pruning pass is replayed at its original instant
    (:meth:`SelectionMemo.replay_first_visit`): the cost estimators read
    only these two quantities from the run.
    """

    __slots__ = ("_committed", "_remaining")

    def __init__(self, committed: float, remaining: float) -> None:
        self._committed = committed
        self._remaining = remaining

    def committed_progress_s(self) -> float:
        return self._committed

    def remaining_time_s(self, now: float) -> float:
        return self._remaining


class SelectionMemo:
    """Cross-run decision sharing for a batch of Adaptive controllers.

    Two layers, both exact:

    **Shared dense surfaces.**  A bucket's fully-solved statistic
    matrices are a pure function of (bucket, per-zone price levels at
    the query instant): availability and charged rate are anchored at
    the bucket boundary, and the expected-uptime solves condition only
    on each zone's *current* price level.  The memo therefore builds
    one dense surface per ``(bucket, levels)`` signature — with the
    production :meth:`AdaptiveController._build_dense` code against
    scratch caches — and serves every batch member's *first* visit to
    that signature from it, instead of letting each run pay its own
    pruned pass.  The pruned pass and the dense selection pick the same
    winner by construction (the invariant the pruning differential
    tests pin down), so the fan-out is winner-identical.

    **Selection memo.**  :meth:`AdaptiveController._select_dense` is a
    pure function of the matrices and the run's deadline clock
    (committed progress P and remaining time T_r are the only per-run
    inputs of :meth:`AdaptiveController._cost_from_rate`), so the
    selection is paid once per (matrix fingerprint, P, T_r) signature
    and the winning :class:`CandidateEstimate` (frozen, safely shared)
    is fanned out to every run that shares it.

    A scalar run's pruned pass has one per-controller side effect the
    fast path must preserve: it fills the seed and surviving cells of
    the controller's uptime rows at the *visit-one* price levels, and a
    later :meth:`AdaptiveController._build_dense` in the same bucket
    completes the remaining cells at the *then-current* levels — a
    mixed matrix that depends on both instants.  The memo defers that
    side effect: each served first visit records its clock, and the
    fills are replayed bit-exactly (from the shared surface, at the
    recorded clock) only when a second visit to the bucket actually
    happens.  The fingerprint hashes the matrices' *content* plus the
    candidate grid and cost-model constants, so controllers whose
    oracle state diverged never collide.
    """

    __slots__ = ("hits", "misses", "dense_builds", "_table", "_surfaces",
                 "_plans")

    _MISS = object()

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.dense_builds = 0
        self._table: dict = {}
        self._surfaces: dict = {}
        self._plans: dict = {}

    def select(
        self, controller: "AdaptiveController", ctx: PolicyContext, dense
    ) -> CandidateEstimate | None:
        key = (
            dense[4],
            ctx.run.committed_progress_s(),
            ctx.run.remaining_time_s(ctx.now),
        )
        found = self._table.get(key, self._MISS)
        if found is not self._MISS:
            self.hits += 1
            return found
        est = controller._select_dense(ctx, dense)
        self._table[key] = est
        self.misses += 1
        return est

    # -- shared first-visit surfaces --------------------------------------

    def first_visit(
        self, controller: "AdaptiveController", ctx: PolicyContext, bucket
    ) -> CandidateEstimate | None:
        """Serve a bucket's first decision from the shared surface.

        Winner-identical to the pruned pass the controller would have
        run; the pass's uptime-row fills are deferred (see
        :meth:`replay_first_visit`).
        """
        dense, zrows = self._surface(controller, ctx, bucket)
        # The pruned pass would assemble these bucket-pure matrices
        # first thing; hand the per-run cache the shared tuple.
        controller._combined_cache[bucket] = (dense[0], dense[2])
        controller._visit1_pending[bucket] = (
            dense,
            zrows,
            ctx.run.committed_progress_s(),
            ctx.run.remaining_time_s(ctx.now),
        )
        return self.select(controller, ctx, dense)

    def _surface(
        self, controller: "AdaptiveController", ctx: PolicyContext, bucket
    ):
        levels = tuple(
            float(ctx.oracle.price(z, ctx.now)) for z in ctx.oracle.zone_names
        )
        # The job shape participates in the key: _build_dense's cost
        # model reads (compute, checkpoint, restart) off ctx.config, so
        # a memo shared across a deadline ladder (run_cube's shape
        # rows) must never serve one shape's surface to another.  The
        # deadline itself enters through select()'s remaining-time key.
        key = (
            bucket, levels,
            float(ctx.config.compute_s),
            float(ctx.config.ckpt_cost_s),
            float(ctx.config.restart_cost_s),
        )
        entry = self._surfaces.get(key)
        if entry is None:
            # Build with the production _build_dense code against
            # scratch caches, so the shared matrices are bit-identical
            # to what any controller would build from cold right now —
            # and the builder's own incremental cache state is left
            # untouched.
            saved = (
                controller._cheap_cache,
                controller._uptime_cache,
                controller._combined_cache,
                controller._dense_cache,
            )
            controller._cheap_cache = {}
            controller._uptime_cache = {}
            controller._combined_cache = {}
            controller._dense_cache = {}
            try:
                dense = controller._build_dense(ctx, bucket)
                zrows = {
                    z: controller._uptime_cache[(z, bucket)]
                    for zones in controller._zone_sets
                    for z in zones
                }
            finally:
                (
                    controller._cheap_cache,
                    controller._uptime_cache,
                    controller._combined_cache,
                    controller._dense_cache,
                ) = saved
            entry = (dense, zrows)
            self._surfaces[key] = entry
            self.dense_builds += 1
        return entry

    def replay_first_visit(
        self, controller: "AdaptiveController", ctx: PolicyContext, bucket
    ) -> None:
        """Apply a deferred visit-one pruning pass's uptime-row fills.

        Re-derives the seed plan and the lower-bound survivors at the
        recorded deadline clock (all inputs are pure: the shared
        surface's matrices plus the clock) and copies exactly those
        cells from the shared per-zone rows into the controller's own —
        the state a scalar run would carry into its second-visit
        :meth:`AdaptiveController._build_dense`.
        """
        pending = controller._visit1_pending.pop(bucket, None)
        if pending is None:
            return
        dense, zrows, committed1, remaining1 = pending
        avail, uptime, rate = dense[0], dense[1], dense[2]
        sets = controller._zone_sets
        nbids = len(controller.bids)
        plan_key = (dense[4], committed1, remaining1)
        plan = self._plans.get(plan_key)
        if plan is None:
            ctx1 = replace(ctx, run=_FrozenClock(committed1, remaining1))
            bound = controller._cost_lower_bound(ctx1, avail, rate)
            rep_cols = np.argmin(bound, axis=1)
            best_row = int(np.argmin(bound)) // nbids
            seed_plan = [
                (si, np.arange(nbids) if si == best_row else rep_cols[si : si + 1])
                for si in range(len(sets))
            ]
            seed_avail = np.concatenate([avail[si, c] for si, c in seed_plan])
            seed_rate = np.concatenate([rate[si, c] for si, c in seed_plan])
            seed_uptime = np.concatenate([uptime[si, c] for si, c in seed_plan])
            incumbent = min(
                float(
                    controller._cost_grid(
                        ctx1, kind, seed_avail, seed_uptime, seed_rate
                    ).min()
                )
                for kind in controller.policy_kinds
            )
            cutoff = incumbent + PRUNE_MARGIN
            plan = [
                (si, np.union1d(cols, np.flatnonzero(bound[si] <= cutoff)))
                for si, cols in seed_plan
            ]
            self._plans[plan_key] = plan
        for si, cols in plan:
            if cols.size == 0:
                continue
            for z in sets[si]:
                row = controller._zone_uptime_row(ctx, z)
                missing = cols[np.isnan(row[cols])]
                if missing.size:
                    row[missing] = zrows[z][missing]


def batch_controllers(factory, n: int) -> list["AdaptiveController"]:
    """``n`` per-run controllers sharing one :class:`SelectionMemo`.

    The batched decision front end of the vector engine: each run keeps
    a real controller (its statistic caches evolve exactly as a scalar
    run's would, which is what the bit-exactness gate demands), while
    the dense selection work is deduplicated across the batch through
    the shared memo.  Non-adaptive controllers from ``factory`` are
    returned unwired — the caller is expected to fall back.
    """
    controllers = [factory() for _ in range(n)]
    memo = SelectionMemo()
    for c in controllers:
        if isinstance(c, AdaptiveController):
            c.selection_memo = memo
    return controllers


@dataclass
class AdaptiveController(Controller):
    """The paper's Adaptive scheme, as an engine controller.

    Parameters
    ----------
    bids:
        Candidate bid prices (default: the paper's grid).
    policy_kinds:
        Candidate checkpoint policies.
    max_zones:
        Largest redundancy degree to consider.
    improvement_margin:
        Relative predicted-cost improvement a switch must offer
        (damps flapping between near-tied candidates).
    reevaluate_every_s:
        How often to consider "compatible" switches (rule 3) outside
        of terminations and hour boundaries.
    """

    bids: tuple[float, ...] = tuple(bid_grid())
    policy_kinds: tuple[str, ...] = ("periodic", "markov-daly")
    max_zones: int = 3
    improvement_margin: float = 0.08
    reevaluate_every_s: float = 3600.0
    #: Lower-bound pruning of the permutation loop.  ``False`` forces
    #: the reference full-matrix evaluation; the two select the same
    #: winner (the pruned path evaluates every candidate whose bound
    #: reaches the incumbent within ``PRUNE_MARGIN``).
    prune: bool = True
    _zone_sets: tuple[tuple[str, ...], ...] = ()
    _last_eval_at: float = -math.inf
    _applied: tuple[float, tuple[str, ...], str] | None = None
    _stats_cache: dict = field(default_factory=dict, repr=False)
    #: (zone, bucket) -> (availability, rate) rows — the solve-free
    #: statistics the pruning pass ranks candidates with.
    _cheap_cache: dict = field(default_factory=dict, repr=False)
    #: (zone, bucket) -> per-bid expected-uptime row, NaN where the
    #: absorbing solve has not been paid for yet.
    _uptime_cache: dict = field(default_factory=dict, repr=False)
    #: bucket -> assembled (availability, rate) matrices over the full
    #: (zone set, bid) grid — within a bucket only the deadline-clock
    #: part of the cost changes between decisions, so the combination
    #: pass is paid once per bucket, not once per decision.
    _combined_cache: dict = field(default_factory=dict, repr=False)
    #: bucket -> fully-solved (avail, uptime, rate, {kind: progress})
    #: matrices, built on a bucket's SECOND decision.  Dense decision
    #: sequences then pay only the deadline-clock half of the cost
    #: grid per decision, while one-shot buckets keep the
    #: solve-sparing pruned pass.
    _dense_cache: dict = field(default_factory=dict, repr=False)
    _seen_buckets: set = field(default_factory=set, repr=False)
    #: bucket -> (shared surface, per-zone rows, committed, remaining)
    #: for first visits served off the batch memo's shared dense
    #: surface: the visit's uptime-row fills are deferred and replayed
    #: at this recorded clock if the bucket is ever visited again.
    _visit1_pending: dict = field(default_factory=dict, repr=False)
    #: Optional cross-run dense-selection memo (see
    #: :class:`SelectionMemo`), installed by :func:`batch_controllers`
    #: for vector batches.  Never part of the cache identity: it only
    #: replays exact selection outcomes.
    selection_memo: SelectionMemo | None = field(
        default=None, repr=False, compare=False
    )

    #: The display name used in figures.
    name: str = "adaptive"

    def reset(self, ctx: PolicyContext) -> None:
        names = ctx.oracle.zone_names
        sets: list[tuple[str, ...]] = []
        for n in range(1, min(self.max_zones, len(names)) + 1):
            sets.extend(itertools.combinations(names, n))
        self._zone_sets = tuple(sets)
        self._last_eval_at = -math.inf
        self._applied = None
        self._combined_cache.clear()
        self._dense_cache.clear()
        self._seen_buckets.clear()
        self._visit1_pending.clear()

    # -- controller hook -----------------------------------------------------

    def next_decision_time(self, now: float) -> float | None:
        """Next periodic re-check; terminations and hour boundaries are
        separate decision triggers the engine's fast path already stops
        at, so between them :meth:`decide` is a pure no-op until the
        re-evaluation timer expires."""
        if math.isinf(self._last_eval_at):
            return None
        return self._last_eval_at + self.reevaluate_every_s

    def canonical_params(self) -> dict:
        """Run-cache identity: the public tuning knobs.

        Sound because :meth:`reset` rebuilds every piece of internal
        state from the oracle (which the cache key covers through the
        trace fingerprint and oracle configuration), and the
        per-bucket statistic caches only memoize pure functions of
        (zone, bucket) — decisions after a reset are a deterministic
        function of these parameters and the run's other hashed
        inputs.
        """
        return {
            "name": self.name,
            "bids": self.bids,
            "policy_kinds": self.policy_kinds,
            "max_zones": self.max_zones,
            "improvement_margin": self.improvement_margin,
            "reevaluate_every_s": self.reevaluate_every_s,
            "prune": self.prune,
        }

    def decide(self, ctx: PolicyContext) -> SwitchDecision | None:
        if not self.decision_due(ctx):
            return None
        return self.decide_at_epoch(ctx)

    def decision_due(self, ctx: PolicyContext) -> bool:
        """Is ``ctx.now`` a decision epoch?  (Rules 1/2 plus the
        periodic re-check timer.)  Pure query — mutates nothing, so the
        vector engine can evaluate it column-wise and call
        :meth:`decide_at_epoch` only for triggered rows."""
        running = [z for z in ctx.zones if ctx.instances[z].is_running]
        none_running = not running
        at_hour_boundary = any(
            ctx.instances[z].billing.is_open
            and abs(ctx.instances[z].billing.hour_start - ctx.now) < 1e-6
            for z in running
        )
        periodic_recheck = ctx.now - self._last_eval_at >= self.reevaluate_every_s
        return none_running or at_hour_boundary or periodic_recheck

    def decide_at_epoch(self, ctx: PolicyContext) -> SwitchDecision | None:
        """The decision body, given that ``ctx.now`` is an epoch.

        ``decide()`` is exactly ``decision_due() and decide_at_epoch()``;
        the split lets the batched front end share the epoch trigger
        across a column of runs.
        """
        running = [z for z in ctx.zones if ctx.instances[z].is_running]
        none_running = not running
        at_hour_boundary = any(
            ctx.instances[z].billing.is_open
            and abs(ctx.instances[z].billing.hour_start - ctx.now) < 1e-6
            for z in running
        )
        self._last_eval_at = ctx.now

        best = self.best_candidate(ctx)
        if best is None:
            return None
        best_key = (best.bid, tuple(sorted(best.zones)), best.policy_kind)
        if self._applied == best_key:
            return None  # already running the winner

        # Rule 3 guard: outside rules 1 and 2, a switch may not change
        # a running zone's participation or the bid mid-hour.
        if not (none_running or at_hour_boundary):
            keeps_running_zones = set(running) <= set(best.zones)
            same_bid = abs(best.bid - ctx.bid) < COST_EPS
            if not (keeps_running_zones and same_bid):
                return None

        # Require a real improvement over the applied configuration's
        # own predicted cost to avoid flapping on estimator noise, and
        # charge candidates for the speculative progress they would
        # destroy by dropping a running zone: that progress must be
        # recomputed, which (conservatively) costs on-demand rate.
        if self._applied is not None:
            bid0, zones0, kind0 = self._applied
            current_now = self.estimate(ctx, bid0, zones0, kind0)
            drop_penalty = 0.0
            best_zone_set = set(best.zones)
            for z in running:
                if z in best_zone_set:
                    continue
                inst = ctx.instances[z]
                speculative = max(
                    inst.local_progress_s - ctx.run.committed_progress_s(), 0.0
                )
                drop_penalty = max(
                    drop_penalty, speculative / 3600.0 * ON_DEMAND_PRICE
                )
            if best.predicted_cost + drop_penalty > current_now.predicted_cost * (
                1.0 - self.improvement_margin
            ):
                return None

        self._applied = best_key
        return SwitchDecision(
            bid=best.bid,
            zones=best.zones,
            policy=make_policy(best.policy_kind),
        )

    # -- the estimator ---------------------------------------------------------

    def _zone_stats(
        self, ctx: PolicyContext, zone: str
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(availability, expected charged rate, E[T_u]) over the bid grid.

        One call into the oracle's vectorized :meth:`~repro.market.
        spot_market.PriceOracle.zone_stats` — the Markov fit, the
        stationary eigenvector, and the absorbing-chain solves are all
        shared across the grid instead of recomputed per (bid, stat)
        pair.  A thin per-controller cache keyed by (zone, stats
        bucket) avoids even the oracle's dictionary lookups in the hot
        loop; the bucket comes from the oracle so a reference oracle
        with ``bucket_s=None`` is never served a stale hourly entry.
        """
        key = (zone, ctx.oracle.stats_bucket(ctx.now))
        cached = self._stats_cache.get(key)
        if cached is None:
            cached = ctx.oracle.zone_stats(zone, ctx.now, self.bids)
            self._stats_cache[key] = cached
        return cached

    def _zone_cheap(
        self, ctx: PolicyContext, zone: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """(availability, expected charged rate) rows — no uptime solves.

        The solve-free share of :meth:`_zone_stats`, bit-identical to
        its first two arrays; the pruning pass ranks every candidate
        from these before paying for any absorbing-chain solve.
        """
        key = (zone, ctx.oracle.stats_bucket(ctx.now))
        cached = self._cheap_cache.get(key)
        if cached is None:
            cached = ctx.oracle.zone_availability_rate(zone, ctx.now, self.bids)
            self._cheap_cache[key] = cached
        return cached

    def _zone_uptime_row(self, ctx: PolicyContext, zone: str) -> np.ndarray:
        """The zone's per-bid expected-uptime row, NaN where unsolved."""
        key = (zone, ctx.oracle.stats_bucket(ctx.now))
        row = self._uptime_cache.get(key)
        if row is None:
            row = np.full(len(self.bids), np.nan)
            self._uptime_cache[key] = row
        return row

    def _fill_uptimes(
        self, ctx: PolicyContext, zone: str, row: np.ndarray, idx: np.ndarray
    ) -> None:
        """Solve the still-NaN entries of ``row`` at bid indices ``idx``.

        Solves route through the oracle's per-(zone, bucket, level)
        model, whose per-up-state-count memo makes a masked subset now
        plus the rest later cost exactly the same solves as one
        full-grid call — and each value bit-identical to
        :meth:`_zone_stats`'s third array.
        """
        missing = idx[np.isnan(row[idx])]
        if missing.size:
            bids = np.asarray(self.bids, dtype=np.float64)[missing]
            row[missing] = ctx.oracle.zone_uptimes(zone, ctx.now, bids)

    def estimate(
        self,
        ctx: PolicyContext,
        bid: float,
        zones: tuple[str, ...],
        policy_kind: str,
    ) -> CandidateEstimate:
        """Predict the remaining cost of one permutation."""
        bid_idx = int(np.argmin(np.abs(np.asarray(self.bids) - bid)))
        avail = np.empty(len(zones))
        rate = np.empty(len(zones))
        uptime = np.empty(len(zones))
        for j, z in enumerate(zones):
            a, r, u = self._zone_stats(ctx, z)
            avail[j], rate[j], uptime[j] = a[bid_idx], r[bid_idx], u[bid_idx]
        return self._estimate_from_stats(
            ctx, float(self.bids[bid_idx]), zones, policy_kind, avail, rate, uptime
        )

    def _estimate_from_stats(
        self,
        ctx: PolicyContext,
        bid: float,
        zones: tuple[str, ...],
        policy_kind: str,
        avail: np.ndarray,
        rate: np.ndarray,
        uptime: np.ndarray,
    ) -> CandidateEstimate:
        return self._estimate_from_combined(
            ctx, bid, zones, policy_kind,
            combined_avail=1.0 - float(np.prod(1.0 - avail)),
            combined_uptime=float(uptime.sum()),
            spot_rate=float((avail * rate).sum()),
        )

    def _estimate_from_combined(
        self,
        ctx: PolicyContext,
        bid: float,
        zones: tuple[str, ...],
        policy_kind: str,
        combined_avail: float,
        combined_uptime: float,
        spot_rate: float,
    ) -> CandidateEstimate:
        """Section 7.1's cost prediction from pre-combined zone stats."""
        config = ctx.config
        if policy_kind == "periodic":
            interval = 3600.0 - config.ckpt_cost_s
        else:
            interval = daly_interval(combined_uptime, config.ckpt_cost_s)
        useful = expected_useful_fraction(
            combined_uptime, config.ckpt_cost_s, interval
        )
        progress_rate = combined_avail * useful  # P/T while on spot

        committed = ctx.run.committed_progress_s()
        remaining_compute = max(config.compute_s - committed, 0.0)
        remaining_time = max(ctx.run.remaining_time_s(ctx.now), 0.0)
        overhead = config.ckpt_cost_s + config.restart_cost_s

        # spot_rate: $/hour while on the spot market — every up zone
        # is charged its expected rate.

        if remaining_compute <= 0:
            return CandidateEstimate(bid, zones, policy_kind, progress_rate,
                                     0.0, 0.0, 0.0)
        budget = remaining_time - overhead
        if budget <= 0:
            od_hours = (remaining_compute + config.restart_cost_s) / 3600.0
            return CandidateEstimate(
                bid, zones, policy_kind, progress_rate, 0.0, od_hours,
                od_hours * ON_DEMAND_PRICE,
            )

        # Inequality (1): does this permutation finish on spot alone?
        if progress_rate * budget >= remaining_compute and progress_rate > 0:
            spot_s = remaining_compute / progress_rate
            od_s = 0.0
        elif progress_rate >= 1.0:  # cannot happen, kept for safety
            spot_s = remaining_compute
            od_s = 0.0
        else:
            # Guard fires when remaining time equals remaining compute
            # plus overhead: T_r - t = (C_r - r t) + overhead.
            spot_s = max(
                (remaining_time - remaining_compute - overhead)
                / max(1.0 - progress_rate, COST_EPS),
                0.0,
            )
            od_s = remaining_compute - progress_rate * spot_s + config.restart_cost_s
        spot_hours = spot_s / 3600.0
        od_hours = max(od_s, 0.0) / 3600.0
        cost = spot_hours * spot_rate + od_hours * ON_DEMAND_PRICE
        return CandidateEstimate(
            bid=bid,
            zones=zones,
            policy_kind=policy_kind,
            progress_rate=progress_rate,
            spot_hours=spot_hours,
            ondemand_hours=od_hours,
            predicted_cost=cost,
        )

    def _cost_grid(
        self,
        ctx: PolicyContext,
        policy_kind: str,
        combined_avail: np.ndarray,
        combined_uptime: np.ndarray,
        spot_rate: np.ndarray,
    ) -> np.ndarray:
        """Predicted remaining cost across the whole bid grid at once.

        The vector analogue of :meth:`_estimate_from_combined`: every
        branch of the scalar estimator becomes a mask, every arithmetic
        step keeps the scalar's operation order, so each element is
        bit-equal to the corresponding scalar call.
        """
        progress_rate = self._progress_grid(
            ctx.config, policy_kind, combined_avail, combined_uptime
        )
        return self._cost_from_rate(ctx, progress_rate, spot_rate)

    @staticmethod
    def _progress_grid(
        config,
        policy_kind: str,
        combined_avail: np.ndarray,
        combined_uptime: np.ndarray,
    ) -> np.ndarray:
        """Expected progress rate per cell — the ``now``-free half of
        the cost grid, constant within a statistics bucket."""
        if policy_kind == "periodic":
            interval = 3600.0 - config.ckpt_cost_s
        else:
            interval = daly_interval_batch(combined_uptime, config.ckpt_cost_s)
        useful = expected_useful_fraction_batch(
            combined_uptime, config.ckpt_cost_s, interval
        )
        return combined_avail * useful

    def _cost_from_rate(
        self,
        ctx: PolicyContext,
        progress_rate: np.ndarray,
        spot_rate: np.ndarray,
    ) -> np.ndarray:
        """The deadline-clock half of :meth:`_cost_grid`."""
        config = ctx.config
        committed = ctx.run.committed_progress_s()
        remaining_compute = max(config.compute_s - committed, 0.0)
        remaining_time = max(ctx.run.remaining_time_s(ctx.now), 0.0)
        overhead = config.ckpt_cost_s + config.restart_cost_s

        if remaining_compute <= 0:
            return np.zeros_like(progress_rate)
        budget = remaining_time - overhead
        if budget <= 0:
            od_hours = (remaining_compute + config.restart_cost_s) / 3600.0
            return np.full(progress_rate.shape, od_hours * ON_DEMAND_PRICE)

        on_spot = (progress_rate * budget >= remaining_compute) & (
            progress_rate > 0
        )
        runaway = ~on_spot & (progress_rate >= 1.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            spot_if_done = remaining_compute / progress_rate
        spot_guard = np.maximum(
            (remaining_time - remaining_compute - overhead)
            / np.maximum(1.0 - progress_rate, COST_EPS),
            0.0,
        )
        spot_s = np.where(
            on_spot, spot_if_done, np.where(runaway, remaining_compute, spot_guard)
        )
        od_s = np.where(
            on_spot | runaway,
            0.0,
            remaining_compute - progress_rate * spot_guard + config.restart_cost_s,
        )
        spot_hours = spot_s / 3600.0
        od_hours = np.maximum(od_s, 0.0) / 3600.0
        return spot_hours * spot_rate + od_hours * ON_DEMAND_PRICE

    def best_candidate(self, ctx: PolicyContext) -> CandidateEstimate | None:
        """Evaluate every permutation; return the cheapest.

        Per zone set, the combined availability, combined expected up
        time and spot rate are reduced across the whole bid grid, and
        :meth:`_cost_grid` prices all bids of a (zone set, policy) pair
        in one vector pass — bit-equal to the scalar estimator, so only
        float comparisons remain in the permutation loop.  The winning
        candidate alone is materialized through
        :meth:`_estimate_from_combined`.  Ties break toward fewer
        zones, then lower bid — the cheaper configuration to be wrong
        about.

        With :attr:`prune` on (the default) the permutation loop is
        lower-bounded instead of exhaustive — same winner, fewer
        absorbing-chain solves (see :meth:`_best_candidate_pruned`).
        """
        if not self._zone_sets:
            return None
        if self.prune:
            return self._best_candidate_pruned(ctx)
        return self._best_candidate_full(ctx)

    def _best_candidate_full(self, ctx: PolicyContext) -> CandidateEstimate | None:
        """The reference exhaustive evaluation of every permutation."""
        sets = self._zone_sets
        nbids = len(self.bids)
        avail = np.empty((len(sets), nbids))
        uptime = np.empty((len(sets), nbids))
        rate = np.empty((len(sets), nbids))
        for si, zones in enumerate(sets):
            stats = [self._zone_stats(ctx, z) for z in zones]
            one_minus = 1.0 - stats[0][0]
            combined_uptime = stats[0][2]
            spot_rate = stats[0][0] * stats[0][1]
            for a, r, u in stats[1:]:
                one_minus = one_minus * (1.0 - a)
                combined_uptime = combined_uptime + u
                spot_rate = spot_rate + a * r
            avail[si] = 1.0 - one_minus
            uptime[si] = combined_uptime
            rate[si] = spot_rate
        # One (zone sets x bids) cost matrix per policy kind, then a
        # pure-float selection loop in the original iteration order.
        costs = [
            self._cost_grid(ctx, kind, avail, uptime, rate).tolist()
            for kind in self.policy_kinds
        ]
        best: tuple[float, int, float] | None = None  # (cost, |zones|, bid)
        winner: tuple[int, str, int] | None = None
        for si, zones in enumerate(sets):
            rows = [kind_costs[si] for kind_costs in costs]
            nz = len(zones)
            for i, bid in enumerate(self.bids):
                for kind, row in zip(self.policy_kinds, rows):
                    cost = row[i]
                    if best is None or cost < best[0] - COST_EPS or (
                        abs(cost - best[0]) <= COST_EPS
                        and (nz, bid) < (best[1], best[2])
                    ):
                        best = (cost, nz, bid)
                        winner = (si, kind, i)
        if winner is None:
            return None
        si, kind, i = winner
        return self._estimate_from_combined(
            ctx, float(self.bids[i]), sets[si], kind,
            combined_avail=float(avail[si, i]),
            combined_uptime=float(uptime[si, i]),
            spot_rate=float(rate[si, i]),
        )

    def _cost_lower_bound(
        self, ctx: PolicyContext, avail: np.ndarray, rate: np.ndarray
    ) -> np.ndarray:
        """A cost no policy can beat, per (zone set, bid) cell.

        Any checkpoint policy's useful-work fraction lies in [0, 1], so
        the cell's progress rate lies in [0, avail] — and within each
        branch of the cost estimator the predicted cost is monotone in
        the progress rate.  The minimum over the whole interval is
        therefore attained at ``r = 0``, ``r = avail`` or the
        spot-phase branch boundary ``r = C_r / budget``; evaluating the
        estimator's exact formulas at those three rates bounds every
        (policy, useful-fraction) outcome from below, using only the
        solve-free availability and rate statistics.
        """
        config = ctx.config
        committed = ctx.run.committed_progress_s()
        remaining_compute = max(config.compute_s - committed, 0.0)
        remaining_time = max(ctx.run.remaining_time_s(ctx.now), 0.0)
        overhead = config.ckpt_cost_s + config.restart_cost_s

        if remaining_compute <= 0:
            return np.zeros_like(avail)
        budget = remaining_time - overhead
        if budget <= 0:
            od_hours = (remaining_compute + config.restart_cost_s) / 3600.0
            return np.full(avail.shape, od_hours * ON_DEMAND_PRICE)

        def cost_at(progress: np.ndarray) -> np.ndarray:
            on_spot = (progress * budget >= remaining_compute) & (progress > 0)
            runaway = ~on_spot & (progress >= 1.0)
            with np.errstate(divide="ignore", invalid="ignore"):
                spot_if_done = remaining_compute / progress
            spot_guard = np.maximum(
                (remaining_time - remaining_compute - overhead)
                / np.maximum(1.0 - progress, COST_EPS),
                0.0,
            )
            spot_s = np.where(
                on_spot, spot_if_done,
                np.where(runaway, remaining_compute, spot_guard),
            )
            od_s = np.where(
                on_spot | runaway,
                0.0,
                remaining_compute - progress * spot_guard + config.restart_cost_s,
            )
            return (
                spot_s / 3600.0 * rate
                + np.maximum(od_s, 0.0) / 3600.0 * ON_DEMAND_PRICE
            )

        bound = np.minimum(cost_at(avail), cost_at(np.zeros_like(avail)))
        # Branch-boundary rate: the run just finishes on spot, so the
        # spot phase is the whole budget at the cell's expected rate.
        return np.minimum(bound, budget / 3600.0 * rate)

    def _best_candidate_pruned(
        self, ctx: PolicyContext
    ) -> CandidateEstimate | None:
        """The permutation loop with lower-bound pruning.

        The solve-free (availability, rate) statistics price a lower
        bound for every (zone set, bid) cell; each zone-set row's
        smallest-bound cell is evaluated exactly (one small batch) to
        seed the incumbent, and one global pass drops every cell whose
        bound cannot come within :data:`PRUNE_MARGIN` of that seed.  Expected-uptime
        solves are paid lazily for exactly the surviving bids, and the
        survivors are priced in ONE :meth:`_cost_grid` call per policy
        kind — the cost arithmetic is element-wise, so batching across
        zone-set rows changes nothing.  The seed is an exact achievable
        cost, so every pruned cell's true cost exceeds the winner's by
        more than the margin — which itself exceeds the worst
        accumulated tie-break drift (``2 * 210 * COST_EPS``) — and the
        selection loop runs in the full loop's evaluation order with
        its comparator, so the winner is identical to
        :meth:`_best_candidate_full`'s — the property the pruning
        differential tests pin down.

        From a bucket's second decision on, the remaining solves are
        completed once (:meth:`_build_dense`) and every further
        decision in the bucket reprices only the deadline-clock half
        of the estimator over cached matrices — same cost values, same
        winner, no per-decision bounding overhead.
        """
        sets = self._zone_sets
        nbids = len(self.bids)
        bucket = ctx.oracle.stats_bucket(ctx.now)
        dense = self._dense_cache.get(bucket)
        if dense is None and bucket in self._seen_buckets:
            # Second decision in this bucket: the statistics are warm
            # and further decisions will keep landing here, so finish
            # the few solves pruning spared once and drop to the dense
            # path for the rest of the bucket.
            if self.selection_memo is not None:
                # A batched first visit deferred its uptime-row fills;
                # replay them at the recorded clock first, so the mixed
                # matrix below is the one a scalar run would build.
                self.selection_memo.replay_first_visit(self, ctx, bucket)
            dense = self._build_dense(ctx, bucket)
        self._seen_buckets.add(bucket)
        if dense is not None:
            if self.selection_memo is not None:
                return self.selection_memo.select(self, ctx, dense)
            return self._select_dense(ctx, dense)
        if self.selection_memo is not None:
            # Batched first visit: winner-identical selection off the
            # batch's shared pure surface for this (bucket, price
            # levels) signature; the pruned pass's per-run cache fills
            # are deferred until a second visit needs them.
            return self.selection_memo.first_visit(self, ctx, bucket)

        avail, rate = self._combined_cheap(ctx, bucket)
        bound = self._cost_lower_bound(ctx, avail, rate)

        def combined_uptime_at(si: int, cols: np.ndarray) -> np.ndarray:
            zones = sets[si]
            uptime_rows = [self._zone_uptime_row(ctx, z) for z in zones]
            for z, urow in zip(zones, uptime_rows):
                self._fill_uptimes(ctx, z, urow, cols)
            combined = uptime_rows[0][cols]
            for urow in uptime_rows[1:]:
                combined = combined + urow[cols]
            return combined

        # Seed the incumbent from one exact batch: the full row holding
        # the globally smallest bound plus each other row's
        # smallest-bound cell.  The full row costs solves the final
        # pass would pay anyway (its cells rarely prune), and the
        # representatives give every row a chance to tighten the
        # cutoff before any other solve is paid.
        rep_cols = np.argmin(bound, axis=1)
        best_row = int(np.argmin(bound)) // nbids
        seed_plan = [
            (si, np.arange(nbids) if si == best_row else rep_cols[si : si + 1])
            for si in range(len(sets))
        ]
        seed_avail = np.concatenate([avail[si, c] for si, c in seed_plan])
        seed_rate = np.concatenate([rate[si, c] for si, c in seed_plan])
        seed_uptime = np.concatenate(
            [combined_uptime_at(si, c) for si, c in seed_plan]
        )
        incumbent = min(
            float(
                self._cost_grid(
                    ctx, kind, seed_avail, seed_uptime, seed_rate
                ).min()
            )
            for kind in self.policy_kinds
        )
        cutoff = incumbent + PRUNE_MARGIN

        surviving: list[tuple[int, np.ndarray]] = []
        cat_avail: list[np.ndarray] = []
        cat_uptime: list[np.ndarray] = []
        cat_rate: list[np.ndarray] = []
        for si in range(len(sets)):
            cols = np.flatnonzero(bound[si] <= cutoff)
            if cols.size == 0:
                continue  # the whole (zone set, *) row cannot win
            surviving.append((si, cols))
            cat_avail.append(avail[si, cols])
            cat_uptime.append(combined_uptime_at(si, cols))
            cat_rate.append(rate[si, cols])
        all_avail = np.concatenate(cat_avail)
        all_uptime = np.concatenate(cat_uptime)
        all_rate = np.concatenate(cat_rate)
        costs = [
            self._cost_grid(ctx, kind, all_avail, all_uptime, all_rate).tolist()
            for kind in self.policy_kinds
        ]

        best: tuple[float, int, float] | None = None  # (cost, |zones|, bid)
        winner: tuple[int, str, int] | None = None
        winner_pos = -1
        pos = 0
        for si, cols in surviving:
            nz = len(sets[si])
            for ci, i in enumerate(cols.tolist()):
                bid = self.bids[i]
                for kind, row in zip(self.policy_kinds, costs):
                    cost = row[pos + ci]
                    if best is None or cost < best[0] - COST_EPS or (
                        abs(cost - best[0]) <= COST_EPS
                        and (nz, bid) < (best[1], best[2])
                    ):
                        best = (cost, nz, bid)
                        winner = (si, kind, i)
                        winner_pos = pos + ci
            pos += cols.size
        if winner is None:
            return None
        si, kind, i = winner
        return self._estimate_from_combined(
            ctx, float(self.bids[i]), sets[si], kind,
            combined_avail=float(all_avail[winner_pos]),
            combined_uptime=float(all_uptime[winner_pos]),
            spot_rate=float(all_rate[winner_pos]),
        )

    def _combined_cheap(
        self, ctx: PolicyContext, bucket: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-bucket (availability, spot rate) over the candidate grid."""
        cached = self._combined_cache.get(bucket)
        if cached is None:
            sets = self._zone_sets
            avail = np.empty((len(sets), len(self.bids)))
            rate = np.empty((len(sets), len(self.bids)))
            for si, zones in enumerate(sets):
                cheap = [self._zone_cheap(ctx, z) for z in zones]
                one_minus = 1.0 - cheap[0][0]
                spot_rate = cheap[0][0] * cheap[0][1]
                for a, r in cheap[1:]:
                    one_minus = one_minus * (1.0 - a)
                    spot_rate = spot_rate + a * r
                avail[si] = 1.0 - one_minus
                rate[si] = spot_rate
            cached = (avail, rate)
            self._combined_cache[bucket] = cached
        return cached

    def _build_dense(self, ctx: PolicyContext, bucket: float):
        """Complete the bucket's statistic matrices for the dense path.

        Solves every still-missing uptime cell (reusing whatever the
        pruned pass already paid for) and precomputes the per-kind
        progress-rate grids, so each later decision in the bucket only
        reprices the deadline-clock half of the estimator.
        """
        sets = self._zone_sets
        avail, rate = self._combined_cheap(ctx, bucket)
        all_cols = np.arange(len(self.bids))
        uptime = np.empty((len(sets), len(self.bids)))
        for si, zones in enumerate(sets):
            uptime_rows = [self._zone_uptime_row(ctx, z) for z in zones]
            for z, urow in zip(zones, uptime_rows):
                self._fill_uptimes(ctx, z, urow, all_cols)
            combined = uptime_rows[0][all_cols]
            for urow in uptime_rows[1:]:
                combined = combined + urow[all_cols]
            uptime[si] = combined
        progress = {
            kind: self._progress_grid(ctx.config, kind, avail, uptime)
            for kind in self.policy_kinds
        }
        # Content fingerprint for the cross-run selection memo: the
        # matrices plus every other input of the selection that is not
        # part of the per-run deadline clock (candidate grid, iteration
        # order, cost-model constants).
        h = hashlib.sha1()
        h.update(
            repr(
                (
                    self.bids,
                    self.policy_kinds,
                    self._zone_sets,
                    ctx.config.compute_s,
                    ctx.config.ckpt_cost_s,
                    ctx.config.restart_cost_s,
                )
            ).encode()
        )
        h.update(avail.tobytes())
        h.update(uptime.tobytes())
        h.update(rate.tobytes())
        for kind in self.policy_kinds:
            h.update(progress[kind].tobytes())
        dense = (avail, uptime, rate, progress, h.hexdigest())
        self._dense_cache[bucket] = dense
        return dense

    def _select_dense(self, ctx: PolicyContext, dense) -> CandidateEstimate | None:
        """:meth:`_best_candidate_full`'s selection over cached matrices.

        The costs of every kind are priced in one stacked
        :meth:`_cost_from_rate` call (element-wise arithmetic, so the
        stacking changes no value), and the comparator loop visits only
        cells within :data:`PRUNE_MARGIN` of the global minimum — the
        comparator can accept a cell only when its cost is within
        ``COST_EPS`` of the running best, and the running best never
        drifts more than the accumulated tie-break bound (``2 * 210 *
        COST_EPS``, far under the margin) above the minimum, so every
        skipped cell is one the full loop would have rejected.  The
        visited cells keep the full loop's (zone set, bid, kind) order
        and its exact comparator.
        """
        sets = self._zone_sets
        avail, uptime, rate, progress = dense[0], dense[1], dense[2], dense[3]
        stacked = np.stack([progress[kind] for kind in self.policy_kinds])
        costs = self._cost_from_rate(ctx, stacked, rate)
        # (kind, set, bid) -> (set, bid, kind) so the flat index order
        # matches the full loop's iteration order.
        flat = costs.transpose(1, 2, 0).ravel()
        if flat.size == 0:
            return None
        cand = np.flatnonzero(flat <= flat.min() + PRUNE_MARGIN)
        nbids = len(self.bids)
        nkinds = len(self.policy_kinds)
        best: tuple[float, int, float] | None = None  # (cost, |zones|, bid)
        winner: tuple[int, str, int] | None = None
        for f in cand.tolist():
            cost = float(flat[f])
            si, rem = divmod(f, nbids * nkinds)
            i, ki = divmod(rem, nkinds)
            nz = len(sets[si])
            bid = self.bids[i]
            if best is None or cost < best[0] - COST_EPS or (
                abs(cost - best[0]) <= COST_EPS
                and (nz, bid) < (best[1], best[2])
            ):
                best = (cost, nz, bid)
                winner = (si, self.policy_kinds[ki], i)
        if winner is None:
            return None
        si, kind, i = winner
        return self._estimate_from_combined(
            ctx, float(self.bids[i]), sets[si], kind,
            combined_avail=float(avail[si, i]),
            combined_uptime=float(uptime[si, i]),
            spot_rate=float(rate[si, i]),
        )
