"""Adaptive policy selection (Section 7).

Adaptive bootstraps from the spot-price history prior to the
experiment, then at each decision point evaluates every permutation of
bid price B (the $0.27–$3.07 grid), zone count N (1, 2 or 3 — every
zone subset), and checkpoint policy (Periodic or Markov-Daly; Edge and
Threshold are excluded after Section 6, and Large-bid offers no cost
bound so it is not a candidate either).  Per permutation it predicts
the remaining cost and switches to the cheapest — but only when the
spot market's rules make a switch free:

1. the configuration's zones have all been terminated (nothing is
   running, so nothing paid-for is abandoned);
2. a running zone's billing hour has just ended (the committed hour
   was fully used); or
3. the new configuration does not change any running zone or the bid
   in the current billing hour (pure policy change / zone addition).

Cost prediction (Section 7.1).  For a permutation, the Markov model of
each zone's trailing history yields the stationary availability
``a_z(B)``, the expected charged rate ``E[S | S <= B, up]`` and the
expected up time ``E[T_u]``; the policy determines the checkpoint
interval (hourly for Periodic, Daly's interval on the combined
``E[T_u]`` for Markov-Daly), from which a useful-work fraction and
hence a progress rate ``P/T`` follows.  Inequality (1),
``C_r - T_r * (P/T) > 0``, decides whether a switch to on-demand will
eventually occur; solving the guard condition linearly splits the
remaining time into a spot phase and an on-demand phase, each costed
at its expected rate.  The permutation with the least predicted
remaining cost wins.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import Controller, SwitchDecision
from repro.core.markov_daly import MarkovDalyPolicy
from repro.core.periodic import PeriodicPolicy
from repro.core.policy import CheckpointPolicy, PolicyContext
from repro.market.constants import ON_DEMAND_PRICE, bid_grid
from repro.market.instance import ZoneState
from repro.stats.daly import (
    daly_interval,
    daly_interval_batch,
    expected_useful_fraction,
    expected_useful_fraction_batch,
)


@dataclass(frozen=True)
class CandidateEstimate:
    """Predicted remaining cost of one (bid, zones, policy) permutation."""

    bid: float
    zones: tuple[str, ...]
    policy_kind: str
    progress_rate: float
    spot_hours: float
    ondemand_hours: float
    predicted_cost: float


def make_policy(kind: str) -> CheckpointPolicy:
    """Fresh policy instance for a candidate kind."""
    if kind == "periodic":
        return PeriodicPolicy()
    if kind == "markov-daly":
        return MarkovDalyPolicy()
    raise ValueError(f"unknown candidate policy kind {kind!r}")


@dataclass
class AdaptiveController(Controller):
    """The paper's Adaptive scheme, as an engine controller.

    Parameters
    ----------
    bids:
        Candidate bid prices (default: the paper's grid).
    policy_kinds:
        Candidate checkpoint policies.
    max_zones:
        Largest redundancy degree to consider.
    improvement_margin:
        Relative predicted-cost improvement a switch must offer
        (damps flapping between near-tied candidates).
    reevaluate_every_s:
        How often to consider "compatible" switches (rule 3) outside
        of terminations and hour boundaries.
    """

    bids: tuple[float, ...] = tuple(bid_grid())
    policy_kinds: tuple[str, ...] = ("periodic", "markov-daly")
    max_zones: int = 3
    improvement_margin: float = 0.08
    reevaluate_every_s: float = 3600.0
    _zone_sets: tuple[tuple[str, ...], ...] = ()
    _last_eval_at: float = -math.inf
    _applied: tuple[float, tuple[str, ...], str] | None = None
    _stats_cache: dict = field(default_factory=dict, repr=False)

    #: The display name used in figures.
    name: str = "adaptive"

    def reset(self, ctx: PolicyContext) -> None:
        names = ctx.oracle.zone_names
        sets: list[tuple[str, ...]] = []
        for n in range(1, min(self.max_zones, len(names)) + 1):
            sets.extend(itertools.combinations(names, n))
        self._zone_sets = tuple(sets)
        self._last_eval_at = -math.inf
        self._applied = None

    # -- controller hook -----------------------------------------------------

    def next_decision_time(self, now: float) -> float | None:
        """Next periodic re-check; terminations and hour boundaries are
        separate decision triggers the engine's fast path already stops
        at, so between them :meth:`decide` is a pure no-op until the
        re-evaluation timer expires."""
        if math.isinf(self._last_eval_at):
            return None
        return self._last_eval_at + self.reevaluate_every_s

    def decide(self, ctx: PolicyContext) -> SwitchDecision | None:
        running = [z for z in ctx.zones if ctx.instances[z].is_running]
        none_running = not running
        at_hour_boundary = any(
            ctx.instances[z].billing.is_open
            and abs(ctx.instances[z].billing.hour_start - ctx.now) < 1e-6
            for z in running
        )
        periodic_recheck = ctx.now - self._last_eval_at >= self.reevaluate_every_s
        if not (none_running or at_hour_boundary or periodic_recheck):
            return None
        self._last_eval_at = ctx.now

        best = self.best_candidate(ctx)
        if best is None:
            return None
        best_key = (best.bid, tuple(sorted(best.zones)), best.policy_kind)
        if self._applied == best_key:
            return None  # already running the winner

        # Rule 3 guard: outside rules 1 and 2, a switch may not change
        # a running zone's participation or the bid mid-hour.
        if not (none_running or at_hour_boundary):
            keeps_running_zones = set(running) <= set(best.zones)
            same_bid = abs(best.bid - ctx.bid) < 1e-9
            if not (keeps_running_zones and same_bid):
                return None

        # Require a real improvement over the applied configuration's
        # own predicted cost to avoid flapping on estimator noise, and
        # charge candidates for the speculative progress they would
        # destroy by dropping a running zone: that progress must be
        # recomputed, which (conservatively) costs on-demand rate.
        if self._applied is not None:
            bid0, zones0, kind0 = self._applied
            current_now = self.estimate(ctx, bid0, zones0, kind0)
            drop_penalty = 0.0
            best_zone_set = set(best.zones)
            for z in running:
                if z in best_zone_set:
                    continue
                inst = ctx.instances[z]
                speculative = max(
                    inst.local_progress_s - ctx.run.committed_progress_s(), 0.0
                )
                drop_penalty = max(
                    drop_penalty, speculative / 3600.0 * ON_DEMAND_PRICE
                )
            if best.predicted_cost + drop_penalty > current_now.predicted_cost * (
                1.0 - self.improvement_margin
            ):
                return None

        self._applied = best_key
        return SwitchDecision(
            bid=best.bid,
            zones=best.zones,
            policy=make_policy(best.policy_kind),
        )

    # -- the estimator ---------------------------------------------------------

    def _zone_stats(
        self, ctx: PolicyContext, zone: str
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(availability, expected charged rate, E[T_u]) over the bid grid.

        One call into the oracle's vectorized :meth:`~repro.market.
        spot_market.PriceOracle.zone_stats` — the Markov fit, the
        stationary eigenvector, and the absorbing-chain solves are all
        shared across the grid instead of recomputed per (bid, stat)
        pair.  A thin per-controller cache keyed by (zone, hour bucket)
        avoids even the oracle's dictionary lookups in the hot loop.
        """
        key = (zone, int(ctx.now // 3600.0))
        cached = self._stats_cache.get(key)
        if cached is None:
            cached = ctx.oracle.zone_stats(zone, ctx.now, self.bids)
            self._stats_cache[key] = cached
        return cached

    def estimate(
        self,
        ctx: PolicyContext,
        bid: float,
        zones: tuple[str, ...],
        policy_kind: str,
    ) -> CandidateEstimate:
        """Predict the remaining cost of one permutation."""
        bid_idx = int(np.argmin(np.abs(np.asarray(self.bids) - bid)))
        avail = np.empty(len(zones))
        rate = np.empty(len(zones))
        uptime = np.empty(len(zones))
        for j, z in enumerate(zones):
            a, r, u = self._zone_stats(ctx, z)
            avail[j], rate[j], uptime[j] = a[bid_idx], r[bid_idx], u[bid_idx]
        return self._estimate_from_stats(
            ctx, float(self.bids[bid_idx]), zones, policy_kind, avail, rate, uptime
        )

    def _estimate_from_stats(
        self,
        ctx: PolicyContext,
        bid: float,
        zones: tuple[str, ...],
        policy_kind: str,
        avail: np.ndarray,
        rate: np.ndarray,
        uptime: np.ndarray,
    ) -> CandidateEstimate:
        return self._estimate_from_combined(
            ctx, bid, zones, policy_kind,
            combined_avail=1.0 - float(np.prod(1.0 - avail)),
            combined_uptime=float(uptime.sum()),
            spot_rate=float((avail * rate).sum()),
        )

    def _estimate_from_combined(
        self,
        ctx: PolicyContext,
        bid: float,
        zones: tuple[str, ...],
        policy_kind: str,
        combined_avail: float,
        combined_uptime: float,
        spot_rate: float,
    ) -> CandidateEstimate:
        """Section 7.1's cost prediction from pre-combined zone stats."""
        config = ctx.config
        if policy_kind == "periodic":
            interval = 3600.0 - config.ckpt_cost_s
        else:
            interval = daly_interval(combined_uptime, config.ckpt_cost_s)
        useful = expected_useful_fraction(
            combined_uptime, config.ckpt_cost_s, interval
        )
        progress_rate = combined_avail * useful  # P/T while on spot

        committed = ctx.run.committed_progress_s()
        remaining_compute = max(config.compute_s - committed, 0.0)
        remaining_time = max(ctx.run.remaining_time_s(ctx.now), 0.0)
        overhead = config.ckpt_cost_s + config.restart_cost_s

        # spot_rate: $/hour while on the spot market — every up zone
        # is charged its expected rate.

        if remaining_compute <= 0:
            return CandidateEstimate(bid, zones, policy_kind, progress_rate,
                                     0.0, 0.0, 0.0)
        budget = remaining_time - overhead
        if budget <= 0:
            od_hours = (remaining_compute + config.restart_cost_s) / 3600.0
            return CandidateEstimate(
                bid, zones, policy_kind, progress_rate, 0.0, od_hours,
                od_hours * ON_DEMAND_PRICE,
            )

        # Inequality (1): does this permutation finish on spot alone?
        if progress_rate * budget >= remaining_compute and progress_rate > 0:
            spot_s = remaining_compute / progress_rate
            od_s = 0.0
        elif progress_rate >= 1.0:  # cannot happen, kept for safety
            spot_s = remaining_compute
            od_s = 0.0
        else:
            # Guard fires when remaining time equals remaining compute
            # plus overhead: T_r - t = (C_r - r t) + overhead.
            spot_s = max(
                (remaining_time - remaining_compute - overhead)
                / max(1.0 - progress_rate, 1e-9),
                0.0,
            )
            od_s = remaining_compute - progress_rate * spot_s + config.restart_cost_s
        spot_hours = spot_s / 3600.0
        od_hours = max(od_s, 0.0) / 3600.0
        cost = spot_hours * spot_rate + od_hours * ON_DEMAND_PRICE
        return CandidateEstimate(
            bid=bid,
            zones=zones,
            policy_kind=policy_kind,
            progress_rate=progress_rate,
            spot_hours=spot_hours,
            ondemand_hours=od_hours,
            predicted_cost=cost,
        )

    def _cost_grid(
        self,
        ctx: PolicyContext,
        policy_kind: str,
        combined_avail: np.ndarray,
        combined_uptime: np.ndarray,
        spot_rate: np.ndarray,
    ) -> np.ndarray:
        """Predicted remaining cost across the whole bid grid at once.

        The vector analogue of :meth:`_estimate_from_combined`: every
        branch of the scalar estimator becomes a mask, every arithmetic
        step keeps the scalar's operation order, so each element is
        bit-equal to the corresponding scalar call.
        """
        config = ctx.config
        if policy_kind == "periodic":
            interval = 3600.0 - config.ckpt_cost_s
        else:
            interval = daly_interval_batch(combined_uptime, config.ckpt_cost_s)
        useful = expected_useful_fraction_batch(
            combined_uptime, config.ckpt_cost_s, interval
        )
        progress_rate = combined_avail * useful

        committed = ctx.run.committed_progress_s()
        remaining_compute = max(config.compute_s - committed, 0.0)
        remaining_time = max(ctx.run.remaining_time_s(ctx.now), 0.0)
        overhead = config.ckpt_cost_s + config.restart_cost_s

        if remaining_compute <= 0:
            return np.zeros_like(progress_rate)
        budget = remaining_time - overhead
        if budget <= 0:
            od_hours = (remaining_compute + config.restart_cost_s) / 3600.0
            return np.full(progress_rate.shape, od_hours * ON_DEMAND_PRICE)

        on_spot = (progress_rate * budget >= remaining_compute) & (
            progress_rate > 0
        )
        runaway = ~on_spot & (progress_rate >= 1.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            spot_if_done = remaining_compute / progress_rate
        spot_guard = np.maximum(
            (remaining_time - remaining_compute - overhead)
            / np.maximum(1.0 - progress_rate, 1e-9),
            0.0,
        )
        spot_s = np.where(
            on_spot, spot_if_done, np.where(runaway, remaining_compute, spot_guard)
        )
        od_s = np.where(
            on_spot | runaway,
            0.0,
            remaining_compute - progress_rate * spot_guard + config.restart_cost_s,
        )
        spot_hours = spot_s / 3600.0
        od_hours = np.maximum(od_s, 0.0) / 3600.0
        return spot_hours * spot_rate + od_hours * ON_DEMAND_PRICE

    def best_candidate(self, ctx: PolicyContext) -> CandidateEstimate | None:
        """Evaluate every permutation; return the cheapest.

        Per zone set, the combined availability, combined expected up
        time and spot rate are reduced across the whole bid grid, and
        :meth:`_cost_grid` prices all bids of a (zone set, policy) pair
        in one vector pass — bit-equal to the scalar estimator, so only
        float comparisons remain in the permutation loop.  The winning
        candidate alone is materialized through
        :meth:`_estimate_from_combined`.  Ties break toward fewer
        zones, then lower bid — the cheaper configuration to be wrong
        about.
        """
        sets = self._zone_sets
        if not sets:
            return None
        nbids = len(self.bids)
        avail = np.empty((len(sets), nbids))
        uptime = np.empty((len(sets), nbids))
        rate = np.empty((len(sets), nbids))
        for si, zones in enumerate(sets):
            stats = [self._zone_stats(ctx, z) for z in zones]
            one_minus = 1.0 - stats[0][0]
            combined_uptime = stats[0][2]
            spot_rate = stats[0][0] * stats[0][1]
            for a, r, u in stats[1:]:
                one_minus = one_minus * (1.0 - a)
                combined_uptime = combined_uptime + u
                spot_rate = spot_rate + a * r
            avail[si] = 1.0 - one_minus
            uptime[si] = combined_uptime
            rate[si] = spot_rate
        # One (zone sets x bids) cost matrix per policy kind, then a
        # pure-float selection loop in the original iteration order.
        costs = [
            self._cost_grid(ctx, kind, avail, uptime, rate).tolist()
            for kind in self.policy_kinds
        ]
        best: tuple[float, int, float] | None = None  # (cost, |zones|, bid)
        winner: tuple[int, str, int] | None = None
        for si, zones in enumerate(sets):
            rows = [kind_costs[si] for kind_costs in costs]
            nz = len(zones)
            for i, bid in enumerate(self.bids):
                for kind, row in zip(self.policy_kinds, rows):
                    cost = row[i]
                    if best is None or cost < best[0] - 1e-9 or (
                        abs(cost - best[0]) <= 1e-9
                        and (nz, bid) < (best[1], best[2])
                    ):
                        best = (cost, nz, bid)
                        winner = (si, kind, i)
        if winner is None:
            return None
        si, kind, i = winner
        return self._estimate_from_combined(
            ctx, float(self.bids[i]), sets[si], kind,
            combined_avail=float(avail[si, i]),
            combined_uptime=float(uptime[si, i]),
            spot_rate=float(rate[si, i]),
        )
