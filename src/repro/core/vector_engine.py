"""Struct-of-arrays batched engine — (shape × bid × start) cubes in lockstep.

Every figure aggregates hundreds of (start, seed) runs per grid cell;
after the segment-skipping fast path, the remaining cost is the
one-run-at-a-time Python loop around it.  This module batches that
loop away: a :class:`VectorSimulator` advances a whole *grid* of runs
simultaneously, holding each scalar of the engine's per-run state
(clock, zone states, phase countdowns, progress, billing meters, the
checkpoint store, policy decision state) as a NumPy column over the
batch.  Multi-zone cells store per-zone state as per-zone column
blocks (one ``(zones, runs)`` array per field), and the bid axis is
folded into the same batch: every run carries its own bid column, so
one lockstep pass serves an entire (bid × start) grid per (policy,
zone-set) cell.  The job-shape axis folds in the same way
(:meth:`VectorSimulator.run_cube`): every run also carries its own
(compute, checkpoint-cost, restart-cost, deadline) columns, so one
pass advances a whole (shape × bid × start) cube — a deadline ladder
shares the zone-dynamics column work (price lookups, crossing
searches, the round loop itself) while each shape row keeps its own
progress, billing, checkpoint and deadline state and its own RNG
stream, preserving bit-exactness row by row.  Bid-invariant policies
compose with
:mod:`repro.core.bid_batch`'s equivalence classes — one representative
row simulates per class and the engine clones the rest inside the
batch, rewriting only the bid.

One lockstep *round* executes, for every live run, exactly one full
tick of Algorithm 1 — billing rolls, market transitions, the deadline
guard, policy actions, one ``advance`` step — followed by the same
vectorized quiescence analysis the scalar fast engine performs and a
bulk skip of the provably event-free stretch.  Runs sit at different
clocks (each skips at its own pace); the lockstep is over rounds, not
over time.  Zone price-crossing and rising-edge indices are shared
across the whole batch through the trace's memoized caches, and the
per-event "which runs does this tick affect" step is a vectorized min
over hazard bounds instead of a per-run heap.

Bit-exactness is the contract: every float operation replays the
scalar engine's arithmetic in the same order (left-associative sums,
``min``-tie-breaking, the repeated-addition accrual for fractional
accumulators), every RNG draw comes from the same per-run
``numpy.random.Generator`` in the same sequence, and the event log —
when recorded — matches entry for entry.  The differential suite
(:func:`repro.audit.differential.vector_differential_run`) holds the
engine to it.

Scope: the native vectorized path covers runs at any start time
(fractional starts replay the scalar engine's per-tick accrual loop
inside the bulk skip) under policies that declare a ``vector_kind``
("periodic", "edge", "never", "markov-daly", "threshold",
"large-bid"), over any zone set, each run at its own bid.
Markov-Daly's re-arm clock, Periodic's per-(zone, hour) latch and
Large-bid's released-hour latch plus deferred manual termination ride
along as decision-state columns; Threshold's price and execution-time
guards evaluate per run against the oracle's memoized statistics.
Adaptive-controller runs take their own native path
(:meth:`VectorSimulator.run_adaptive_batch`): per-run controller state
(bid, zone set, policy kind, re-plan clock) lives in columns, decision
epochs are detected column-wise, and triggered rows share one
:class:`~repro.core.adaptive.SelectionMemo` so the dense candidate
selection is paid once per (bucket matrices, deadline clock) signature
and fanned out.  Anything else — unknown policies, non-adaptive
controllers, run-time dynamics — automatically falls back to a per-run
scalar fast engine sharing the same RNG stream and run cache, so
callers never need to know which path served them; the
:attr:`VectorSimulator.stats` counters say which one did (fallback
reasons come from the closed :data:`FALLBACK_REASONS` enum).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro.app.workload import ExperimentConfig
from repro.core.engine import EngineError, Event, RunResult, SpotSimulator
from repro.market.constants import ON_DEMAND_PRICE, SAMPLE_INTERVAL_S
from repro.market.queuing import QueueDelayModel
from repro.market.spot_market import PriceOracle
from repro.stats.daly import daly_interval

# Integer codes of the ZoneState machine, in lifecycle order.  The
# ordering carries meaning: ``state >= QUEUING`` is "running" (an open
# billing hour), mirroring ``RUNNING_STATES``.
DOWN, WAITING, QUEUING, RESTARTING, COMPUTING, CHECKPOINTING = range(6)

#: Policy ``vector_kind`` values the native path can express.
NATIVE_KINDS = frozenset(
    {"periodic", "edge", "never", "markov-daly", "threshold", "large-bid"}
)

# -- fallback reasons ---------------------------------------------------
#
# The closed set of reason strings :class:`BatchStats` may count a
# fallback under.  These labels are an external contract: the CLI's
# stderr stats line prints them, tests pin them, and operators grep for
# them — add a constant here (and to FALLBACK_REASONS) before inventing
# a new string.

#: The policy declares no ``vector_kind`` the native path understands.
FALLBACK_POLICY = "policy"
#: A controller other than :class:`~repro.core.adaptive.AdaptiveController`
#: drives the run, so its decisions cannot be batched as columns.
FALLBACK_CONTROLLER = "controller"
#: Every reason string the vector engine may emit.
FALLBACK_REASONS = frozenset({FALLBACK_POLICY, FALLBACK_CONTROLLER})


def native_batch_kind(policy, zones: tuple[str, ...]) -> str | None:
    """The native vector kind serving this (policy, zones) cell, or
    ``None`` when every run must fall back to the scalar engine."""
    kind = getattr(type(policy), "vector_kind", None)
    if kind in NATIVE_KINDS:
        return kind
    return None


# -- column-backed context views ----------------------------------------
#
# The Adaptive controller's decision body is plain Python; at an epoch
# the batched path hands it a real PolicyContext whose run/instance
# objects are thin snapshots of one run's columns.  The controller only
# reads the attributes below (committed/remaining clocks, running
# flags, billing-hour anchors, local progress), so the views stay tiny.

class _ColRun:
    """Column snapshot standing in for
    :class:`~repro.app.application.ApplicationRun`."""

    __slots__ = ("_committed", "_deadline")

    def __init__(self, committed: float, deadline: float) -> None:
        self._committed = committed
        self._deadline = deadline

    def committed_progress_s(self) -> float:
        return self._committed

    def remaining_time_s(self, now: float) -> float:
        return max(self._deadline - now, 0.0)


class _ColBilling:
    """Column snapshot of a zone instance's billing meter."""

    __slots__ = ("is_open", "hour_start")

    def __init__(self, is_open: bool, hour_start: float) -> None:
        self.is_open = is_open
        self.hour_start = hour_start


class _ColInstance:
    """Column snapshot of one zone's instance state."""

    __slots__ = ("is_running", "local_progress_s", "billing")

    def __init__(
        self, is_running: bool, local_progress_s: float,
        billing: _ColBilling,
    ) -> None:
        self.is_running = is_running
        self.local_progress_s = local_progress_s
        self.billing = billing


@dataclass
class BatchStats:
    """Where a batch's runs were served: native columns, in-batch bid
    clones, or the per-run scalar fallback (and why)."""

    native: int = 0
    cloned: int = 0
    fallback: dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.native + self.cloned + sum(self.fallback.values())

    def count_fallback(self, reason: str, n: int = 1) -> None:
        self.fallback[reason] = self.fallback.get(reason, 0) + n

    def merge(self, other: "BatchStats") -> None:
        self.native += other.native
        self.cloned += other.cloned
        for reason, count in other.fallback.items():
            self.count_fallback(reason, count)

    def line(self) -> str:
        """One-line summary for the CLI's stderr stats report."""
        total_fb = sum(self.fallback.values())
        msg = (
            f"vector-engine: native={self.native} cloned={self.cloned} "
            f"fallback={total_fb}"
        )
        if total_fb:
            detail = " ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.fallback.items())
            )
            msg += f" ({detail})"
        return msg


@dataclass
class VectorSimulator:
    """Batched grid engine over one oracle.

    Parameters mirror :class:`~repro.core.engine.SpotSimulator` minus
    the per-run ``rng`` — each run of a batch brings its own generator,
    so queue-delay draws match the scalar engine draw for draw.
    """

    oracle: PriceOracle
    queue_model: QueueDelayModel
    record_events: bool = False
    #: Optional :class:`repro.experiments.cache.RunCache`.  Vector runs
    #: compute the *same* content addresses as the scalar fast engine
    #: (``engine_mode="fast"`` in the key), so entries interoperate in
    #: both directions: a vector batch hits entries a scalar run stored
    #: and vice versa.
    run_cache: object | None = None
    #: Running native/cloned/fallback counters across every batch this
    #: simulator served; drained by the runner for the CLI stats line.
    stats: BatchStats = field(default_factory=BatchStats)

    def drain_stats(self) -> BatchStats:
        """Return the accumulated counters and reset them."""
        out = self.stats
        self.stats = BatchStats()
        return out

    # ------------------------------------------------------------------

    def run_batch(
        self,
        config: ExperimentConfig,
        policy_factory,
        bid: float,
        zones: tuple[str, ...],
        starts,
        rngs,
    ) -> list[RunResult]:
        """Simulate one run per (start, rng) pair; results in order.

        Equivalent to ``SpotSimulator(engine_mode="fast").run(config,
        policy_factory(), bid, zones, start)`` once per start with the
        matching generator — bit-identical results, shared cache
        entries, identical RNG streams afterwards.
        """
        return self.run_grid(
            config, policy_factory, zones,
            [bid] * len(starts), starts, rngs,
        )

    def run_grid(
        self,
        config: ExperimentConfig,
        policy_factory,
        zones: tuple[str, ...],
        bids,
        starts,
        rngs,
        clone_of=None,
    ) -> list[RunResult]:
        """Simulate one run per (bid, start, rng) row; results in order.

        ``clone_of`` optionally maps row ``i`` to a representative row
        whose trajectory is bid-for-bid identical (same availability
        signature, from :func:`repro.core.bid_batch.bid_equivalence_classes`);
        for bid-invariant policies those rows are served by cloning the
        representative's result with only the bid rewritten — exactly
        what the scalar batched bid-axis path does — consuming no RNG
        draws and writing no cache entries.  Rows outside the native
        scope (no recognized ``vector_kind``) fall back to per-run
        scalar fast simulation under :data:`FALLBACK_POLICY`.
        """
        return self.run_cube(
            [config], policy_factory, zones,
            [0] * len(starts), bids, starts, rngs,
            clone_of=clone_of,
        )

    def run_cube(
        self,
        configs,
        policy_factory,
        zones: tuple[str, ...],
        shape_idx,
        bids,
        starts,
        rngs,
        clone_of=None,
    ) -> list[RunResult]:
        """Simulate one run per (shape, bid, start, rng) row; in order.

        ``configs`` is the job-shape ladder (typically one compute /
        checkpoint configuration at several deadlines) and
        ``shape_idx[i]`` names row ``i``'s shape.  Every row is
        bit-identical — RunResult, event log, RNG draw sequence, cache
        address — to a scalar fast run at its own shape: shape rows
        share the lockstep round loop and the per-(zone, bid) crossing
        arrays, never each other's arithmetic.  ``clone_of`` rows are
        honored only within a shape (a clone must share its
        representative's deadline as well as its availability
        signature).  Rows outside the native scope fall back to per-run
        scalar fast simulation under :data:`FALLBACK_POLICY` at their
        own shape.
        """
        zones = tuple(zones)
        starts = [float(s) for s in starts]
        configs = list(configs)
        shape_idx = [int(s) for s in shape_idx]
        if not configs:
            raise EngineError("at least one job shape is required")
        if len(shape_idx) != len(starts):
            raise EngineError(
                f"{len(starts)} starts but {len(shape_idx)} shape rows"
            )
        for s in shape_idx:
            if not 0 <= s < len(configs):
                raise EngineError(
                    f"shape index {s} outside 0..{len(configs) - 1}"
                )
        if len(rngs) != len(starts):
            raise EngineError(
                f"{len(starts)} starts but {len(rngs)} rng streams"
            )
        if len(bids) != len(starts):
            raise EngineError(
                f"{len(starts)} starts but {len(bids)} bids"
            )
        if not zones:
            raise EngineError("at least one zone is required")
        for z in zones:
            if z not in self.oracle.zone_names:
                raise EngineError(
                    f"zone {z!r} not in trace {self.oracle.zone_names}"
                )
        for b in bids:
            if b <= 0:
                raise EngineError(f"bid must be positive, got {b}")

        probe = policy_factory()
        kind = native_batch_kind(probe, zones)
        n = len(starts)
        results: list[RunResult | None] = [None] * n
        is_native = [kind is not None for _ in range(n)]

        # Bid-equivalence clone plan: honored only for bid-invariant
        # policies, only between rows the native path serves, and only
        # within one job shape (the deadline guard makes trajectories
        # shape-dependent even when availability matches).
        plan: dict[int, int] = {}
        if clone_of is not None and getattr(
            type(probe), "bid_invariant", False
        ):
            for i, rep in enumerate(clone_of):
                if rep is None or rep == i:
                    continue
                rep = int(rep)
                if not (0 <= rep < n):
                    continue
                if shape_idx[i] != shape_idx[rep]:
                    continue
                if is_native[i] and is_native[rep]:
                    plan[i] = rep
            for i in list(plan):  # follow chains to their root rows
                rep = plan[i]
                seen = {i}
                while rep in plan and rep not in seen:
                    seen.add(rep)
                    rep = plan[rep]
                plan[i] = rep

        sim_rows = [i for i in range(n) if is_native[i] and i not in plan]
        if sim_rows:
            self._run_native_rows(
                configs, probe, kind, zones, shape_idx, bids, starts,
                rngs, sim_rows, results,
            )
            self.stats.native += len(sim_rows)
        for i, rep in sorted(plan.items()):
            results[i] = replace(results[rep], bid=float(bids[i]))
        self.stats.cloned += len(plan)
        for i in range(n):
            if results[i] is None:
                self.stats.count_fallback(FALLBACK_POLICY)
                sim = SpotSimulator(
                    oracle=self.oracle, queue_model=self.queue_model,
                    rng=rngs[i], record_events=self.record_events,
                    engine_mode="fast", run_cache=self.run_cache,
                )
                results[i] = sim.run(
                    configs[shape_idx[i]], policy_factory(), bids[i],
                    zones, starts[i],
                )
        return results

    def run_adaptive_batch(
        self,
        config: ExperimentConfig,
        controller_factory,
        starts,
        rngs,
    ) -> list[RunResult]:
        """Simulate one controller-driven run per (start, rng) pair.

        Equivalent to ``SpotSimulator(engine_mode="fast").run(config,
        PeriodicPolicy(), ctrl.bids[0], oracle.zone_names[:1], start,
        controller=ctrl)`` once per start with a fresh controller from
        ``controller_factory`` — the bootstrap configuration the
        experiment runner uses for Adaptive cells — bit-identical
        results, shared cache entries, identical RNG streams afterwards.
        The native path batches :class:`~repro.core.adaptive.\
AdaptiveController` exactly (a subclass may override decision rules the
        columns hard-code, so it must match the class itself); any other
        controller falls back to per-run scalar fast simulation under
        :data:`FALLBACK_CONTROLLER`.
        """
        return self.run_adaptive_cube(
            [config], controller_factory, [0] * len(starts), starts, rngs
        )

    def run_adaptive_cube(
        self,
        configs,
        controller_factory,
        shape_idx,
        starts,
        rngs,
    ) -> list[RunResult]:
        """Simulate one controller-driven run per (shape, start, rng) row.

        The shape axis works exactly as in :meth:`run_cube`: row ``i``
        runs at ``configs[shape_idx[i]]``, bit-identical to a scalar
        fast controller run at that shape, while the deadline ladder
        shares the round loop, the crossing caches and — through the
        shared :class:`~repro.core.adaptive.SelectionMemo`, whose keys
        carry the job shape — the dense candidate selections.
        """
        from repro.core.adaptive import AdaptiveController
        from repro.core.periodic import PeriodicPolicy

        starts = [float(s) for s in starts]
        configs = list(configs)
        shape_idx = [int(s) for s in shape_idx]
        if not configs:
            raise EngineError("at least one job shape is required")
        if len(shape_idx) != len(starts):
            raise EngineError(
                f"{len(starts)} starts but {len(shape_idx)} shape rows"
            )
        for s in shape_idx:
            if not 0 <= s < len(configs):
                raise EngineError(
                    f"shape index {s} outside 0..{len(configs) - 1}"
                )
        if len(rngs) != len(starts):
            raise EngineError(
                f"{len(starts)} starts but {len(rngs)} rng streams"
            )
        n = len(starts)
        probe = controller_factory()
        init_zones = tuple(self.oracle.zone_names[:1])
        results: list[RunResult | None] = [None] * n
        if type(probe) is not AdaptiveController:
            for i in range(n):
                self.stats.count_fallback(FALLBACK_CONTROLLER)
                ctrl = controller_factory()
                sim = SpotSimulator(
                    oracle=self.oracle, queue_model=self.queue_model,
                    rng=rngs[i], record_events=self.record_events,
                    engine_mode="fast", run_cache=self.run_cache,
                )
                results[i] = sim.run(
                    configs[shape_idx[i]], PeriodicPolicy(),
                    ctrl.bids[0], init_zones, starts[i], controller=ctrl,
                )
            return results
        self._run_adaptive_rows(
            configs, controller_factory, probe, shape_idx, starts, rngs,
            list(range(n)), results,
        )
        self.stats.native += n
        return results

    # -- cache-aware native dispatch ---------------------------------------

    def _run_native_rows(
        self, configs, probe, kind, zones, shape_idx, bids, starts, rngs,
        idxs, results,
    ) -> None:
        """Serve ``idxs`` from the cache where possible, batch the rest."""
        cache = self.run_cache
        keys: dict[int, str] = {}
        todo = idxs
        if cache is not None:
            oracle = self.oracle
            shared = {
                "trace": oracle.trace.fingerprint(),
                "oracle": {
                    "history_s": oracle.history_s,
                    "bucket_s": oracle.bucket_s,
                    "incremental": oracle.incremental,
                },
                # Vector results are bit-identical to scalar fast runs,
                # so they share the fast engine's content addresses.
                "engine_mode": "fast",
                "record_events": self.record_events,
                "record_timeline": False,
                "policy": probe.canonical_params(),
                "zones": zones,
                "controller": None,
                "queue_model": self.queue_model,
            }
            # one base per job shape: ``config`` is part of the content
            # address, so every cube row lands on exactly the entry its
            # own-shape scalar fast run would read or write
            bases = [{**shared, "config": cfg} for cfg in configs]
            todo = []
            for i in idxs:
                try:
                    key = cache.run_key({
                        **bases[shape_idx[i]],
                        "bid": float(bids[i]),
                        "start_time": starts[i],
                        "rng": rngs[i].bit_generator.state,
                    })
                except TypeError:
                    todo.append(i)
                    continue
                entry = cache.get(key)
                if entry is not None:
                    for _ in range(entry.rng_draws):
                        self.queue_model.sample(rngs[i])
                    results[i] = entry.result
                else:
                    keys[i] = key
                    todo.append(i)
        if not todo:
            return
        batch, draws = self._simulate_rows(
            configs, probe, kind, zones,
            [shape_idx[i] for i in todo],
            [float(bids[i]) for i in todo],
            [starts[i] for i in todo],
            [rngs[i] for i in todo],
        )
        if keys:
            from repro.experiments.cache import CachedRun
        for j, i in enumerate(todo):
            results[i] = batch[j]
            if i in keys:
                cache.put(
                    keys[i],
                    CachedRun(result=batch[j], rng_draws=int(draws[j])),
                )

    def _run_adaptive_rows(
        self, configs, controller_factory, probe, shape_idx, starts, rngs,
        idxs, results,
    ) -> None:
        """Serve ``idxs`` from the cache where possible, batch the rest."""
        from repro.core.periodic import PeriodicPolicy

        cache = self.run_cache
        init_zones = tuple(self.oracle.zone_names[:1])
        keys: dict[int, str] = {}
        todo = idxs
        controller_params = probe.canonical_params()
        if cache is not None and controller_params is not None:
            oracle = self.oracle
            shared = {
                "trace": oracle.trace.fingerprint(),
                "oracle": {
                    "history_s": oracle.history_s,
                    "bucket_s": oracle.bucket_s,
                    "incremental": oracle.incremental,
                },
                # Adaptive vector results are bit-identical to scalar
                # fast controller runs, so they share those addresses.
                "engine_mode": "fast",
                "record_events": self.record_events,
                "record_timeline": False,
                "policy": PeriodicPolicy().canonical_params(),
                "bid": float(probe.bids[0]),
                "zones": init_zones,
                "controller": controller_params,
                "queue_model": self.queue_model,
            }
            bases = [{**shared, "config": cfg} for cfg in configs]
            todo = []
            for i in idxs:
                try:
                    key = cache.run_key({
                        **bases[shape_idx[i]],
                        "start_time": starts[i],
                        "rng": rngs[i].bit_generator.state,
                    })
                except TypeError:
                    todo.append(i)
                    continue
                entry = cache.get(key)
                if entry is not None:
                    for _ in range(entry.rng_draws):
                        self.queue_model.sample(rngs[i])
                    results[i] = entry.result
                else:
                    keys[i] = key
                    todo.append(i)
        if not todo:
            return
        batch, draws = self._simulate_adaptive_rows(
            configs, controller_factory, probe,
            [shape_idx[i] for i in todo],
            [starts[i] for i in todo],
            [rngs[i] for i in todo],
        )
        if keys:
            from repro.experiments.cache import CachedRun
        for j, i in enumerate(todo):
            results[i] = batch[j]
            if i in keys:
                cache.put(
                    keys[i],
                    CachedRun(result=batch[j], rng_draws=int(draws[j])),
                )

    # -- the lockstep core -------------------------------------------------

    def _simulate_rows(
        self, configs, probe, kind, zones, shape_idx, bids, starts, rngs
    ) -> tuple[list[RunResult], np.ndarray]:
        """Advance ``len(starts)`` native rows to completion in lockstep.

        Row ``i`` runs at job shape ``configs[shape_idx[i]]``: the
        shape scalars (compute, checkpoint cost, restart cost,
        deadline) become per-row float64 columns, and every expression
        that read them stays elementwise — identical IEEE arithmetic to
        the scalar broadcast wherever rows share a shape, per-row exact
        everywhere else.
        """
        oracle = self.oracle
        dt = float(SAMPLE_INTERVAL_S)
        n = len(starts)

        # Zone geometry: state blocks are laid out in *oracle* zone
        # order (the scalar engine's ``instances`` dict order), while
        # market transitions walk the *given* zone order — both orders
        # matter for bit-exact event streams and RNG draw sequences.
        zset = set(zones)
        zorder = tuple(z for z in oracle.zone_names if z in zset)
        Z = len(zorder)
        gorder = [zorder.index(z) for z in zones]
        ztr = [oracle.trace.zone(z) for z in zorder]
        zprices = [zt.prices for zt in ztr]
        zz0 = [float(zt.start_time) for zt in ztr]
        zlen = [len(zt.prices) for zt in ztr]
        # the scalar quiescence scan indexes every zone's prices with
        # the *first given* zone's grid index — replicated verbatim
        ref = oracle.trace.zone(zones[0])
        ref_z0 = float(ref.start_time)
        ref_len = len(ref.prices)

        start_arr = np.asarray(starts, dtype=np.float64)
        bid_arr = np.asarray(bids, dtype=np.float64)
        shape_arr = np.asarray(shape_idx, dtype=np.int64)
        dls = np.asarray(
            [cfg.deadline_s for cfg in configs], dtype=np.float64
        )
        deadline = start_arr + dls[shape_arr]
        end_time = float(oracle.trace.end_time)
        if np.any(deadline > end_time):
            bad = float(deadline[deadline > end_time][0])
            raise EngineError(
                f"trace ends at {end_time}, before the deadline {bad}"
            )
        # per-row shape columns (see the docstring)
        C = np.asarray(
            [cfg.compute_s for cfg in configs], dtype=np.float64
        )[shape_arr]
        tc = np.asarray(
            [cfg.ckpt_cost_s for cfg in configs], dtype=np.float64
        )[shape_arr]
        tr = np.asarray(
            [cfg.restart_cost_s for cfg in configs], dtype=np.float64
        )[shape_arr]

        # shared per-trace indices (memoized on the ZoneTrace), one
        # crossing array per (zone, distinct bid) — the fused bid axis
        # groups rows into bid classes for the quiescence bound
        ubids, bclass = np.unique(bid_arr, return_inverse=True)
        class_rows = [np.flatnonzero(bclass == b) for b in range(len(ubids))]
        zcross = [
            [zt.threshold_crossings(float(ub)) for ub in ubids] for zt in ztr
        ]
        zcross_ext = [
            [np.concatenate([cr, [zlen[zi]]]) for cr in zcross[zi]]
            for zi in range(Z)
        ]
        # Large-bid: the control threshold L gates re-acquisition and
        # the hour-end release checkpoint; non-running zones flip on
        # crossings of min(bid, L) (start_price_threshold), and the
        # fast-forward bound tracks crossings of L itself.
        lb = kind == "large-bid"
        L = float(probe.control_threshold) if lb else math.inf
        if lb and math.isfinite(L):
            zcross_s = [
                [
                    zt.threshold_crossings(float(min(float(ub), L)))
                    for ub in ubids
                ]
                for zt in ztr
            ]
            zcross_s_ext = [
                [np.concatenate([cr, [zlen[zi]]]) for cr in zcross_s[zi]]
                for zi in range(Z)
            ]
            zcross_l = [zt.threshold_crossings(L) for zt in ztr]
            zcross_l_ext = [
                np.concatenate([zcross_l[zi], [zlen[zi]]]) for zi in range(Z)
            ]
        else:
            zcross_s, zcross_s_ext = zcross, zcross_ext
        if kind in ("edge", "threshold"):
            zedges = [zt.rising_edges() for zt in ztr]
            zedges_ext = [
                np.concatenate([zedges[zi], [zlen[zi]]]) for zi in range(Z)
            ]
            zrising = []
            for zi in range(Z):
                mask = np.zeros(zlen[zi], dtype=bool)
                mask[zedges[zi]] = True
                zrising.append(mask)

        # struct-of-arrays run state: per-run columns, per-zone blocks
        t = start_arr.copy()
        alive = np.ones(n, dtype=bool)
        zst = np.full((Z, n), DOWN, dtype=np.int8)
        phase = np.zeros((Z, n))     # remaining seconds of timed activity
        pendr = np.zeros((Z, n))     # restore time owed after QUEUING
        zbase = np.zeros((Z, n))     # committed progress restarted from
        zcomp = np.zeros((Z, n))     # compute seconds since the restart
        pendc = np.zeros((Z, n))     # progress snapshotted by in-flight ckpt
        csince = np.full((Z, n), np.nan)  # COMPUTING entry timestamp
        hourst = np.full((Z, n), np.nan)  # NaN = no billing hour open
        zrate = np.zeros((Z, n))
        zspot = np.zeros((Z, n))
        zhours = np.zeros((Z, n), dtype=np.int64)
        zrest = np.zeros((Z, n), dtype=np.int64)
        zterm = np.zeros((Z, n), dtype=np.int64)
        latch = np.full((Z, n), np.nan)  # periodic per-(zone, hour) latch
        committed = np.zeros(n)          # checkpoint store
        ncomm = np.zeros(n, dtype=np.int64)
        ckpt_flag = np.zeros(n, dtype=bool)  # checkpoint_just_committed
        finish = np.full(n, np.nan)
        od_cost = np.zeros(n)
        switch_t = np.full(n, np.nan)
        completed_on = np.zeros(n, dtype=np.int8)  # 1 = spot, 2 = ondemand
        draws = np.zeros(n, dtype=np.int64)
        md_next = np.full(n, np.nan)  # markov-daly re-arm clocks
        # large-bid deferred manual termination (release_on_commit):
        # at most one checkpoint is in flight per run, so a pending
        # release is one (flag, zone block) pair per run
        rel_pending = np.zeros(n, dtype=bool)
        rel_zi = np.zeros(n, dtype=np.int64)
        rows = np.arange(n)
        events: list[list[Event]] | None = (
            [[] for _ in range(n)] if self.record_events else None
        )

        def emit(idx_arr, times, ekind, ezone, details):
            for j, i in enumerate(idx_arr):
                events[i].append(Event(
                    time=float(times[j]), kind=ekind, zone=ezone,
                    detail=details[j],
                ))

        zones_t = tuple(zones)

        def md_schedule(i: int) -> None:
            """MarkovDalyPolicy.schedule_next_checkpoint in Python
            floats — identical arithmetic, identical oracle queries —
            against row ``i``'s own job shape."""
            now = float(t[i])
            tc_i = float(tc[i])
            tr_i = float(tr[i])
            uptime = float(
                oracle.combined_uptimes(zones_t, now, (float(bid_arr[i]),))[0]
            )
            interval = daly_interval(uptime, tc_i)
            remaining_compute = max(float(C[i]) - float(committed[i]), 0.0)
            margin = (
                max(float(deadline[i]) - now, 0.0)
                - remaining_compute
                - tc_i
                - tr_i
            )
            reserve = tc_i + 4.0 * 300.0  # forced-commit window + ticks
            budget = margin - reserve
            if budget > 0:
                interval = max(interval, remaining_compute * tc_i / budget)
                interval = min(interval, max(budget, tc_i))
            else:
                interval = max(margin, tc_i)
            md_next[i] = now + interval

        if kind == "markov-daly":
            for i in range(n):  # policy reset + schedule at t = start
                md_schedule(i)

        max_rounds = int(float(dls.max()) // dt) + 16
        for _round in range(max_rounds):
            if not alive.any():
                break

            # -- one full tick for every live run (at its own clock) ------

            # billing hours whose boundary has been reached: all of one
            # zone's boundaries roll before the next zone's, matching
            # the scalar per-instance while loop
            for zi in range(Z):
                while True:
                    m = alive & (hourst[zi] + 3600.0 <= t + 1e-6)
                    if not m.any():
                        break
                    idx = np.flatnonzero(m)
                    boundary = hourst[zi][idx] + 3600.0
                    zspot[zi][idx] += zrate[zi][idx]
                    zhours[zi][idx] += 1
                    new_rate = zprices[zi][
                        ((boundary - zz0[zi]) // dt).astype(np.int64)
                    ]
                    zrate[zi][idx] = new_rate
                    hourst[zi][idx] = boundary
                    if events is not None:
                        emit(idx, boundary, "hour-rolled", zorder[zi],
                             [f"rate={float(r):.3f}" for r in new_rate])

            # market transitions (Algorithm 1 lines 2-8), in the given
            # zone order like the scalar loop over ``active_zones``
            znow_i = [
                np.clip(((t - zz0[zi]) // dt).astype(np.int64),
                        0, zlen[zi] - 1)
                for zi in range(Z)
            ]
            znow_p = [zprices[zi][znow_i[zi]] for zi in range(Z)]
            for zi in gorder:
                pz = znow_p[zi]
                st = zst[zi]
                run_z = alive & (st >= QUEUING)
                term = run_z & (pz > bid_arr)
                if term.any():
                    ti = np.flatnonzero(term)
                    hourst[zi][ti] = np.nan  # partial hour forfeited
                    zrate[zi][ti] = 0.0
                    phase[zi][ti] = 0.0
                    pendr[zi][ti] = 0.0
                    zbase[zi][ti] = 0.0
                    zcomp[zi][ti] = 0.0
                    pendc[zi][ti] = 0.0
                    csince[zi][ti] = np.nan
                    st[ti] = DOWN
                    zterm[zi][ti] += 1
                    if lb:  # release_on_commit.discard(zone)
                        rel_pending[ti] &= rel_zi[ti] != zi
                    if events is not None:
                        emit(ti, t[ti], "provider-terminated", zorder[zi],
                             [f"S={float(p):.3f}" for p in pz[ti]])
                notrun = alive & ~run_z  # terminated zones wait a tick
                start_ok = (
                    (pz <= bid_arr) & (pz <= L) if lb else pz <= bid_arr
                )  # eligible_to_start: Large-bid gates on L
                to_wait = notrun & start_ok & (st == DOWN)
                if to_wait.any():
                    wi = np.flatnonzero(to_wait)
                    st[wi] = WAITING
                    if events is not None:
                        emit(wi, t[wi], "waiting", zorder[zi],
                             [f"S={float(p):.3f}" for p in pz[wi]])
                to_down = notrun & ~start_ok & (st == WAITING)
                st[to_down] = DOWN

            # deadline guard (line 11) — exact scalar arithmetic.  The
            # leader is the argmax over -inf-masked progress, which
            # replays Python max()'s first-wins tie-breaking in zone
            # block order.
            loc = zbase + zcomp
            comp_mask = zst == COMPUTING
            loc_masked = np.where(comp_mask, loc, -np.inf)
            lead_zi = np.argmax(loc_masked, axis=0)
            lead_local = loc_masked[lead_zi, rows]
            has_comp = comp_mask.any(axis=0)
            any_ck = (zst == CHECKPOINTING).any(axis=0)

            if lb:  # trust_speculative: count the leader's local work
                guard_prog = np.where(
                    has_comp, np.maximum(committed, lead_local), committed
                )
            else:
                guard_prog = committed
            trigger = (np.maximum(C - guard_prog, 0.0) + tc) + tr
            remaining_time = deadline - t
            margin = remaining_time - trigger
            safe = margin > dt + 1e-6
            force = (
                alive & safe & (margin <= tc + 3.0 * dt)
                & ~any_ck & has_comp & (lead_local > committed + 1e-9)
            )
            if force.any():
                fi = np.flatnonzero(force)
                lz = lead_zi[fi]
                pendc[lz, fi] = lead_local[fi]
                zst[lz, fi] = CHECKPOINTING
                phase[lz, fi] = tc[fi]
                if events is not None:
                    for j, i in enumerate(fi):
                        events[i].append(Event(
                            time=float(t[i]), kind="checkpoint-started",
                            zone=zorder[lz[j]],
                            detail=f"forced P={lead_local[i]:.0f}s",
                        ))
            migrate = alive & ~safe
            if migrate.any():
                # candidate 0: restore the committed checkpoint; then
                # one candidate per zone block in order, taken on a
                # strictly better key (min()'s first-wins ties)
                best_prog = committed.copy()
                best_pre = np.zeros(n)
                best_key = np.maximum(C - committed, 0.0) + np.where(
                    committed > 0, tr, 0.0
                )
                for zi in range(Z):
                    key2 = (np.maximum(C - loc[zi], 0.0) + tc) + np.where(
                        loc[zi] > 0, tr, 0.0
                    )
                    use2 = migrate & (zst[zi] == COMPUTING) & (
                        key2 < best_key
                    )
                    best_prog[use2] = loc[zi][use2]
                    best_pre[use2] = tc[use2]
                    best_key[use2] = key2[use2]
                    key3 = (
                        np.maximum(C - pendc[zi], 0.0) + phase[zi]
                    ) + np.where(pendc[zi] > 0, tr, 0.0)
                    use3 = migrate & (zst[zi] == CHECKPOINTING) & (
                        key3 < best_key
                    )
                    best_prog[use3] = pendc[zi][use3]
                    best_pre[use3] = phase[zi][use3]
                    best_key[use3] = key3[use3]
                restore = np.where(best_prog > 0, tr, 0.0)
                overhead = best_pre + restore
                rem_comp = np.maximum(C - best_prog, 0.0)
                mi = np.flatnonzero(migrate)
                if events is not None:
                    emit(mi, t[mi], "ondemand-switch", None,
                         [f"C_r={float(c):.0f}s T_r={float(r):.0f}s"
                          for c, r in zip(rem_comp[mi], remaining_time[mi])])
                for zi in range(Z):  # user_close at t, reason="user"
                    close = migrate & (zst[zi] >= QUEUING)
                    idx = np.flatnonzero(close)
                    if idx.size == 0:
                        continue
                    used = t[idx] - hourst[zi][idx]
                    if np.any(used > 3600.0 + 1e-6):  # pragma: no cover
                        raise EngineError(
                            "open billing hour overran its boundary"
                        )
                    charge = idx[used >= 1.0]  # < 1 s of a fresh hour free
                    zspot[zi][charge] += zrate[zi][charge]
                    zhours[zi][charge] += 1
                    hourst[zi][idx] = np.nan
                    zrate[zi][idx] = 0.0
                zst[:, mi] = DOWN
                finish[mi] = (t[mi] + overhead[mi]) + rem_comp[mi]
                od_sec = restore + rem_comp
                od_cost[mi] = np.where(
                    od_sec[mi] > 0,
                    np.ceil(od_sec[mi] / 3600.0) * ON_DEMAND_PRICE,
                    0.0,
                )
                switch_t[mi] = t[mi]
                completed_on[mi] = 2
                alive &= ~migrate

            # policy actions (lines 16-35)
            if kind == "markov-daly":
                for i in np.flatnonzero(alive & ckpt_flag):
                    md_schedule(i)  # line 23: re-arm after a commit

            comp_mask = zst == COMPUTING
            loc = zbase + zcomp
            loc_masked = np.where(comp_mask, loc, -np.inf)
            lead_zi = np.argmax(loc_masked, axis=0)
            lead_local = loc_masked[lead_zi, rows]
            has_leader = comp_mask.any(axis=0)
            any_ck = (zst == CHECKPOINTING).any(axis=0)
            wait_mask = zst == WAITING
            waiting_any = wait_mask.any(axis=0)
            running_cnt = (zst >= QUEUING).sum(axis=0)
            join_due = (
                waiting_any & (running_cnt < 2) & has_leader
                & (lead_local >= committed + tc)
            )
            start_ck = alive & has_leader & ~any_ck
            elig = start_ck & ~join_due  # checkpoint_due evaluated here
            if kind == "periodic":
                lhour = hourst[lead_zi, rows]
                left = np.maximum((lhour + 3600.0) - t, 0.0)
                due = elig & (left <= tc + 1e-6)
                due &= latch[lead_zi, rows] != lhour  # NaN: never latched
                due &= lead_local > committed + 1e-9
                di = np.flatnonzero(due)
                latch[lead_zi[di], di] = lhour[di]
            elif kind == "large-bid":
                # checkpoint_due: uncommitted progress, S > L on the
                # leader, <= t_c left in its open hour, hour not yet
                # latched (the latch reuses the periodic column: one
                # release checkpoint per (zone, hour))
                lhour = hourst[lead_zi, rows]
                left = np.maximum((lhour + 3600.0) - t, 0.0)
                pz_lead = np.stack(znow_p, axis=0)[lead_zi, rows]
                due = elig & (lead_local > committed + 1e-9)
                due &= pz_lead > L
                due &= left <= tc + 1e-6
                due &= latch[lead_zi, rows] != lhour  # NaN: never latched
                di = np.flatnonzero(due)
                latch[lead_zi[di], di] = lhour[di]
            elif kind == "edge":
                rising_any = np.zeros(n, dtype=bool)
                for zi in range(Z):
                    rising_any |= (zst[zi] == COMPUTING) & zrising[zi][
                        znow_i[zi]
                    ]
                due = elig & (lead_local > committed + 1e-9) & rising_any
            elif kind == "markov-daly":
                timed = elig & (t + 1e-6 >= md_next)
                noprog = timed & (lead_local <= committed + 1e-9)
                for i in np.flatnonzero(noprog):
                    md_schedule(i)  # push instead of a no-progress commit
                due = timed & ~noprog
            elif kind == "threshold":
                due = np.zeros(n, dtype=bool)
                for i in np.flatnonzero(
                    elig & (lead_local > committed + 1e-9)
                ):
                    now = float(t[i])
                    bid_i = float(bid_arr[i])
                    for zi in range(Z):
                        if zst[zi, i] != COMPUTING:
                            continue
                        s_min, time_thresh = oracle.threshold_stats(
                            zorder[zi], now, bid_i
                        )
                        iz = int(znow_i[zi][i])
                        if zrising[zi][iz] and float(
                            zprices[zi][iz]
                        ) >= 0.5 * (s_min + bid_i):
                            due[i] = True
                            break
                        cs = csince[zi, i]
                        exec_time = (
                            max(now - float(cs), 0.0)
                            if not math.isnan(cs) else 0.0
                        )
                        if time_thresh > 0 and exec_time > time_thresh:
                            due[i] = True
                            break
            else:  # "never"
                due = np.zeros(n, dtype=bool)
            fire = (start_ck & join_due) | due
            if fire.any():
                fi = np.flatnonzero(fire)
                lz = lead_zi[fi]
                pendc[lz, fi] = lead_local[fi]
                zst[lz, fi] = CHECKPOINTING
                phase[lz, fi] = tc[fi]
                if lb:  # release_after_checkpoint is always True
                    rel_pending[fi] = True
                    rel_zi[fi] = lz
                if events is not None:
                    for j, i in enumerate(fi):
                        events[i].append(Event(
                            time=float(t[i]), kind="checkpoint-started",
                            zone=zorder[lz[j]],
                            detail=f"P={lead_local[i]:.0f}s",
                        ))

            # waiting-zone restarts: every waiting zone of a run starts
            # when nothing is running or a checkpoint just committed,
            # drawing queue delays zone by zone in block order
            any_running = (zst >= QUEUING).any(axis=0)
            go = alive & waiting_any & (~any_running | ckpt_flag)
            for i in np.flatnonzero(go):
                source = "recent" if ckpt_flag[i] else "previous"
                com = float(committed[i])
                for zi in range(Z):
                    if zst[zi, i] != WAITING:
                        continue
                    delay = self.queue_model.sample(rngs[i])
                    draws[i] += 1
                    zst[zi, i] = QUEUING
                    phase[zi, i] = delay
                    pendr[zi, i] = float(tr[i]) if com > 0 else 0.0
                    zbase[zi, i] = com
                    zcomp[zi, i] = 0.0
                    csince[zi, i] = np.nan
                    hourst[zi, i] = t[i]
                    zrate[zi, i] = znow_p[zi][i]
                    zrest[zi, i] += 1
                    if events is not None:
                        events[i].append(Event(
                            time=float(t[i]), kind="restarted",
                            zone=zorder[zi],
                            detail=f"from-{source}-ckpt P={com:.0f}s",
                        ))
                if kind == "markov-daly":
                    md_schedule(i)  # one reschedule after the restarts
            ckpt_flag &= ~alive  # cleared every tick by _policy_actions

            # advance every running zone by dt (instance.advance): one
            # masked sweep per state in QUEUING -> RESTARTING ->
            # CHECKPOINTING -> COMPUTING order replays each intra-tick
            # cascade of the scalar while loop
            fin_off = np.full((Z, n), np.nan)
            commit_val = np.full(n, -1.0)
            commit_zi = np.zeros(n, dtype=np.int64)
            has_commit = np.zeros(n, dtype=bool)
            for zi in range(Z):
                st = zst[zi]
                run_z = alive & (st >= QUEUING)
                remaining = np.where(run_z, dt, 0.0)

                m = run_z & (st == QUEUING)
                if m.any():
                    used = np.minimum(phase[zi], remaining)
                    phase[zi][m] -= used[m]
                    remaining[m] -= used[m]
                    done = m & (phase[zi] <= 1e-9)
                    st[done] = RESTARTING
                    phase[zi][done] = pendr[zi][done]
                    straight = done & (phase[zi] <= 1e-9)
                    st[straight] = COMPUTING  # fresh start: no restore
                    csince[zi][straight] = t[straight] + (
                        dt - remaining[straight]
                    )

                m = run_z & (st == RESTARTING) & (remaining > 1e-9)
                if m.any():
                    used = np.minimum(phase[zi], remaining)
                    phase[zi][m] -= used[m]
                    remaining[m] -= used[m]
                    done = m & (phase[zi] <= 1e-9)
                    st[done] = COMPUTING
                    csince[zi][done] = t[done] + (dt - remaining[done])

                m = run_z & (st == CHECKPOINTING) & (remaining > 1e-9)
                if m.any():
                    used = np.minimum(phase[zi], remaining)
                    phase[zi][m] -= used[m]
                    remaining[m] -= used[m]
                    done = m & (phase[zi] <= 1e-9)
                    di = np.flatnonzero(done)
                    commit_val[di] = pendc[zi][di]
                    commit_zi[di] = zi
                    has_commit[di] = True
                    st[done] = COMPUTING
                    csince[zi][done] = t[done] + (dt - remaining[done])

                m = run_z & (st == COMPUTING) & (remaining > 1e-9)
                if m.any():
                    need = C - (zbase[zi] + zcomp[zi])
                    done_pre = m & (need <= 1e-9)
                    fin_off[zi][done_pre] = dt - remaining[done_pre]
                    mm = m & ~done_pre
                    used = np.minimum(need, remaining)
                    zcomp[zi][mm] += used[mm]
                    remaining[mm] -= used[mm]
                    need = C - (zbase[zi] + zcomp[zi])
                    done_post = mm & (need <= 1e-9)
                    fin_off[zi][done_post] = dt - remaining[done_post]

            ci = np.flatnonzero(has_commit)  # at most one ckpt per run
            if ci.size:
                committed[ci] = commit_val[ci]
                ncomm[ci] += 1
                ckpt_flag[ci] = True
                if events is not None:
                    for i in ci:
                        events[i].append(Event(
                            time=float(t[i] + dt),
                            kind="checkpoint-committed",
                            zone=zorder[commit_zi[i]],
                            detail=f"P={commit_val[i]:.0f}s",
                        ))
                if lb and rel_pending[ci].any():
                    # Large-bid's manual termination: user_release the
                    # zone whose checkpoint just committed, at t + dt
                    # (the zone computed the tick's remainder first,
                    # exactly like the scalar advance loop)
                    for i in ci[rel_pending[ci]]:
                        zi_ = int(commit_zi[i])
                        end = float(t[i] + dt)
                        used = end - hourst[zi_, i]
                        if used > 3600.0 + 1e-6:  # pragma: no cover
                            raise EngineError(
                                "open billing hour overran its boundary"
                            )
                        if used >= 1.0:  # < 1 s of a fresh hour free
                            zspot[zi_, i] += zrate[zi_, i]
                            zhours[zi_, i] += 1
                        hourst[zi_, i] = np.nan
                        zrate[zi_, i] = 0.0
                        phase[zi_, i] = 0.0
                        pendr[zi_, i] = 0.0
                        zbase[zi_, i] = 0.0
                        zcomp[zi_, i] = 0.0
                        pendc[zi_, i] = 0.0
                        csince[zi_, i] = np.nan
                        zst[zi_, i] = DOWN
                        rel_pending[i] = False
                        if events is not None:
                            events[i].append(Event(
                                time=end, kind="user-released",
                                zone=zorder[zi_], detail="cost-control",
                            ))

            fin = np.fmin.reduce(t[None, :] + fin_off, axis=0)
            done_r = alive & ~np.isnan(fin)
            if done_r.any():
                di = np.flatnonzero(done_r)
                for zi in range(Z):  # user_close at finish, "complete"
                    close = done_r & (zst[zi] >= QUEUING)
                    idx = np.flatnonzero(close)
                    if idx.size == 0:
                        continue
                    used = fin[idx] - hourst[zi][idx]
                    if np.any(used > 3600.0 + 1e-6):  # pragma: no cover
                        raise EngineError(
                            "open billing hour overran its boundary"
                        )
                    charge = idx[used >= 1.0]  # < 1 s of a fresh hour free
                    zspot[zi][charge] += zrate[zi][charge]
                    zhours[zi][charge] += 1
                    hourst[zi][idx] = np.nan
                    zrate[zi][idx] = 0.0
                zst[:, di] = DOWN
                if events is not None:
                    emit(di, fin[di], "completed", None,
                         ["on spot"] * di.size)
                finish[di] = fin[di]
                completed_on[di] = 1
                alive &= ~done_r
            t[alive] += dt

            # -- vectorized _quiescent_ticks + bulk skip ------------------
            comp_mask = zst == COMPUTING
            trans_mask = (zst == QUEUING) | (zst == RESTARTING)
            wait_mask = zst == WAITING
            ck_any = (zst == CHECKPOINTING).any(axis=0)
            computing_any = comp_mask.any(axis=0)
            waiting_any = wait_mask.any(axis=0)
            running_cnt = (comp_mask | trans_mask).sum(axis=0)

            zero = ck_any.copy()  # a checkpoint commits next tick
            if kind == "markov-daly":  # rescheduling is not a no-op
                zero |= ckpt_flag
                dropc = np.zeros(n, dtype=bool)
            else:
                zero |= ckpt_flag & waiting_any
                dropc = ckpt_flag & ~waiting_any
            zero |= (running_cnt == 0) & waiting_any  # restarts fire now

            # market transitions: next availability crossing, using the
            # first given zone's shared grid index like the scalar scan
            i2 = np.clip(
                ((t - ref_z0) // dt).astype(np.int64), 0, ref_len - 1
            )
            kq = np.full(n, float(1 << 30))
            loc = zbase + zcomp
            theta_dn = np.minimum(bid_arr, L) if lb else bid_arr
            for zi in range(Z):
                pz = zprices[zi][np.minimum(i2, zlen[zi] - 1)]
                run_z = comp_mask[zi] | trans_mask[zi]
                zero |= run_z & (pz > bid_arr)  # termination due
                off = alive & ~run_z & (zst[zi] != CHECKPOINTING)
                # a non-running zone flips at min(bid, start threshold)
                zero |= off & ((pz <= theta_dn) != wait_mask[zi])
                nonrun = ~(zst[zi] >= QUEUING)
                for bi, rows_b in enumerate(class_rows):
                    nc = zcross_ext[zi][bi][
                        np.searchsorted(
                            zcross[zi][bi], i2[rows_b], side="right"
                        )
                    ]
                    if zcross_s is not zcross:
                        nc_s = zcross_s_ext[zi][bi][
                            np.searchsorted(
                                zcross_s[zi][bi], i2[rows_b], side="right"
                            )
                        ]
                        nc = np.where(nonrun[rows_b], nc_s, nc)
                    kq[rows_b] = np.minimum(
                        kq[rows_b], (nc - i2[rows_b]).astype(np.float64)
                    )
                # queue / restore countdowns: stop before one runs out
                nstep = np.floor_divide(phase[zi] - 1e-6, dt)
                zero |= trans_mask[zi] & (nstep < 1.0)
                kq = np.where(trans_mask[zi], np.minimum(kq, nstep), kq)

            # deadline guard: margin shrinks at most one tick per tick
            max_local = np.where(comp_mask, loc, -np.inf).max(axis=0)
            if lb:  # trust_speculative, as in the scalar quiescence scan
                guard_q = np.where(
                    computing_any, np.maximum(committed, max_local), committed
                )
            else:
                guard_q = committed
            marginq = (
                (((deadline - t) - np.maximum(C - guard_q, 0.0)) - tc)
                - tr
            )
            kq = np.minimum(
                kq, np.floor(((marginq - tc) - 3.0 * dt) / dt) - 1.0
            )

            # completion / join-commit progress thresholds
            kq = np.where(
                computing_any,
                np.minimum(kq, np.floor((C - max_local) / dt) - 2.0),
                kq,
            )
            kq = np.where(
                computing_any & waiting_any & (running_cnt < 2),
                np.minimum(
                    kq,
                    np.floor(((committed + tc) - max_local) / dt) - 1.0,
                ),
                kq,
            )

            # the policy's own schedule (fast_forward_until), evaluated
            # only where something is computing, like the scalar path
            horizon = np.full(n, np.inf)
            if kind == "periodic":
                due_at = np.where(
                    comp_mask & ~np.isnan(hourst),
                    np.where(
                        latch == hourst,
                        ((hourst + 3600.0) - tc) + 3600.0,
                        (hourst + 3600.0) - tc,
                    ),
                    np.inf,
                )
                horizon = due_at.min(axis=0)
            elif kind == "large-bid":
                # fast_forward_until: per computing zone, the later of
                # "S first exceeds L" and "<= t_c left in the hour";
                # a latched hour cannot re-fire before it rolls.
                # Naive (L = inf) never checkpoints: horizon stays inf.
                if math.isfinite(L):
                    for zi in range(Z):
                        cm = comp_mask[zi] & ~np.isnan(hourst[zi])
                        if not cm.any():
                            continue
                        hour_end = np.where(cm, hourst[zi] + 3600.0, np.inf)
                        iz = np.clip(
                            ((t - zz0[zi]) // dt).astype(np.int64),
                            0, zlen[zi] - 1,
                        )
                        nxt = zcross_l_ext[zi][
                            np.searchsorted(zcross_l[zi], iz, side="right")
                        ]
                        over_at = np.where(
                            zprices[zi][iz] > L, t, zz0[zi] + nxt * dt
                        )
                        cand = np.where(
                            latch[zi] == hourst[zi],
                            hour_end,
                            np.maximum(over_at, hour_end - tc),
                        )
                        horizon = np.where(
                            cm, np.minimum(horizon, cand), horizon
                        )
            elif kind == "edge":
                now_edge = np.zeros(n, dtype=bool)
                for zi in range(Z):
                    cm = comp_mask[zi]
                    iz = np.clip(
                        ((t - zz0[zi]) // dt).astype(np.int64),
                        0, zlen[zi] - 1,
                    )
                    now_edge |= cm & zrising[zi][iz]
                    nxt = zedges_ext[zi][
                        np.searchsorted(zedges[zi], iz, side="right")
                    ]
                    cand = zz0[zi] + nxt * dt
                    horizon = np.where(
                        cm, np.minimum(horizon, cand), horizon
                    )
                horizon = np.where(now_edge, t, horizon)
            elif kind == "markov-daly":
                horizon = md_next - 1e-6
            elif kind == "threshold":
                for i in np.flatnonzero(
                    alive & ~zero & computing_any & (kq > 0.0)
                ):
                    now = float(t[i])
                    if max_local[i] <= committed[i] + 1e-9:
                        horizon[i] = now  # no uncommitted progress
                        continue
                    bid_i = float(bid_arr[i])
                    bound = math.inf
                    hit = False
                    for zi in range(Z):
                        if zst[zi, i] != COMPUTING:
                            continue
                        zname = zorder[zi]
                        s_min, time_thresh = oracle.threshold_stats(
                            zname, now, bid_i
                        )
                        iz = int((now - zz0[zi]) // dt)
                        if zrising[zi][iz] and float(
                            zprices[zi][iz]
                        ) >= 0.5 * (s_min + bid_i):
                            hit = True
                            break
                        cs = csince[zi, i]
                        exec_time = (
                            max(now - float(cs), 0.0)
                            if not math.isnan(cs) else 0.0
                        )
                        if time_thresh > 0 and exec_time > time_thresh:
                            hit = True
                            break
                        j = int(zedges_ext[zi][np.searchsorted(
                            zedges[zi], iz, side="right"
                        )])
                        edge_t = zz0[zi] + j * dt
                        zone_bound = edge_t
                        if not math.isnan(cs):
                            # walk hourly buckets: the exec-time test
                            # can fire between rising edges once the
                            # bucket's mean up-run elapses
                            cs_f = float(cs)
                            bucket_start = (
                                math.floor(now / 3600.0) * 3600.0
                            )
                            thresh = time_thresh
                            while True:
                                bucket_end = bucket_start + 3600.0
                                if thresh > 0 and cs_f + thresh < min(
                                    bucket_end, edge_t
                                ):
                                    zone_bound = max(
                                        cs_f + thresh, bucket_start
                                    )
                                    break
                                if bucket_end >= edge_t:
                                    break
                                bucket_start = bucket_end
                                thresh = oracle.mean_up_run(
                                    zname, bucket_start, bid_i
                                )
                        bound = min(bound, zone_bound)
                    horizon[i] = now if hit else bound
            kq = np.where(
                computing_any & np.isfinite(horizon),
                np.minimum(kq, np.ceil(((horizon - t) - 1e-6) / dt)),
                kq,
            )

            ks = np.where(alive & ~zero, kq, 0.0)
            ki = np.maximum(ks, 0.0).astype(np.int64)
            # the post-commit tick's only remaining effect would be
            # dropping the flag: do it on the way into the skip
            ckpt_flag &= ~(dropc & (ki > 0))
            skip = alive & (ki > 0)
            if not skip.any():
                continue

            # bulk-apply the skipped ticks: billing rolls at their exact
            # boundaries, progress/countdowns accrue in closed form when
            # the accumulator is integral (repeated addition otherwise)
            kf = ki.astype(np.float64)
            accr_z = comp_mask | trans_mask
            accr_any = accr_z.any(axis=0)
            # fractional clocks (fractional starts) replay the scalar
            # bulk advance's non-integral branch: closed forms are not
            # exact there, so every tick is a repeated float addition,
            # hour rolls interleaved with accrual in zone block order
            frac = t != np.floor(t)
            plain = skip & ~accr_any
            pint = plain & ~frac
            t[pint] += kf[pint] * dt
            for i in np.flatnonzero(plain & frac):
                t_i = float(t[i])
                for _ in range(int(ki[i])):
                    t_i += dt
                t[i] = t_i
            for i in np.flatnonzero(skip & accr_any & frac):
                zis = [zi for zi in range(Z) if accr_z[zi, i]]
                t_i = float(t[i])
                for _ in range(int(ki[i])):
                    for zi in zis:
                        while hourst[zi, i] + 3600.0 <= t_i + 1e-6:
                            boundary = float(hourst[zi, i]) + 3600.0
                            zspot[zi, i] += zrate[zi, i]
                            zhours[zi, i] += 1
                            new_rate = float(zprices[zi][
                                int((boundary - zz0[zi]) // dt)
                            ])
                            zrate[zi, i] = new_rate
                            hourst[zi, i] = boundary
                            if events is not None:
                                events[i].append(Event(
                                    time=boundary, kind="hour-rolled",
                                    zone=zorder[zi],
                                    detail=f"rate={new_rate:.3f}",
                                ))
                        if comp_mask[zi, i]:
                            zcomp[zi, i] += dt
                        else:
                            phase[zi, i] -= dt
                    t_i += dt
                t[i] = t_i
            accr = skip & accr_any & ~frac
            if not accr.any():
                continue
            last = t + (kf - 1.0) * dt
            entries_by_run: dict[int, list] = {}
            for zi in range(Z):
                m = accr & accr_z[zi]
                while True:
                    roll = m & (hourst[zi] + 3600.0 <= last + 1e-6)
                    if not roll.any():
                        break
                    idx = np.flatnonzero(roll)
                    boundary = hourst[zi][idx] + 3600.0
                    zspot[zi][idx] += zrate[zi][idx]
                    zhours[zi][idx] += 1
                    new_rate = zprices[zi][
                        ((boundary - zz0[zi]) // dt).astype(np.int64)
                    ]
                    zrate[zi][idx] = new_rate
                    hourst[zi][idx] = boundary
                    if events is not None:
                        for j, i in enumerate(idx):
                            tick = int(math.ceil(
                                (float(boundary[j]) - float(t[i]) - 1e-6)
                                / dt
                            ))
                            entries_by_run.setdefault(int(i), []).append((
                                max(tick, 0), zi, float(boundary[j]),
                                zorder[zi],
                                f"rate={float(new_rate[j]):.3f}",
                            ))
                cm = accr & comp_mask[zi]
                if cm.any():
                    whole = cm & (zcomp[zi] == np.floor(zcomp[zi]))
                    zcomp[zi][whole] += kf[whole] * dt
                    for i in np.flatnonzero(cm & ~whole):
                        cs_acc = float(zcomp[zi][i])
                        for _ in range(int(ki[i])):
                            cs_acc += dt
                        zcomp[zi][i] = cs_acc
                tm = accr & trans_mask[zi]
                if tm.any():
                    whole = tm & (phase[zi] == np.floor(phase[zi]))
                    phase[zi][whole] -= kf[whole] * dt
                    for i in np.flatnonzero(tm & ~whole):
                        ph_acc = float(phase[zi][i])
                        for _ in range(int(ki[i])):
                            ph_acc -= dt
                        phase[zi][i] = ph_acc
            if events is not None:
                for i, ent in entries_by_run.items():
                    # re-merge into the reference loop's (tick, zone
                    # block) emission order
                    ent.sort(key=lambda e: (e[0], e[1]))
                    for _, _, boundary_f, zname, detail in ent:
                        events[i].append(Event(
                            time=boundary_f, kind="hour-rolled",
                            zone=zname, detail=detail,
                        ))
            t[accr] += kf[accr] * dt
        else:  # pragma: no cover - loop guard
            raise EngineError(
                f"vector engine exceeded {max_rounds} rounds; "
                f"{int(alive.sum())} runs still live"
            )

        # -- finalize: per-run RunResults in scalar summation order ------
        spot_tot = np.zeros(n)
        for zi in range(Z):
            spot_tot = spot_tot + zspot[zi]
        hours_tot = zhours.sum(axis=0)
        rest_tot = zrest.sum(axis=0)
        term_tot = zterm.sum(axis=0)
        results: list[RunResult] = []
        for j in range(n):
            results.append(RunResult(
                policy_name=probe.name,
                bid=float(bids[j]),
                zones=zones_t,
                start_time=float(start_arr[j]),
                finish_time=float(finish[j]),
                deadline=float(deadline[j]),
                completed_on="spot" if completed_on[j] == 1 else "ondemand",
                spot_cost=float(spot_tot[j]),
                ondemand_cost=float(od_cost[j]),
                num_checkpoints=int(ncomm[j]),
                num_restarts=int(rest_tot[j]),
                num_provider_terminations=int(term_tot[j]),
                ondemand_switch_time=(
                    None if math.isnan(switch_t[j]) else float(switch_t[j])
                ),
                spot_hours_charged=int(hours_tot[j]),
                events=tuple(events[j]) if events is not None else (),
            ))
        return results, draws

    # -- the Adaptive lockstep core ----------------------------------------

    def _simulate_adaptive_rows(
        self, configs, controller_factory, probe, shape_idx, starts, rngs
    ) -> tuple[list[RunResult], np.ndarray]:
        """Advance ``len(starts)`` Adaptive-controller runs in lockstep.

        Row ``i`` runs at job shape ``configs[shape_idx[i]]`` — the
        shape scalars become per-row columns exactly as in
        :meth:`_simulate_rows`, and each row's decision contexts carry
        its own :class:`ExperimentConfig`, so the shared
        :class:`~repro.core.adaptive.SelectionMemo` keys its dense
        selections (which fingerprint the config) per shape.

        Controller state rides in columns: every run carries its own
        bid, active-zone mask, policy kind ("periodic" or
        "markov-daly"), decision latches and re-evaluation clock, so
        one pass serves runs whose controllers have diverged onto
        different plans.  Decision epochs (rules 1–3 of
        :meth:`AdaptiveController.decision_due`) are detected
        column-wise; only triggered rows pay a Python
        :meth:`AdaptiveController.decide_at_epoch` call against a
        column-snapshot context, and all the batch's controllers share
        one :class:`~repro.core.adaptive.SelectionMemo` (via
        :func:`~repro.core.adaptive.batch_controllers`) so the dense
        candidate selection runs once per (bucket matrices, progress,
        deadline clock) signature and fans out.
        """
        from repro.core.adaptive import batch_controllers
        from repro.core.policy import PolicyContext

        oracle = self.oracle
        dt = float(SAMPLE_INTERVAL_S)
        n = len(starts)

        # Zone geometry: the scalar engine creates an instance for
        # *every* oracle zone up front (the controller may switch onto
        # any of them), so the block layout covers the full trace.
        zorder = tuple(oracle.zone_names)
        Z = len(zorder)
        zidx = {z: zi for zi, z in enumerate(zorder)}
        ztr = [oracle.trace.zone(z) for z in zorder]
        zprices = [zt.prices for zt in ztr]
        zz0 = [float(zt.start_time) for zt in ztr]
        zlen = [len(zt.prices) for zt in ztr]
        # all zone traces share one grid (the scalar quiescence scan
        # indexes every zone with its first active zone's index)
        ref_z0 = zz0[0]
        ref_len = zlen[0]

        start_arr = np.asarray(starts, dtype=np.float64)
        shape_arr = np.asarray(shape_idx, dtype=np.int64)
        dls = np.asarray(
            [cfg.deadline_s for cfg in configs], dtype=np.float64
        )
        deadline = start_arr + dls[shape_arr]
        end_time = float(oracle.trace.end_time)
        if np.any(deadline > end_time):
            bad = float(deadline[deadline > end_time][0])
            raise EngineError(
                f"trace ends at {end_time}, before the deadline {bad}"
            )
        C = np.asarray(
            [cfg.compute_s for cfg in configs], dtype=np.float64
        )[shape_arr]
        tc = np.asarray(
            [cfg.ckpt_cost_s for cfg in configs], dtype=np.float64
        )[shape_arr]
        tr = np.asarray(
            [cfg.restart_cost_s for cfg in configs], dtype=np.float64
        )[shape_arr]

        # struct-of-arrays run state (as in _simulate_rows) ...
        t = start_arr.copy()
        alive = np.ones(n, dtype=bool)
        zst = np.full((Z, n), DOWN, dtype=np.int8)
        phase = np.zeros((Z, n))
        pendr = np.zeros((Z, n))
        zbase = np.zeros((Z, n))
        zcomp = np.zeros((Z, n))
        pendc = np.zeros((Z, n))
        csince = np.full((Z, n), np.nan)
        hourst = np.full((Z, n), np.nan)
        zrate = np.zeros((Z, n))
        zspot = np.zeros((Z, n))
        zhours = np.zeros((Z, n), dtype=np.int64)
        zrest = np.zeros((Z, n), dtype=np.int64)
        zterm = np.zeros((Z, n), dtype=np.int64)
        latch = np.full((Z, n), np.nan)
        committed = np.zeros(n)
        ncomm = np.zeros(n, dtype=np.int64)
        ckpt_flag = np.zeros(n, dtype=bool)
        finish = np.full(n, np.nan)
        od_cost = np.zeros(n)
        switch_t = np.full(n, np.nan)
        completed_on = np.zeros(n, dtype=np.int8)
        draws = np.zeros(n, dtype=np.int64)
        md_next = np.full(n, np.nan)
        rows = np.arange(n)
        events: list[list[Event]] | None = (
            [[] for _ in range(n)] if self.record_events else None
        )

        # ... plus the controller's plan as columns: per-run bid, the
        # active-zone mask, the installed policy kind and its name, the
        # active zone tuple (for contexts / oracle queries / results)
        # and the rule-3 re-evaluation clock
        init_zones = tuple(zorder[:1])
        init_bid = float(probe.bids[0])
        bid_arr = np.full(n, init_bid)
        zact = np.zeros((Z, n), dtype=bool)
        zact[0, :] = True
        kindcol = np.zeros(n, dtype=np.int8)  # 0 periodic, 1 markov-daly
        pol_name = ["periodic"] * n
        cur_zones: list[tuple[str, ...]] = [init_zones] * n
        last_eval = np.full(n, -np.inf)
        reeval = float(probe.reevaluate_every_s)

        controllers = batch_controllers(controller_factory, n)
        boot = PolicyContext(
            now=0.0, bid=init_bid, zones=init_zones, oracle=oracle,
            config=configs[0], run=None, instances={},
        )
        for c in controllers:
            c.reset(boot)  # reads only the oracle's zone list

        def emit(idx_arr, times, ekind, ezone, details):
            for j, i in enumerate(idx_arr):
                events[i].append(Event(
                    time=float(times[j]), kind=ekind, zone=ezone,
                    detail=details[j],
                ))

        def make_ctx(i: int) -> PolicyContext:
            insts = {}
            for z in cur_zones[i]:
                zi = zidx[z]
                insts[z] = _ColInstance(
                    is_running=bool(zst[zi, i] >= QUEUING),
                    local_progress_s=float(zbase[zi, i] + zcomp[zi, i]),
                    billing=_ColBilling(
                        is_open=not math.isnan(hourst[zi, i]),
                        hour_start=float(hourst[zi, i]),
                    ),
                )
            return PolicyContext(
                now=float(t[i]), bid=float(bid_arr[i]),
                zones=cur_zones[i], oracle=oracle,
                config=configs[int(shape_arr[i])],
                run=_ColRun(float(committed[i]), float(deadline[i])),
                instances=insts,
            )

        # combined expected uptimes are memoized here: the oracle's
        # level-conditioned models make the value a pure function of
        # (zone set, stats bucket, per-zone price levels, bid), and
        # staggered runs revisit the same key constantly
        upt_cache: dict = {}

        def md_schedule(i: int) -> None:
            """MarkovDalyPolicy.schedule_next_checkpoint against run
            ``i``'s *current* plan (its own zone set and bid)."""
            now = float(t[i])
            zones_i = cur_zones[i]
            key = (
                zones_i, float(bid_arr[i]), oracle.stats_bucket(now),
                tuple(oracle.price(z, now) for z in zones_i),
            )
            uptime = upt_cache.get(key)
            if uptime is None:
                uptime = float(
                    oracle.combined_uptimes(
                        zones_i, now, (key[1],)
                    )[0]
                )
                upt_cache[key] = uptime
            tc_i = float(tc[i])
            tr_i = float(tr[i])
            interval = daly_interval(uptime, tc_i)
            remaining_compute = max(float(C[i]) - float(committed[i]), 0.0)
            margin = (
                max(float(deadline[i]) - now, 0.0)
                - remaining_compute
                - tc_i
                - tr_i
            )
            reserve = tc_i + 4.0 * 300.0
            budget = margin - reserve
            if budget > 0:
                interval = max(interval, remaining_compute * tc_i / budget)
                interval = min(interval, max(budget, tc_i))
            else:
                interval = max(margin, tc_i)
            md_next[i] = now + interval

        # crossing arrays are fetched lazily: the set of distinct bids
        # grows as controllers re-plan (memoized on the ZoneTrace, so
        # repeats are shared across batches too)
        cross_cache: dict = {}

        def crossings(zi: int, b: float):
            got = cross_cache.get((zi, b))
            if got is None:
                cr = ztr[zi].threshold_crossings(b)
                got = (cr, np.concatenate([cr, [zlen[zi]]]))
                cross_cache[(zi, b)] = got
            return got

        max_rounds = int(float(dls.max()) // dt) + 16
        for _round in range(max_rounds):
            if not alive.any():
                break

            # billing rolls, as in _simulate_rows
            for zi in range(Z):
                while True:
                    m = alive & (hourst[zi] + 3600.0 <= t + 1e-6)
                    if not m.any():
                        break
                    idx = np.flatnonzero(m)
                    boundary = hourst[zi][idx] + 3600.0
                    zspot[zi][idx] += zrate[zi][idx]
                    zhours[zi][idx] += 1
                    new_rate = zprices[zi][
                        ((boundary - zz0[zi]) // dt).astype(np.int64)
                    ]
                    zrate[zi][idx] = new_rate
                    hourst[zi][idx] = boundary
                    if events is not None:
                        emit(idx, boundary, "hour-rolled", zorder[zi],
                             [f"rate={float(r):.3f}" for r in new_rate])

            # market transitions walk each run's *own* active set; the
            # controller only ever picks oracle-order zone subsequences
            # (itertools.combinations over oracle.zone_names), so block
            # order is every run's active order
            znow_i = [
                np.clip(((t - zz0[zi]) // dt).astype(np.int64),
                        0, zlen[zi] - 1)
                for zi in range(Z)
            ]
            znow_p = [zprices[zi][znow_i[zi]] for zi in range(Z)]
            for zi in range(Z):
                a = alive & zact[zi]
                if not a.any():
                    continue
                pz = znow_p[zi]
                st = zst[zi]
                run_z = a & (st >= QUEUING)
                term = run_z & (pz > bid_arr)
                if term.any():
                    ti = np.flatnonzero(term)
                    hourst[zi][ti] = np.nan
                    zrate[zi][ti] = 0.0
                    phase[zi][ti] = 0.0
                    pendr[zi][ti] = 0.0
                    zbase[zi][ti] = 0.0
                    zcomp[zi][ti] = 0.0
                    pendc[zi][ti] = 0.0
                    csince[zi][ti] = np.nan
                    st[ti] = DOWN
                    zterm[zi][ti] += 1
                    if events is not None:
                        emit(ti, t[ti], "provider-terminated", zorder[zi],
                             [f"S={float(p):.3f}" for p in pz[ti]])
                notrun = a & ~run_z
                to_wait = notrun & (pz <= bid_arr) & (st == DOWN)
                if to_wait.any():
                    wi = np.flatnonzero(to_wait)
                    st[wi] = WAITING
                    if events is not None:
                        emit(wi, t[wi], "waiting", zorder[zi],
                             [f"S={float(p):.3f}" for p in pz[wi]])
                to_down = notrun & (pz > bid_arr) & (st == WAITING)
                st[to_down] = DOWN

            # deadline guard — identical to _simulate_rows (neither
            # installable policy trusts speculative progress)
            loc = zbase + zcomp
            comp_mask = zst == COMPUTING
            loc_masked = np.where(comp_mask, loc, -np.inf)
            lead_zi = np.argmax(loc_masked, axis=0)
            lead_local = loc_masked[lead_zi, rows]
            has_comp = comp_mask.any(axis=0)
            any_ck = (zst == CHECKPOINTING).any(axis=0)

            trigger = (np.maximum(C - committed, 0.0) + tc) + tr
            remaining_time = deadline - t
            margin = remaining_time - trigger
            safe = margin > dt + 1e-6
            force = (
                alive & safe & (margin <= tc + 3.0 * dt)
                & ~any_ck & has_comp & (lead_local > committed + 1e-9)
            )
            if force.any():
                fi = np.flatnonzero(force)
                lz = lead_zi[fi]
                pendc[lz, fi] = lead_local[fi]
                zst[lz, fi] = CHECKPOINTING
                phase[lz, fi] = tc[fi]
                if events is not None:
                    for j, i in enumerate(fi):
                        events[i].append(Event(
                            time=float(t[i]), kind="checkpoint-started",
                            zone=zorder[lz[j]],
                            detail=f"forced P={lead_local[i]:.0f}s",
                        ))
            migrate = alive & ~safe
            if migrate.any():
                best_prog = committed.copy()
                best_pre = np.zeros(n)
                best_key = np.maximum(C - committed, 0.0) + np.where(
                    committed > 0, tr, 0.0
                )
                for zi in range(Z):
                    key2 = (np.maximum(C - loc[zi], 0.0) + tc) + np.where(
                        loc[zi] > 0, tr, 0.0
                    )
                    use2 = migrate & (zst[zi] == COMPUTING) & (
                        key2 < best_key
                    )
                    best_prog[use2] = loc[zi][use2]
                    best_pre[use2] = tc[use2]
                    best_key[use2] = key2[use2]
                    key3 = (
                        np.maximum(C - pendc[zi], 0.0) + phase[zi]
                    ) + np.where(pendc[zi] > 0, tr, 0.0)
                    use3 = migrate & (zst[zi] == CHECKPOINTING) & (
                        key3 < best_key
                    )
                    best_prog[use3] = pendc[zi][use3]
                    best_pre[use3] = phase[zi][use3]
                    best_key[use3] = key3[use3]
                restore = np.where(best_prog > 0, tr, 0.0)
                overhead = best_pre + restore
                rem_comp = np.maximum(C - best_prog, 0.0)
                mi = np.flatnonzero(migrate)
                if events is not None:
                    emit(mi, t[mi], "ondemand-switch", None,
                         [f"C_r={float(c):.0f}s T_r={float(r):.0f}s"
                          for c, r in zip(rem_comp[mi], remaining_time[mi])])
                for zi in range(Z):
                    close = migrate & (zst[zi] >= QUEUING)
                    idx = np.flatnonzero(close)
                    if idx.size == 0:
                        continue
                    used = t[idx] - hourst[zi][idx]
                    if np.any(used > 3600.0 + 1e-6):  # pragma: no cover
                        raise EngineError(
                            "open billing hour overran its boundary"
                        )
                    charge = idx[used >= 1.0]
                    zspot[zi][charge] += zrate[zi][charge]
                    zhours[zi][charge] += 1
                    hourst[zi][idx] = np.nan
                    zrate[zi][idx] = 0.0
                zst[:, mi] = DOWN
                finish[mi] = (t[mi] + overhead[mi]) + rem_comp[mi]
                od_sec = restore + rem_comp
                od_cost[mi] = np.where(
                    od_sec[mi] > 0,
                    np.ceil(od_sec[mi] / 3600.0) * ON_DEMAND_PRICE,
                    0.0,
                )
                switch_t[mi] = t[mi]
                completed_on[mi] = 2
                alive &= ~migrate

            # controller decisions (between the guard and policy
            # actions, like the scalar tick).  Epoch triggers are the
            # controller's rules 1-3, evaluated column-wise; only
            # triggered rows pay a Python decide_at_epoch call.
            run_act = zact & (zst >= QUEUING)
            at_bound = (run_act & (np.abs(hourst - t) < 1e-6)).any(axis=0)
            trig = alive & (
                ~run_act.any(axis=0) | at_bound
                | ((t - last_eval) >= reeval)
            )
            for i in np.flatnonzero(trig):
                dec = controllers[i].decide_at_epoch(make_ctx(i))
                last_eval[i] = t[i]
                if dec is None:
                    continue
                # _apply_switch, on columns
                new_zones = tuple(dec.zones)
                for z in new_zones:
                    if z not in zidx:
                        raise EngineError(
                            f"controller chose unknown zone {z!r}"
                        )
                for z in set(cur_zones[i]) - set(new_zones):
                    zi_ = zidx[z]
                    if zst[zi_, i] >= QUEUING:
                        # user_release at t, reason="user"
                        now = float(t[i])
                        used = now - hourst[zi_, i]
                        if used > 3600.0 + 1e-6:  # pragma: no cover
                            raise EngineError(
                                "open billing hour overran its boundary"
                            )
                        if used >= 1.0:  # < 1 s of a fresh hour free
                            zspot[zi_, i] += zrate[zi_, i]
                            zhours[zi_, i] += 1
                        hourst[zi_, i] = np.nan
                        zrate[zi_, i] = 0.0
                        phase[zi_, i] = 0.0
                        pendr[zi_, i] = 0.0
                        zbase[zi_, i] = 0.0
                        zcomp[zi_, i] = 0.0
                        pendc[zi_, i] = 0.0
                        csince[zi_, i] = np.nan
                        zst[zi_, i] = DOWN
                        if events is not None:
                            events[i].append(Event(
                                time=now, kind="user-released",
                                zone=z, detail="config-switch",
                            ))
                    elif zst[zi_, i] == WAITING:
                        zst[zi_, i] = DOWN
                bid_arr[i] = float(dec.bid)
                zact[:, i] = False
                for z in new_zones:
                    zact[zidx[z], i] = True
                cur_zones[i] = new_zones
                kname = dec.policy.name
                pol_name[i] = kname
                kindcol[i] = 1 if kname == "markov-daly" else 0
                latch[:, i] = np.nan  # the fresh policy's reset()
                if kindcol[i] == 1:
                    md_schedule(i)  # schedule on the new plan
                else:
                    md_next[i] = np.nan
                if events is not None:
                    events[i].append(Event(
                        time=float(t[i]), kind="config-switch", zone=None,
                        detail=(
                            f"policy={kname} B={dec.bid:.2f} "
                            f"N={len(new_zones)}"
                        ),
                    ))

            # policy actions, dispatched per run on the installed kind
            md_m = kindcol == 1
            per_m = ~md_m
            for i in np.flatnonzero(alive & ckpt_flag & md_m):
                md_schedule(i)  # line 23: re-arm after a commit

            comp_mask = zst == COMPUTING
            loc = zbase + zcomp
            loc_masked = np.where(comp_mask, loc, -np.inf)
            lead_zi = np.argmax(loc_masked, axis=0)
            lead_local = loc_masked[lead_zi, rows]
            has_leader = comp_mask.any(axis=0)
            any_ck = (zst == CHECKPOINTING).any(axis=0)
            wait_mask = zst == WAITING
            waiting_any = wait_mask.any(axis=0)
            running_cnt = (zst >= QUEUING).sum(axis=0)
            join_due = (
                waiting_any & (running_cnt < 2) & has_leader
                & (lead_local >= committed + tc)
            )
            start_ck = alive & has_leader & ~any_ck
            elig = start_ck & ~join_due
            lhour = hourst[lead_zi, rows]
            left = np.maximum((lhour + 3600.0) - t, 0.0)
            due = per_m & elig & (left <= tc + 1e-6)
            due &= latch[lead_zi, rows] != lhour  # NaN: never latched
            due &= lead_local > committed + 1e-9
            di = np.flatnonzero(due)
            latch[lead_zi[di], di] = lhour[di]
            timed = md_m & elig & (t + 1e-6 >= md_next)
            noprog = timed & (lead_local <= committed + 1e-9)
            for i in np.flatnonzero(noprog):
                md_schedule(i)  # push instead of a no-progress commit
            due |= timed & ~noprog
            fire = (start_ck & join_due) | due
            if fire.any():
                fi = np.flatnonzero(fire)
                lz = lead_zi[fi]
                pendc[lz, fi] = lead_local[fi]
                zst[lz, fi] = CHECKPOINTING
                phase[lz, fi] = tc[fi]
                if events is not None:
                    for j, i in enumerate(fi):
                        events[i].append(Event(
                            time=float(t[i]), kind="checkpoint-started",
                            zone=zorder[lz[j]],
                            detail=f"P={lead_local[i]:.0f}s",
                        ))

            any_running = (zst >= QUEUING).any(axis=0)
            go = alive & waiting_any & (~any_running | ckpt_flag)
            for i in np.flatnonzero(go):
                source = "recent" if ckpt_flag[i] else "previous"
                com = float(committed[i])
                for zi in range(Z):
                    if zst[zi, i] != WAITING:
                        continue
                    delay = self.queue_model.sample(rngs[i])
                    draws[i] += 1
                    zst[zi, i] = QUEUING
                    phase[zi, i] = delay
                    pendr[zi, i] = float(tr[i]) if com > 0 else 0.0
                    zbase[zi, i] = com
                    zcomp[zi, i] = 0.0
                    csince[zi, i] = np.nan
                    hourst[zi, i] = t[i]
                    zrate[zi, i] = znow_p[zi][i]
                    zrest[zi, i] += 1
                    if events is not None:
                        events[i].append(Event(
                            time=float(t[i]), kind="restarted",
                            zone=zorder[zi],
                            detail=f"from-{source}-ckpt P={com:.0f}s",
                        ))
                if kindcol[i] == 1:
                    md_schedule(i)  # one reschedule after the restarts
            ckpt_flag &= ~alive

            # advance (identical sweep to _simulate_rows)
            fin_off = np.full((Z, n), np.nan)
            commit_val = np.full(n, -1.0)
            commit_zi = np.zeros(n, dtype=np.int64)
            has_commit = np.zeros(n, dtype=bool)
            for zi in range(Z):
                st = zst[zi]
                run_z = alive & (st >= QUEUING)
                remaining = np.where(run_z, dt, 0.0)

                m = run_z & (st == QUEUING)
                if m.any():
                    used = np.minimum(phase[zi], remaining)
                    phase[zi][m] -= used[m]
                    remaining[m] -= used[m]
                    done = m & (phase[zi] <= 1e-9)
                    st[done] = RESTARTING
                    phase[zi][done] = pendr[zi][done]
                    straight = done & (phase[zi] <= 1e-9)
                    st[straight] = COMPUTING
                    csince[zi][straight] = t[straight] + (
                        dt - remaining[straight]
                    )

                m = run_z & (st == RESTARTING) & (remaining > 1e-9)
                if m.any():
                    used = np.minimum(phase[zi], remaining)
                    phase[zi][m] -= used[m]
                    remaining[m] -= used[m]
                    done = m & (phase[zi] <= 1e-9)
                    st[done] = COMPUTING
                    csince[zi][done] = t[done] + (dt - remaining[done])

                m = run_z & (st == CHECKPOINTING) & (remaining > 1e-9)
                if m.any():
                    used = np.minimum(phase[zi], remaining)
                    phase[zi][m] -= used[m]
                    remaining[m] -= used[m]
                    done = m & (phase[zi] <= 1e-9)
                    di = np.flatnonzero(done)
                    commit_val[di] = pendc[zi][di]
                    commit_zi[di] = zi
                    has_commit[di] = True
                    st[done] = COMPUTING
                    csince[zi][done] = t[done] + (dt - remaining[done])

                m = run_z & (st == COMPUTING) & (remaining > 1e-9)
                if m.any():
                    need = C - (zbase[zi] + zcomp[zi])
                    done_pre = m & (need <= 1e-9)
                    fin_off[zi][done_pre] = dt - remaining[done_pre]
                    mm = m & ~done_pre
                    used = np.minimum(need, remaining)
                    zcomp[zi][mm] += used[mm]
                    remaining[mm] -= used[mm]
                    need = C - (zbase[zi] + zcomp[zi])
                    done_post = mm & (need <= 1e-9)
                    fin_off[zi][done_post] = dt - remaining[done_post]

            ci = np.flatnonzero(has_commit)
            if ci.size:
                committed[ci] = commit_val[ci]
                ncomm[ci] += 1
                ckpt_flag[ci] = True
                if events is not None:
                    for i in ci:
                        events[i].append(Event(
                            time=float(t[i] + dt),
                            kind="checkpoint-committed",
                            zone=zorder[commit_zi[i]],
                            detail=f"P={commit_val[i]:.0f}s",
                        ))

            fin = np.fmin.reduce(t[None, :] + fin_off, axis=0)
            done_r = alive & ~np.isnan(fin)
            if done_r.any():
                di = np.flatnonzero(done_r)
                for zi in range(Z):
                    close = done_r & (zst[zi] >= QUEUING)
                    idx = np.flatnonzero(close)
                    if idx.size == 0:
                        continue
                    used = fin[idx] - hourst[zi][idx]
                    if np.any(used > 3600.0 + 1e-6):  # pragma: no cover
                        raise EngineError(
                            "open billing hour overran its boundary"
                        )
                    charge = idx[used >= 1.0]
                    zspot[zi][charge] += zrate[zi][charge]
                    zhours[zi][charge] += 1
                    hourst[zi][idx] = np.nan
                    zrate[zi][idx] = 0.0
                zst[:, di] = DOWN
                if events is not None:
                    emit(di, fin[di], "completed", None,
                         ["on spot"] * di.size)
                finish[di] = fin[di]
                completed_on[di] = 1
                alive &= ~done_r
            t[alive] += dt

            # -- quiescence: _simulate_rows' bounds plus the controller
            # hazards (rule-1 while down, rule-3 timer, rule-2 hour
            # boundaries), per-run policy kind dispatch ----------------
            comp_mask = zst == COMPUTING
            trans_mask = (zst == QUEUING) | (zst == RESTARTING)
            wait_mask = zst == WAITING
            ck_any = (zst == CHECKPOINTING).any(axis=0)
            computing_any = comp_mask.any(axis=0)
            waiting_any = wait_mask.any(axis=0)
            running_cnt = (comp_mask | trans_mask).sum(axis=0)

            md_m = kindcol == 1
            per_m = ~md_m
            zero = ck_any.copy()
            zero |= ckpt_flag & md_m  # rescheduling is not a no-op
            zero |= ckpt_flag & per_m & waiting_any
            dropc = ckpt_flag & per_m & ~waiting_any
            # rule 1: with nothing running the controller evaluates
            # every tick, whether or not a zone is waiting
            zero |= running_cnt == 0

            i2 = np.clip(
                ((t - ref_z0) // dt).astype(np.int64), 0, ref_len - 1
            )
            kq = np.full(n, float(1 << 30))
            loc = zbase + zcomp
            ubids, bclass = np.unique(bid_arr, return_inverse=True)
            for zi in range(Z):
                a = zact[zi]
                if not a.any():
                    continue
                pz = zprices[zi][np.minimum(i2, zlen[zi] - 1)]
                run_z = comp_mask[zi] | trans_mask[zi]
                zero |= run_z & (pz > bid_arr)
                off = alive & a & ~run_z & (zst[zi] != CHECKPOINTING)
                zero |= off & ((pz <= bid_arr) != wait_mask[zi])
                for bi, ub in enumerate(ubids):
                    rows_b = np.flatnonzero((bclass == bi) & a)
                    if rows_b.size == 0:
                        continue
                    cr, cr_ext = crossings(zi, float(ub))
                    nc = cr_ext[
                        np.searchsorted(cr, i2[rows_b], side="right")
                    ]
                    kq[rows_b] = np.minimum(
                        kq[rows_b], (nc - i2[rows_b]).astype(np.float64)
                    )
                nstep = np.floor_divide(phase[zi] - 1e-6, dt)
                zero |= trans_mask[zi] & (nstep < 1.0)
                kq = np.where(trans_mask[zi], np.minimum(kq, nstep), kq)

            marginq = (
                (((deadline - t) - np.maximum(C - committed, 0.0)) - tc)
                - tr
            )
            kq = np.minimum(
                kq, np.floor(((marginq - tc) - 3.0 * dt) / dt) - 1.0
            )

            max_local = np.where(comp_mask, loc, -np.inf).max(axis=0)
            kq = np.where(
                computing_any,
                np.minimum(kq, np.floor((C - max_local) / dt) - 2.0),
                kq,
            )
            kq = np.where(
                computing_any & waiting_any & (running_cnt < 2),
                np.minimum(
                    kq,
                    np.floor(((committed + tc) - max_local) / dt) - 1.0,
                ),
                kq,
            )

            # fast_forward_until of the *installed* policy per run
            due_at = np.where(
                comp_mask & ~np.isnan(hourst),
                np.where(
                    latch == hourst,
                    ((hourst + 3600.0) - tc) + 3600.0,
                    (hourst + 3600.0) - tc,
                ),
                np.inf,
            )
            horizon = due_at.min(axis=0)
            horizon = np.where(md_m, md_next - 1e-6, horizon)
            kq = np.where(
                computing_any & np.isfinite(horizon),
                np.minimum(kq, np.ceil(((horizon - t) - 1e-6) / dt)),
                kq,
            )

            # controller hazards: before the first decision
            # next_decision_time is None (no skip at all); afterwards
            # the rule-3 timer bounds, and every computing/transient
            # zone's hour boundary is a rule-2 decision point
            zero |= np.isinf(last_eval)
            kq = np.minimum(
                kq, np.ceil((((last_eval + reeval) - t) - 1e-6) / dt)
            )
            for zi in range(Z):
                m = comp_mask[zi] | trans_mask[zi]
                if not m.any():
                    continue
                steps = np.round(((hourst[zi] + 3600.0) - t) / dt)
                kq = np.where(m, np.minimum(kq, steps), kq)

            ks = np.where(alive & ~zero, kq, 0.0)
            ki = np.maximum(ks, 0.0).astype(np.int64)
            ckpt_flag &= ~(dropc & (ki > 0))
            skip = alive & (ki > 0)
            if not skip.any():
                continue

            # bulk skip, identical to _simulate_rows (fractional
            # clocks replay the scalar per-tick accrual)
            kf = ki.astype(np.float64)
            accr_z = comp_mask | trans_mask
            accr_any = accr_z.any(axis=0)
            frac = t != np.floor(t)
            plain = skip & ~accr_any
            pint = plain & ~frac
            t[pint] += kf[pint] * dt
            for i in np.flatnonzero(plain & frac):
                t_i = float(t[i])
                for _ in range(int(ki[i])):
                    t_i += dt
                t[i] = t_i
            for i in np.flatnonzero(skip & accr_any & frac):
                zis = [zi for zi in range(Z) if accr_z[zi, i]]
                t_i = float(t[i])
                for _ in range(int(ki[i])):
                    for zi in zis:
                        while hourst[zi, i] + 3600.0 <= t_i + 1e-6:
                            boundary = float(hourst[zi, i]) + 3600.0
                            zspot[zi, i] += zrate[zi, i]
                            zhours[zi, i] += 1
                            new_rate = float(zprices[zi][
                                int((boundary - zz0[zi]) // dt)
                            ])
                            zrate[zi, i] = new_rate
                            hourst[zi, i] = boundary
                            if events is not None:
                                events[i].append(Event(
                                    time=boundary, kind="hour-rolled",
                                    zone=zorder[zi],
                                    detail=f"rate={new_rate:.3f}",
                                ))
                        if comp_mask[zi, i]:
                            zcomp[zi, i] += dt
                        else:
                            phase[zi, i] -= dt
                    t_i += dt
                t[i] = t_i
            accr = skip & accr_any & ~frac
            if not accr.any():
                continue
            last = t + (kf - 1.0) * dt
            entries_by_run: dict[int, list] = {}
            for zi in range(Z):
                m = accr & accr_z[zi]
                while True:
                    roll = m & (hourst[zi] + 3600.0 <= last + 1e-6)
                    if not roll.any():
                        break
                    idx = np.flatnonzero(roll)
                    boundary = hourst[zi][idx] + 3600.0
                    zspot[zi][idx] += zrate[zi][idx]
                    zhours[zi][idx] += 1
                    new_rate = zprices[zi][
                        ((boundary - zz0[zi]) // dt).astype(np.int64)
                    ]
                    zrate[zi][idx] = new_rate
                    hourst[zi][idx] = boundary
                    if events is not None:
                        for j, i in enumerate(idx):
                            tick = int(math.ceil(
                                (float(boundary[j]) - float(t[i]) - 1e-6)
                                / dt
                            ))
                            entries_by_run.setdefault(int(i), []).append((
                                max(tick, 0), zi, float(boundary[j]),
                                zorder[zi],
                                f"rate={float(new_rate[j]):.3f}",
                            ))
                cm = accr & comp_mask[zi]
                if cm.any():
                    whole = cm & (zcomp[zi] == np.floor(zcomp[zi]))
                    zcomp[zi][whole] += kf[whole] * dt
                    for i in np.flatnonzero(cm & ~whole):
                        cs_acc = float(zcomp[zi][i])
                        for _ in range(int(ki[i])):
                            cs_acc += dt
                        zcomp[zi][i] = cs_acc
                tm = accr & trans_mask[zi]
                if tm.any():
                    whole = tm & (phase[zi] == np.floor(phase[zi]))
                    phase[zi][whole] -= kf[whole] * dt
                    for i in np.flatnonzero(tm & ~whole):
                        ph_acc = float(phase[zi][i])
                        for _ in range(int(ki[i])):
                            ph_acc -= dt
                        phase[zi][i] = ph_acc
            if events is not None:
                for i, ent in entries_by_run.items():
                    ent.sort(key=lambda e: (e[0], e[1]))
                    for _, _, boundary_f, zname, detail in ent:
                        events[i].append(Event(
                            time=boundary_f, kind="hour-rolled",
                            zone=zname, detail=detail,
                        ))
            t[accr] += kf[accr] * dt
        else:  # pragma: no cover - loop guard
            raise EngineError(
                f"vector engine exceeded {max_rounds} rounds; "
                f"{int(alive.sum())} runs still live"
            )

        # -- finalize: per-run plan state feeds the result ---------------
        spot_tot = np.zeros(n)
        for zi in range(Z):
            spot_tot = spot_tot + zspot[zi]
        hours_tot = zhours.sum(axis=0)
        rest_tot = zrest.sum(axis=0)
        term_tot = zterm.sum(axis=0)
        results: list[RunResult] = []
        for j in range(n):
            results.append(RunResult(
                policy_name=pol_name[j],
                bid=float(bid_arr[j]),
                zones=cur_zones[j],
                start_time=float(start_arr[j]),
                finish_time=float(finish[j]),
                deadline=float(deadline[j]),
                completed_on="spot" if completed_on[j] == 1 else "ondemand",
                spot_cost=float(spot_tot[j]),
                ondemand_cost=float(od_cost[j]),
                num_checkpoints=int(ncomm[j]),
                num_restarts=int(rest_tot[j]),
                num_provider_terminations=int(term_tot[j]),
                ondemand_switch_time=(
                    None if math.isnan(switch_t[j]) else float(switch_t[j])
                ),
                spot_hours_charged=int(hours_tot[j]),
                events=tuple(events[j]) if events is not None else (),
            ))
        return results, draws
