"""Struct-of-arrays batched engine — thousands of runs in lockstep.

Every figure aggregates hundreds of (start, seed) runs per grid cell;
after the segment-skipping fast path, the remaining cost is the
one-run-at-a-time Python loop around it.  This module batches the
*start axis*: a :class:`VectorSimulator` advances a whole column of
single-zone runs simultaneously, holding each scalar of the engine's
per-run state (clock, zone state, phase countdowns, progress, billing
meter, checkpoint store) as a NumPy column over the batch.

One lockstep *round* executes, for every live run, exactly one full
tick of Algorithm 1 — billing rolls, market transitions, the deadline
guard, policy actions, one ``advance`` step — followed by the same
vectorized quiescence analysis the scalar fast engine performs and a
bulk skip of the provably event-free stretch.  Runs sit at different
clocks (each skips at its own pace); the lockstep is over rounds, not
over time.  Zone price-crossing and rising-edge indices are shared
across the whole batch through the trace's memoized caches, and the
per-event "which runs does this tick affect" step is a vectorized min
over hazard bounds instead of a per-run heap.

Bit-exactness is the contract: every float operation replays the
scalar engine's arithmetic in the same order (left-associative sums,
``min``-tie-breaking, the repeated-addition accrual for fractional
accumulators), every RNG draw comes from the same per-run
``numpy.random.Generator`` in the same sequence, and the event log —
when recorded — matches entry for entry.  The differential suite
(:func:`repro.audit.differential.vector_differential_run`) holds the
engine to it.

Scope: the native vectorized path covers single-zone runs at integral
start times under policies that declare a ``vector_kind`` ("periodic",
"edge", "never").  Anything else — multi-zone redundancy, controllers,
Markov-Daly/Threshold/Large-bid, run-time dynamics, fractional starts
— automatically falls back to a per-run scalar fast engine sharing the
same RNG stream and run cache, so callers never need to know which
path served them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.app.workload import ExperimentConfig
from repro.core.engine import EngineError, Event, RunResult, SpotSimulator
from repro.market.constants import ON_DEMAND_PRICE, SAMPLE_INTERVAL_S
from repro.market.queuing import QueueDelayModel
from repro.market.spot_market import PriceOracle

# Integer codes of the ZoneState machine, in lifecycle order.  The
# ordering carries meaning: ``state >= QUEUING`` is "running" (an open
# billing hour), mirroring ``RUNNING_STATES``.
DOWN, WAITING, QUEUING, RESTARTING, COMPUTING, CHECKPOINTING = range(6)

#: Policy ``vector_kind`` values the native path can express.
NATIVE_KINDS = frozenset({"periodic", "edge", "never"})


def native_batch_kind(policy, zones: tuple[str, ...]) -> str | None:
    """The native vector kind serving this (policy, zones) cell, or
    ``None`` when every run must fall back to the scalar engine."""
    kind = getattr(type(policy), "vector_kind", None)
    if kind in NATIVE_KINDS and len(zones) == 1:
        return kind
    return None


@dataclass
class VectorSimulator:
    """Batched start-axis engine over one oracle.

    Parameters mirror :class:`~repro.core.engine.SpotSimulator` minus
    the per-run ``rng`` — each run of a batch brings its own generator,
    so queue-delay draws match the scalar engine draw for draw.
    """

    oracle: PriceOracle
    queue_model: QueueDelayModel
    record_events: bool = False
    #: Optional :class:`repro.experiments.cache.RunCache`.  Vector runs
    #: compute the *same* content addresses as the scalar fast engine
    #: (``engine_mode="fast"`` in the key), so entries interoperate in
    #: both directions: a vector batch hits entries a scalar run stored
    #: and vice versa.
    run_cache: object | None = None

    # ------------------------------------------------------------------

    def run_batch(
        self,
        config: ExperimentConfig,
        policy_factory,
        bid: float,
        zones: tuple[str, ...],
        starts,
        rngs,
    ) -> list[RunResult]:
        """Simulate one run per (start, rng) pair; results in order.

        Equivalent to ``SpotSimulator(engine_mode="fast").run(config,
        policy_factory(), bid, zones, start)`` once per start with the
        matching generator — bit-identical results, shared cache
        entries, identical RNG streams afterwards.
        """
        zones = tuple(zones)
        starts = [float(s) for s in starts]
        if len(rngs) != len(starts):
            raise EngineError(
                f"{len(starts)} starts but {len(rngs)} rng streams"
            )
        if not zones:
            raise EngineError("at least one zone is required")
        for z in zones:
            if z not in self.oracle.zone_names:
                raise EngineError(
                    f"zone {z!r} not in trace {self.oracle.zone_names}"
                )
        if bid <= 0:
            raise EngineError(f"bid must be positive, got {bid}")

        probe = policy_factory()
        kind = native_batch_kind(probe, zones)
        results: list[RunResult | None] = [None] * len(starts)
        native = [
            i for i, s in enumerate(starts)
            if kind is not None and float(s).is_integer()
        ]
        if native:
            self._run_native(
                config, probe, kind, float(bid), zones[0],
                starts, rngs, native, results,
            )
        for i in range(len(starts)):
            if results[i] is None:
                sim = SpotSimulator(
                    oracle=self.oracle, queue_model=self.queue_model,
                    rng=rngs[i], record_events=self.record_events,
                    engine_mode="fast", run_cache=self.run_cache,
                )
                results[i] = sim.run(
                    config, policy_factory(), bid, zones, starts[i]
                )
        return results

    # -- cache-aware native dispatch ---------------------------------------

    def _run_native(
        self, config, probe, kind, bid, zone, starts, rngs, idxs, results
    ) -> None:
        """Serve ``idxs`` from the cache where possible, batch the rest."""
        cache = self.run_cache
        keys: dict[int, str] = {}
        todo = idxs
        if cache is not None:
            oracle = self.oracle
            base = {
                "trace": oracle.trace.fingerprint(),
                "oracle": {
                    "history_s": oracle.history_s,
                    "bucket_s": oracle.bucket_s,
                    "incremental": oracle.incremental,
                },
                # Vector results are bit-identical to scalar fast runs,
                # so they share the fast engine's content addresses.
                "engine_mode": "fast",
                "record_events": self.record_events,
                "record_timeline": False,
                "config": config,
                "policy": probe.canonical_params(),
                "bid": bid,
                "zones": (zone,),
                "controller": None,
                "queue_model": self.queue_model,
            }
            todo = []
            for i in idxs:
                try:
                    key = cache.run_key({
                        **base,
                        "start_time": starts[i],
                        "rng": rngs[i].bit_generator.state,
                    })
                except TypeError:
                    todo.append(i)
                    continue
                entry = cache.get(key)
                if entry is not None:
                    for _ in range(entry.rng_draws):
                        self.queue_model.sample(rngs[i])
                    results[i] = entry.result
                else:
                    keys[i] = key
                    todo.append(i)
        if not todo:
            return
        batch, draws = self._simulate_batch(
            config, probe, kind, bid, zone,
            [starts[i] for i in todo], [rngs[i] for i in todo],
        )
        if keys:
            from repro.experiments.cache import CachedRun
        for j, i in enumerate(todo):
            results[i] = batch[j]
            if i in keys:
                cache.put(
                    keys[i], CachedRun(result=batch[j], rng_draws=int(draws[j]))
                )

    # -- the lockstep core -------------------------------------------------

    def _simulate_batch(
        self, config, probe, kind, bid, zone, starts, rngs
    ) -> tuple[list[RunResult], np.ndarray]:
        """Advance ``len(starts)`` native runs to completion in lockstep."""
        oracle = self.oracle
        ztrace = oracle.trace.zone(zone)
        prices = ztrace.prices
        z0 = float(ztrace.start_time)
        dt = float(SAMPLE_INTERVAL_S)
        L = len(prices)
        n = len(starts)

        start_arr = np.asarray(starts, dtype=np.float64)
        deadline = start_arr + config.deadline_s
        end_time = float(oracle.trace.end_time)
        if np.any(deadline > end_time):
            bad = float(deadline[deadline > end_time][0])
            raise EngineError(
                f"trace ends at {end_time}, before the deadline {bad}"
            )
        C = float(config.compute_s)
        tc = float(config.ckpt_cost_s)
        tr = float(config.restart_cost_s)

        # shared per-trace indices (memoized on the ZoneTrace)
        cross = ztrace.threshold_crossings(bid)
        cross_ext = np.concatenate([cross, [L]])
        if kind == "edge":
            edges = ztrace.rising_edges()
            edges_ext = np.concatenate([edges, [L]])
            rising = np.zeros(L, dtype=bool)
            rising[edges] = True

        # struct-of-arrays run state (one column entry per run)
        t = start_arr.copy()
        alive = np.ones(n, dtype=bool)
        state = np.full(n, DOWN, dtype=np.int8)
        phase = np.zeros(n)          # remaining seconds of the timed activity
        pend_restart = np.zeros(n)   # restore time owed after QUEUING
        base = np.zeros(n)           # committed progress restarted from
        comp = np.zeros(n)           # compute seconds since the restart
        pend_ckpt = np.zeros(n)      # progress snapshotted by in-flight ckpt
        committed = np.zeros(n)      # checkpoint store
        n_commits = np.zeros(n, dtype=np.int64)
        hour_start = np.full(n, np.nan)  # NaN = no billing hour open
        rate = np.zeros(n)
        spot_cost = np.zeros(n)
        hours_charged = np.zeros(n, dtype=np.int64)
        n_restarts = np.zeros(n, dtype=np.int64)
        n_terms = np.zeros(n, dtype=np.int64)
        ckpt_flag = np.zeros(n, dtype=bool)  # checkpoint_just_committed
        latched = np.full(n, np.nan)  # periodic: hour_start already latched
        finish = np.full(n, np.nan)
        od_cost = np.zeros(n)
        switch_t = np.full(n, np.nan)
        completed_on = np.zeros(n, dtype=np.int8)  # 1 = spot, 2 = ondemand
        draws = np.zeros(n, dtype=np.int64)
        events: list[list[Event]] | None = (
            [[] for _ in range(n)] if self.record_events else None
        )

        def emit(idx_arr, times, ekind, ezone, details):
            for j, i in enumerate(idx_arr):
                events[i].append(Event(
                    time=float(times[j]), kind=ekind, zone=ezone,
                    detail=details[j],
                ))

        def roll_billing(mask, upto):
            """Roll every open hour whose boundary is <= upto (per run)."""
            while True:
                m = mask & (hour_start + 3600.0 <= upto + 1e-6)
                if not m.any():
                    return
                idx = np.flatnonzero(m)
                boundary = hour_start[idx] + 3600.0
                spot_cost[idx] += rate[idx]
                hours_charged[idx] += 1
                new_rate = prices[((boundary - z0) // dt).astype(np.int64)]
                rate[idx] = new_rate
                hour_start[idx] = boundary
                if events is not None:
                    emit(idx, boundary, "hour-rolled", zone,
                         [f"rate={float(r):.3f}" for r in new_rate])

        def user_close(mask, at):
            """User-terminate open hours at per-run times ``at``."""
            idx = np.flatnonzero(mask)
            if idx.size == 0:
                return
            used = at[idx] - hour_start[idx]
            if np.any(used > 3600.0 + 1e-6):  # pragma: no cover - invariant
                raise EngineError("open billing hour overran its boundary")
            charge = idx[used >= 1.0]  # < 1 s of a fresh hour is free
            spot_cost[charge] += rate[charge]
            hours_charged[charge] += 1
            hour_start[idx] = np.nan
            rate[idx] = 0.0

        max_rounds = int(config.deadline_s // dt) + 16
        for _round in range(max_rounds):
            if not alive.any():
                break

            # -- one full tick for every live run (at its own clock) ------
            running = alive & (state >= QUEUING)

            # billing hours whose boundary has been reached
            roll_billing(running, t)

            # market transitions (Algorithm 1 lines 2-8)
            i_now = np.clip(((t - z0) // dt).astype(np.int64), 0, L - 1)
            p_now = prices[i_now]
            term = running & (p_now > bid)
            if term.any():
                ti = np.flatnonzero(term)
                hour_start[ti] = np.nan  # partial hour forfeited
                rate[ti] = 0.0
                phase[ti] = 0.0
                pend_restart[ti] = 0.0
                base[ti] = 0.0
                comp[ti] = 0.0
                pend_ckpt[ti] = 0.0
                state[ti] = DOWN
                n_terms[ti] += 1
                if events is not None:
                    emit(ti, t[ti], "provider-terminated", zone,
                         [f"S={float(p):.3f}" for p in p_now[ti]])
            notrun = alive & ~running  # terminated runs wait till next tick
            to_wait = notrun & (p_now <= bid) & (state == DOWN)
            if to_wait.any():
                wi = np.flatnonzero(to_wait)
                state[wi] = WAITING
                if events is not None:
                    emit(wi, t[wi], "waiting", zone,
                         [f"S={float(p):.3f}" for p in p_now[wi]])
            to_down = notrun & (p_now > bid) & (state == WAITING)
            state[to_down & alive] = DOWN

            # deadline guard (line 11) — exact scalar arithmetic
            local = base + comp
            trigger = (np.maximum(C - committed, 0.0) + tc) + tr
            remaining_time = deadline - t
            margin = remaining_time - trigger
            safe = margin > dt + 1e-6
            force = (
                alive & safe & (margin <= tc + 3.0 * dt)
                & (state == COMPUTING) & (local > committed + 1e-9)
            )
            if force.any():
                fi = np.flatnonzero(force)
                pend_ckpt[fi] = local[fi]
                state[fi] = CHECKPOINTING
                phase[fi] = tc
                if events is not None:
                    emit(fi, t[fi], "checkpoint-started", zone,
                         [f"forced P={float(p):.0f}s" for p in pend_ckpt[fi]])
            migrate = alive & ~safe
            if migrate.any():
                # candidate 0: restore the committed checkpoint
                prog = committed.copy()
                pre_od = np.zeros(n)
                key0 = (
                    np.maximum(C - committed, 0.0)
                    + np.where(committed > 0, tr, 0.0)
                )
                use2 = migrate & (state == COMPUTING)
                key2 = (np.maximum(C - local, 0.0) + tc) + np.where(
                    local > 0, tr, 0.0
                )
                use2 &= key2 < key0  # strict: first candidate wins ties
                prog[use2] = local[use2]
                pre_od[use2] = tc
                use3 = migrate & (state == CHECKPOINTING)
                key3 = (np.maximum(C - pend_ckpt, 0.0) + phase) + np.where(
                    pend_ckpt > 0, tr, 0.0
                )
                use3 &= key3 < key0
                prog[use3] = pend_ckpt[use3]
                pre_od[use3] = phase[use3]
                restore = np.where(prog > 0, tr, 0.0)
                overhead = pre_od + restore
                rem_comp = np.maximum(C - prog, 0.0)
                mi = np.flatnonzero(migrate)
                if events is not None:
                    emit(mi, t[mi], "ondemand-switch", None,
                         [f"C_r={float(c):.0f}s T_r={float(r):.0f}s"
                          for c, r in zip(rem_comp[mi], remaining_time[mi])])
                user_close(migrate & running & ~term, t)
                state[mi] = DOWN
                finish[mi] = (t[mi] + overhead[mi]) + rem_comp[mi]
                od_sec = restore + rem_comp
                od_cost[mi] = np.where(
                    od_sec[mi] > 0,
                    np.ceil(od_sec[mi] / 3600.0) * ON_DEMAND_PRICE,
                    0.0,
                )
                switch_t[mi] = t[mi]
                completed_on[mi] = 2
                alive &= ~migrate

            # policy actions (lines 16-35); single zone: no join-commit,
            # and a waiting zone always restarts (nothing else can run)
            computing = alive & (state == COMPUTING)
            local = base + comp
            if kind == "periodic":
                left = np.maximum((hour_start + 3600.0) - t, 0.0)
                due = computing & (left <= tc + 1e-6)
                due &= latched != hour_start  # NaN compares unequal
                due &= local > committed + 1e-9
                latched[due] = hour_start[due]
            elif kind == "edge":
                due = computing & (local > committed + 1e-9) & rising[i_now]
            else:  # "never"
                due = np.zeros(n, dtype=bool)
            if due.any():
                di = np.flatnonzero(due)
                pend_ckpt[di] = local[di]
                state[di] = CHECKPOINTING
                phase[di] = tc
                if events is not None:
                    emit(di, t[di], "checkpoint-started", zone,
                         [f"P={float(p):.0f}s" for p in pend_ckpt[di]])
            restart = alive & (state == WAITING)
            for i in np.flatnonzero(restart):
                delay = self.queue_model.sample(rngs[i])
                draws[i] += 1
                state[i] = QUEUING
                phase[i] = delay
                pend_restart[i] = tr if committed[i] > 0 else 0.0
                base[i] = committed[i]
                comp[i] = 0.0
                hour_start[i] = t[i]
                rate[i] = p_now[i]
                n_restarts[i] += 1
                if events is not None:
                    source = "recent" if ckpt_flag[i] else "previous"
                    events[i].append(Event(
                        time=float(t[i]), kind="restarted", zone=zone,
                        detail=f"from-{source}-ckpt P={committed[i]:.0f}s",
                    ))
            ckpt_flag &= ~alive  # cleared every tick by _policy_actions

            # advance one tick.  The scalar while-loop only ever moves a
            # zone forward through QUEUING -> RESTARTING -> CHECKPOINTING
            # -> COMPUTING within a tick, so one sweep in that order
            # replays every intra-tick cascade.
            running = alive & (state >= QUEUING)
            remaining = np.where(running, dt, 0.0)
            commit_evt = np.full(n, -1.0)
            completion = np.full(n, np.nan)

            m = running & (state == QUEUING) & (remaining > 1e-9)
            if m.any():
                qi = np.flatnonzero(m)
                used = np.minimum(phase[qi], remaining[qi])
                phase[qi] = phase[qi] - used
                remaining[qi] = remaining[qi] - used
                fin_q = qi[phase[qi] <= 1e-9]
                state[fin_q] = RESTARTING
                phase[fin_q] = pend_restart[fin_q]
                direct = fin_q[phase[fin_q] <= 1e-9]
                state[direct] = COMPUTING
            m = running & (state == RESTARTING) & (remaining > 1e-9)
            if m.any():
                ri = np.flatnonzero(m)
                used = np.minimum(phase[ri], remaining[ri])
                phase[ri] = phase[ri] - used
                remaining[ri] = remaining[ri] - used
                fin_r = ri[phase[ri] <= 1e-9]
                state[fin_r] = COMPUTING
            m = running & (state == CHECKPOINTING) & (remaining > 1e-9)
            if m.any():
                ci = np.flatnonzero(m)
                used = np.minimum(phase[ci], remaining[ci])
                phase[ci] = phase[ci] - used
                remaining[ci] = remaining[ci] - used
                fin_c = ci[phase[ci] <= 1e-9]
                commit_evt[fin_c] = pend_ckpt[fin_c]
                state[fin_c] = COMPUTING
            m = running & (state == COMPUTING) & (remaining > 1e-9)
            if m.any():
                gi = np.flatnonzero(m)
                need = C - (base[gi] + comp[gi])
                done = need <= 1e-9
                completion[gi[done]] = dt - remaining[gi[done]]
                gi = gi[~done]
                used = np.minimum(need[~done], remaining[gi])
                comp[gi] = comp[gi] + used
                remaining[gi] = remaining[gi] - used
                done2 = C - (base[gi] + comp[gi]) <= 1e-9
                completion[gi[done2]] = dt - remaining[gi[done2]]

            cm = commit_evt >= 0.0
            if cm.any():
                ci = np.flatnonzero(cm)
                committed[ci] = commit_evt[ci]
                n_commits[ci] += 1
                ckpt_flag[ci] = True
                if events is not None:
                    emit(ci, t[ci] + dt, "checkpoint-committed", zone,
                         [f"P={float(p):.0f}s" for p in committed[ci]])
            done = alive & ~np.isnan(completion)
            if done.any():
                di = np.flatnonzero(done)
                fin = t + completion
                user_close(done, fin)  # reason="complete": same billing
                if events is not None:
                    emit(di, fin[di], "completed", None,
                         ["on spot"] * di.size)
                finish[di] = fin[di]
                completed_on[di] = 1
                state[di] = DOWN
                alive &= ~done

            t[alive] += dt

            # -- vectorized quiescence + bulk skip ------------------------
            if not alive.any():
                break
            computing = state == COMPUTING
            transient = (state == QUEUING) | (state == RESTARTING)
            waitingq = state == WAITING
            runningq = computing | transient
            zero = (state == CHECKPOINTING) | waitingq
            dropc = ckpt_flag & ~waitingq  # reschedule is a no-op

            i2 = np.clip(((t - z0) // dt).astype(np.int64), 0, L - 1)
            p2 = prices[i2]
            zero |= runningq & (p2 > bid)
            zero |= ~runningq & ((p2 <= bid) != waitingq)
            k = (cross_ext[np.searchsorted(cross, i2, side="right")] - i2
                 ).astype(np.float64)

            nstep = np.floor_divide(phase - 1e-6, dt)
            zero |= transient & (nstep < 1)
            k = np.where(transient, np.minimum(k, nstep), k)

            margin = ((((deadline - t) - np.maximum(C - committed, 0.0))
                       - tc) - tr)
            k = np.minimum(k, np.floor(((margin - tc) - 3.0 * dt) / dt) - 1)

            if computing.any():
                local = base + comp
                k = np.where(
                    computing,
                    np.minimum(k, np.floor((C - local) / dt) - 2),
                    k,
                )
                if kind == "periodic":
                    due_at = (hour_start + 3600.0) - tc
                    due_at = np.where(
                        latched == hour_start, due_at + 3600.0, due_at
                    )
                    hb = np.ceil(((due_at - t) - 1e-6) / dt)
                    k = np.where(computing, np.minimum(k, hb), k)
                elif kind == "edge":
                    j = edges_ext[np.searchsorted(edges, i2, side="right")]
                    hb = np.ceil(((z0 + j * dt - t) - 1e-6) / dt)
                    hb = np.where(rising[i2], 0.0, hb)  # edge in force now
                    k = np.where(computing, np.minimum(k, hb), k)
                # "never": fast_forward_until is +inf — no bound

            kq = np.where(alive & ~zero, k, 0.0)
            kq = np.maximum(kq, 0.0).astype(np.int64)
            ckpt_flag &= ~(dropc & (kq > 0))  # dropped on the way out

            skip = alive & (kq > 0)
            if not skip.any():
                continue
            kf = kq.astype(np.float64)
            accr = skip & (computing | transient)
            plain = skip & ~accr
            t[plain] += kf[plain] * dt  # integral clock: closed form exact
            if accr.any():
                last = t + (kf - 1.0) * dt
                roll_billing(accr, np.where(accr, last, -np.inf))
                cm2 = skip & computing
                if cm2.any():
                    whole = cm2 & (comp == np.floor(comp))
                    comp[whole] += kf[whole] * dt
                    for i in np.flatnonzero(cm2 & ~whole):
                        cs = comp[i]  # fractional: replay the float ops
                        for _ in range(kq[i]):
                            cs += dt
                        comp[i] = cs
                tm2 = skip & transient
                if tm2.any():
                    whole = tm2 & (phase == np.floor(phase))
                    phase[whole] -= kf[whole] * dt
                    for i in np.flatnonzero(tm2 & ~whole):
                        ph = phase[i]
                        for _ in range(kq[i]):
                            ph -= dt
                        phase[i] = ph
                t[accr] += kf[accr] * dt
        else:  # pragma: no cover - defensive round budget
            raise EngineError(
                f"vector engine exceeded {max_rounds} rounds; "
                f"{int(alive.sum())} runs still live"
            )

        results = []
        for j in range(n):
            if completed_on[j] == 0:  # pragma: no cover - loop invariant
                raise EngineError(f"run at start {starts[j]} never finished")
            results.append(RunResult(
                policy_name=probe.name,
                bid=bid,
                zones=(zone,),
                start_time=float(start_arr[j]),
                finish_time=float(finish[j]),
                deadline=float(deadline[j]),
                completed_on="spot" if completed_on[j] == 1 else "ondemand",
                spot_cost=float(spot_cost[j]),
                ondemand_cost=float(od_cost[j]),
                num_checkpoints=int(n_commits[j]),
                num_restarts=int(n_restarts[j]),
                num_provider_terminations=int(n_terms[j]),
                ondemand_switch_time=(
                    float(switch_t[j]) if not math.isnan(switch_t[j]) else None
                ),
                spot_hours_charged=int(hours_charged[j]),
                events=tuple(events[j]) if events is not None else (),
            ))
        return results, draws
