"""Checkpoint-policy interface (Algorithm 1's two plug-in functions).

Algorithm 1 is generic over ``CheckpointCondition()`` and
``ScheduleNextCheckpoint()``; a policy object supplies both, plus two
optional hooks that let Large-bid express its cost-control behaviour
(release an overpriced zone at the hour boundary and gate its
re-acquisition on the control threshold rather than the bid).

Policies are *stateful per run*: the engine calls :meth:`reset` at
experiment start, then :meth:`schedule_next_checkpoint` at every
restart and after every committed checkpoint (the two call sites of
Algorithm 1), and queries :meth:`checkpoint_due` each tick.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.app.application import ApplicationRun
from repro.app.workload import ExperimentConfig
from repro.market.instance import ZoneInstance
from repro.market.spot_market import PriceOracle


@dataclass
class PolicyContext:
    """Everything a policy may observe at a decision point.

    Mirrors the inputs of Algorithm 1: current time, bid and spot
    prices (through the oracle), checkpoint/restart costs (through the
    config), application progress (through the run), and per-zone
    instance state.
    """

    now: float
    bid: float
    zones: tuple[str, ...]
    oracle: PriceOracle
    config: ExperimentConfig
    run: ApplicationRun
    instances: dict[str, ZoneInstance]

    def price(self, zone: str) -> float:
        """Spot price of ``zone`` at the current tick."""
        return self.oracle.price(zone, self.now)

    def computing_instances(self) -> list[ZoneInstance]:
        """Instances currently making progress."""
        from repro.market.instance import ZoneState

        return [
            inst
            for inst in self.instances.values()
            if inst.state is ZoneState.COMPUTING
        ]

    def leader(self) -> ZoneInstance | None:
        """The computing instance with the most local progress."""
        computing = self.computing_instances()
        if not computing:
            return None
        return max(computing, key=lambda inst: inst.local_progress_s)


class CheckpointPolicy(abc.ABC):
    """Base class for all checkpoint-scheduling policies."""

    #: Short name used in figures and tables (e.g. ``"periodic"``).
    name: str = "abstract"

    #: When True, the engine's deadline guard counts a computing zone's
    #: *speculative* (uncommitted) progress toward the margin.  Only
    #: sound when provider termination is effectively impossible —
    #: Large-bid's B = $100 against a historical maximum of $20.02 —
    #: because a termination would destroy progress the guard already
    #: spent slack against.
    trust_speculative: bool = False

    def reset(self, ctx: PolicyContext) -> None:
        """Forget all per-run state; called once at experiment start."""

    @abc.abstractmethod
    def checkpoint_due(self, ctx: PolicyContext, leader: ZoneInstance) -> bool:
        """``CheckpointCondition()`` — should the leader checkpoint now?"""

    def schedule_next_checkpoint(self, ctx: PolicyContext) -> None:
        """``ScheduleNextCheckpoint()`` — (re)arm the policy's timer.

        Called after every restart and after every committed
        checkpoint.  Policies that react instantaneously to prices
        (Edge, Threshold) leave this a no-op.
        """

    # -- Large-bid style hooks (default behaviour = plain Algorithm 1) ----

    def eligible_to_start(self, ctx: PolicyContext, zone: str, price: float) -> bool:
        """May a down zone enter WAITING at this price?

        Algorithm 1's condition is ``B >= S``; Large-bid re-acquires a
        self-released zone only once the price drops below its control
        threshold L.
        """
        return price <= ctx.bid

    def release_after_checkpoint(self, ctx: PolicyContext, leader: ZoneInstance) -> bool:
        """Should the engine user-terminate the leader once the
        checkpoint it just requested commits?  (Large-bid's manual
        termination near the hour boundary.)"""
        return False


class NeverCheckpoint(CheckpointPolicy):
    """Degenerate policy that never checkpoints.

    Useful as a baseline in tests and ablations: all fault tolerance
    comes from the deadline guard's switch to on-demand.
    """

    name = "never"

    def checkpoint_due(self, ctx: PolicyContext, leader: ZoneInstance) -> bool:
        return False
