"""Checkpoint-policy interface (Algorithm 1's two plug-in functions).

Algorithm 1 is generic over ``CheckpointCondition()`` and
``ScheduleNextCheckpoint()``; a policy object supplies both, plus two
optional hooks that let Large-bid express its cost-control behaviour
(release an overpriced zone at the hour boundary and gate its
re-acquisition on the control threshold rather than the bid).

Policies are *stateful per run*: the engine calls :meth:`reset` at
experiment start, then :meth:`schedule_next_checkpoint` at every
restart and after every committed checkpoint (the two call sites of
Algorithm 1), and queries :meth:`checkpoint_due` each tick.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

from repro.app.application import ApplicationRun
from repro.app.workload import ExperimentConfig
from repro.market.instance import ZoneInstance
from repro.market.spot_market import PriceOracle


@dataclass
class PolicyContext:
    """Everything a policy may observe at a decision point.

    Mirrors the inputs of Algorithm 1: current time, bid and spot
    prices (through the oracle), checkpoint/restart costs (through the
    config), application progress (through the run), and per-zone
    instance state.
    """

    now: float
    bid: float
    zones: tuple[str, ...]
    oracle: PriceOracle
    config: ExperimentConfig
    run: ApplicationRun
    instances: dict[str, ZoneInstance]

    def price(self, zone: str) -> float:
        """Spot price of ``zone`` at the current tick."""
        return self.oracle.price(zone, self.now)

    def computing_instances(self) -> list[ZoneInstance]:
        """Instances currently making progress."""
        from repro.market.instance import ZoneState

        return [
            inst
            for inst in self.instances.values()
            if inst.state is ZoneState.COMPUTING
        ]

    def leader(self) -> ZoneInstance | None:
        """The computing instance with the most local progress."""
        computing = self.computing_instances()
        if not computing:
            return None
        return max(computing, key=lambda inst: inst.local_progress_s)


class CheckpointPolicy(abc.ABC):
    """Base class for all checkpoint-scheduling policies."""

    #: Short name used in figures and tables (e.g. ``"periodic"``).
    name: str = "abstract"

    #: When True, the engine's deadline guard counts a computing zone's
    #: *speculative* (uncommitted) progress toward the margin.  Only
    #: sound when provider termination is effectively impossible —
    #: Large-bid's B = $100 against a historical maximum of $20.02 —
    #: because a termination would destroy progress the guard already
    #: spent slack against.
    trust_speculative: bool = False

    #: Which native lockstep path of the struct-of-arrays engine
    #: (:mod:`repro.core.vector_engine`) can express this policy:
    #: ``"periodic"``, ``"edge"``, ``"never"``, ``"markov-daly"``,
    #: ``"threshold"`` or ``"large-bid"``, or ``None`` when the
    #: policy's decision state cannot be held as batch columns and
    #: vector batches must
    #: fall back to per-run scalar simulation.  Setting a kind asserts
    #: that ``checkpoint_due``/``fast_forward_until`` follow the exact
    #: decision rule of that kind — the vector engine re-implements the
    #: rule column-wise and the differential suite holds both to it.
    vector_kind: str | None = None

    #: When True, the policy's decisions depend on the bid only through
    #: the availability pattern ``price <= bid`` (terminations, starts,
    #: eligibility) — never on the bid's numeric value.  Two bids whose
    #: patterns agree over a run's horizon then yield bit-identical
    #: trajectories, which is what lets the batched bid-axis engine
    #: (:mod:`repro.core.bid_batch`) run one representative per
    #: equivalence class and clone the rest.  Policies that feed the
    #: bid into a formula or an oracle query (Threshold's price target,
    #: Markov-Daly's MTBF) must leave this False — the batched path
    #: then falls back to per-bid execution automatically.
    bid_invariant: bool = False

    def canonical_params(self) -> dict:
        """The policy's identity for run-cache keying.

        Two policy instances whose canonical params are equal must be
        behaviourally interchangeable in the engine.  The default —
        the policy's ``name`` — suffices for parameterless policies;
        policies with tunables must include every one of them (see
        :class:`~repro.core.large_bid.LargeBidPolicy`).
        """
        return {"name": self.name}

    def reset(self, ctx: PolicyContext) -> None:
        """Forget all per-run state; called once at experiment start."""

    @abc.abstractmethod
    def checkpoint_due(self, ctx: PolicyContext, leader: ZoneInstance) -> bool:
        """``CheckpointCondition()`` — should the leader checkpoint now?"""

    #: True when :meth:`schedule_next_checkpoint` is a no-op.  The fast
    #: path then treats the tick after a commit as skippable (its only
    #: effect would be dropping the just-committed flag) whenever no
    #: zone is waiting to restart.  Policies that do real re-arming
    #: work (Markov-Daly) must leave this False so that work happens on
    #: a full tick at the exact post-commit instant.
    reschedule_is_noop: bool = False

    def schedule_next_checkpoint(self, ctx: PolicyContext) -> None:
        """``ScheduleNextCheckpoint()`` — (re)arm the policy's timer.

        Called after every restart and after every committed
        checkpoint.  Policies that react instantaneously to prices
        (Edge, Threshold) leave this a no-op.
        """

    # -- fast-path hooks ---------------------------------------------------

    def fast_forward_until(self, ctx: PolicyContext) -> float:
        """Earliest future time at which :meth:`checkpoint_due` could
        first return True, assuming no market, billing, guard or
        controller event occurs in between.

        The engine's segment-skipping fast path uses this to jump over
        ticks where the policy provably stays idle.  Returning
        ``ctx.now`` (the default) disables skipping for this policy —
        always safe; returning ``math.inf`` declares the policy will
        never fire on its own.  Implementations must be *no later* than
        the first possible trigger and must perform exactly the oracle
        queries the tick engine's ``checkpoint_due`` would perform at
        ``ctx.now`` (and no others), so time-bucketed statistic caches
        seed at identical instants under both engines.
        """
        return ctx.now

    def start_price_threshold(self, bid: float) -> float:
        """Price level at or below which :meth:`eligible_to_start`
        holds, as a pure threshold.

        The fast path derives "no market transition can occur" windows
        from crossings of ``min(bid, start_price_threshold(bid))``.  A
        policy that overrides :meth:`eligible_to_start` with anything
        richer than a price comparison must override this consistently
        (or leave :meth:`fast_forward_until` at its no-skip default).
        """
        return bid

    # -- Large-bid style hooks (default behaviour = plain Algorithm 1) ----

    def eligible_to_start(self, ctx: PolicyContext, zone: str, price: float) -> bool:
        """May a down zone enter WAITING at this price?

        Algorithm 1's condition is ``B >= S``; Large-bid re-acquires a
        self-released zone only once the price drops below its control
        threshold L.
        """
        return price <= ctx.bid

    def release_after_checkpoint(self, ctx: PolicyContext, leader: ZoneInstance) -> bool:
        """Should the engine user-terminate the leader once the
        checkpoint it just requested commits?  (Large-bid's manual
        termination near the hour boundary.)"""
        return False


class NeverCheckpoint(CheckpointPolicy):
    """Degenerate policy that never checkpoints.

    Useful as a baseline in tests and ablations: all fault tolerance
    comes from the deadline guard's switch to on-demand.
    """

    name = "never"
    reschedule_is_noop = True
    vector_kind = "never"
    # never consults the bid at all
    bid_invariant = True

    def checkpoint_due(self, ctx: PolicyContext, leader: ZoneInstance) -> bool:
        return False

    def fast_forward_until(self, ctx: PolicyContext) -> float:
        return math.inf
