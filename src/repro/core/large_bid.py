"""Large-bid policy (Khatua et al.), Section 7.2.2.

The user submits an effectively infinite bid (B = $100, versus a
maximum ever-observed spot price of $20.02) so EC2 essentially never
terminates the instance; fault tolerance is replaced by raw bid power.
Cost control comes from a second, smaller *user threshold* L:

* while S <= L nothing special happens — no checkpoints are taken;
* if S moves above L, the instance is allowed to finish its ongoing
  (already committed-to) billing hour; if S is still above L near the
  end of that hour, a checkpoint is taken just inside the boundary and
  the instance is *manually* terminated;
* the instance is re-acquired as soon as S drops back to L or below.

``Naive`` is Large-bid without a threshold (L = infinity): ride the
market unconditionally and accept whatever each hour costs.

Large-bid is strictly single-zone and offers no upper bound on cost —
a price spike inside a committed hour is paid in full at the spiked
hourly rate, which is exactly how the $20.02 March 2013 event produces
a $183.75 worst case.  The engine's deadline guard still applies, so
runs complete on time by switching to on-demand when required.
"""

from __future__ import annotations

import math

from repro.core.policy import CheckpointPolicy, PolicyContext
from repro.market.constants import LARGE_BID
from repro.market.instance import ZoneInstance


class LargeBidPolicy(CheckpointPolicy):
    """Bid high, control cost with a release threshold L."""

    name = "large-bid"
    reschedule_is_noop = True
    # B = $100 cannot be outbid by the market (max observed $20.02),
    # so a running instance's progress is as safe as a checkpoint.
    trust_speculative = True
    vector_kind = "large-bid"

    def __init__(self, threshold: float | None) -> None:
        """``threshold=None`` gives the Naive variant (no cost control)."""
        if threshold is not None and threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        self.threshold = threshold
        if threshold is None:
            self.name = "large-bid-naive"
        else:
            self.name = f"large-bid-L{threshold:.2f}"
        self._released_hours: set[tuple[str, float]] = set()

    @property
    def bid(self) -> float:
        """The bid this policy is meant to run with."""
        return LARGE_BID

    def canonical_params(self) -> dict:
        """Run-cache identity: the control threshold is a tunable, so
        it joins the name explicitly (two decimals in the name would
        alias L values that round together)."""
        return {"name": "large-bid", "threshold": self.threshold}

    @property
    def control_threshold(self) -> float:
        """L as a number (infinite for Naive)."""
        return math.inf if self.threshold is None else self.threshold

    def reset(self, ctx: PolicyContext) -> None:
        self._released_hours.clear()

    # -- Algorithm-1 hooks ----------------------------------------------------

    def eligible_to_start(self, ctx: PolicyContext, zone: str, price: float) -> bool:
        """(Re-)acquire only while S is at or below the control threshold."""
        return price <= self.control_threshold

    def _over_threshold_near_hour_end(
        self, ctx: PolicyContext, leader: ZoneInstance
    ) -> bool:
        if self.threshold is None:
            return False
        price = ctx.price(leader.zone)
        if price <= self.threshold:
            return False
        meter = leader.billing
        if not meter.is_open:
            return False
        if meter.seconds_left_in_hour(ctx.now) > ctx.config.ckpt_cost_s + 1e-6:
            return False
        key = (leader.zone, meter.hour_start)
        if key in self._released_hours:
            return False
        self._released_hours.add(key)
        return True

    def checkpoint_due(self, ctx: PolicyContext, leader: ZoneInstance) -> bool:
        """Checkpoint just inside the hour boundary when S exceeds L."""
        if leader.local_progress_s <= ctx.run.committed_progress_s() + 1e-9:
            return False
        return self._over_threshold_near_hour_end(ctx, leader)

    def release_after_checkpoint(self, ctx: PolicyContext, leader: ZoneInstance) -> bool:
        """Every Large-bid checkpoint is followed by manual termination."""
        return True

    def schedule_next_checkpoint(self, ctx: PolicyContext) -> None:
        """No-op: the only trigger is the threshold-at-hour-end rule."""

    def start_price_threshold(self, bid: float) -> float:
        """Re-acquisition is gated on L, not on the (huge) bid."""
        return self.control_threshold

    def fast_forward_until(self, ctx: PolicyContext) -> float:
        """Earliest tick at which S > L and the open hour has <= t_c left.

        Both conditions must hold simultaneously, so the later of their
        individual first-satisfaction times is a valid bound; price
        movements come from the trace's cached L-crossing index.  Naive
        (no L) never checkpoints at all.
        """
        if self.threshold is None:
            return math.inf
        from repro.market.instance import ZoneState

        bound = math.inf
        for zone, inst in ctx.instances.items():
            if zone not in ctx.zones or inst.state is not ZoneState.COMPUTING:
                continue
            meter = inst.billing
            if not meter.is_open:
                continue
            if (zone, meter.hour_start) in self._released_hours:
                # latched: nothing can fire before the hour rolls
                bound = min(bound, meter.hour_end())
                continue
            z = ctx.oracle.trace.zone(zone)
            i = z.index_at(ctx.now)
            if float(z.prices[i]) > self.threshold:
                over_at = ctx.now
            else:
                j = z.next_threshold_crossing(i, self.threshold)
                over_at = z.start_time + j * z.interval_s
            bound = min(
                bound,
                max(over_at, meter.hour_end() - ctx.config.ckpt_cost_s),
            )
        return bound


def naive_policy() -> LargeBidPolicy:
    """Large-bid with no cost control at all (the figure's "Naive")."""
    return LargeBidPolicy(threshold=None)
