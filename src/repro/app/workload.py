"""Experiment configuration (the paper's "experiment" abstraction).

Section 2.3: "The user specifies an *experiment* as a configuration of
a number of nodes, problem size, execution time and job completion
deadline."  Problem size and node count are fixed per experiment and
only enter through the (user-provided) uninterrupted execution time C
and the checkpoint/restart costs, so this dataclass carries exactly
the quantities the system model needs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.market.constants import (
    BASE_COMPUTE_HOURS,
    CKPT_COST_LOW_S,
    SLACK_LOW,
    hours_to_seconds,
)


@dataclass(frozen=True)
class ExperimentConfig:
    """A time-constrained run request.

    Parameters
    ----------
    compute_s:
        ``C`` — uninterrupted execution time on dedicated resources, s.
    deadline_s:
        ``D`` — wall-clock budget from experiment start, s (D >= C).
    ckpt_cost_s / restart_cost_s:
        ``t_c`` / ``t_r`` — constant checkpoint and restart costs, s.
        The paper assumes them equal (Section 5) but the model does not
        require it.
    num_nodes:
        Instances per zone; costs in this package are reported *per
        instance* exactly as in the paper's figures, so ``num_nodes``
        only matters for :meth:`total_cost_multiplier`.
    """

    compute_s: float
    deadline_s: float
    ckpt_cost_s: float = CKPT_COST_LOW_S
    restart_cost_s: float = CKPT_COST_LOW_S
    num_nodes: int = 1

    def __post_init__(self) -> None:
        if self.compute_s <= 0:
            raise ValueError(f"compute time must be positive, got {self.compute_s}")
        if self.deadline_s < self.compute_s:
            raise ValueError(
                f"deadline ({self.deadline_s}) must be >= compute time "
                f"({self.compute_s})"
            )
        if self.ckpt_cost_s <= 0 or self.restart_cost_s < 0:
            raise ValueError("checkpoint cost must be > 0 and restart cost >= 0")
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")

    # -- derived quantities -------------------------------------------------

    @property
    def slack_s(self) -> float:
        """``T_l = D - C`` (Section 2.3)."""
        return self.deadline_s - self.compute_s

    @property
    def slack_fraction(self) -> float:
        """Slack as a fraction of C (the paper's 15% / 50%)."""
        return self.slack_s / self.compute_s

    def total_cost_multiplier(self) -> int:
        """Scale a per-instance cost to the whole allocation."""
        return self.num_nodes

    def with_slack_fraction(self, fraction: float) -> "ExperimentConfig":
        """Same experiment with deadline set to ``C * (1 + fraction)``."""
        if fraction < 0:
            raise ValueError(f"slack fraction must be >= 0, got {fraction}")
        return replace(self, deadline_s=self.compute_s * (1.0 + fraction))

    def with_ckpt_cost(self, ckpt_cost_s: float) -> "ExperimentConfig":
        """Same experiment with equal checkpoint and restart costs."""
        return replace(self, ckpt_cost_s=ckpt_cost_s, restart_cost_s=ckpt_cost_s)


def paper_experiment(
    slack_fraction: float = SLACK_LOW,
    ckpt_cost_s: float = CKPT_COST_LOW_S,
    compute_hours: float = BASE_COMPUTE_HOURS,
) -> ExperimentConfig:
    """The Section 5 configuration: C = 20 h, t_c = t_r, chosen slack."""
    compute_s = hours_to_seconds(compute_hours)
    return ExperimentConfig(
        compute_s=compute_s,
        deadline_s=compute_s * (1.0 + slack_fraction),
        ckpt_cost_s=ckpt_cost_s,
        restart_cost_s=ckpt_cost_s,
    )
