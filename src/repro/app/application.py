"""Application progress model.

The engine monitors application progress "through an interface; e.g.
MPI_Pcontrol is often used to indicate iteration completion in
iterative MPI applications" (Section 3.2).  This module provides that
interface's simulator-side twin: an :class:`ApplicationRun` view over
the checkpoint store and the per-zone instances, exposing the paper's
system-model variables P, C_r, T_r and the progress rate P/T that
Inequality (1) uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.app.checkpoint import CheckpointStore
from repro.app.workload import ExperimentConfig
from repro.market.instance import ZoneInstance, ZoneState


@dataclass
class ApplicationRun:
    """Progress bookkeeping for one experiment run.

    Attributes
    ----------
    config:
        The experiment being executed.
    start_time:
        Wall-clock timestamp the experiment started.
    store:
        Checkpoint store holding committed progress P.
    """

    config: ExperimentConfig
    start_time: float
    store: CheckpointStore

    @property
    def deadline(self) -> float:
        """Absolute wall-clock deadline."""
        return self.start_time + self.config.deadline_s

    def committed_progress_s(self) -> float:
        """P — progress that survives any termination."""
        return self.store.committed_progress_s

    def leading_progress_s(self, instances: list[ZoneInstance]) -> float:
        """Best progress counting speculative (uncheckpointed) work.

        The maximum over the committed store and every running zone's
        local run.  This is the P used by the deadline guard: a switch
        to on-demand first checkpoints the leading computing zone, so
        its speculative work is *not* lost during migration.
        """
        best = self.committed_progress_s()
        for inst in instances:
            if inst.state in (ZoneState.COMPUTING, ZoneState.CHECKPOINTING):
                best = max(best, inst.local_progress_s)
        return best

    def remaining_compute_s(self, instances: list[ZoneInstance]) -> float:
        """C_r = C - P (using leading progress)."""
        return max(self.config.compute_s - self.leading_progress_s(instances), 0.0)

    def remaining_time_s(self, now: float) -> float:
        """T_r = D - T."""
        return max(self.deadline - now, 0.0)

    def progress_rate(self, now: float) -> float:
        """P/T — committed progress per wall-clock second so far.

        Defined as 0 at the first instant (no time has passed).
        """
        elapsed = now - self.start_time
        if elapsed <= 0:
            return 0.0
        return self.committed_progress_s() / elapsed

    def slack_consumed_s(self, now: float, instances: list[ZoneInstance]) -> float:
        """How much of T_l has been burned by downtime and overheads.

        Elapsed wall-clock minus leading progress: zero while the
        application computes uninterrupted from the start.
        """
        elapsed = now - self.start_time
        return max(elapsed - self.leading_progress_s(instances), 0.0)

    def is_complete(self, instances: list[ZoneInstance]) -> bool:
        """True when any zone's local run has reached C."""
        return any(
            inst.local_progress_s >= self.config.compute_s - 1e-9
            for inst in instances
            if inst.state is ZoneState.COMPUTING
        ) or self.committed_progress_s() >= self.config.compute_s - 1e-9
