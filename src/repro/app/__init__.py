"""Application substrate: experiment configs, checkpoint store, progress."""

from repro.app.application import ApplicationRun
from repro.app.checkpoint import CheckpointError, CheckpointRecord, CheckpointStore
from repro.app.dynamics import (
    DeadlineSchedule,
    NOMINAL_PERFORMANCE,
    PerformanceProfile,
    STATIC_DEADLINE,
)
from repro.app.workload import ExperimentConfig, paper_experiment

__all__ = [
    "ApplicationRun",
    "DeadlineSchedule",
    "PerformanceProfile",
    "STATIC_DEADLINE",
    "NOMINAL_PERFORMANCE",
    "CheckpointError",
    "CheckpointRecord",
    "CheckpointStore",
    "ExperimentConfig",
    "paper_experiment",
]
