"""Run-time dynamics: deadline updates and performance variation.

Section 3.2 notes that because Algorithm 1 continuously monitors the
remaining time ``T_r`` and the progress ``P``, "it can potentially
handle changes in the input parameters such as the deadline D
(modified by the user during application runtime) or variation in
application performance (which affects P)".  This module makes those
two extensions concrete:

* :class:`DeadlineSchedule` — user-issued deadline changes during the
  run.  Extensions are always safe; a contraction may arrive too late
  to be honourable (the committed margin is already below the new
  requirement), in which case the engine migrates immediately and the
  run reports the miss honestly.
* :class:`PerformanceProfile` — a piecewise-constant compute-rate
  factor (e.g. an input-dependent phase where iterations run at 70%
  of the profiled rate).  A factor of 1.0 is the nominal performance
  the user's ``C`` was estimated at; the engine scales progress
  accrual accordingly, so slower-than-profiled phases consume slack
  exactly as they would in reality.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class DeadlineSchedule:
    """User deadline updates: ``(effective_time, new_deadline)`` pairs.

    Both values are absolute timestamps.  Updates take effect at the
    first engine tick at or after ``effective_time``; later updates
    override earlier ones.
    """

    updates: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        times = [t for t, _ in self.updates]
        if times != sorted(times):
            raise ValueError("deadline updates must be time-ordered")
        for _, deadline in self.updates:
            if deadline <= 0:
                raise ValueError("deadlines must be positive timestamps")
        object.__setattr__(self, "updates", tuple(self.updates))

    def deadline_at(self, now: float, initial_deadline: float) -> float:
        """The deadline in force at time ``now``."""
        deadline = initial_deadline
        for effective, new_deadline in self.updates:
            if effective > now:
                break
            deadline = new_deadline
        return deadline

    def next_change_after(self, now: float) -> float | None:
        """Timestamp of the next pending update, or None."""
        for effective, _ in self.updates:
            if effective > now:
                return effective
        return None


@dataclass(frozen=True)
class PerformanceProfile:
    """Piecewise-constant compute-rate factor over absolute time.

    ``segments`` is a sorted sequence of ``(start_time, factor)``;
    the factor applies from its start time until the next segment.
    Before the first segment the factor is 1.0 (nominal).
    """

    segments: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        times = [t for t, _ in self.segments]
        if times != sorted(times):
            raise ValueError("profile segments must be time-ordered")
        for _, factor in self.segments:
            if not (0.0 <= factor <= 10.0):
                raise ValueError(
                    f"rate factor {factor} outside the sane range [0, 10]"
                )
        object.__setattr__(self, "segments", tuple(self.segments))

    def rate_at(self, now: float) -> float:
        """Compute-rate factor in force at ``now``."""
        if not self.segments:
            return 1.0
        times = [t for t, _ in self.segments]
        i = bisect.bisect_right(times, now) - 1
        if i < 0:
            return 1.0
        return self.segments[i][1]

    def wall_time_for(
        self,
        compute_s: float,
        start_time: float,
        cap_rate: float = 1.0,
    ) -> float:
        """Wall-clock seconds to accrue ``compute_s`` from ``start_time``.

        Integrates the piecewise rate forward.  Rates are capped at
        ``cap_rate`` (default: nominal) — the deadline guard uses this
        so that an upcoming *fast* phase can never make the margin
        shrink faster than one tick per tick (the no-skip property),
        at the cost of being conservative about speed-ups.  Returns
        ``inf`` when the profile never delivers the required compute
        (a permanent stall).
        """
        if compute_s <= 0:
            return 0.0
        # boundaries after start_time, in order, then open-ended tail
        boundaries = [t for t, _ in self.segments if t > start_time]
        remaining = compute_s
        wall = 0.0
        t = start_time
        for boundary in boundaries:
            rate = min(self.rate_at(t), cap_rate)
            span = boundary - t
            if rate > 0:
                if remaining <= span * rate:
                    return wall + remaining / rate
                remaining -= span * rate
            wall += span
            t = boundary
        rate = min(self.rate_at(t), cap_rate)
        if rate <= 0:
            return float("inf")
        return wall + remaining / rate


#: The trivial dynamics: fixed deadline, nominal performance.
STATIC_DEADLINE = DeadlineSchedule()
NOMINAL_PERFORMANCE = PerformanceProfile()
