"""Checkpoint store — the on-demand I/O server of Section 5.

Checkpoints are written to an I/O server running on a (cheap,
non-CC2) on-demand instance with persistent EBS storage; the paper
ignores its cost because it is a small fraction of a tightly coupled
run at scale.  What matters to the scheduling problem is the store's
*content*: the most recent committed progress, which is what every
zone restarts from and what survives any number of terminations.

The store keeps the full commit history because the Adaptive policy
and several diagnostics want to inspect progress over time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


class CheckpointError(RuntimeError):
    """Raised on invalid checkpoint operations."""


@dataclass(frozen=True)
class CheckpointRecord:
    """One committed checkpoint."""

    time: float
    progress_s: float
    zone: str


@dataclass
class CheckpointStore:
    """Monotonic store of committed application progress."""

    records: list[CheckpointRecord] = field(default_factory=list)
    #: Optional audit hook, called as ``observer(record, previous)``
    #: after every successful commit (``previous`` is the committed
    #: progress the store held before this record).
    observer: Callable[[CheckpointRecord, float], None] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def committed_progress_s(self) -> float:
        """Progress guaranteed to survive any termination (0 if none)."""
        if not self.records:
            return 0.0
        return self.records[-1].progress_s

    @property
    def num_checkpoints(self) -> int:
        return len(self.records)

    def commit(self, time: float, progress_s: float, zone: str) -> CheckpointRecord:
        """Commit a checkpoint; progress must never regress.

        A checkpoint of *equal* progress is accepted (e.g. an hourly
        Periodic checkpoint during a stretch with no new computation)
        but recorded, since it still cost ``t_c``.
        """
        if progress_s < 0:
            raise CheckpointError(f"negative progress {progress_s}")
        if progress_s + 1e-9 < self.committed_progress_s:
            raise CheckpointError(
                f"progress regression: {progress_s} < {self.committed_progress_s}"
            )
        if self.records and time < self.records[-1].time:
            raise CheckpointError(
                f"commit time regression: {time} < {self.records[-1].time}"
            )
        previous = self.committed_progress_s
        record = CheckpointRecord(time=time, progress_s=progress_s, zone=zone)
        self.records.append(record)
        if self.observer is not None:
            self.observer(record, previous)
        return record

    def progress_at(self, time: float) -> float:
        """Committed progress as of ``time`` (0 before the first commit)."""
        progress = 0.0
        for record in self.records:
            if record.time > time:
                break
            progress = record.progress_s
        return progress
