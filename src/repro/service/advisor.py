"""The online half: an asyncio advisor over precomputed surfaces.

:class:`AdvisorService` answers "what should I do" queries — a
:class:`JobSpec` in, an :class:`Advice` out — from the surfaces a
:class:`~repro.service.surface.SurfaceStore` holds:

* **Warm path.**  A surface covering the job's exact (C, D, t_c)
  shape is selected from an LRU of hot surfaces (loaded from disk at
  most once while hot) and answered by a table lookup — microseconds,
  no simulation.
* **Interpolated path.**  When no surface matches exactly but two
  surfaces of the same shape bracket the job's deadline — bracket
  pairs from one ``build_family`` deadline ladder are preferred over
  mixed-axes pairs — the nearer surface's recommendation is returned
  with its expected cost linearly interpolated between the brackets'
  best-guaranteed costs (an estimate, flagged as such via
  ``source="interpolated"``, and non-increasing in the deadline
  whenever the rung optima are).
* **Cold path.**  Otherwise the missing surface is built on the spot
  through the cached vector engine (off the event loop) and saved to
  the store — the next identical query is warm.

Identical in-flight queries are **coalesced**: concurrent ``advise``
calls for the same (store, job) key share one computation, so a burst
of duplicate queries costs one lookup (or one cold build), not N.
:func:`serve_lines` wraps the service in a JSON-lines request loop —
the benchmarking front end behind ``repro-spotsim serve``.
"""

from __future__ import annotations

import asyncio
import json
from collections import OrderedDict
from dataclasses import dataclass
from typing import IO, Iterable, Iterator

from repro.experiments.cache import content_key
from repro.service.surface import (
    PolicySurface,
    SurfaceBuilder,
    SurfaceCell,
    SurfaceSpec,
    SurfaceStore,
)


@dataclass(frozen=True)
class JobSpec:
    """One advisory query: the paper's experiment triple plus intent.

    ``budget`` (optional) caps the acceptable expected cost;
    ``window`` names the volatility regime to plan against (the
    calibrated "low"/"high" evaluation windows).
    """

    compute_s: float
    deadline_s: float
    ckpt_cost_s: float
    budget: float | None = None
    window: str = "low"

    def __post_init__(self) -> None:
        if self.compute_s <= 0:
            raise ValueError(f"compute time must be positive, got {self.compute_s}")
        if self.deadline_s < self.compute_s:
            raise ValueError(
                f"deadline ({self.deadline_s}) must be >= compute time "
                f"({self.compute_s})"
            )
        if self.ckpt_cost_s <= 0:
            raise ValueError("checkpoint cost must be > 0")

    @classmethod
    def from_payload(cls, payload: dict) -> "JobSpec":
        budget = payload.get("budget")
        return cls(
            compute_s=float(payload["compute_s"]),
            deadline_s=float(payload["deadline_s"]),
            ckpt_cost_s=float(payload["ckpt_cost_s"]),
            budget=None if budget is None else float(budget),
            window=str(payload.get("window", "low")),
        )


@dataclass(frozen=True)
class Advice:
    """The recommended provisioning plan plus its predicted outcome."""

    policy: str
    bid: float
    zones: int
    expected_cost: float
    worst_cost: float
    miss_risk: float
    mean_makespan_s: float
    #: "surface" (exact precomputed match), "interpolated" (estimate
    #: between bracketing surfaces) or "cold" (built on demand).
    source: str
    surface_key: str
    #: False when a budget was given and even the cheapest guaranteed
    #: cell exceeds it — the advice is then the cheapest plan, not a
    #: compliant one.
    within_budget: bool = True

    def to_payload(self) -> dict:
        return {
            "policy": self.policy,
            "bid": self.bid,
            "zones": self.zones,
            "expected_cost": self.expected_cost,
            "worst_cost": self.worst_cost,
            "miss_risk": self.miss_risk,
            "mean_makespan_s": self.mean_makespan_s,
            "source": self.source,
            "surface_key": self.surface_key,
            "within_budget": self.within_budget,
        }


@dataclass
class ServiceStats:
    """Counters of one advisor (the CLI prints :meth:`line` to stderr)."""

    queries: int = 0
    #: Queries that joined an identical in-flight computation.
    coalesced: int = 0
    #: Warm answers served from the hot-surface LRU.
    hot_hits: int = 0
    #: Surfaces loaded from disk into the LRU.
    disk_loads: int = 0
    #: Queries answered by interpolating between bracketing surfaces.
    interpolated: int = 0
    #: Queries that forced an on-demand surface build.
    cold_builds: int = 0

    def line(self) -> str:
        return (
            f"advisor: queries={self.queries} coalesced={self.coalesced} "
            f"hot_hits={self.hot_hits} disk_loads={self.disk_loads} "
            f"interpolated={self.interpolated} cold_builds={self.cold_builds}"
        )


def _advice_from_cell(
    cell: SurfaceCell,
    surface: PolicySurface,
    source: str,
    budget: float | None,
    expected_cost: float | None = None,
    within_budget: bool = True,
) -> Advice:
    cost = cell.expected_cost if expected_cost is None else expected_cost
    if budget is not None and cost > budget:
        within_budget = False
    return Advice(
        policy=cell.policy,
        bid=cell.bid,
        zones=cell.zones,
        expected_cost=cost,
        worst_cost=cell.worst_cost,
        miss_risk=cell.miss_risk,
        mean_makespan_s=cell.mean_makespan_s,
        source=source,
        surface_key=surface.key,
        within_budget=within_budget,
    )


class AdvisorService:
    """Serves :class:`JobSpec` queries from a surface store.

    Parameters
    ----------
    store:
        The artifact directory; its catalog is indexed once at
        construction and refreshed whenever the cold path adds a
        surface.
    max_hot:
        Surfaces kept deserialized in the LRU.  Evicted surfaces cost
        one disk load to re-heat; artifacts are small, so the default
        comfortably covers a figure's worth of job shapes.
    builder:
        The cold path's builder.  Defaults to a
        :class:`SurfaceBuilder` over ``store`` (vector engine, the
        store's run-cache directory); inject a configured one to
        change the cold grid's scale or parallelism.
    cold_spec:
        Template for cold-path specs: the grid axes
        (policies/bids/zone_counts), ``num_experiments`` and ``seed``
        a cold build uses for an uncovered job shape.
    """

    def __init__(
        self,
        store: SurfaceStore,
        max_hot: int = 8,
        builder: SurfaceBuilder | None = None,
        cold_spec: SurfaceSpec | None = None,
    ) -> None:
        self.store = store
        self.max_hot = max_hot
        self.builder = builder if builder is not None else SurfaceBuilder(store=store)
        self._cold_template = cold_spec
        self._catalog: list[SurfaceSpec] = store.catalog()
        self._hot: OrderedDict[str, PolicySurface] = OrderedDict()
        self._inflight: dict[str, asyncio.Task] = {}
        self.stats = ServiceStats()

    # -- surface selection -------------------------------------------------

    def _matching_spec(self, job: JobSpec) -> SurfaceSpec | None:
        for spec in self._catalog:
            if spec.window == job.window and spec.covers(
                job.compute_s, job.deadline_s, job.ckpt_cost_s
            ):
                return spec
        return None

    @staticmethod
    def _grid_axes(spec: SurfaceSpec) -> tuple:
        """The spec's non-shape axes — the signature every surface of
        one ``build_family`` ladder shares."""
        return (
            spec.policies, spec.bids, spec.zone_counts,
            spec.num_experiments, spec.seed,
        )

    def _bracketing_specs(
        self, job: JobSpec
    ) -> tuple[SurfaceSpec, SurfaceSpec] | None:
        """Two same-shape surfaces whose deadlines straddle the job's.

        Bracket pairs drawn from one surface *family* — identical grid
        axes, i.e. what a ``build_family`` deadline ladder shares — are
        preferred over mixed pairs: within a family every recommended
        cell has a twin on the far surface (interpolation is always
        well-defined) and ladders are deadline-dense, so the gap is
        small.  Among family pairs the narrowest deadline gap wins;
        the plain nearest pair is the mixed-axes fallback.
        """
        candidates = [
            spec
            for spec in self._catalog
            if spec.window == job.window
            and spec.covers(job.compute_s, spec.deadline_s, job.ckpt_cost_s)
        ]
        below = [s for s in candidates if s.deadline_s <= job.deadline_s]
        above = [s for s in candidates if s.deadline_s >= job.deadline_s]
        if not below or not above:
            return None
        best: tuple[float, SurfaceSpec, SurfaceSpec] | None = None
        for axes in dict.fromkeys(self._grid_axes(s) for s in below):
            fam_below = [s for s in below if self._grid_axes(s) == axes]
            fam_above = [s for s in above if self._grid_axes(s) == axes]
            if not fam_above:
                continue
            lo = max(fam_below, key=lambda s: s.deadline_s)
            hi = min(fam_above, key=lambda s: s.deadline_s)
            if lo.deadline_s == hi.deadline_s:
                continue
            gap = hi.deadline_s - lo.deadline_s
            if best is None or gap < best[0]:
                best = (gap, lo, hi)
        if best is not None:
            return best[1], best[2]
        lo = max(below, key=lambda s: s.deadline_s)
        hi = min(above, key=lambda s: s.deadline_s)
        if lo.deadline_s == hi.deadline_s:
            return None
        return lo, hi

    def _heat(self, key: str) -> PolicySurface | None:
        """The surface for ``key``, via the LRU (None if not hot)."""
        surface = self._hot.get(key)
        if surface is not None:
            self._hot.move_to_end(key)
            self.stats.hot_hits += 1
        return surface

    def _admit(self, surface: PolicySurface) -> None:
        self._hot[surface.key] = surface
        self._hot.move_to_end(surface.key)
        while len(self._hot) > self.max_hot:
            self._hot.popitem(last=False)

    async def _load(self, key: str) -> PolicySurface:
        surface = self._heat(key)
        if surface is None:
            surface = await asyncio.to_thread(self.store.load, key)
            self.stats.disk_loads += 1
            self._admit(surface)
        return surface

    # -- the query path ----------------------------------------------------

    def _cold_spec(self, job: JobSpec) -> SurfaceSpec:
        base = dict(
            window=job.window,
            compute_s=job.compute_s,
            deadline_s=job.deadline_s,
            ckpt_cost_s=job.ckpt_cost_s,
            restart_cost_s=job.ckpt_cost_s,
        )
        if self._cold_template is not None:
            t = self._cold_template
            base.update(
                policies=t.policies,
                bids=t.bids,
                zone_counts=t.zone_counts,
                num_experiments=t.num_experiments,
                seed=t.seed,
            )
        return SurfaceSpec(**base)

    def _cold_build(self, job: JobSpec) -> PolicySurface:
        surface = self.builder.build(self._cold_spec(job))
        self._catalog.append(surface.spec)
        return surface

    async def _compute(self, job: JobSpec) -> Advice:
        # one cooperative yield before resolving, so a batch of
        # identical queries submitted together coalesces onto this
        # computation instead of serializing through the warm path
        await asyncio.sleep(0)
        spec = self._matching_spec(job)
        if spec is not None:
            surface = await self._load(spec.key())
            best = surface.best(job.budget)
            if best is not None:
                return _advice_from_cell(best, surface, "surface", job.budget)
            best = surface.best()
            if best is not None:
                return _advice_from_cell(
                    best, surface, "surface", job.budget, within_budget=False
                )
            raise LookupError(
                "surface has no deadline-guaranteed cell to recommend"
            )
        brackets = self._bracketing_specs(job)
        if brackets is not None:
            lo, hi = brackets
            near, far = (
                (lo, hi)
                if job.deadline_s - lo.deadline_s <= hi.deadline_s - job.deadline_s
                else (hi, lo)
            )
            near_surface = await self._load(near.key())
            far_surface = await self._load(far.key())
            best = near_surface.best(job.budget) or near_surface.best()
            if best is not None:
                cost = best.expected_cost
                far_best = far_surface.best(job.budget) or far_surface.best()
                if far_best is not None:
                    # Linear in deadline between the two surfaces' own
                    # best-guaranteed costs (not one cell's twin): the
                    # estimate is then continuous across the bracket and
                    # non-increasing whenever the rung optima are — the
                    # slack monotonicity the ladder property test pins.
                    frac = (job.deadline_s - lo.deadline_s) / (
                        hi.deadline_s - lo.deadline_s
                    )
                    lo_cost, hi_cost = (
                        (cost, far_best.expected_cost)
                        if near is lo
                        else (far_best.expected_cost, cost)
                    )
                    cost = lo_cost + frac * (hi_cost - lo_cost)
                self.stats.interpolated += 1
                return _advice_from_cell(
                    best,
                    near_surface,
                    "interpolated",
                    job.budget,
                    expected_cost=cost,
                )
        self.stats.cold_builds += 1
        surface = await asyncio.to_thread(self._cold_build, job)
        self._admit(surface)
        best = surface.best(job.budget)
        if best is not None:
            return _advice_from_cell(best, surface, "cold", job.budget)
        best = surface.best()
        if best is None:
            raise LookupError("cold build produced no guaranteed cell")
        return _advice_from_cell(
            best, surface, "cold", job.budget, within_budget=False
        )

    async def advise(self, job: JobSpec) -> Advice:
        """Answer one query, coalescing with identical in-flight ones.

        The coalescing key is the job's content address, so "identical"
        means value-identical, not object-identical.  The shared task
        is shielded from any single caller's cancellation — the other
        waiters (and the write-through of a cold build) still complete.
        """
        self.stats.queries += 1
        key = content_key({"advise": job})
        task = self._inflight.get(key)
        if task is not None:
            self.stats.coalesced += 1
            return await asyncio.shield(task)
        task = asyncio.ensure_future(self._compute(job))
        self._inflight[key] = task
        task.add_done_callback(lambda _t: self._inflight.pop(key, None))
        return await asyncio.shield(task)


def _batched(lines: Iterable[str], size: int) -> Iterator[list[str]]:
    batch: list[str] = []
    for line in lines:
        if not line.strip():
            continue
        batch.append(line)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch


async def serve_lines(
    service: AdvisorService,
    lines: Iterable[str],
    out: IO[str],
    batch_size: int = 64,
) -> int:
    """Answer JSON-lines queries from ``lines``; responses to ``out``.

    Each input line is a :meth:`JobSpec.from_payload` object, optionally
    carrying an ``"id"`` echoed back in the response.  Lines are
    gathered ``batch_size`` at a time, so identical queries within a
    batch coalesce; responses come back in input order, one JSON object
    per line (``{"error": ...}`` for a malformed or unanswerable
    query).  Returns the number of queries answered successfully.
    """
    answered = 0
    for chunk in _batched(lines, batch_size):
        jobs: list[tuple[object, JobSpec | None, str | None]] = []
        for line in chunk:
            try:
                payload = json.loads(line)
                jobs.append((payload.get("id"), JobSpec.from_payload(payload), None))
            except (ValueError, KeyError, TypeError) as exc:
                jobs.append((None, None, f"bad query: {exc}"))
        results = await asyncio.gather(
            *(
                service.advise(job)
                for _, job, err in jobs
                if err is None and job is not None
            ),
            return_exceptions=True,
        )
        answers = iter(results)
        for qid, job, err in jobs:
            if err is not None:
                out.write(json.dumps({"id": qid, "error": err}) + "\n")
                continue
            result = next(answers)
            if isinstance(result, BaseException):
                out.write(
                    json.dumps({"id": qid, "error": str(result)}) + "\n"
                )
                continue
            payload = result.to_payload()
            if qid is not None:
                payload = {"id": qid, **payload}
            out.write(json.dumps(payload) + "\n")
            answered += 1
        out.flush()
    return answered
