"""Precomputed policy surfaces: the advisor's offline half.

A *surface* is one job shape — an :class:`ExperimentConfig` against
one volatility window — evaluated over the full
(policy x bid x zone-count) decision grid, each cell aggregated over
the window's overlapping start offsets exactly as the paper's figures
aggregate them.  Heavy lifting happens once, offline, through
:meth:`ExperimentRunner.run_grid` under ``engine_mode="vector"`` with
the content-addressed run cache as the persistence layer (a rebuild
over a warm cache is hit-only); the result is a small, versioned JSON
artifact the online advisor can load and answer from in microseconds.

The artifact is content-addressed the same way engine runs are: the
surface key is the SHA-256 of the spec's canonical form
(:func:`repro.experiments.cache.content_key`), so two builds of the
same spec land on the same file and a changed input is a different
artifact, never a silent overwrite.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.app.workload import ExperimentConfig
from repro.experiments.cache import content_key
from repro.experiments.metrics import RunRecord
from repro.experiments.runner import (
    POLICY_FACTORIES,
    RETAINED_POLICIES,
    ExperimentRunner,
)
from repro.traces.library import DEFAULT_SEED

#: Bumped whenever the artifact layout changes; a loader seeing an
#: unknown version refuses the file instead of misreading it.
SURFACE_SCHEMA_VERSION = 1

#: Artifact magic, so ``surface ls`` can skip unrelated JSON files.
SURFACE_FORMAT = "repro-surface"

#: Default decision grid of a built surface: the retained policies
#: over the Figure-4 bids, single-zone and fully redundant.
DEFAULT_POLICIES: tuple[str, ...] = RETAINED_POLICIES
DEFAULT_BIDS: tuple[float, ...] = (0.27, 0.81, 2.40)
DEFAULT_ZONE_COUNTS: tuple[int, ...] = (1, 3)


@dataclass(frozen=True)
class SurfaceSpec:
    """Everything a surface build depends on (and is keyed by).

    ``zone_counts`` follows the figure conventions: ``1`` is the
    merged single-zone cell (every zone run independently, records
    pooled), ``n > 1`` the redundant cell over the first ``n`` zones.
    """

    window: str
    compute_s: float
    deadline_s: float
    ckpt_cost_s: float
    restart_cost_s: float
    policies: tuple[str, ...] = DEFAULT_POLICIES
    bids: tuple[float, ...] = DEFAULT_BIDS
    zone_counts: tuple[int, ...] = DEFAULT_ZONE_COUNTS
    num_experiments: int = 20
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        for label in self.policies:
            if label not in POLICY_FACTORIES:
                raise ValueError(f"unknown policy label {label!r}")
        if not self.bids or not self.zone_counts or not self.policies:
            raise ValueError("spec needs at least one policy, bid and zone count")

    @classmethod
    def for_config(cls, window: str, config: ExperimentConfig, **kwargs) -> "SurfaceSpec":
        return cls(
            window=window,
            compute_s=config.compute_s,
            deadline_s=config.deadline_s,
            ckpt_cost_s=config.ckpt_cost_s,
            restart_cost_s=config.restart_cost_s,
            **kwargs,
        )

    def config(self) -> ExperimentConfig:
        return ExperimentConfig(
            compute_s=self.compute_s,
            deadline_s=self.deadline_s,
            ckpt_cost_s=self.ckpt_cost_s,
            restart_cost_s=self.restart_cost_s,
        )

    def key(self) -> str:
        """Content address of the surface this spec describes."""
        return content_key({"schema": SURFACE_SCHEMA_VERSION, "spec": self})

    def covers(self, compute_s: float, deadline_s: float, ckpt_cost_s: float) -> bool:
        """Exact job-shape match (the warm path's admission test)."""
        return (
            np.isclose(self.compute_s, compute_s, rtol=1e-9, atol=1e-6)
            and np.isclose(self.deadline_s, deadline_s, rtol=1e-9, atol=1e-6)
            and np.isclose(self.ckpt_cost_s, ckpt_cost_s, rtol=1e-9, atol=1e-6)
        )


@dataclass(frozen=True)
class SurfaceCell:
    """One decision-grid point, aggregated over the start axis.

    ``expected_cost`` is the mean per-instance cost over every run of
    the cell (all starts, and all zones for merged single-zone cells)
    — the same pooling the paper's boxplots use; ``miss_risk`` is the
    fraction of runs that finished past the deadline (Algorithm 1
    guarantees 0, so a nonzero value marks a cell the advisor must
    never recommend).
    """

    policy: str
    zones: int
    bid: float
    expected_cost: float
    worst_cost: float
    miss_risk: float
    mean_makespan_s: float
    num_runs: int

    @classmethod
    def from_records(
        cls, policy: str, zones: int, bid: float, records: Sequence[RunRecord]
    ) -> "SurfaceCell":
        costs = np.array([r.cost for r in records], dtype=np.float64)
        makespans = np.array(
            [r.result.makespan_s for r in records], dtype=np.float64
        )
        misses = sum(1 for r in records if not r.met_deadline)
        return cls(
            policy=policy,
            zones=zones,
            bid=float(bid),
            expected_cost=float(costs.mean()),
            worst_cost=float(costs.max()),
            miss_risk=misses / len(records),
            mean_makespan_s=float(makespans.mean()),
            num_runs=len(records),
        )


@dataclass(frozen=True)
class PolicySurface:
    """One spec's full decision grid plus build provenance."""

    spec: SurfaceSpec
    cells: tuple[SurfaceCell, ...]
    build_seconds: float
    built_unix: float

    @property
    def key(self) -> str:
        return self.spec.key()

    def best(self, budget: float | None = None) -> SurfaceCell | None:
        """Cheapest deadline-guaranteed cell, within ``budget`` if given.

        Candidates with any recorded deadline miss are excluded — the
        advisor only ever recommends configurations whose guarantee
        held across the whole start axis.  ``None`` means no cell fits
        the budget (callers fall back to :meth:`best` without one).
        Ties break toward the earlier grid cell (policy order, then
        zone count, then bid), which is deterministic because the cell
        tuple is laid out in spec order.
        """
        candidates = [c for c in self.cells if c.miss_risk == 0.0]
        if budget is not None:
            candidates = [c for c in candidates if c.expected_cost <= budget]
        if not candidates:
            return None
        return min(candidates, key=lambda c: c.expected_cost)

    def cell(self, policy: str, zones: int, bid: float) -> SurfaceCell | None:
        for c in self.cells:
            if c.policy == policy and c.zones == zones and np.isclose(c.bid, bid):
                return c
        return None

    # -- serialization -----------------------------------------------------

    def to_payload(self) -> dict:
        return {
            "format": SURFACE_FORMAT,
            "version": SURFACE_SCHEMA_VERSION,
            "key": self.key,
            "spec": {
                "window": self.spec.window,
                "compute_s": self.spec.compute_s,
                "deadline_s": self.spec.deadline_s,
                "ckpt_cost_s": self.spec.ckpt_cost_s,
                "restart_cost_s": self.spec.restart_cost_s,
                "policies": list(self.spec.policies),
                "bids": list(self.spec.bids),
                "zone_counts": list(self.spec.zone_counts),
                "num_experiments": self.spec.num_experiments,
                "seed": self.spec.seed,
            },
            "build_seconds": self.build_seconds,
            "built_unix": self.built_unix,
            "cells": [
                {
                    "policy": c.policy,
                    "zones": c.zones,
                    "bid": c.bid,
                    "expected_cost": c.expected_cost,
                    "worst_cost": c.worst_cost,
                    "miss_risk": c.miss_risk,
                    "mean_makespan_s": c.mean_makespan_s,
                    "num_runs": c.num_runs,
                }
                for c in self.cells
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "PolicySurface":
        if payload.get("format") != SURFACE_FORMAT:
            raise ValueError("not a repro-surface artifact")
        if payload.get("version") != SURFACE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported surface version {payload.get('version')!r} "
                f"(this build reads {SURFACE_SCHEMA_VERSION})"
            )
        s = payload["spec"]
        spec = SurfaceSpec(
            window=s["window"],
            compute_s=float(s["compute_s"]),
            deadline_s=float(s["deadline_s"]),
            ckpt_cost_s=float(s["ckpt_cost_s"]),
            restart_cost_s=float(s["restart_cost_s"]),
            policies=tuple(s["policies"]),
            bids=tuple(float(b) for b in s["bids"]),
            zone_counts=tuple(int(z) for z in s["zone_counts"]),
            num_experiments=int(s["num_experiments"]),
            seed=int(s["seed"]),
        )
        cells = tuple(
            SurfaceCell(
                policy=c["policy"],
                zones=int(c["zones"]),
                bid=float(c["bid"]),
                expected_cost=float(c["expected_cost"]),
                worst_cost=float(c["worst_cost"]),
                miss_risk=float(c["miss_risk"]),
                mean_makespan_s=float(c["mean_makespan_s"]),
                num_runs=int(c["num_runs"]),
            )
            for c in payload["cells"]
        )
        return cls(
            spec=spec,
            cells=cells,
            build_seconds=float(payload["build_seconds"]),
            built_unix=float(payload["built_unix"]),
        )


class SurfaceStore:
    """Directory of surface artifacts (plus the builders' run cache).

    Artifacts are ``surface-<key>.json``; writes are atomic (temp file
    + ``os.replace``) so a concurrent reader only ever sees complete
    surfaces — the same discipline the run cache's disk layer uses.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, key: str) -> Path:
        return self.root / f"surface-{key}.json"

    @property
    def run_cache_dir(self) -> str:
        """Where this store's builders persist engine runs."""
        return str(self.root / "runcache")

    def save(self, surface: PolicySurface) -> Path:
        path = self.path(surface.key)
        payload = json.dumps(surface.to_payload(), indent=2, sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload + "\n")
            os.replace(tmp, path)
        except BaseException:
            os.unlink(tmp)
            raise
        return path

    def load(self, key: str) -> PolicySurface:
        return PolicySurface.from_payload(json.loads(self.path(key).read_text()))

    def surfaces(self) -> Iterator[PolicySurface]:
        """Every readable artifact in the store (unreadable or foreign
        JSON files are skipped, not fatal)."""
        for path in sorted(self.root.glob("surface-*.json")):
            try:
                yield PolicySurface.from_payload(json.loads(path.read_text()))
            except (OSError, ValueError, KeyError, json.JSONDecodeError):
                continue

    def catalog(self) -> list[SurfaceSpec]:
        """The specs on disk, in artifact order (the advisor's index)."""
        return [s.spec for s in self.surfaces()]


@dataclass
class SurfaceBuilder:
    """Builds surfaces through the vector engine + run cache.

    ``cache_dir`` defaults to the store's own ``runcache/`` directory,
    so every engine run a build performs is persisted content-addressed
    alongside the artifacts: rebuilding a surface (or building an
    overlapping one) is served from cache, and the advisor's cold path
    reuses the same store.
    """

    store: SurfaceStore | None = None
    cache_dir: str | None = None
    workers: int = 1
    engine_mode: str = "vector"

    def __post_init__(self) -> None:
        self._vector_stats = None

    def _cache_dir(self) -> str | None:
        if self.cache_dir is not None:
            return self.cache_dir
        return self.store.run_cache_dir if self.store is not None else None

    def drain_vector_stats(self):
        """Vector-engine batch statistics accumulated by builds.

        Returns the merged
        :class:`~repro.core.vector_engine.BatchStats` of every
        :meth:`build` since the last drain (or ``None`` when nothing
        ran through a vector batch), so operators can see when a
        surface build silently fell back to per-run scalar simulation.
        """
        stats = self._vector_stats
        self._vector_stats = None
        return stats

    def _absorb_stats(self, stats) -> None:
        if stats is None:
            return
        if self._vector_stats is None:
            self._vector_stats = stats
        else:
            self._vector_stats.merge(stats)

    def build(self, spec: SurfaceSpec) -> PolicySurface:
        """Evaluate the whole decision grid and persist the artifact.

        One runner serves every cell, so oracle statistics and the
        fused (bid x start) vector batches amortize across the grid;
        ``run_grid`` keeps each cell's records bit-identical to
        per-bid scalar runs, which is what makes a surface lookup
        interchangeable with a fresh sweep.
        """
        t0 = time.perf_counter()
        config = spec.config()
        cells: list[SurfaceCell] = []
        with ExperimentRunner(
            spec.window,
            num_experiments=spec.num_experiments,
            seed=spec.seed,
            workers=self.workers,
            engine_mode=self.engine_mode,
            cache_dir=self._cache_dir(),
        ) as runner:
            for policy in spec.policies:
                for n in spec.zone_counts:
                    per_bid = runner.run_grid(
                        policy,
                        config,
                        spec.bids,
                        redundant=n > 1,
                        num_zones=n,
                    )
                    for bid in spec.bids:
                        cells.append(
                            SurfaceCell.from_records(
                                policy, n, bid, per_bid[float(bid)]
                            )
                        )
            # Capture before the runner context closes (closing shuts
            # down the executor whose workers carry the merged stats).
            self._absorb_stats(runner.drain_vector_stats())
        surface = PolicySurface(
            spec=spec,
            cells=tuple(cells),
            build_seconds=time.perf_counter() - t0,
            built_unix=time.time(),
        )
        if self.store is not None:
            self.store.save(surface)
        return surface

    def build_family(self, specs: Sequence[SurfaceSpec]) -> list[PolicySurface]:
        """Evaluate a whole shape ladder in one cube pass per cell.

        The specs must share every grid axis — window, policies, bids,
        zone counts, experiment count and seed — and differ only in job
        shape (compute, deadline, checkpoint/restart costs): a deadline
        ladder is the canonical family.  Each (policy, zone-set) cell
        then advances the *entire* ladder through
        :meth:`ExperimentRunner.run_cube` in a single lockstep pass —
        shape rows share the zone-dynamics column work — and one
        versioned artifact is emitted per spec, each bit-identical to
        what a standalone :meth:`build` of that spec would produce.
        ``build_seconds`` on every artifact records the shared family
        pass (the whole point: it is paid once, not once per deadline).
        """
        specs = list(specs)
        if not specs:
            raise ValueError("at least one spec is required")
        head = specs[0]
        for spec in specs[1:]:
            for axis in ("window", "policies", "bids", "zone_counts",
                         "num_experiments", "seed"):
                if getattr(spec, axis) != getattr(head, axis):
                    raise ValueError(
                        f"family specs must share {axis}: "
                        f"{getattr(spec, axis)!r} != {getattr(head, axis)!r}"
                    )
        t0 = time.perf_counter()
        configs = [spec.config() for spec in specs]
        cells: list[list[SurfaceCell]] = [[] for _ in specs]
        with ExperimentRunner(
            head.window,
            num_experiments=head.num_experiments,
            seed=head.seed,
            workers=self.workers,
            engine_mode=self.engine_mode,
            cache_dir=self._cache_dir(),
        ) as runner:
            for policy in head.policies:
                for n in head.zone_counts:
                    per_shape = runner.run_cube(
                        policy,
                        configs,
                        head.bids,
                        redundant=n > 1,
                        num_zones=n,
                    )
                    for k, per_bid in enumerate(per_shape):
                        for bid in head.bids:
                            cells[k].append(
                                SurfaceCell.from_records(
                                    policy, n, bid, per_bid[float(bid)]
                                )
                            )
            # Capture before the runner context closes (closing shuts
            # down the executor whose workers carry the merged stats).
            self._absorb_stats(runner.drain_vector_stats())
        build_seconds = time.perf_counter() - t0
        built_unix = time.time()
        surfaces = [
            PolicySurface(
                spec=spec,
                cells=tuple(cells[k]),
                build_seconds=build_seconds,
                built_unix=built_unix,
            )
            for k, spec in enumerate(specs)
        ]
        if self.store is not None:
            for surface in surfaces:
                self.store.save(surface)
        return surfaces
