"""Online bid-advisor service layer.

The paper's end product is a *decision*: given an HPC job — compute
time C, deadline D, checkpoint cost t_c — pick the bid, zone count and
checkpoint policy that minimize expected cost while keeping the
deadline guarantee.  The figure harness can answer that only by
re-running whole sweeps; this package serves the same answer online:

* :mod:`repro.service.surface` precomputes **policy surfaces** —
  expected cost, deadline-miss risk and makespan over a
  (policy x bid x zone-count x start) grid — through the vector
  engine with the content-addressed run cache as its persistence
  layer, and serializes them as versioned on-disk artifacts;
* :mod:`repro.service.advisor` loads surfaces and answers
  ``advise(C, D, t_c, budget)`` queries in microseconds, with request
  coalescing of identical in-flight queries, an LRU of hot surfaces,
  and a graceful cold path that computes a missing surface through
  the cached vector engine.

CLI front ends: ``repro-spotsim surface build|ls``, ``advise`` and
``serve`` (a JSON-lines loop for benchmarking).
"""

from repro.service.advisor import (
    Advice,
    AdvisorService,
    JobSpec,
    ServiceStats,
    serve_lines,
)
from repro.service.surface import (
    PolicySurface,
    SurfaceBuilder,
    SurfaceCell,
    SurfaceSpec,
    SurfaceStore,
)

__all__ = [
    "Advice",
    "AdvisorService",
    "JobSpec",
    "PolicySurface",
    "ServiceStats",
    "SurfaceBuilder",
    "SurfaceCell",
    "SurfaceSpec",
    "SurfaceStore",
    "serve_lines",
]
