"""repro — reproduction of Marathe et al., "Exploiting Redundancy for
Cost-Effective, Time-Constrained Execution of HPC Applications on
Amazon EC2" (HPDC 2014).

The package simulates time-constrained HPC runs on the EC2 spot
market: synthetic (or user-supplied) spot-price traces drive an
implementation of the paper's Algorithm 1 with its four checkpoint
policies, redundant execution across availability zones, the Adaptive
policy selector, and the Large-bid and on-demand baselines.

Quickstart::

    from repro import (
        MarkovDalyPolicy, PriceOracle, SpotSimulator,
        evaluation_window, paper_experiment, QueueDelayModel,
    )
    import numpy as np

    trace, eval_start = evaluation_window("high")
    sim = SpotSimulator(oracle=PriceOracle(trace),
                        queue_model=QueueDelayModel(),
                        rng=np.random.default_rng(1))
    result = sim.run(
        config=paper_experiment(slack_fraction=0.5),
        policy=MarkovDalyPolicy(),
        bid=0.81,
        zones=trace.zone_names,
        start_time=eval_start,
    )
    print(result.total_cost, result.met_deadline)
"""

from repro.app import ApplicationRun, CheckpointStore, ExperimentConfig, paper_experiment
from repro.core import (
    AdaptiveController,
    CheckpointPolicy,
    LargeBidPolicy,
    MarkovDalyPolicy,
    PeriodicPolicy,
    RisingEdgePolicy,
    RunResult,
    SpotSimulator,
    ThresholdPolicy,
    naive_policy,
    on_demand_cost,
    run_on_demand,
)
from repro.market import (
    ON_DEMAND_PRICE,
    PriceOracle,
    QueueDelayModel,
    ZONES,
    bid_grid,
)
from repro.traces import (
    SpotPriceTrace,
    ZoneTrace,
    canonical_dataset,
    evaluation_window,
    read_trace,
    write_trace,
)

__version__ = "1.0.0"

__all__ = [
    "ApplicationRun",
    "CheckpointStore",
    "ExperimentConfig",
    "paper_experiment",
    "AdaptiveController",
    "CheckpointPolicy",
    "LargeBidPolicy",
    "MarkovDalyPolicy",
    "PeriodicPolicy",
    "RisingEdgePolicy",
    "RunResult",
    "SpotSimulator",
    "ThresholdPolicy",
    "naive_policy",
    "on_demand_cost",
    "run_on_demand",
    "ON_DEMAND_PRICE",
    "PriceOracle",
    "QueueDelayModel",
    "ZONES",
    "bid_grid",
    "SpotPriceTrace",
    "ZoneTrace",
    "canonical_dataset",
    "evaluation_window",
    "read_trace",
    "write_trace",
    "__version__",
]
