"""Unit tests for the queuing-delay model (Section 5 statistics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.market.constants import (
    QUEUE_DELAY_MAX_S,
    QUEUE_DELAY_MEAN_S,
    QUEUE_DELAY_MIN_S,
)
from repro.market.queuing import FixedQueueDelay, QueueDelayModel


class TestQueueDelayModel:
    def test_samples_within_observed_range(self):
        model = QueueDelayModel()
        samples = model.sample_many(np.random.default_rng(0), 10_000)
        assert samples.min() >= QUEUE_DELAY_MIN_S
        assert samples.max() <= QUEUE_DELAY_MAX_S

    def test_mean_matches_paper(self):
        model = QueueDelayModel()
        assert abs(model.mean() - QUEUE_DELAY_MEAN_S) < 15.0

    def test_single_sample_in_range(self):
        model = QueueDelayModel()
        rng = np.random.default_rng(1)
        for _ in range(100):
            d = model.sample(rng)
            assert QUEUE_DELAY_MIN_S <= d <= QUEUE_DELAY_MAX_S

    def test_right_skewed(self):
        model = QueueDelayModel()
        samples = model.sample_many(np.random.default_rng(0), 50_000)
        assert np.median(samples) < samples.mean()

    def test_paper_campaign_extremes_reachable(self):
        # two months of twice-daily probes occasionally hit both clips
        model = QueueDelayModel()
        samples = model.sample_many(np.random.default_rng(3), 120)
        assert samples.min() == QUEUE_DELAY_MIN_S  # the 143 s best case
        assert samples.max() > 500.0

    def test_validation(self):
        with pytest.raises(ValueError):
            QueueDelayModel(median_s=0.0)
        with pytest.raises(ValueError):
            QueueDelayModel(sigma=-1.0)
        with pytest.raises(ValueError):
            QueueDelayModel(min_s=900.0, max_s=800.0)

    def test_sample_many_zero(self):
        model = QueueDelayModel()
        assert model.sample_many(np.random.default_rng(0), 0).size == 0

    def test_sample_many_negative_rejected(self):
        with pytest.raises(ValueError):
            QueueDelayModel().sample_many(np.random.default_rng(0), -1)


class TestFixedQueueDelay:
    def test_constant(self):
        model = FixedQueueDelay(123.0)
        rng = np.random.default_rng(0)
        assert model.sample(rng) == 123.0
        assert list(model.sample_many(rng, 3)) == [123.0] * 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FixedQueueDelay(-1.0)
