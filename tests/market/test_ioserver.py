"""Unit tests for the I/O-server cost accounting."""

from __future__ import annotations

import pytest

from repro.core.engine import RunResult
from repro.market.ioserver import DEFAULT_IO_SERVER_PRICE, io_server_cost


def result(start=0.0, finish=20 * 3600.0, switch=None, spot=6.0, od=0.0):
    return RunResult(
        policy_name="p", bid=0.81, zones=("za",), start_time=start,
        finish_time=finish, deadline=finish + 3600.0, completed_on="spot",
        spot_cost=spot, ondemand_cost=od, num_checkpoints=3,
        num_restarts=1, num_provider_terminations=0,
        ondemand_switch_time=switch,
    )


class TestIOServerCost:
    def test_runs_for_whole_spot_phase(self):
        bill = io_server_cost(result())
        assert bill.hours == 20
        assert bill.cost == pytest.approx(20 * DEFAULT_IO_SERVER_PRICE)

    def test_stops_at_ondemand_switch(self):
        bill = io_server_cost(result(switch=10 * 3600.0, od=24.0))
        assert bill.hours == 10

    def test_partial_hours_round_up(self):
        bill = io_server_cost(result(finish=3601.0))
        assert bill.hours == 2

    def test_fraction_of_allocation(self):
        # 20h x $0.24 = $4.80 against 32 nodes x $6 = $192: 2.5%
        bill = io_server_cost(result(spot=6.0), num_nodes=32)
        assert bill.fraction_of_total == pytest.approx(4.80 / 192.0)

    def test_paper_claim_fraction_is_small(self):
        """The §5 justification: the I/O server is a small fraction of
        a tightly coupled run at scale."""
        bill = io_server_cost(result(spot=6.0), num_nodes=32)
        assert bill.fraction_of_total < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            io_server_cost(result(), num_nodes=0)
        with pytest.raises(ValueError):
            io_server_cost(result(), price_per_hour=0.0)
