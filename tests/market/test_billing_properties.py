"""Property-based tests for billing invariants (hypothesis)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.market.billing import BillingMeter

rates = st.floats(min_value=0.01, max_value=25.0, allow_nan=False)

#: A billing life: open, some rolls, then one of the three closings.
operations = st.lists(rates, min_size=0, max_size=30)


@given(first_rate=rates, roll_rates=operations)
def test_total_cost_is_sum_of_committed_hours(first_rate, roll_rates):
    m = BillingMeter()
    m.open_hour(0.0, first_rate)
    for rate in roll_rates:
        m.roll_hour(rate)
    expected = sum([first_rate, *roll_rates][: len(roll_rates)])
    assert m.total_cost == pytest.approx(expected)
    assert m.hours_charged == len(roll_rates)


@given(first_rate=rates, roll_rates=operations)
def test_provider_termination_forfeits_exactly_open_hour(first_rate, roll_rates):
    m = BillingMeter()
    m.open_hour(0.0, first_rate)
    for rate in roll_rates:
        m.roll_hour(rate)
    before = m.total_cost
    open_rate = m.rate
    forfeited = m.provider_terminate()
    assert forfeited == open_rate
    assert m.total_cost == before  # nothing extra charged
    assert not m.is_open


@given(first_rate=rates, roll_rates=operations,
       used=st.floats(min_value=1.0, max_value=3600.0))
def test_user_close_charges_open_rate(first_rate, roll_rates, used):
    m = BillingMeter()
    m.open_hour(0.0, first_rate)
    for rate in roll_rates:
        m.roll_hour(rate)
    before = m.total_cost
    open_rate = m.rate
    charged = m.user_close(m.hour_start + used)
    assert charged == pytest.approx(open_rate)
    assert m.total_cost == pytest.approx(before + open_rate)


@given(first_rate=rates, roll_rates=operations)
def test_hour_boundaries_are_contiguous(first_rate, roll_rates):
    m = BillingMeter()
    m.open_hour(0.0, first_rate)
    for rate in roll_rates:
        m.roll_hour(rate)
    starts = [c.hour_start for c in m.charges]
    assert starts == [3600.0 * i for i in range(len(starts))]
