"""Unit tests for the cached price oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.market.spot_market import PriceOracle
from repro.traces.model import SpotPriceTrace

from tests.conftest import multi_step_trace


def oracle_with(prices_a, prices_b=None):
    arrays = {"za": prices_a}
    if prices_b is not None:
        arrays["zb"] = prices_b
    trace = SpotPriceTrace.from_arrays(0.0, arrays)
    return PriceOracle(trace, history_s=1200)


class TestRawLookups:
    def test_price(self):
        o = oracle_with([0.3, 0.4, 0.5])
        assert o.price("za", 0.0) == 0.3
        assert o.price("za", 600.0) == 0.5

    def test_previous_price_clamped_at_start(self):
        o = oracle_with([0.3, 0.4])
        assert o.previous_price("za", 0.0) == 0.3
        assert o.previous_price("za", 300.0) == 0.3

    def test_rising_edge(self):
        o = oracle_with([0.3, 0.4, 0.4, 0.2])
        assert not o.is_rising_edge("za", 0.0)
        assert o.is_rising_edge("za", 300.0)
        assert not o.is_rising_edge("za", 600.0)
        assert not o.is_rising_edge("za", 900.0)

    def test_history_is_trailing_window(self):
        o = oracle_with([0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8])
        hist = o.history("za", 6 * 300.0)  # history_s=1200 -> 4 samples
        assert list(hist) == [0.3, 0.4, 0.5, 0.6]

    def test_history_clamped_and_min_two(self):
        o = oracle_with([0.1, 0.2, 0.3])
        hist = o.history("za", 0.0)
        assert len(hist) >= 2

    def test_min_price_over_history(self):
        o = oracle_with([0.9, 0.1, 0.5, 0.6, 0.7, 0.8])
        assert o.min_price("za", 5 * 300.0) == 0.1

    def test_history_matrix_columns_per_zone(self):
        o = oracle_with([0.1, 0.2, 0.3, 0.4, 0.5],
                        [1.1, 1.2, 1.3, 1.4, 1.5])
        m = o.history_matrix(4 * 300.0)
        assert m.shape == (4, 2)
        assert m[0, 1] == 1.1


class TestDerivedStatistics:
    def _cycling_oracle(self):
        # alternating cheap/expensive: well-defined stationary behaviour
        prices = np.tile([0.3, 0.3, 0.3, 1.0], 50)
        return oracle_with(list(prices))

    def test_expected_uptime_positive_when_up(self):
        o = self._cycling_oracle()
        t = 120 * 300.0  # price 0.3 at t (index 120 % 4 == 0)
        up = o.expected_uptime("za", t, 0.5)
        assert up > 0

    def test_expected_uptime_zero_when_down(self):
        o = self._cycling_oracle()
        t = 123 * 300.0  # index 123 -> price 1.0 > bid
        assert o.expected_uptime("za", t, 0.5) == 0.0

    def test_expected_uptime_monotone_in_bid(self):
        o = self._cycling_oracle()
        t = 120 * 300.0
        low = o.expected_uptime("za", t, 0.5)
        high = o.expected_uptime("za", t, 1.5)
        assert high >= low

    def test_combined_uptime_is_sum(self):
        o = oracle_with(list(np.tile([0.3, 1.0], 100)),
                        list(np.tile([0.3, 1.0], 100)))
        t = 100 * 300.0
        single = o.expected_uptime("za", t, 0.5)
        combined = o.combined_expected_uptime(["za", "zb"], t, 0.5)
        assert combined == pytest.approx(
            single + o.expected_uptime("zb", t, 0.5)
        )

    def test_combined_requires_zones(self):
        o = self._cycling_oracle()
        with pytest.raises(ValueError):
            o.combined_expected_uptime([], 300.0, 0.5)

    def test_availability_matches_history_fraction(self):
        o = self._cycling_oracle()
        t = 120 * 300.0
        av = o.availability("za", t, 0.5)
        assert av == pytest.approx(0.75, abs=0.1)

    def test_expected_price_between_bounds(self):
        o = self._cycling_oracle()
        t = 120 * 300.0
        price = o.expected_price_given_up("za", t, 0.5)
        assert 0.25 <= price <= 0.5

    def test_expected_price_fallback_when_never_up(self):
        o = self._cycling_oracle()
        t = 120 * 300.0
        assert o.expected_price_given_up("za", t, 0.05) == pytest.approx(0.05)

    def test_mean_up_run(self):
        o = self._cycling_oracle()
        t = 120 * 300.0
        # runs of three cheap samples: 900 s
        assert o.mean_up_run("za", t, 0.5) == pytest.approx(900.0, rel=0.35)

    def test_markov_model_cached_per_hour_bucket(self):
        o = self._cycling_oracle()
        m1 = o.markov_model("za", 40 * 300.0)
        m2 = o.markov_model("za", 41 * 300.0)  # same hour bucket
        assert m1 is m2
        m3 = o.markov_model("za", 52 * 300.0)  # next bucket
        # The cycling trace repeats, so the next bucket's window has the
        # identical transition multiset and the rolling fitter dedups
        # the chain — same object by design.  A separate cache entry
        # exists per bucket, and a reference (non-incremental) oracle
        # refits a distinct object with the same values.
        assert len({k for k in o._markov_cache if k[0] == "za"}) == 2
        assert np.array_equal(m3.trans, m1.trans)
        ref = PriceOracle(o.trace, history_s=o.history_s, incremental=False)
        r1 = ref.markov_model("za", 40 * 300.0)
        r3 = ref.markov_model("za", 52 * 300.0)
        assert r3 is not r1
        assert np.array_equal(r1.trans, m1.trans)


class TestIncrementalOracleDifferential:
    """The incremental refit path must be invisible in the statistics."""

    def test_matches_full_refit_oracle_on_evaluation_window(self):
        from repro.traces.library import evaluation_window

        trace, eval_start = evaluation_window("low")
        inc = PriceOracle(trace)  # incremental=True (default)
        ref = PriceOracle(trace, incremental=False)
        for hours in (0, 5, 26, 49):
            t = eval_start + hours * 3600.0
            for zone in trace.zone_names:
                for got, want in zip(
                    inc.zone_stats(zone, t), ref.zone_stats(zone, t)
                ):
                    assert np.array_equal(got, want)

    def test_cheap_and_uptime_views_match_zone_stats(self):
        from repro.market.constants import bid_grid
        from repro.traces.library import evaluation_window

        trace, eval_start = evaluation_window("low")
        o = PriceOracle(trace)
        t = eval_start + 26 * 3600.0
        for zone in trace.zone_names:
            a, r, u = o.zone_stats(zone, t)
            a2, r2 = o.zone_availability_rate(zone, t)
            assert np.array_equal(a, a2)
            assert np.array_equal(r, r2)
            assert np.array_equal(u, o.zone_uptimes(zone, t, bid_grid()))
            # arbitrary subset: same solves, same values
            subset = bid_grid()[3:7]
            assert np.array_equal(u[3:7], o.zone_uptimes(zone, t, subset))

    def test_unbucketed_reference_refits_per_decision(self):
        prices = [0.3, 0.3, 0.5, 0.3] * 40
        trace = SpotPriceTrace.from_arrays(0.0, {"za": prices})
        o = PriceOracle(trace, history_s=1200, bucket_s=None,
                        incremental=False)
        t = 40 * 300.0
        assert o.stats_bucket(t) == t  # the query time itself, not an hour
        m1 = o.markov_model("za", t)
        m2 = o.markov_model("za", t + 300.0)
        assert m1 is not m2  # every decision gets its own fit
        # the incremental oracle dedups the identical cycling windows
        # into one chain object — same values either way
        inc = PriceOracle(trace, history_s=1200, bucket_s=None)
        assert np.array_equal(inc.markov_model("za", t).trans, m1.trans)

    def test_warm_seed_does_not_change_answers(self):
        from repro.traces.library import evaluation_window

        trace, eval_start = evaluation_window("low")
        donor = PriceOracle(trace)
        warm = donor.prewarm_stationary(eval_start, eval_start + 48 * 3600.0)
        assert warm  # something to seed
        seeded = PriceOracle(trace)
        seeded.seed_stationary(warm)
        cold = PriceOracle(trace)
        t = eval_start + 26 * 3600.0
        for zone in trace.zone_names:
            for got, want in zip(
                seeded.zone_stats(zone, t), cold.zone_stats(zone, t)
            ):
                assert np.array_equal(got, want)

    def test_prewarm_empty_for_unbucketed_oracle(self):
        prices = [0.3, 0.3, 0.5, 0.3] * 40
        trace = SpotPriceTrace.from_arrays(0.0, {"za": prices})
        o = PriceOracle(trace, history_s=1200, bucket_s=None)
        assert o.prewarm_stationary(0.0, 300.0 * 40) == {}
