"""Unit tests for the cached price oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.market.spot_market import PriceOracle
from repro.traces.model import SpotPriceTrace

from tests.conftest import multi_step_trace


def oracle_with(prices_a, prices_b=None):
    arrays = {"za": prices_a}
    if prices_b is not None:
        arrays["zb"] = prices_b
    trace = SpotPriceTrace.from_arrays(0.0, arrays)
    return PriceOracle(trace, history_s=1200)


class TestRawLookups:
    def test_price(self):
        o = oracle_with([0.3, 0.4, 0.5])
        assert o.price("za", 0.0) == 0.3
        assert o.price("za", 600.0) == 0.5

    def test_previous_price_clamped_at_start(self):
        o = oracle_with([0.3, 0.4])
        assert o.previous_price("za", 0.0) == 0.3
        assert o.previous_price("za", 300.0) == 0.3

    def test_rising_edge(self):
        o = oracle_with([0.3, 0.4, 0.4, 0.2])
        assert not o.is_rising_edge("za", 0.0)
        assert o.is_rising_edge("za", 300.0)
        assert not o.is_rising_edge("za", 600.0)
        assert not o.is_rising_edge("za", 900.0)

    def test_history_is_trailing_window(self):
        o = oracle_with([0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8])
        hist = o.history("za", 6 * 300.0)  # history_s=1200 -> 4 samples
        assert list(hist) == [0.3, 0.4, 0.5, 0.6]

    def test_history_clamped_and_min_two(self):
        o = oracle_with([0.1, 0.2, 0.3])
        hist = o.history("za", 0.0)
        assert len(hist) >= 2

    def test_min_price_over_history(self):
        o = oracle_with([0.9, 0.1, 0.5, 0.6, 0.7, 0.8])
        assert o.min_price("za", 5 * 300.0) == 0.1

    def test_history_matrix_columns_per_zone(self):
        o = oracle_with([0.1, 0.2, 0.3, 0.4, 0.5],
                        [1.1, 1.2, 1.3, 1.4, 1.5])
        m = o.history_matrix(4 * 300.0)
        assert m.shape == (4, 2)
        assert m[0, 1] == 1.1


class TestDerivedStatistics:
    def _cycling_oracle(self):
        # alternating cheap/expensive: well-defined stationary behaviour
        prices = np.tile([0.3, 0.3, 0.3, 1.0], 50)
        return oracle_with(list(prices))

    def test_expected_uptime_positive_when_up(self):
        o = self._cycling_oracle()
        t = 120 * 300.0  # price 0.3 at t (index 120 % 4 == 0)
        up = o.expected_uptime("za", t, 0.5)
        assert up > 0

    def test_expected_uptime_zero_when_down(self):
        o = self._cycling_oracle()
        t = 123 * 300.0  # index 123 -> price 1.0 > bid
        assert o.expected_uptime("za", t, 0.5) == 0.0

    def test_expected_uptime_monotone_in_bid(self):
        o = self._cycling_oracle()
        t = 120 * 300.0
        low = o.expected_uptime("za", t, 0.5)
        high = o.expected_uptime("za", t, 1.5)
        assert high >= low

    def test_combined_uptime_is_sum(self):
        o = oracle_with(list(np.tile([0.3, 1.0], 100)),
                        list(np.tile([0.3, 1.0], 100)))
        t = 100 * 300.0
        single = o.expected_uptime("za", t, 0.5)
        combined = o.combined_expected_uptime(["za", "zb"], t, 0.5)
        assert combined == pytest.approx(
            single + o.expected_uptime("zb", t, 0.5)
        )

    def test_combined_requires_zones(self):
        o = self._cycling_oracle()
        with pytest.raises(ValueError):
            o.combined_expected_uptime([], 300.0, 0.5)

    def test_availability_matches_history_fraction(self):
        o = self._cycling_oracle()
        t = 120 * 300.0
        av = o.availability("za", t, 0.5)
        assert av == pytest.approx(0.75, abs=0.1)

    def test_expected_price_between_bounds(self):
        o = self._cycling_oracle()
        t = 120 * 300.0
        price = o.expected_price_given_up("za", t, 0.5)
        assert 0.25 <= price <= 0.5

    def test_expected_price_fallback_when_never_up(self):
        o = self._cycling_oracle()
        t = 120 * 300.0
        assert o.expected_price_given_up("za", t, 0.05) == pytest.approx(0.05)

    def test_mean_up_run(self):
        o = self._cycling_oracle()
        t = 120 * 300.0
        # runs of three cheap samples: 900 s
        assert o.mean_up_run("za", t, 0.5) == pytest.approx(900.0, rel=0.35)

    def test_markov_model_cached_per_hour_bucket(self):
        o = self._cycling_oracle()
        m1 = o.markov_model("za", 40 * 300.0)
        m2 = o.markov_model("za", 41 * 300.0)  # same hour bucket
        assert m1 is m2
        m3 = o.markov_model("za", 52 * 300.0)  # next bucket
        assert m3 is not m1
