"""Unit tests for the hour-boundary billing rules (Section 2.1)."""

from __future__ import annotations

import pytest

from repro.market.billing import BillingError, BillingMeter, ondemand_cost


class TestOpenRoll:
    def test_open_then_roll_charges_previous_hour(self):
        m = BillingMeter()
        m.open_hour(0.0, 0.30)
        m.roll_hour(0.50)
        assert m.total_cost == pytest.approx(0.30)
        assert m.rate == 0.50
        assert m.hour_start == 3600.0

    def test_charged_at_hour_start_rate_not_bid(self):
        # rate is the spot price at hour start, whatever happens later
        m = BillingMeter()
        m.open_hour(0.0, 0.27)
        m.roll_hour(2.00)
        m.roll_hour(0.27)
        assert [c.rate for c in m.charges] == [0.27, 2.00]

    def test_double_open_rejected(self):
        m = BillingMeter()
        m.open_hour(0.0, 0.3)
        with pytest.raises(BillingError):
            m.open_hour(10.0, 0.3)

    def test_roll_without_open_rejected(self):
        with pytest.raises(BillingError):
            BillingMeter().roll_hour(0.3)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(BillingError):
            BillingMeter().open_hour(0.0, 0.0)

    def test_seconds_left(self):
        m = BillingMeter()
        m.open_hour(100.0, 0.3)
        assert m.seconds_left_in_hour(100.0) == 3600.0
        assert m.seconds_left_in_hour(3400.0) == 300.0
        assert m.seconds_left_in_hour(5000.0) == 0.0


class TestProviderTermination:
    def test_partial_hour_free(self):
        m = BillingMeter()
        m.open_hour(0.0, 0.30)
        forfeited = m.provider_terminate()
        assert forfeited == 0.30
        assert m.total_cost == 0.0
        assert not m.is_open

    def test_completed_hours_still_charged(self):
        m = BillingMeter()
        m.open_hour(0.0, 0.30)
        m.roll_hour(0.40)
        m.provider_terminate()
        assert m.total_cost == pytest.approx(0.30)

    def test_terminate_without_open_rejected(self):
        with pytest.raises(BillingError):
            BillingMeter().provider_terminate()


class TestUserClose:
    def test_user_close_charges_full_hour(self):
        m = BillingMeter()
        m.open_hour(0.0, 0.30)
        charged = m.user_close(1800.0)
        assert charged == pytest.approx(0.30)
        assert m.total_cost == pytest.approx(0.30)
        assert m.charges[-1].used_s == 1800.0

    def test_close_at_boundary_is_free(self):
        # terminating at the instant a fresh hour opened consumes nothing
        m = BillingMeter()
        m.open_hour(0.0, 0.30)
        m.roll_hour(0.40)
        charged = m.user_close(3600.0)
        assert charged == 0.0
        assert m.total_cost == pytest.approx(0.30)

    def test_close_reason_recorded(self):
        m = BillingMeter()
        m.open_hour(0.0, 0.30)
        m.user_close(100.0, reason="complete")
        assert m.charges[-1].reason == "complete"

    def test_close_without_open_rejected(self):
        with pytest.raises(BillingError):
            BillingMeter().user_close(0.0)


class TestOnDemandCost:
    def test_whole_hours(self):
        assert ondemand_cost(7200.0, 2.40) == pytest.approx(4.80)

    def test_partial_hour_rounds_up(self):
        assert ondemand_cost(3601.0, 2.40) == pytest.approx(4.80)

    def test_zero_seconds_free(self):
        assert ondemand_cost(0.0, 2.40) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ondemand_cost(-1.0, 2.40)

    def test_paper_reference_cost(self):
        # 20 hours of CC2 on-demand = the $48 grey line of Figures 4-6
        assert ondemand_cost(20 * 3600.0, 2.40) == pytest.approx(48.00)


class TestUserCloseAccounting:
    """Regression tests for the fabricated-hour-start bug: ``user_close``
    used to record ``hour_start=now - used`` and silently clamp an
    overrunning hour, inventing an hour start the meter never opened."""

    def test_close_records_true_hour_start(self):
        m = BillingMeter()
        m.open_hour(500.0, 0.30)
        m.user_close(2000.0)
        assert m.charges[-1].hour_start == 500.0
        assert m.charges[-1].used_s == 1500.0

    def test_close_at_exact_boundary_records_full_hour(self):
        m = BillingMeter()
        m.open_hour(0.0, 0.30)
        m.user_close(3600.0)
        assert m.charges[-1].hour_start == 0.0
        assert m.charges[-1].used_s == 3600.0

    def test_overrun_raises_instead_of_clamping(self):
        # the driver missed a roll_hour: closing 100 s past the
        # boundary must fail loudly, not fabricate hour_start=100
        m = BillingMeter()
        m.open_hour(0.0, 0.30)
        with pytest.raises(BillingError, match="overran"):
            m.user_close(3700.0)

    def test_close_before_open_raises(self):
        m = BillingMeter()
        m.open_hour(1000.0, 0.30)
        with pytest.raises(BillingError, match="predates"):
            m.user_close(500.0)


class TestConservationLedger:
    """Every opened hour ends in exactly one bucket: charged, free
    sub-second close, or provider forfeiture (the audit layer's
    billing-conservation identity)."""

    def test_hours_opened_counts_rolls(self):
        m = BillingMeter()
        m.open_hour(0.0, 0.30)
        m.roll_hour(0.40)
        m.roll_hour(0.50)
        m.user_close(7500.0)
        assert m.hours_opened == 3
        assert m.hours_charged == 3
        assert m.num_forfeited == 0
        assert m.num_free_closes == 0

    def test_forfeiture_tracked(self):
        m = BillingMeter()
        m.open_hour(0.0, 0.30)
        m.roll_hour(0.40)
        m.provider_terminate()
        assert m.hours_opened == 2
        assert m.hours_charged == 1
        assert m.num_forfeited == 1
        assert m.forfeited_total == pytest.approx(0.40)
        assert m.hours_charged + m.num_forfeited + m.num_free_closes == m.hours_opened

    def test_free_close_tracked(self):
        m = BillingMeter()
        m.open_hour(0.0, 0.30)
        m.roll_hour(0.40)
        m.user_close(3600.0)
        assert m.num_free_closes == 1
        assert m.hours_charged + m.num_forfeited + m.num_free_closes == m.hours_opened
