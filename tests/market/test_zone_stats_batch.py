"""Batch ``zone_stats`` vs the scalar oracle statistics.

The batch API must be a pure vectorization: for every bid on the paper
grid, over both volatility windows, the arrays it returns agree with
the scalar ``availability`` / ``expected_price_given_up`` /
``expected_uptime`` calls to 1e-12.  A separate check recomputes the
stationary distribution with a fresh eigendecomposition, so the cumsum
fast path is validated against linear algebra done outside the cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.market.constants import bid_grid
from repro.market.spot_market import PriceOracle
from repro.traces.library import evaluation_window

WINDOWS = ("low", "high")

#: Probe times: spread through the evaluation span so several distinct
#: hour buckets (and therefore several cached models) are exercised.
PROBE_HOURS = (0.0, 5.5, 26.0, 121.0)


@pytest.fixture(scope="module", params=WINDOWS)
def window_oracle(request):
    trace, eval_start = evaluation_window(request.param)
    return PriceOracle(trace), eval_start, trace.zone_names


def probe_times(eval_start: float):
    return [eval_start + h * 3600.0 for h in PROBE_HOURS]


class TestBatchScalarEquivalence:
    def test_availability_matches_scalar(self, window_oracle):
        oracle, eval_start, zones = window_oracle
        bids = bid_grid()
        for t in probe_times(eval_start):
            for zone in zones:
                avail, _, _ = oracle.zone_stats(zone, t, bids)
                scalar = [oracle.availability(zone, t, b) for b in bids]
                np.testing.assert_allclose(avail, scalar, rtol=0, atol=1e-12)

    def test_price_given_up_matches_scalar(self, window_oracle):
        oracle, eval_start, zones = window_oracle
        bids = bid_grid()
        for t in probe_times(eval_start):
            for zone in zones:
                _, rate, _ = oracle.zone_stats(zone, t, bids)
                scalar = [
                    oracle.expected_price_given_up(zone, t, b) for b in bids
                ]
                np.testing.assert_allclose(rate, scalar, rtol=0, atol=1e-12)

    def test_uptime_matches_scalar(self, window_oracle):
        oracle, eval_start, zones = window_oracle
        bids = bid_grid()
        for t in probe_times(eval_start):
            for zone in zones:
                _, _, uptime = oracle.zone_stats(zone, t, bids)
                scalar = [oracle.expected_uptime(zone, t, b) for b in bids]
                np.testing.assert_allclose(uptime, scalar, rtol=0, atol=1e-12)

    def test_combined_uptimes_sum_per_zone(self, window_oracle):
        oracle, eval_start, zones = window_oracle
        bids = bid_grid()[:5]
        t = probe_times(eval_start)[1]
        combined = oracle.combined_uptimes(zones, t, bids)
        expected = [
            sum(oracle.expected_uptime(z, t, b) for z in zones) for b in bids
        ]
        np.testing.assert_allclose(combined, expected, rtol=0, atol=1e-12)


class TestAgainstFreshEig:
    """Guard the cached-cumsum path with out-of-band linear algebra."""

    def test_availability_equals_fresh_stationary_mass(self, window_oracle):
        oracle, eval_start, zones = window_oracle
        bids = bid_grid()
        t = probe_times(eval_start)[0]
        for zone in zones:
            model = oracle.markov_model(zone, t)
            evals, evecs = np.linalg.eig(model.trans.T)
            i = int(np.argmin(np.abs(evals - 1.0)))
            pi = np.abs(np.real(evecs[:, i]))
            pi = pi / pi.sum()
            avail, _, _ = oracle.zone_stats(zone, t, bids)
            for j, bid in enumerate(bids):
                mass = float(pi[model.levels <= bid].sum())
                assert avail[j] == pytest.approx(mass, abs=1e-12)


class TestCaching:
    def test_refit_memoized_within_bucket(self):
        from repro.traces.model import SpotPriceTrace

        # The bucket model is anchored at the bucket boundary (price
        # 0.3 here), so an uptime query at the mid-hour level 0.5 must
        # re-condition the chain on the new level — and must do so
        # exactly once per (bucket, level).
        prices = [0.3] * 4 + [0.5] * 4 + [0.3] * 16
        trace = SpotPriceTrace.from_arrays(0.0, {"za": np.array(prices)})
        oracle = PriceOracle(trace, history_s=1200)

        oracle.expected_uptime("za", 900.0, 0.81)  # price 0.3 = anchor level
        assert len(oracle._refit_cache) == 0
        first = oracle.expected_uptime("za", 1500.0, 0.81)  # price 0.5
        assert len(oracle._refit_cache) == 1
        again = oracle.expected_uptime("za", 2000.0, 0.81)  # still 0.5
        assert len(oracle._refit_cache) == 1  # memoized, not refit
        assert again == first

    def test_zone_stats_arrays_cached_and_immutable(self, window_oracle):
        oracle, eval_start, zones = window_oracle
        zone = zones[0]
        t = eval_start + 7.0 * 3600.0
        bids = bid_grid()
        first = oracle.zone_stats(zone, t, bids)
        again = oracle.zone_stats(zone, t + 60.0, bids)
        for a, b in zip(first, again):
            assert a is b  # same hour bucket -> one cached entry
            with pytest.raises(ValueError):
                a[0] = -1.0

    def test_default_bids_are_paper_grid(self, window_oracle):
        oracle, eval_start, zones = window_oracle
        t = eval_start
        explicit = oracle.zone_stats(zones[0], t, bid_grid())
        default = oracle.zone_stats(zones[0], t)
        for a, b in zip(explicit, default):
            np.testing.assert_array_equal(a, b)
