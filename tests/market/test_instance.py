"""Unit tests for the zone-instance state machine."""

from __future__ import annotations

import pytest

from repro.market.instance import (
    RUNNING_STATES,
    InstanceError,
    ZoneInstance,
    ZoneState,
)


def started_instance(
    queue_delay_s: float = 300.0,
    restart_cost_s: float = 300.0,
    from_progress_s: float = 0.0,
    price: float = 0.30,
) -> ZoneInstance:
    inst = ZoneInstance(zone="za")
    inst.mark_waiting()
    inst.start(
        now=0.0,
        spot_price=price,
        queue_delay_s=queue_delay_s,
        restart_cost_s=restart_cost_s,
        from_progress_s=from_progress_s,
    )
    return inst


class TestTransitions:
    def test_initial_state_down(self):
        assert ZoneInstance(zone="za").state is ZoneState.DOWN

    def test_waiting_then_start(self):
        inst = started_instance()
        assert inst.state is ZoneState.QUEUING
        assert inst.is_running
        assert inst.billing.is_open

    def test_start_requires_waiting(self):
        inst = ZoneInstance(zone="za")
        with pytest.raises(InstanceError):
            inst.start(0.0, 0.3, 300.0, 300.0, 0.0)

    def test_cannot_wait_while_running(self):
        inst = started_instance()
        with pytest.raises(InstanceError):
            inst.mark_waiting()

    def test_running_states_enumeration(self):
        assert ZoneState.COMPUTING in RUNNING_STATES
        assert ZoneState.WAITING not in RUNNING_STATES
        assert ZoneState.DOWN not in RUNNING_STATES


class TestAdvancePipeline:
    def test_queue_then_restart_then_compute(self):
        inst = started_instance(queue_delay_s=300.0, restart_cost_s=300.0)
        inst.advance(0.0, 300.0, 7200.0)
        assert inst.state is ZoneState.RESTARTING
        inst.advance(300.0, 300.0, 7200.0)
        assert inst.state is ZoneState.COMPUTING
        inst.advance(600.0, 300.0, 7200.0)
        assert inst.computed_s == pytest.approx(300.0)

    def test_fractional_phases_within_one_tick(self):
        inst = started_instance(queue_delay_s=100.0, restart_cost_s=50.0)
        inst.advance(0.0, 300.0, 7200.0)
        assert inst.state is ZoneState.COMPUTING
        assert inst.computed_s == pytest.approx(150.0)

    def test_zero_restart_cost_for_fresh_start(self):
        inst = started_instance(queue_delay_s=300.0, restart_cost_s=0.0)
        inst.advance(0.0, 300.0, 7200.0)
        assert inst.state is ZoneState.COMPUTING

    def test_completion_offset(self):
        inst = started_instance(queue_delay_s=0.0, restart_cost_s=0.0)
        # needs 250 s of compute; completes mid-tick
        _, completion = inst.advance(0.0, 300.0, 250.0)
        assert completion == pytest.approx(250.0)

    def test_local_progress_includes_base(self):
        inst = started_instance(queue_delay_s=0.0, restart_cost_s=0.0,
                                from_progress_s=1000.0)
        inst.advance(0.0, 300.0, 7200.0)
        assert inst.local_progress_s == pytest.approx(1300.0)

    def test_advance_while_down_noop(self):
        inst = ZoneInstance(zone="za")
        committed, completion = inst.advance(0.0, 300.0, 7200.0)
        assert committed == -1.0 and completion is None


class TestCheckpointing:
    def _computing(self):
        inst = started_instance(queue_delay_s=0.0, restart_cost_s=0.0)
        inst.advance(0.0, 600.0, 7200.0)
        return inst

    def test_checkpoint_snapshots_progress_at_start(self):
        inst = self._computing()
        inst.begin_checkpoint(600.0, 300.0)
        assert inst.state is ZoneState.CHECKPOINTING
        assert inst.pending_checkpoint_progress_s == pytest.approx(600.0)

    def test_checkpoint_commit_returns_snapshot(self):
        inst = self._computing()
        inst.begin_checkpoint(600.0, 300.0)
        committed, _ = inst.advance(600.0, 300.0, 7200.0)
        assert committed == pytest.approx(600.0)
        assert inst.state is ZoneState.COMPUTING

    def test_compute_resumes_after_commit_within_tick(self):
        inst = self._computing()
        inst.begin_checkpoint(600.0, 100.0)
        inst.advance(600.0, 300.0, 7200.0)
        # 100 s checkpointing + 200 s computing
        assert inst.computed_s == pytest.approx(800.0)

    def test_checkpoint_requires_computing(self):
        inst = started_instance()
        with pytest.raises(InstanceError):
            inst.begin_checkpoint(0.0, 300.0)

    def test_checkpoint_cost_positive(self):
        inst = self._computing()
        with pytest.raises(InstanceError):
            inst.begin_checkpoint(600.0, 0.0)

    def test_execution_time_resets_after_checkpoint(self):
        inst = self._computing()
        assert inst.execution_time_at_bid(600.0) == pytest.approx(600.0)
        inst.begin_checkpoint(600.0, 300.0)
        inst.advance(600.0, 300.0, 7200.0)
        # computing_since reset at checkpoint completion (t=900)
        assert inst.execution_time_at_bid(1000.0) == pytest.approx(100.0)


class TestTermination:
    def test_provider_terminate_loses_work_and_hour(self):
        inst = started_instance(queue_delay_s=0.0, restart_cost_s=0.0)
        inst.advance(0.0, 600.0, 7200.0)
        forfeited = inst.provider_terminate()
        assert forfeited == pytest.approx(0.30)
        assert inst.state is ZoneState.DOWN
        assert inst.local_progress_s == 0.0
        assert inst.billing.total_cost == 0.0
        assert inst.num_provider_terminations == 1

    def test_user_release_charges_hour(self):
        inst = started_instance(queue_delay_s=0.0, restart_cost_s=0.0)
        inst.advance(0.0, 600.0, 7200.0)
        charged = inst.user_release(600.0)
        assert charged == pytest.approx(0.30)
        assert inst.state is ZoneState.DOWN

    def test_terminate_not_running_rejected(self):
        inst = ZoneInstance(zone="za")
        with pytest.raises(InstanceError):
            inst.provider_terminate()
        with pytest.raises(InstanceError):
            inst.user_release(0.0)

    def test_negative_delays_rejected(self):
        inst = ZoneInstance(zone="za")
        inst.mark_waiting()
        with pytest.raises(InstanceError):
            inst.start(0.0, 0.3, -1.0, 300.0, 0.0)
