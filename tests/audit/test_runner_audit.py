"""Audit plumbing through ExperimentRunner and the process pool."""

from __future__ import annotations

import json

from repro.experiments.runner import ExperimentRunner

from tests.conftest import small_config


def _records(runner, config):
    return runner.run_single_zone(
        "markov-daly", config, 0.81, zones=runner.trace.zone_names[:1]
    )


class TestSerialAudit:
    def test_audit_does_not_change_results(self):
        config = small_config()
        plain = _records(ExperimentRunner("low", num_experiments=2), config)
        audited_runner = ExperimentRunner("low", num_experiments=2, audit=True)
        audited = _records(audited_runner, config)
        assert [r.result for r in audited] == [r.result for r in plain]

    def test_drain_reports_every_run(self):
        runner = ExperimentRunner("low", num_experiments=3, audit=True)
        _records(runner, small_config())
        report = runner.drain_audit()
        assert report.ok
        assert report.counters.runs == 3
        # drained: a second drain starts from zero
        assert runner.drain_audit().counters.runs == 0

    def test_audit_out_implies_audit_and_writes_jsonl(self, tmp_path):
        path = str(tmp_path / "audit.jsonl")
        runner = ExperimentRunner("low", num_experiments=2, audit_out=path)
        assert runner.audit
        _records(runner, small_config())
        runner.close()
        lines = [json.loads(line) for line in open(path)]
        assert lines[0]["kind"] == "run-start"
        assert sum(1 for d in lines if d["kind"] == "run-end") == 2

    def test_audit_off_by_default(self):
        runner = ExperimentRunner("low", num_experiments=2)
        assert runner.auditor is None
        _records(runner, small_config())
        assert runner.drain_audit().counters.runs == 0


class TestParallelAudit:
    def test_parallel_audited_records_match_serial(self):
        config = small_config()
        serial = _records(ExperimentRunner("low", num_experiments=4), config)
        with ExperimentRunner("low", num_experiments=4, workers=2,
                              audit=True) as runner:
            parallel = _records(runner, config)
            report = runner.drain_audit()
        assert parallel == serial
        assert report.ok
        assert report.counters.runs == 4

    def test_workers_merge_per_process_jsonl(self, tmp_path):
        """Per-worker sidecars exist while the pool lives and are merged
        into the main stream (and removed) when the runner closes, so
        repeated sweeps cannot accumulate orphaned ``.w<pid>`` files."""
        path = str(tmp_path / "sweep.jsonl")
        with ExperimentRunner("low", num_experiments=4, workers=2,
                              audit_out=path) as runner:
            _records(runner, small_config())
            report = runner.drain_audit()
            assert sorted(tmp_path.glob("sweep.jsonl.w*"))
        assert report.counters.runs == 4
        assert not list(tmp_path.glob("sweep.jsonl.w*"))
        run_ends = 0
        for line in (tmp_path / "sweep.jsonl").read_text().splitlines():
            event = json.loads(line)
            if event["kind"] == "run-end":
                run_ends += 1
        assert run_ends == 4

    def test_worker_init_truncates_recycled_sidecar(self, tmp_path):
        """A reused pid must never append to a stale sidecar: worker
        initialization removes any leftover ``.w<pid>`` file."""
        import os

        from repro.experiments import parallel

        path = str(tmp_path / "sweep.jsonl")
        stale = tmp_path / f"sweep.jsonl.w{os.getpid()}"
        stale.write_text('{"kind": "stale-event"}\n')
        saved_runner, saved_shm = parallel._WORKER_RUNNER, parallel._WORKER_SHM
        try:
            from repro.market.queuing import QueueDelayModel

            parallel._init_worker(
                "low", 2, 0, QueueDelayModel(), audit=True, audit_out=path,
            )
            assert not stale.exists()
        finally:
            parallel._WORKER_RUNNER = saved_runner
            parallel._WORKER_SHM = saved_shm

    def test_with_workers_propagates_audit_flags(self, tmp_path):
        path = str(tmp_path / "a.jsonl")
        runner = ExperimentRunner("low", num_experiments=2, audit_out=path)
        widened = runner.with_workers(2)
        assert widened.audit
        assert widened.audit_out == path
