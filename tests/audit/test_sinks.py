"""Unit tests for audit sinks and the event/counter value types."""

from __future__ import annotations

import json

from repro.audit import AuditEvent, JsonlSink, MemorySink, NullSink, RunCounters


def _event(run=1, seq=0, kind="transition", **data):
    return AuditEvent(run=run, seq=seq, time=100.0, kind=kind, zone="za",
                      detail="down->waiting", data=tuple(sorted(data.items())))


class TestAuditEvent:
    def test_to_dict_flattens_data(self):
        e = _event(bid=0.81, policy="periodic")
        d = e.to_dict()
        assert d["kind"] == "transition"
        assert d["bid"] == 0.81
        assert d["policy"] == "periodic"

    def test_to_json_round_trips(self):
        e = _event(rate=0.3)
        parsed = json.loads(e.to_json())
        assert parsed == e.to_dict()

    def test_frozen_and_hashable(self):
        assert _event() == _event()
        assert hash(_event()) == hash(_event())


class TestRunCounters:
    def test_add_accumulates_every_field(self):
        a = RunCounters(ticks=2, segments=1, ticks_skipped=10, commits=3,
                        decision_time_s=0.5, decisions=2, runs=1)
        b = RunCounters(ticks=3, segments=2, ticks_skipped=5, commits=1,
                        decision_time_s=0.25, decisions=1, runs=1)
        a.add(b)
        assert a.ticks == 5
        assert a.segments == 3
        assert a.ticks_skipped == 15
        assert a.commits == 4
        assert a.decisions == 3
        assert a.decision_time_s == 0.75
        assert a.runs == 2

    def test_mean_decision_latency(self):
        assert RunCounters().mean_decision_latency_s == 0.0
        c = RunCounters(decisions=4, decision_time_s=2.0)
        assert c.mean_decision_latency_s == 0.5


class TestMemorySink:
    def test_collects_and_slices_by_run(self):
        sink = MemorySink()
        sink.emit(_event(run=1))
        sink.emit(_event(run=2))
        sink.emit(_event(run=2, seq=1))
        assert len(sink.events) == 3
        assert len(sink.events_for(2)) == 2
        sink.clear()
        assert sink.events == []


class TestNullSink:
    def test_discards_everything(self):
        sink = NullSink()
        sink.emit(_event())
        sink.flush()
        sink.close()


class TestJsonlSink:
    def test_appends_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(_event(seq=0))
            sink.emit(_event(seq=1))
            sink.flush()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["seq"] == 1

    def test_lazy_open_creates_nothing_without_events(self, tmp_path):
        path = tmp_path / "never.jsonl"
        sink = JsonlSink(path)
        sink.flush()
        sink.close()
        assert not path.exists()

    def test_reopen_appends(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(_event(seq=0))
        with JsonlSink(path) as sink:
            sink.emit(_event(seq=1))
        assert len(path.read_text().splitlines()) == 2

    def test_caller_stream_not_closed(self):
        import io

        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink.emit(_event())
        sink.close()
        assert not buf.closed
        assert sink.path is None
