"""RunAuditor attached to real engine runs: lifecycle, counters, strict
mode, and fast-vs-tick stream identity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.audit import (
    InvariantError,
    MemorySink,
    RunAuditor,
    diff_event_streams,
)
from repro.core.engine import SpotSimulator
from repro.core.periodic import PeriodicPolicy
from repro.market.instance import ZoneState
from repro.market.queuing import FixedQueueDelay
from repro.market.spot_market import PriceOracle

from tests.conftest import multi_step_trace, small_config


def _audited_sim(trace, mode="fast", sink=None, strict=False, seed=0):
    auditor = RunAuditor(sink=sink, strict=strict)
    sim = SpotSimulator(
        oracle=PriceOracle(trace),
        queue_model=FixedQueueDelay(300.0),
        rng=np.random.default_rng(seed),
        engine_mode=mode,
        auditor=auditor,
    )
    return sim, auditor


def _volatile_trace():
    return multi_step_trace({
        "za": [(40, 0.25), (30, 1.50), (120, 0.25), (98, 2.00)],
        "zb": [(60, 0.40), (40, 0.20), (100, 3.00), (88, 0.30)],
    })


class TestAuditedRun:
    def test_clean_run_has_no_violations(self):
        sim, auditor = _audited_sim(_volatile_trace())
        sim.run(small_config(), PeriodicPolicy(), 0.81, ("za", "zb"), 0.0)
        report = auditor.drain()
        assert report.ok
        assert report.counters.runs == 1

    def test_counters_match_run_shape(self):
        sink = MemorySink()
        sim, auditor = _audited_sim(_volatile_trace(), sink=sink)
        result = sim.run(small_config(), PeriodicPolicy(), 0.81, ("za",), 0.0)
        report = auditor.drain()
        c = report.counters
        assert c.commits == result.num_checkpoints
        assert c.restores == result.num_restarts
        assert c.events == len(sink.events)
        assert c.transitions == sum(
            1 for e in sink.events if e.kind == "transition"
        )

    def test_fast_mode_skips_ticks_that_tick_mode_executes(self):
        reports = {}
        for mode in ("fast", "tick"):
            sim, auditor = _audited_sim(_volatile_trace(), mode=mode)
            sim.run(small_config(), PeriodicPolicy(), 0.81, ("za",), 0.0)
            reports[mode] = auditor.drain()
        fast, tick = reports["fast"].counters, reports["tick"].counters
        assert tick.ticks_skipped == 0
        assert fast.ticks_skipped > 0
        # the fundamental fast-path identity
        assert fast.ticks + fast.ticks_skipped == tick.ticks

    def test_event_streams_identical_between_modes(self):
        sinks = {}
        for mode in ("fast", "tick"):
            sink = MemorySink()
            sim, auditor = _audited_sim(_volatile_trace(), mode=mode, sink=sink)
            sim.run(small_config(), PeriodicPolicy(), 0.81, ("za", "zb"), 0.0)
            auditor.drain()
            sinks[mode] = sink
        assert diff_event_streams(sinks["fast"].events,
                                  sinks["tick"].events) == []

    def test_run_start_and_end_events_bracket_the_stream(self):
        sink = MemorySink()
        sim, auditor = _audited_sim(_volatile_trace(), sink=sink)
        sim.run(small_config(), PeriodicPolicy(), 0.81, ("za",), 0.0)
        assert sink.events[0].kind == "run-start"
        assert sink.events[-1].kind == "run-end"
        data = dict(sink.events[-1].data)
        assert data["violations"] == 0
        assert data["runs"] == 1

    def test_many_runs_aggregate_until_drained(self):
        sim, auditor = _audited_sim(_volatile_trace())
        for start in (0.0, 3600.0, 7200.0):
            sim.run(small_config(), PeriodicPolicy(), 0.81, ("za",), start)
        report = auditor.drain()
        assert report.counters.runs == 3
        # drained: the next report starts from zero
        assert auditor.drain().counters.runs == 0

    def test_result_is_returned_unchanged(self):
        sim, auditor = _audited_sim(_volatile_trace())
        audited = sim.run(small_config(), PeriodicPolicy(), 0.81, ("za",), 0.0)
        plain_sim = SpotSimulator(
            oracle=PriceOracle(_volatile_trace()),
            queue_model=FixedQueueDelay(300.0),
            rng=np.random.default_rng(0),
        )
        plain = plain_sim.run(small_config(), PeriodicPolicy(), 0.81, ("za",), 0.0)
        assert audited == plain


class TestStrictMode:
    def test_strict_raises_on_violation(self):
        from repro.app.checkpoint import CheckpointStore
        from repro.app.workload import ExperimentConfig
        from repro.market.instance import ZoneInstance
        from types import SimpleNamespace

        auditor = RunAuditor(strict=True)
        config = ExperimentConfig(compute_s=7200.0, deadline_s=10800.0,
                                  ckpt_cost_s=300.0, restart_cost_s=300.0)
        instances = {"za": ZoneInstance(zone="za")}
        auditor.begin_run(
            policy_name="periodic", bid=0.81, zones=("za",), start_time=0.0,
            deadline=10800.0, engine_mode="fast", config=config,
            store=CheckpointStore(), instances=instances,
        )
        # the instance observer now reports to the checker: corrupt it
        instances["za"].state = ZoneState.COMPUTING
        instances["za"]._transition(ZoneState.WAITING)
        result = SimpleNamespace(
            finish_time=3600.0, deadline=10800.0, completed_on="spot",
            spot_cost=0.0, spot_hours_charged=0, ondemand_cost=0.0,
            ondemand_switch_time=None, total_cost=0.0,
        )
        with pytest.raises(InvariantError, match="illegal edge"):
            auditor.finish_run(result)
        # the violation was recorded before the raise
        assert not auditor.drain().ok

    def test_non_strict_records_without_raising(self):
        sim, auditor = _audited_sim(_volatile_trace(), strict=True)
        # a clean run in strict mode must not raise
        sim.run(small_config(), PeriodicPolicy(), 0.81, ("za",), 0.0)
        assert auditor.drain().ok
