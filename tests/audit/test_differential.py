"""The differential harness: fast vs. tick replay with field-level diffs."""

from __future__ import annotations

from repro.audit import (
    AuditEvent,
    FieldDiff,
    diff_event_streams,
    diff_results,
    differential_run,
)
from repro.core.markov_daly import MarkovDalyPolicy
from repro.core.periodic import PeriodicPolicy
from repro.market.queuing import FixedQueueDelay

from tests.conftest import multi_step_trace, small_config


def _trace():
    return multi_step_trace({
        "za": [(50, 0.25), (20, 1.20), (130, 0.25), (88, 1.80)],
        "zb": [(70, 0.35), (50, 0.22), (80, 2.50), (88, 0.28)],
    })


class TestDiffEventStreams:
    def _ev(self, seq, kind="transition", time=100.0, detail="x"):
        return AuditEvent(run=1, seq=seq, time=time, kind=kind, detail=detail)

    def test_identical_streams_produce_no_diffs(self):
        a = [self._ev(0), self._ev(1, time=200.0)]
        b = [self._ev(0), self._ev(1, time=200.0)]
        assert diff_event_streams(a, b) == []

    def test_seq_and_run_are_ignored(self):
        a = [AuditEvent(run=1, seq=0, time=100.0, kind="waiting")]
        b = [AuditEvent(run=7, seq=3, time=100.0, kind="waiting")]
        assert diff_event_streams(a, b) == []

    def test_meta_events_are_excluded(self):
        a = [AuditEvent(run=1, seq=0, time=0.0, kind="run-end",
                        data=(("ticks", 5),))]
        b = [AuditEvent(run=1, seq=0, time=0.0, kind="run-end",
                        data=(("ticks", 99),))]
        assert diff_event_streams(a, b) == []

    def test_field_disagreement_is_located(self):
        a = [self._ev(0), self._ev(1, time=300.0)]
        b = [self._ev(0), self._ev(1, time=600.0)]
        diffs = diff_event_streams(a, b)
        assert diffs == [FieldDiff("event[1]", "time", 300.0, 600.0)]

    def test_length_mismatch_names_the_extra_event(self):
        a = [self._ev(0), self._ev(1, kind="hour-rolled")]
        b = [self._ev(0)]
        diffs = diff_event_streams(a, b)
        assert any(d.field == "length" for d in diffs)
        assert any(d.field == "only-in-fast" and d.fast == "hour-rolled"
                   for d in diffs)


class TestDiffResults:
    def test_equal_results_no_diffs(self):
        from tests.conftest import make_sim

        r1 = make_sim(_trace()).run(small_config(), PeriodicPolicy(), 0.81,
                                    ("za",), 0.0)
        r2 = make_sim(_trace()).run(small_config(), PeriodicPolicy(), 0.81,
                                    ("za",), 0.0)
        assert diff_results(r1, r2) == []

    def test_differing_field_is_reported(self):
        from dataclasses import replace

        from tests.conftest import make_sim

        r1 = make_sim(_trace()).run(small_config(), PeriodicPolicy(), 0.81,
                                    ("za",), 0.0)
        r2 = replace(r1, spot_cost=r1.spot_cost + 1.0)
        diffs = diff_results(r1, r2)
        assert [d.field for d in diffs] == ["spot_cost"]


class TestDifferentialRun:
    def test_engines_agree_on_synthetic_trace(self):
        report = differential_run(
            _trace(), small_config(), PeriodicPolicy, 0.81, ("za", "zb"), 0.0,
            queue_model=FixedQueueDelay(300.0),
        )
        assert report.identical
        assert report.ok
        assert report.fast_audit.ok and report.tick_audit.ok
        assert report.summary_lines()[0].endswith("agree on every field")

    def test_engines_agree_with_markov_policy(self):
        report = differential_run(
            _trace(), small_config(), MarkovDalyPolicy, 0.81, ("za",), 0.0,
            queue_model=FixedQueueDelay(300.0),
        )
        assert report.ok

    def test_engines_agree_on_evaluation_window(self, low_window):
        trace, eval_start = low_window
        report = differential_run(
            trace, small_config(), PeriodicPolicy, 0.81,
            trace.zone_names[:2], eval_start, seed=7,
        )
        assert report.ok
        assert report.fast_result == report.tick_result

    def test_fast_counters_show_skipping(self):
        report = differential_run(
            _trace(), small_config(), PeriodicPolicy, 0.81, ("za",), 0.0,
            queue_model=FixedQueueDelay(300.0),
        )
        fast, tick = report.fast_audit.counters, report.tick_audit.counters
        assert fast.ticks + fast.ticks_skipped == tick.ticks
