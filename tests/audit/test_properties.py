"""Property-based audit coverage: every invariant holds across
policy x window x bid in both engine modes.

The hypothesis half samples random piecewise price traces, bids and
policies and replays each configuration differentially (both engine
modes, audited); the parametrized half pins the paper's evaluation
windows and bid grid.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.audit import RunAuditor, differential_run
from repro.core.engine import SpotSimulator
from repro.experiments.runner import POLICY_FACTORIES
from repro.market.queuing import FixedQueueDelay
from repro.market.spot_market import PriceOracle

from tests.conftest import multi_step_trace, small_config

#: Total samples per generated zone (25 h of 5-min ticks — room for a
#: 2 h compute + 50% slack run to finish or switch to on-demand).
TRACE_SAMPLES = 300

prices = st.floats(min_value=0.05, max_value=3.0)


@st.composite
def price_traces(draw):
    """Two-zone piecewise-constant traces of equal length."""
    per_zone = {}
    for zone in ("za", "zb"):
        segments = []
        remaining = TRACE_SAMPLES
        for _ in range(draw(st.integers(1, 5))):
            if remaining <= 10:
                break
            n = draw(st.integers(10, max(10, remaining // 2)))
            segments.append((min(n, remaining), draw(prices)))
            remaining -= segments[-1][0]
        if remaining > 0:
            segments.append((remaining, draw(prices)))
        per_zone[zone] = segments
    return multi_step_trace(per_zone)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    trace=price_traces(),
    bid=st.floats(min_value=0.15, max_value=2.5),
    policy_label=st.sampled_from(sorted(POLICY_FACTORIES)),
    num_zones=st.integers(1, 2),
)
def test_no_invariant_violations_and_engines_agree(trace, bid, policy_label,
                                                   num_zones):
    report = differential_run(
        trace,
        small_config(),
        POLICY_FACTORIES[policy_label],
        bid,
        ("za", "zb")[:num_zones],
        0.0,
        queue_model=FixedQueueDelay(300.0),
    )
    assert report.fast_audit.ok, report.summary_lines()
    assert report.tick_audit.ok, report.summary_lines()
    assert report.identical, report.summary_lines()


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    trace=price_traces(),
    bid=st.floats(min_value=0.15, max_value=2.5),
    ckpt_cost_s=st.sampled_from((300.0, 900.0)),
    mode=st.sampled_from(("fast", "tick")),
)
def test_audited_run_invariants_hold_per_mode(trace, bid, ckpt_cost_s, mode):
    auditor = RunAuditor()
    sim = SpotSimulator(
        oracle=PriceOracle(trace),
        queue_model=FixedQueueDelay(300.0),
        rng=np.random.default_rng(3),
        engine_mode=mode,
        auditor=auditor,
    )
    sim.run(small_config(ckpt_cost_s=ckpt_cost_s),
            POLICY_FACTORIES["markov-daly"](), bid, ("za", "zb"), 0.0)
    report = auditor.drain()
    assert report.ok, report.summary_lines()


@pytest.mark.parametrize("policy_label", sorted(POLICY_FACTORIES))
@pytest.mark.parametrize("mode", ("fast", "tick"))
def test_low_window_policies_audit_clean(low_window, policy_label, mode):
    trace, eval_start = low_window
    auditor = RunAuditor()
    sim = SpotSimulator(
        oracle=PriceOracle(trace),
        queue_model=FixedQueueDelay(300.0),
        rng=np.random.default_rng(11),
        engine_mode=mode,
        auditor=auditor,
    )
    sim.run(small_config(), POLICY_FACTORIES[policy_label](), 0.81,
            trace.zone_names[:1], eval_start)
    report = auditor.drain()
    assert report.ok, report.summary_lines()


@pytest.mark.parametrize("bid", (0.27, 0.81, 2.40))
@pytest.mark.parametrize("mode", ("fast", "tick"))
def test_high_window_bids_audit_clean(high_window, bid, mode):
    trace, eval_start = high_window
    auditor = RunAuditor()
    sim = SpotSimulator(
        oracle=PriceOracle(trace),
        queue_model=FixedQueueDelay(300.0),
        rng=np.random.default_rng(5),
        engine_mode=mode,
        auditor=auditor,
    )
    sim.run(small_config(), POLICY_FACTORIES["markov-daly"](), bid,
            trace.zone_names, eval_start)
    report = auditor.drain()
    assert report.ok, report.summary_lines()
