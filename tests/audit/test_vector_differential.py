"""Vector-vs-fast differential: the acceptance gate for the batch engine.

One start axis — or a fused (bid x start) grid — runs through the
struct-of-arrays engine and through per-run *audited* fast
simulations; everything is diffed — RunResult fields (event logs ride
along) and the vector log against the audited stream the invariant
checker certified.  All five paper policies plus the Adaptive
controller are covered on both volatility windows, every one on the
native lockstep columns (single- and multi-zone; Large-bid/Naive and
fractional starts included).  The hypothesis half replays the same
contract over random piecewise traces so the native shapes are not
merely calibrated-window-correct.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.app.workload import paper_experiment
from repro.audit.differential import (
    VectorDifferentialReport,
    diff_log_vs_audit_stream,
    vector_differential_adaptive,
    vector_differential_grid,
    vector_differential_run,
)
from repro.core.adaptive import AdaptiveController
from repro.core.edge import RisingEdgePolicy
from repro.core.large_bid import LargeBidPolicy, naive_policy
from repro.core.markov_daly import MarkovDalyPolicy
from repro.core.periodic import PeriodicPolicy
from repro.core.threshold import ThresholdPolicy
from repro.experiments.runner import POLICY_FACTORIES
from repro.market.constants import LARGE_BID
from repro.market.queuing import FixedQueueDelay

from tests.audit.test_properties import price_traces
from tests.conftest import small_config

#: The paper's five policy schemes with representative bids.
PAPER_POLICIES = [
    ("periodic", PeriodicPolicy, 0.27),
    ("edge", RisingEdgePolicy, 0.81),
    ("markov-daly", MarkovDalyPolicy, 0.40),
    ("threshold", ThresholdPolicy, 0.35),
    ("naive", naive_policy, LARGE_BID),
]


@pytest.fixture(scope="module")
def config():
    return paper_experiment(slack_fraction=0.15, ckpt_cost_s=300.0)


@pytest.mark.parametrize("window_name", ["low", "high"])
@pytest.mark.parametrize(
    "label,factory,bid", PAPER_POLICIES, ids=[p[0] for p in PAPER_POLICIES]
)
def test_vector_differential_identical(
    window_name, label, factory, bid, config, low_window, high_window
):
    trace, eval_start = low_window if window_name == "low" else high_window
    zone = trace.zone_names[0]
    starts = [eval_start + k * 7200.0 for k in range(4)]
    report = vector_differential_run(
        trace, config, factory, bid, (zone,), starts
    )
    assert report.ok, "\n".join(report.summary_lines())
    assert len(report.vector_results) == len(starts)
    # the audited-stream comparison must have had real content
    assert any(r.events for r in report.fast_results)


def test_vector_differential_over_bid_grid(low_window, config):
    """Policy × bid grid on the calm window, per the acceptance bar."""
    trace, eval_start = low_window
    zone = trace.zone_names[1]
    starts = [eval_start, eval_start + 10800.0]
    for factory in (PeriodicPolicy, RisingEdgePolicy):
        for bid in (0.27, 0.35, 0.81, 2.40):
            report = vector_differential_run(
                trace, config, factory, bid, (zone,), starts
            )
            assert report.ok, "\n".join(report.summary_lines())


@pytest.mark.parametrize("window_name", ["low", "high"])
@pytest.mark.parametrize("label", sorted(POLICY_FACTORIES))
def test_vector_differential_multi_zone(
    window_name, label, config, low_window, high_window
):
    """Merged multi-zone cells: per-zone column blocks, all four
    native kinds, both calibrated windows."""
    trace, eval_start = low_window if window_name == "low" else high_window
    zones = trace.zone_names[:3]
    starts = [eval_start, eval_start + 10800.0]
    report = vector_differential_run(
        trace, config, POLICY_FACTORIES[label], 0.40, zones, starts
    )
    assert report.ok, "\n".join(report.summary_lines())
    assert all(r.zones == tuple(zones) for r in report.vector_results)


@pytest.mark.parametrize("window_name", ["low", "high"])
@pytest.mark.parametrize(
    "label,factory",
    [("periodic", PeriodicPolicy), ("markov-daly", MarkovDalyPolicy),
     ("threshold", ThresholdPolicy)],
    ids=["periodic", "markov-daly", "threshold"],
)
def test_vector_differential_fused_grid(
    window_name, label, factory, config, low_window, high_window
):
    """Fused (bid x start) tiles — clone rows (Periodic) and per-row
    native bid columns (Markov-Daly, Threshold) alike are bit-identical
    to independent audited runs at their own bid."""
    trace, eval_start = low_window if window_name == "low" else high_window
    zone = trace.zone_names[0]
    bids = [0.27, 0.35, 0.81]
    starts = [eval_start, eval_start + 14400.0]
    report = vector_differential_grid(
        trace, config, factory, bids, (zone,), starts
    )
    assert report.ok, "\n".join(report.summary_lines())
    assert len(report.vector_results) == len(bids) * len(starts)


def test_vector_differential_grid_multi_zone(low_window, config):
    """A fused tile over a merged two-zone cell."""
    trace, eval_start = low_window
    zones = trace.zone_names[:2]
    report = vector_differential_grid(
        trace, config, PeriodicPolicy, [0.27, 0.81], zones,
        [eval_start, eval_start + 7200.0],
    )
    assert report.ok, "\n".join(report.summary_lines())


def test_vector_differential_grid_fractional_starts(low_window, config):
    """Rows with non-integral starts stay on the native columns inside
    a fused tile and still match the audited scalar runs bit for bit
    (the lockstep accrual replays the per-tick loop for fractional
    clocks)."""
    trace, eval_start = low_window
    zone = trace.zone_names[0]
    report = vector_differential_grid(
        trace, config, MarkovDalyPolicy, [0.40, 0.81], (zone,),
        [eval_start, eval_start + 150.5],
    )
    assert report.ok, "\n".join(report.summary_lines())


def test_vector_differential_fractional_start_axis(low_window, config):
    """A plain start axis with fractional starts: native columns,
    audited-stream identical."""
    trace, eval_start = low_window
    zone = trace.zone_names[0]
    report = vector_differential_run(
        trace, config, PeriodicPolicy, 0.27, (zone,),
        [eval_start + 0.5, eval_start + 150.5, eval_start + 7200.0],
    )
    assert report.ok, "\n".join(report.summary_lines())


@pytest.mark.parametrize("window_name", ["low", "high"])
@pytest.mark.parametrize("threshold", [None, 0.50], ids=["naive", "L=0.50"])
def test_vector_differential_large_bid(
    window_name, threshold, config, low_window, high_window
):
    """Large-bid's native columns (threshold releases included) are
    bit-identical to audited per-run fast simulation."""
    trace, eval_start = low_window if window_name == "low" else high_window
    zone = trace.zone_names[0]
    starts = [eval_start + k * 7200.0 for k in range(3)]
    report = vector_differential_run(
        trace, config,
        lambda: LargeBidPolicy(threshold),
        LARGE_BID, (zone,), starts,
    )
    assert report.ok, "\n".join(report.summary_lines())


@pytest.mark.parametrize("window_name", ["low", "high"])
def test_vector_differential_adaptive(
    window_name, config, low_window, high_window
):
    """Adaptive's batched decision columns on both calibrated windows:
    RunResult fields, event logs and audited streams all identical —
    config-switch events carry (policy, bid, zone count), so identical
    streams certify winner-identical controller decisions."""
    trace, eval_start = low_window if window_name == "low" else high_window
    starts = [eval_start + k * 7200.0 for k in range(4)]
    report = vector_differential_adaptive(
        trace, config, AdaptiveController, starts
    )
    assert report.ok, "\n".join(report.summary_lines())
    assert len(report.vector_results) == len(starts)
    assert any(r.events for r in report.fast_results)


def test_vector_differential_adaptive_custom_bid_grid(low_window, config):
    """A narrowed candidate bid grid exercises different survivor sets
    in the batched pruned pass; the contract holds regardless."""
    trace, eval_start = low_window
    starts = [eval_start, eval_start + 10800.0]
    report = vector_differential_adaptive(
        trace, config,
        lambda: AdaptiveController(bids=(0.27, 0.40, 0.81)),
        starts,
    )
    assert report.ok, "\n".join(report.summary_lines())


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    trace=price_traces(),
    bid=st.floats(min_value=0.15, max_value=2.5),
    policy_label=st.sampled_from(sorted(POLICY_FACTORIES)),
    num_zones=st.integers(1, 2),
)
def test_native_shapes_hold_on_random_traces(trace, bid, policy_label,
                                             num_zones):
    """Hypothesis: every native shape (all four vector kinds, single-
    and two-zone cells) matches audited per-run fast simulation on
    random piecewise traces."""
    report = vector_differential_run(
        trace, small_config(), POLICY_FACTORIES[policy_label], bid,
        ("za", "zb")[:num_zones], [0.0, 7200.0],
        queue_model=FixedQueueDelay(300.0),
    )
    assert report.ok, "\n".join(report.summary_lines())


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    trace=price_traces(),
    policy_label=st.sampled_from(sorted(POLICY_FACTORIES)),
    num_zones=st.integers(1, 2),
)
def test_fused_grid_holds_on_random_traces(trace, policy_label, num_zones):
    """Hypothesis: fused (bid x start) tiles — clone plans included —
    match independent audited runs on random piecewise traces."""
    report = vector_differential_grid(
        trace, small_config(), POLICY_FACTORIES[policy_label],
        [0.27, 0.5, 0.81], ("za", "zb")[:num_zones], [0.0, 3600.0],
        queue_model=FixedQueueDelay(300.0),
    )
    assert report.ok, "\n".join(report.summary_lines())


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    trace=price_traces(),
    bids=st.sampled_from([
        (0.27, 0.40, 0.81),
        (0.15, 0.35, 0.50, 1.20),
        (0.30, 2.40),
    ]),
)
def test_adaptive_columns_hold_on_random_traces(trace, bids):
    """Hypothesis: the Adaptive native columns match audited per-run
    fast simulation on random piecewise traces across candidate bid
    grids — every field, every event, every controller decision."""
    report = vector_differential_adaptive(
        trace, small_config(),
        lambda: AdaptiveController(bids=bids),
        [0.0, 7200.0],
        queue_model=FixedQueueDelay(300.0),
    )
    assert report.ok, "\n".join(report.summary_lines())


def test_report_flags_divergence(low_window, config):
    """A doctored result is caught by both comparison layers."""
    from dataclasses import replace

    trace, eval_start = low_window
    zone = trace.zone_names[0]
    report = vector_differential_run(
        trace, config, PeriodicPolicy, 0.27, (zone,), [eval_start]
    )
    assert report.identical
    good = report.vector_results[0]
    forged = replace(good, spot_cost=good.spot_cost + 1.0)
    from repro.audit.differential import diff_results

    diffs = diff_results(forged, report.fast_results[0])
    assert [d.field for d in diffs] == ["spot_cost"]
    # event-stream layer: drop one event from the log
    stream_diffs = diff_log_vs_audit_stream(
        good.events[:-1],
        [e for e in _audited_stream(report)],
        where="start[0].event",
    )
    assert any(d.field == "length" for d in stream_diffs)
    bad = VectorDifferentialReport(audit_stream_diffs=stream_diffs)
    assert not bad.identical
    assert any("event" in line for line in bad.summary_lines())


def _audited_stream(report):
    """Reconstruct the scalar side's audited events from the comparison
    baseline: identical runs means the engine log *is* the stream's
    log-kind projection, which is all the helper consumes."""
    return list(report.fast_results[0].events)
