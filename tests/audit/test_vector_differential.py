"""Vector-vs-fast differential: the acceptance gate for the batch engine.

One start axis runs through the struct-of-arrays engine and through
per-run *audited* fast simulations; everything is diffed — RunResult
fields (event logs ride along) and the vector log against the audited
stream the invariant checker certified.  All five paper policies are
covered on both volatility windows: Periodic and Edge exercise the
native lockstep paths, Markov-Daly, Threshold and Large-bid/Naive the
per-run fallback.
"""

from __future__ import annotations

import pytest

from repro.app.workload import paper_experiment
from repro.audit.differential import (
    VectorDifferentialReport,
    diff_log_vs_audit_stream,
    vector_differential_run,
)
from repro.core.edge import RisingEdgePolicy
from repro.core.large_bid import naive_policy
from repro.core.markov_daly import MarkovDalyPolicy
from repro.core.periodic import PeriodicPolicy
from repro.core.threshold import ThresholdPolicy
from repro.market.constants import LARGE_BID

#: The paper's five policy schemes with representative bids.
PAPER_POLICIES = [
    ("periodic", PeriodicPolicy, 0.27),
    ("edge", RisingEdgePolicy, 0.81),
    ("markov-daly", MarkovDalyPolicy, 0.40),
    ("threshold", ThresholdPolicy, 0.35),
    ("naive", naive_policy, LARGE_BID),
]


@pytest.fixture(scope="module")
def config():
    return paper_experiment(slack_fraction=0.15, ckpt_cost_s=300.0)


@pytest.mark.parametrize("window_name", ["low", "high"])
@pytest.mark.parametrize(
    "label,factory,bid", PAPER_POLICIES, ids=[p[0] for p in PAPER_POLICIES]
)
def test_vector_differential_identical(
    window_name, label, factory, bid, config, low_window, high_window
):
    trace, eval_start = low_window if window_name == "low" else high_window
    zone = trace.zone_names[0]
    starts = [eval_start + k * 7200.0 for k in range(4)]
    report = vector_differential_run(
        trace, config, factory, bid, (zone,), starts
    )
    assert report.ok, "\n".join(report.summary_lines())
    assert len(report.vector_results) == len(starts)
    # the audited-stream comparison must have had real content
    assert any(r.events for r in report.fast_results)


def test_vector_differential_over_bid_grid(low_window, config):
    """Policy × bid grid on the calm window, per the acceptance bar."""
    trace, eval_start = low_window
    zone = trace.zone_names[1]
    starts = [eval_start, eval_start + 10800.0]
    for factory in (PeriodicPolicy, RisingEdgePolicy):
        for bid in (0.27, 0.35, 0.81, 2.40):
            report = vector_differential_run(
                trace, config, factory, bid, (zone,), starts
            )
            assert report.ok, "\n".join(report.summary_lines())


def test_report_flags_divergence(low_window, config):
    """A doctored result is caught by both comparison layers."""
    from dataclasses import replace

    trace, eval_start = low_window
    zone = trace.zone_names[0]
    report = vector_differential_run(
        trace, config, PeriodicPolicy, 0.27, (zone,), [eval_start]
    )
    assert report.identical
    good = report.vector_results[0]
    forged = replace(good, spot_cost=good.spot_cost + 1.0)
    from repro.audit.differential import diff_results

    diffs = diff_results(forged, report.fast_results[0])
    assert [d.field for d in diffs] == ["spot_cost"]
    # event-stream layer: drop one event from the log
    stream_diffs = diff_log_vs_audit_stream(
        good.events[:-1],
        [e for e in _audited_stream(report)],
        where="start[0].event",
    )
    assert any(d.field == "length" for d in stream_diffs)
    bad = VectorDifferentialReport(audit_stream_diffs=stream_diffs)
    assert not bad.identical
    assert any("event" in line for line in bad.summary_lines())


def _audited_stream(report):
    """Reconstruct the scalar side's audited events from the comparison
    baseline: identical runs means the engine log *is* the stream's
    log-kind projection, which is all the helper consumes."""
    return list(report.fast_results[0].events)
