"""Cube differential: the acceptance gate for the shape axis.

A fused (shape x bid x start) cube — a whole deadline ladder of one
(policy, zone-set) cell — runs through the struct-of-arrays engine in
one lockstep pass and through fully independent *audited* per-run fast
simulations at each row's own shape; everything is diffed — RunResult
fields (event logs ride along), the vector log against the audited
stream the invariant checker certified, RNG draw positions (via the
queue-delay draws embedded in the streams) and run-cache addresses.
All native policies are covered on both calibrated windows; the
hypothesis half replays the contract over random piecewise traces x
random shape ladders.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.app.workload import paper_experiment
from repro.audit.differential import vector_differential_cube
from repro.core.large_bid import LargeBidPolicy
from repro.core.markov_daly import MarkovDalyPolicy
from repro.core.periodic import PeriodicPolicy
from repro.experiments.cache import RunCache
from repro.experiments.runner import POLICY_FACTORIES
from repro.market.constants import LARGE_BID
from repro.market.queuing import FixedQueueDelay, QueueDelayModel
from repro.market.spot_market import PriceOracle

from tests.audit.test_properties import price_traces
from tests.conftest import small_config


def _ladder(slacks=(0.15, 0.5, 1.0), ckpt_cost_s=300.0):
    """A deadline ladder: one compute time, loosening deadlines."""
    return [
        paper_experiment(slack_fraction=s, ckpt_cost_s=ckpt_cost_s)
        for s in slacks
    ]


@pytest.mark.parametrize("window_name", ["low", "high"])
@pytest.mark.parametrize("label", sorted(POLICY_FACTORIES))
def test_cube_differential_identical(
    window_name, label, low_window, high_window
):
    """All four native policies x both windows: every cube row is
    bit-identical to an independent audited fast run at its own shape."""
    trace, eval_start = low_window if window_name == "low" else high_window
    zone = trace.zone_names[0]
    configs = _ladder()
    starts_per_shape = [
        [eval_start, eval_start + (k + 1) * 3600.0] for k in range(len(configs))
    ]
    report = vector_differential_cube(
        trace, configs, POLICY_FACTORIES[label], [0.27, 0.40, 0.81],
        (zone,), starts_per_shape,
    )
    assert report.ok, "\n".join(report.summary_lines())
    assert len(report.vector_results) == 3 * sum(map(len, starts_per_shape))
    assert any(r.events for r in report.fast_results)


@pytest.mark.parametrize("window_name", ["low", "high"])
def test_cube_differential_multi_zone(window_name, low_window, high_window):
    """Merged multi-zone cells: the shared zone-dynamics blocks span the
    shape ladder without perturbing any shape's trajectory."""
    trace, eval_start = low_window if window_name == "low" else high_window
    zones = tuple(trace.zone_names[:3])
    configs = _ladder(slacks=(0.15, 0.75))
    starts = [[eval_start, eval_start + 10800.0]] * len(configs)
    report = vector_differential_cube(
        trace, configs, MarkovDalyPolicy, [0.40, 0.81], zones, starts
    )
    assert report.ok, "\n".join(report.summary_lines())
    assert all(r.zones == zones for r in report.vector_results)


def test_cube_differential_varied_shapes(low_window):
    """Shapes may differ in every axis — compute, deadline, checkpoint
    and restart costs — not just the deadline."""
    trace, eval_start = low_window
    zone = trace.zone_names[0]
    base = paper_experiment(slack_fraction=0.5, ckpt_cost_s=300.0)
    configs = [
        base,
        replace(base, ckpt_cost_s=900.0, restart_cost_s=900.0),
        replace(base, compute_s=base.compute_s / 2,
                deadline_s=base.deadline_s / 2),
    ]
    starts = [[eval_start + k * 1800.0] for k in range(len(configs))]
    report = vector_differential_cube(
        trace, configs, PeriodicPolicy, [0.27, 0.81], (zone,), starts
    )
    assert report.ok, "\n".join(report.summary_lines())


def test_cube_differential_fractional_starts(low_window):
    """Fractional clocks stay on the native columns inside a cube."""
    trace, eval_start = low_window
    zone = trace.zone_names[0]
    configs = _ladder(slacks=(0.15, 0.5))
    starts = [[eval_start + 150.5], [eval_start + 0.5, eval_start + 7200.0]]
    report = vector_differential_cube(
        trace, configs, MarkovDalyPolicy, [0.40, 0.81], (zone,), starts
    )
    assert report.ok, "\n".join(report.summary_lines())


def test_cube_differential_large_bid(low_window):
    """Large-bid's native columns hold across a shape ladder."""
    trace, eval_start = low_window
    zone = trace.zone_names[0]
    configs = _ladder(slacks=(0.15, 1.0))
    starts = [[eval_start, eval_start + 7200.0]] * len(configs)
    report = vector_differential_cube(
        trace, configs, lambda: LargeBidPolicy(0.50), [LARGE_BID],
        (zone,), starts,
    )
    assert report.ok, "\n".join(report.summary_lines())


def test_cube_rows_share_scalar_cache_addresses(low_window, tmp_path):
    """Cube-stored entries are content-addressed exactly as per-run
    fast-engine runs at each row's own shape — the cache interop that
    lets a family build warm (and be warmed by) scalar sweeps."""
    from repro.core.engine import SpotSimulator
    from repro.core.vector_engine import VectorSimulator

    trace, eval_start = low_window
    zone = trace.zone_names[0]
    configs = _ladder(slacks=(0.15, 0.5))
    shape_idx = [0, 0, 1, 1]
    bids = [0.27, 0.81, 0.27, 0.81]
    starts = [eval_start, eval_start, eval_start + 3600.0, eval_start + 3600.0]

    def rngs():
        import numpy as np

        return [
            np.random.default_rng(
                np.random.SeedSequence(entropy=0, spawn_key=(int(s),))
            )
            for s in starts
        ]

    cache = RunCache(str(tmp_path))
    vec = VectorSimulator(
        oracle=PriceOracle(trace), queue_model=QueueDelayModel(),
        record_events=False, run_cache=cache,
    )
    cube = vec.run_cube(configs, PeriodicPolicy, (zone,), shape_idx, bids,
                        starts, rngs())
    cold = cache.drain_stats()
    assert cold.stores == len(starts) and cold.hits == 0
    oracle = PriceOracle(trace)
    fast = []
    for k, bid, s, rng in zip(shape_idx, bids, starts, rngs()):
        sim = SpotSimulator(
            oracle=oracle, queue_model=QueueDelayModel(), rng=rng,
            record_events=False, engine_mode="fast", run_cache=cache,
        )
        fast.append(sim.run(configs[k], PeriodicPolicy(), bid, (zone,), s))
    warm = cache.drain_stats()
    assert warm.hits == len(starts) and warm.misses == 0
    assert fast == cube


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    trace=price_traces(),
    policy_label=st.sampled_from(sorted(POLICY_FACTORIES)),
    num_zones=st.integers(1, 2),
    slacks=st.lists(
        st.sampled_from([0.2, 0.5, 0.8, 1.2, 2.0]),
        min_size=1, max_size=3, unique=True,
    ),
)
def test_cube_holds_on_random_traces(trace, policy_label, num_zones, slacks):
    """Hypothesis: random piecewise traces x random shape ladders —
    clone plans, shared zone dynamics and per-shape deadline columns
    all match independent audited runs bit for bit."""
    base = small_config()
    configs = [
        replace(base, deadline_s=base.compute_s * (1.0 + s)) for s in slacks
    ]
    starts = [[0.0, 3600.0] for _ in configs]
    report = vector_differential_cube(
        trace, configs, POLICY_FACTORIES[policy_label], [0.27, 0.5, 0.81],
        ("za", "zb")[:num_zones], starts,
        queue_model=FixedQueueDelay(300.0),
    )
    assert report.ok, "\n".join(report.summary_lines())
