"""Each invariant checker must fire on a corrupted run.

These tests drive :class:`InvariantChecker` directly with synthetic
state — the cheapest way to manufacture exactly one corruption at a
time.  The engine-integration tests assert the complementary property
(real runs produce zero violations).
"""

from __future__ import annotations

from types import SimpleNamespace

from repro.app.checkpoint import CheckpointRecord, CheckpointStore
from repro.app.workload import ExperimentConfig
from repro.audit import InvariantChecker, LEGAL_TRANSITIONS
from repro.market.constants import ON_DEMAND_PRICE
from repro.market.instance import ZoneInstance, ZoneState


def _config(compute_h=2.0):
    compute_s = compute_h * 3600.0
    return ExperimentConfig(compute_s=compute_s, deadline_s=1.5 * compute_s,
                            ckpt_cost_s=300.0, restart_cost_s=300.0)


def _checker(instances=None, store=None, start=0.0, config=None):
    checker = InvariantChecker()
    checker.begin_run(
        config=config or _config(),
        deadline=(config or _config()).deadline_s,
        store=store if store is not None else CheckpointStore(),
        instances=instances or {},
        start_time=start,
    )
    return checker


def _result(**overrides):
    """A run-end summary with every field the checker reads, all clean."""
    base = dict(
        finish_time=3600.0, deadline=10800.0, completed_on="spot",
        spot_cost=0.0, spot_hours_charged=0, ondemand_cost=0.0,
        ondemand_switch_time=None,
    )
    base.update(overrides)
    return SimpleNamespace(**base)


def _kinds(checker):
    return [v.invariant for v in checker.violations]


class TestTransitionLegality:
    def test_every_legal_edge_passes(self):
        checker = _checker()
        for old, news in LEGAL_TRANSITIONS.items():
            for new in news:
                checker.transition("za", old, new)
        assert checker.violations == []

    def test_illegal_edge_fires(self):
        checker = _checker()
        checker.transition("za", ZoneState.COMPUTING, ZoneState.WAITING)
        assert _kinds(checker) == ["zone-transition"]
        assert "computing -> waiting" in checker.violations[0].message

    def test_down_to_computing_is_illegal(self):
        checker = _checker()
        checker.transition("za", ZoneState.DOWN, ZoneState.COMPUTING)
        assert _kinds(checker) == ["zone-transition"]


class TestTickChecks:
    def test_clock_moving_backwards_fires(self):
        checker = _checker(start=1000.0)
        checker.tick(1300.0)
        checker.tick(700.0)
        assert "time-monotonic" in _kinds(checker)

    def test_committed_regression_fires(self):
        store = CheckpointStore()
        store.records.append(CheckpointRecord(time=100.0, progress_s=500.0, zone="za"))
        checker = _checker(store=store)
        checker.tick(300.0)
        # corrupt the store behind the checker's back
        store.records[-1] = CheckpointRecord(time=100.0, progress_s=100.0, zone="za")
        checker.tick(600.0)
        assert "progress-monotonic" in _kinds(checker)

    def test_leading_progress_beyond_c_fires(self):
        inst = ZoneInstance(zone="za", state=ZoneState.COMPUTING,
                            computed_s=_config().compute_s + 10.0)
        checker = _checker(instances={"za": inst})
        checker.tick(300.0)
        assert "progress-bounds" in _kinds(checker)

    def test_clean_tick_is_silent(self):
        inst = ZoneInstance(zone="za", state=ZoneState.COMPUTING,
                            computed_s=100.0)
        checker = _checker(instances={"za": inst})
        checker.tick(300.0)
        checker.tick(600.0)
        assert checker.violations == []


class TestStoreConsistency:
    def test_commit_progress_regression_fires(self):
        checker = _checker()
        checker.commit(CheckpointRecord(time=100.0, progress_s=50.0, zone="za"),
                       previous_progress_s=200.0)
        assert "store-consistency" in _kinds(checker)

    def test_commit_time_regression_fires(self):
        checker = _checker()
        checker.commit(CheckpointRecord(time=200.0, progress_s=50.0, zone="za"), 0.0)
        checker.commit(CheckpointRecord(time=100.0, progress_s=60.0, zone="za"), 50.0)
        assert "store-consistency" in _kinds(checker)

    def test_commit_beyond_c_fires(self):
        checker = _checker()
        checker.commit(
            CheckpointRecord(time=100.0, progress_s=_config().compute_s + 1.0,
                             zone="za"),
            0.0,
        )
        assert "store-consistency" in _kinds(checker)

    def test_restore_from_uncommitted_progress_fires(self):
        checker = _checker()
        checker.commit(CheckpointRecord(time=100.0, progress_s=500.0, zone="za"), 0.0)
        checker.restore("zb", 200.0, 123.0)
        assert "store-consistency" in _kinds(checker)
        assert "restore from 123.0" in checker.violations[0].message

    def test_restore_from_committed_progress_is_silent(self):
        checker = _checker()
        checker.commit(CheckpointRecord(time=100.0, progress_s=500.0, zone="za"), 0.0)
        checker.restore("zb", 200.0, 500.0)
        assert checker.violations == []


class TestBillingConservation:
    def _inst(self):
        return ZoneInstance(zone="za")

    def test_meter_left_open_fires(self):
        inst = self._inst()
        inst.billing.open_hour(0.0, 0.30)
        checker = _checker(instances={"za": inst})
        checker.finish(_result(spot_cost=0.0))
        assert "billing-conservation" in _kinds(checker)
        assert "left open" in checker.violations[0].message

    def test_unaccounted_hour_fires(self):
        inst = self._inst()
        inst.billing.open_hour(0.0, 0.30)
        inst.billing.user_close(1800.0)
        inst.billing.hours_opened += 1  # corrupt the ledger
        checker = _checker(instances={"za": inst})
        checker.finish(_result(spot_cost=0.30, spot_hours_charged=1))
        assert "billing-conservation" in _kinds(checker)

    def test_short_boundary_hour_fires(self):
        from repro.market.billing import ChargedHour

        inst = self._inst()
        inst.billing.hours_opened = 1
        inst.billing.charges.append(
            ChargedHour(hour_start=0.0, rate=0.30, used_s=1800.0,
                        reason="boundary")
        )
        checker = _checker(instances={"za": inst})
        checker.finish(_result(spot_cost=0.30, spot_hours_charged=1))
        assert "billing-conservation" in _kinds(checker)
        assert "!= 3600s" in checker.violations[0].message

    def test_reported_cost_mismatch_fires(self):
        inst = self._inst()
        inst.billing.open_hour(0.0, 0.30)
        inst.billing.user_close(1800.0)
        checker = _checker(instances={"za": inst})
        checker.finish(_result(spot_cost=0.90, spot_hours_charged=1))
        assert "billing-conservation" in _kinds(checker)

    def test_reported_hours_mismatch_fires(self):
        inst = self._inst()
        inst.billing.open_hour(0.0, 0.30)
        inst.billing.user_close(1800.0)
        checker = _checker(instances={"za": inst})
        checker.finish(_result(spot_cost=0.30, spot_hours_charged=2))
        assert "billing-conservation" in _kinds(checker)

    def test_spot_completion_with_ondemand_cost_fires(self):
        checker = _checker()
        checker.finish(_result(completed_on="spot", ondemand_cost=4.80))
        assert "billing-conservation" in _kinds(checker)

    def test_fractional_ondemand_cost_fires(self):
        checker = _checker()
        checker.finish(_result(completed_on="ondemand",
                               ondemand_cost=1.5 * ON_DEMAND_PRICE,
                               ondemand_switch_time=1000.0))
        assert "billing-conservation" in _kinds(checker)

    def test_ondemand_completion_without_switch_time_fires(self):
        checker = _checker()
        checker.finish(_result(completed_on="ondemand",
                               ondemand_cost=2 * ON_DEMAND_PRICE,
                               ondemand_switch_time=None))
        assert "billing-conservation" in _kinds(checker)

    def test_clean_ledger_is_silent(self):
        inst = self._inst()
        inst.billing.open_hour(0.0, 0.30)
        inst.billing.roll_hour(0.40)
        inst.billing.user_close(5400.0, reason="complete")
        checker = _checker(instances={"za": inst})
        checker.finish(_result(spot_cost=0.70, spot_hours_charged=2))
        assert checker.violations == []


class TestDeadlineGuarantee:
    def test_late_finish_fires(self):
        checker = _checker()
        checker.finish(_result(finish_time=99999.0, deadline=10800.0))
        assert "deadline-guarantee" in _kinds(checker)

    def test_contracted_deadline_excuses_lateness(self):
        checker = _checker()
        checker.deadline_changed(3600.0, 10800.0, 7200.0)
        assert checker.deadline_contracted
        checker.finish(_result(finish_time=9000.0, deadline=7200.0))
        assert "deadline-guarantee" not in _kinds(checker)

    def test_extended_deadline_is_not_a_contraction(self):
        checker = _checker()
        checker.deadline_changed(3600.0, 10800.0, 14400.0)
        assert not checker.deadline_contracted
        checker.finish(_result(finish_time=20000.0, deadline=14400.0))
        assert "deadline-guarantee" in _kinds(checker)

    def test_on_time_finish_is_silent(self):
        checker = _checker()
        checker.finish(_result(finish_time=7200.0, deadline=10800.0))
        assert checker.violations == []
