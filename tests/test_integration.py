"""End-to-end integration: a miniature of the paper's whole evaluation.

One small grid over both volatility windows, all retained policies,
redundancy, Adaptive and Large-bid — asserting the global invariants
that every figure in the paper rests on.  This is the test to run
first when touching the engine.
"""

from __future__ import annotations

import pytest

from repro.app.workload import paper_experiment
from repro.experiments.metrics import box, deadline_violations
from repro.experiments.runner import ExperimentRunner
from repro.core.ondemand import on_demand_cost


@pytest.fixture(scope="module")
def runners():
    return {
        "low": ExperimentRunner("low", num_experiments=5),
        "high": ExperimentRunner("high", num_experiments=5),
    }


@pytest.fixture(scope="module")
def config():
    return paper_experiment(slack_fraction=0.5, ckpt_cost_s=300.0)


class TestGlobalInvariants:
    def test_no_deadline_violation_anywhere(self, runners, config):
        for runner in runners.values():
            for label in ("periodic", "markov-daly", "edge", "threshold"):
                assert not deadline_violations(
                    runner.run_single_zone(label, config, 0.81)
                )
            assert not deadline_violations(
                runner.run_redundant("markov-daly", config, 0.81)
            )
            assert not deadline_violations(runner.run_adaptive(config))
            assert not deadline_violations(runner.run_large_bid(config, 0.81))

    def test_costs_positive_and_sane(self, runners, config):
        od = on_demand_cost(config)
        for runner in runners.values():
            for label in ("periodic", "markov-daly"):
                records = runner.run_single_zone(label, config, 0.81)
                for record in records:
                    assert record.cost > 0
                    # bounded: on-demand plus at most a few spot hours
                    # of overlap around the switch
                    assert record.cost < od * 1.3

    def test_calm_market_beats_on_demand_severalfold(self, runners, config):
        stats = box(runners["low"].run_single_zone("markov-daly", config, 0.81))
        assert stats.median < on_demand_cost(config) / 4

    def test_redundancy_pays_off_when_it_should(self, runners):
        # the paper's central claim, in one assertion: volatile window,
        # low slack -> redundancy beats every single-zone policy
        tight = paper_experiment(slack_fraction=0.15, ckpt_cost_s=300.0)
        runner = runners["high"]
        redundant = box(runner.run_best_redundant(tight, 0.81)).median
        singles = min(
            box(runner.run_single_zone(label, tight, 0.81)).median
            for label in ("periodic", "markov-daly")
        )
        assert redundant < singles

    def test_adaptive_is_never_catastrophic(self, runners):
        od = on_demand_cost(paper_experiment())
        for window, runner in runners.items():
            for slack in (0.15, 0.5):
                cfg = paper_experiment(slack_fraction=slack)
                stats = box(runner.run_adaptive(cfg))
                assert stats.maximum <= od * 1.2 + 1.0, (
                    f"adaptive blow-up in {window}/{slack}"
                )

    def test_reproducibility_across_runner_instances(self, config):
        a = ExperimentRunner("low", num_experiments=3)
        b = ExperimentRunner("low", num_experiments=3)
        costs_a = [r.cost for r in a.run_single_zone("periodic", config, 0.81)]
        costs_b = [r.cost for r in b.run_single_zone("periodic", config, 0.81)]
        assert costs_a == costs_b
