"""Unit tests for boxplot statistics and policy comparisons."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.descriptive import (
    BoxplotStats,
    best_policy_by_median,
    median_improvement,
    merge_samples,
)


class TestBoxplotStats:
    def test_five_number_summary(self):
        s = BoxplotStats.from_samples([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.minimum == 1.0
        assert s.median == 3.0
        assert s.maximum == 5.0
        assert s.mean == 3.0
        assert s.count == 5

    def test_iqr(self):
        s = BoxplotStats.from_samples(np.arange(1, 101, dtype=float))
        assert s.iqr == pytest.approx(s.q3 - s.q1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxplotStats.from_samples([])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            BoxplotStats.from_samples([1.0, float("nan")])

    def test_row_keys(self):
        s = BoxplotStats.from_samples([1.0, 2.0])
        assert set(s.row()) == {"min", "q1", "median", "q3", "max", "mean", "n"}


class TestMerge:
    def test_pools_groups(self):
        merged = merge_samples([[1.0, 2.0], [3.0], [4.0, 5.0]])
        assert sorted(merged) == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_empty_groups_rejected(self):
        with pytest.raises(ValueError):
            merge_samples([])


class TestComparisons:
    def test_median_improvement(self):
        better = BoxplotStats.from_samples([7.0, 8.0, 9.0])
        worse = BoxplotStats.from_samples([10.0, 10.0, 10.0])
        assert median_improvement(better, worse) == pytest.approx(0.2)

    def test_improvement_negative_when_worse(self):
        a = BoxplotStats.from_samples([12.0])
        b = BoxplotStats.from_samples([10.0])
        assert median_improvement(a, b) < 0

    def test_zero_reference_rejected(self):
        z = BoxplotStats.from_samples([0.0])
        with pytest.raises(ValueError):
            median_improvement(z, z)

    def test_best_policy(self):
        stats = {
            "a": BoxplotStats.from_samples([5.0, 6.0]),
            "b": BoxplotStats.from_samples([2.0, 3.0]),
        }
        name, best = best_policy_by_median(stats)
        assert name == "b"
        assert best.median == 2.5

    def test_best_of_empty_rejected(self):
        with pytest.raises(ValueError):
            best_policy_by_median({})


@given(samples=st.lists(st.floats(min_value=0.0, max_value=1e4),
                        min_size=1, max_size=300))
def test_summary_orderings(samples):
    s = BoxplotStats.from_samples(samples)
    assert s.minimum <= s.q1 <= s.median <= s.q3 <= s.maximum
    eps = 1e-9 * max(abs(s.minimum), abs(s.maximum), 1.0)
    assert s.minimum - eps <= s.mean <= s.maximum + eps
    assert s.count == len(samples)
