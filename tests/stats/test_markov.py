"""Unit and property tests for the Markov uptime model (Appendix B)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.markov import (
    MarkovError,
    PriceMarkovModel,
    combined_expected_uptime,
)


def two_state_model(p_fail: float, step_s: float = 300.0) -> PriceMarkovModel:
    """Cheap state (0.3) that fails to expensive (1.0) w.p. p_fail."""
    levels = np.array([0.3, 1.0])
    trans = np.array([[1.0 - p_fail, p_fail], [0.5, 0.5]])
    initial = np.array([1.0, 0.0])
    return PriceMarkovModel(levels=levels, trans=trans, initial=initial,
                            step_s=step_s)


class TestFit:
    def test_levels_are_distinct_prices(self):
        prices = np.array([0.3, 0.4, 0.3, 0.5, 0.3])
        m = PriceMarkovModel.fit(prices, smoothing=0.0)
        assert list(m.levels) == [0.3, 0.4, 0.5]

    def test_transition_rows_stochastic(self):
        prices = np.array([0.3, 0.4, 0.3, 0.5, 0.3, 0.3])
        m = PriceMarkovModel.fit(prices)
        assert np.allclose(m.trans.sum(axis=1), 1.0)

    def test_counts_reflected(self):
        prices = np.array([0.3, 0.3, 0.3, 0.4])
        m = PriceMarkovModel.fit(prices, smoothing=0.0)
        # from 0.3: two self-transitions, one to 0.4
        i = list(m.levels).index(0.3)
        j = list(m.levels).index(0.4)
        assert m.trans[i, i] == pytest.approx(2 / 3)
        assert m.trans[i, j] == pytest.approx(1 / 3)

    def test_initial_points_at_current_price(self):
        prices = np.array([0.3, 0.4, 0.5])
        m = PriceMarkovModel.fit(prices, current_price=0.4)
        assert m.initial[list(m.levels).index(0.4)] == 1.0

    def test_nearest_level_when_current_unobserved(self):
        prices = np.array([0.3, 0.5, 0.3, 0.5])
        m = PriceMarkovModel.fit(prices, current_price=0.49)
        assert m.initial[list(m.levels).index(0.5)] == 1.0

    def test_last_sample_level_not_absorbing(self):
        # 0.9 appears only as the final sample: without backoff its row
        # would be empty/absorbing
        prices = np.array([0.3, 0.4, 0.3, 0.4, 0.9])
        m = PriceMarkovModel.fit(prices, smoothing=0.0)
        i = list(m.levels).index(0.9)
        assert m.trans[i].sum() == pytest.approx(1.0)
        assert m.trans[i, i] < 1.0

    def test_too_short_history_rejected(self):
        with pytest.raises(MarkovError):
            PriceMarkovModel.fit(np.array([0.3]))

    def test_bad_smoothing_rejected(self):
        with pytest.raises(MarkovError):
            PriceMarkovModel.fit(np.array([0.3, 0.4]), smoothing=1.0)

    def test_fit_window_recorded(self):
        prices = np.full(10, 0.3)
        prices[5] = 0.4
        m = PriceMarkovModel.fit(prices)
        assert m.fit_window_s == 10 * 300.0


class TestExpectedUptime:
    def test_geometric_failure_exact(self):
        # from the cheap state, failure each step w.p. p: E[steps] = 1/p
        for p in (0.5, 0.1, 0.02):
            m = two_state_model(p)
            assert m.expected_uptime(0.5) == pytest.approx(300.0 / p, rel=1e-9)

    def test_zero_when_currently_down(self):
        m = two_state_model(0.1)
        object.__setattr__(m, "initial", np.array([0.0, 1.0]))
        assert m.expected_uptime(0.5) == 0.0

    def test_zero_when_no_up_states(self):
        m = two_state_model(0.1)
        assert m.expected_uptime(0.1) == 0.0

    def test_cap_when_never_terminates(self):
        m = two_state_model(0.0)
        assert m.expected_uptime(0.5) == m.UPTIME_CAP_S

    def test_fit_window_caps_estimate(self):
        # 20 samples of constant price: chain never exits; cap = window
        prices = np.full(20, 0.3)
        prices[0] = 0.31  # two levels so fit works
        m = PriceMarkovModel.fit(prices)
        assert m.expected_uptime(0.5) == 20 * 300.0

    def test_monotone_in_bid(self):
        rng = np.random.default_rng(0)
        prices = np.round(rng.choice([0.3, 0.5, 0.9, 1.5], size=400), 2)
        m = PriceMarkovModel.fit(prices)
        uptimes = [m.expected_uptime(b) for b in (0.3, 0.5, 0.9, 1.5)]
        assert uptimes == sorted(uptimes)

    def test_exact_matches_iterative(self):
        rng = np.random.default_rng(1)
        prices = rng.choice([0.3, 0.4, 0.6, 1.2], size=300)
        m = PriceMarkovModel.fit(prices)
        for bid in (0.35, 0.5, 0.8):
            exact = m.expected_uptime(bid)
            iterative = m.expected_uptime_iterative(bid, max_steps=20_000)
            assert exact == pytest.approx(iterative, rel=0.01)


@given(p_fail=st.floats(min_value=0.02, max_value=0.9))
@settings(max_examples=30)
def test_uptime_matches_geometric_closed_form(p_fail):
    m = two_state_model(p_fail)
    assert m.expected_uptime(0.5) == pytest.approx(300.0 / p_fail, rel=1e-6)


@given(
    seq=st.lists(st.sampled_from([0.3, 0.5, 0.8, 1.4]), min_size=20,
                 max_size=200),
    bid=st.sampled_from([0.4, 0.6, 1.0]),
)
@settings(max_examples=30, deadline=None)
def test_exact_equals_iterative_on_random_histories(seq, bid):
    m = PriceMarkovModel.fit(np.array(seq))
    exact = m.expected_uptime(bid)
    iterative = m.expected_uptime_iterative(bid, max_steps=50_000)
    if exact < m._uptime_cap():
        assert exact == pytest.approx(iterative, rel=0.02)


class TestStationaryQueries:
    def test_availability_in_unit_interval(self):
        m = two_state_model(0.2)
        assert 0.0 <= m.availability(0.5) <= 1.0

    def test_expected_price_given_up(self):
        m = two_state_model(0.2)
        assert m.expected_price_given_up(0.5) == pytest.approx(0.3)


class TestCombined:
    def test_sum_of_zone_uptimes(self):
        models = [two_state_model(0.1), two_state_model(0.2)]
        combined = combined_expected_uptime(models, 0.5)
        assert combined == pytest.approx(300.0 / 0.1 + 300.0 / 0.2)

    def test_empty_rejected(self):
        with pytest.raises(MarkovError):
            combined_expected_uptime([], 0.5)

    def test_redundancy_never_decreases_uptime(self):
        one = combined_expected_uptime([two_state_model(0.3)], 0.5)
        three = combined_expected_uptime([two_state_model(0.3)] * 3, 0.5)
        assert three >= one


class TestValidation:
    def test_bad_transition_shape(self):
        with pytest.raises(MarkovError):
            PriceMarkovModel(
                levels=np.array([0.3, 0.4]),
                trans=np.ones((3, 3)) / 3,
                initial=np.array([1.0, 0.0]),
            )

    def test_nonstochastic_rows(self):
        with pytest.raises(MarkovError):
            PriceMarkovModel(
                levels=np.array([0.3, 0.4]),
                trans=np.array([[0.5, 0.4], [0.5, 0.5]]),
                initial=np.array([1.0, 0.0]),
            )

    def test_initial_must_sum_to_one(self):
        with pytest.raises(MarkovError):
            PriceMarkovModel(
                levels=np.array([0.3, 0.4]),
                trans=np.eye(2),
                initial=np.array([0.5, 0.4]),
            )
