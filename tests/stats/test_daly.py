"""Unit and property tests for Daly's checkpoint-interval formulas."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.daly import (
    daly_interval,
    daly_interval_first_order,
    expected_useful_fraction,
)


class TestDalyInterval:
    def test_known_value(self):
        # delta=300, M=36000: sqrt(2*300*36000)*(1+sqrt(300/72000)/3
        # + 300/(18*36000)) - 300
        delta, m = 300.0, 36000.0
        expected = math.sqrt(2 * delta * m) * (
            1 + math.sqrt(delta / (2 * m)) / 3 + delta / (18 * m)
        ) - delta
        assert daly_interval(m, delta) == pytest.approx(expected)

    def test_degenerate_regime_uses_mtbf(self):
        # delta >= 2M: tau = M
        assert daly_interval(100.0, 300.0) == pytest.approx(300.0)

    def test_zero_mtbf_checkpoints_constantly(self):
        assert daly_interval(0.0, 300.0) == 300.0

    def test_never_below_checkpoint_cost(self):
        assert daly_interval(10.0, 300.0) >= 300.0

    def test_nonpositive_cost_rejected(self):
        with pytest.raises(ValueError):
            daly_interval(1000.0, 0.0)

    def test_higher_order_exceeds_first_order(self):
        m, delta = 36000.0, 300.0
        assert daly_interval(m, delta) > daly_interval_first_order(m, delta)

    def test_first_order_known_value(self):
        assert daly_interval_first_order(36000.0, 300.0) == pytest.approx(
            math.sqrt(2 * 300 * 36000) - 300
        )


@given(m=st.floats(min_value=600.0, max_value=1e7),
       delta=st.floats(min_value=1.0, max_value=3600.0))
def test_interval_monotone_in_mtbf(m, delta):
    assert daly_interval(m * 2, delta) >= daly_interval(m, delta) - 1e-6


@given(m=st.floats(min_value=600.0, max_value=1e7),
       delta=st.floats(min_value=1.0, max_value=3600.0))
def test_interval_positive_and_finite(m, delta):
    tau = daly_interval(m, delta)
    assert math.isfinite(tau)
    assert tau >= delta


class TestUsefulFraction:
    def test_in_unit_interval(self):
        assert 0.0 <= expected_useful_fraction(36000.0, 300.0, 3300.0) <= 1.0

    def test_zero_mtbf_means_no_progress(self):
        assert expected_useful_fraction(0.0, 300.0, 3300.0) == 0.0

    def test_large_mtbf_approaches_overhead_limit(self):
        frac = expected_useful_fraction(1e9, 300.0, 3300.0)
        assert frac == pytest.approx(3300.0 / 3600.0, rel=1e-3)

    def test_optimal_interval_beats_extremes(self):
        m, delta = 36000.0, 300.0
        tau_opt = daly_interval(m, delta)
        best = expected_useful_fraction(m, delta, tau_opt)
        assert best >= expected_useful_fraction(m, delta, tau_opt / 8)
        assert best >= expected_useful_fraction(m, delta, tau_opt * 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_useful_fraction(1000.0, 300.0, 0.0)
        with pytest.raises(ValueError):
            expected_useful_fraction(1000.0, -1.0, 300.0)


@given(m=st.floats(min_value=1000.0, max_value=1e6),
       delta=st.floats(min_value=10.0, max_value=1000.0),
       interval=st.floats(min_value=10.0, max_value=1e5))
def test_useful_fraction_bounded(m, delta, interval):
    frac = expected_useful_fraction(m, delta, interval)
    assert 0.0 <= frac <= 1.0
