"""The rolling-window fitter must be invisible in the fitted chains.

``RollingMarkovFitter`` maintains a sliding window's transition counts
and occupancy incrementally; materializing a chain replays
``PriceMarkovModel.fit``'s float pipeline on those counts, so every
window position must yield the *bit-identical* model a full refit of
the same samples produces — same levels, same transition matrix, same
stationary vector.  These tests sweep real evaluation-window zones and
randomized series through overlapping slides, shrinks, grows, and
disjoint jumps.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.market.constants import MARKOV_HISTORY_S, SAMPLE_INTERVAL_S
from repro.stats.markov import MarkovError, PriceMarkovModel, RollingMarkovFitter


def assert_same_chain(incremental: PriceMarkovModel, full: PriceMarkovModel):
    """Bit-identical fit: exact array equality, not approximate."""
    assert np.array_equal(incremental.levels, full.levels)
    assert np.array_equal(incremental.trans, full.trans)
    assert np.array_equal(incremental.initial, full.initial)
    assert incremental.fit_window_s == full.fit_window_s
    assert np.array_equal(incremental.stationary(), full.stationary())


def reference(prices, lo, hi, current_price):
    return PriceMarkovModel.fit(prices[lo:hi], current_price=current_price)


class TestBucketSlides:
    """The oracle's actual access pattern: hourly bucket advances."""

    @pytest.mark.parametrize("window", ["low", "high"])
    def test_every_bucket_boundary_matches_full_fit(self, window):
        from repro.traces.library import evaluation_window

        trace, eval_start = evaluation_window(window)
        history = MARKOV_HISTORY_S // SAMPLE_INTERVAL_S
        per_hour = 3600 // SAMPLE_INTERVAL_S
        for zone in trace.zones:
            prices = zone.prices
            fitter = RollingMarkovFitter(prices)
            i0 = zone.index_at(eval_start)
            # Two days of hourly advances is plenty to cross many
            # distinct chains on the volatile window.
            for hour in range(48):
                hi = i0 + hour * per_hour
                lo = max(hi - history, 0)
                hi = max(hi, lo + 2)
                fitter.set_window(lo, hi)
                current = float(prices[hi - 1])
                assert_same_chain(
                    fitter.model(current), reference(prices, lo, hi, current)
                )

    def test_calm_stretch_dedups_chain_objects(self):
        prices = np.array([0.3, 0.4] * 300)
        fitter = RollingMarkovFitter(prices)
        fitter.set_window(0, 100)
        m1 = fitter.model(0.3)
        fitter.set_window(2, 102)  # same transition multiset
        m2 = fitter.model(0.3)
        assert m2 is m1  # one chain object, shared caches and all


class TestWindowMoves:
    PRICES = np.array(
        [0.3, 0.3, 0.5, 0.3, 0.9, 0.9, 0.3, 0.5, 0.5, 0.3, 0.7, 0.3] * 8
    )

    def check(self, fitter, lo, hi):
        fitter.set_window(lo, hi)
        current = float(self.PRICES[hi - 1])
        assert_same_chain(
            fitter.model(current), reference(self.PRICES, lo, hi, current)
        )

    def test_grow_right(self):
        fitter = RollingMarkovFitter(self.PRICES)
        for hi in range(2, 40):
            self.check(fitter, 0, hi)

    def test_shrink_left_and_right(self):
        fitter = RollingMarkovFitter(self.PRICES)
        self.check(fitter, 0, 60)
        self.check(fitter, 10, 60)  # advance lo
        self.check(fitter, 10, 40)  # retract hi
        self.check(fitter, 5, 45)   # move lo back
        self.check(fitter, 5, 50)   # extend hi again

    def test_disjoint_jump_rebuilds(self):
        fitter = RollingMarkovFitter(self.PRICES)
        self.check(fitter, 0, 20)
        self.check(fitter, 50, 90)  # no overlap: full recount
        self.check(fitter, 51, 91)  # then incremental again

    def test_same_window_is_a_noop(self):
        fitter = RollingMarkovFitter(self.PRICES)
        self.check(fitter, 0, 30)
        counts_before = dict(fitter._pair_counts)
        fitter.set_window(0, 30)
        assert fitter._pair_counts == counts_before

    def test_out_of_range_window_rejected(self):
        fitter = RollingMarkovFitter(self.PRICES)
        with pytest.raises(MarkovError):
            fitter.set_window(-1, 10)
        with pytest.raises(MarkovError):
            fitter.set_window(0, self.PRICES.size + 1)
        with pytest.raises(MarkovError):
            fitter.set_window(10, 5)

    def test_too_small_window_rejected_at_materialize(self):
        fitter = RollingMarkovFitter(self.PRICES)
        fitter.set_window(3, 4)
        with pytest.raises(MarkovError):
            fitter.model(0.3)


@settings(deadline=None, max_examples=60)
@given(
    seq=st.lists(
        st.sampled_from([0.25, 0.4, 0.55, 0.9, 1.3]), min_size=24, max_size=96
    ),
    moves=st.lists(
        st.tuples(st.integers(0, 90), st.integers(2, 40)),
        min_size=1,
        max_size=8,
    ),
)
def test_random_series_random_slides_bit_identical(seq, moves):
    prices = np.array(seq)
    fitter = RollingMarkovFitter(prices)
    for lo, span in moves:
        lo = min(lo, prices.size - 2)
        hi = min(lo + span, prices.size)
        if hi - lo < 2:
            continue
        fitter.set_window(lo, hi)
        current = float(prices[hi - 1])
        assert_same_chain(
            fitter.model(current), reference(prices, lo, hi, current)
        )


class TestSeedStationary:
    def test_seed_is_used(self):
        prices = np.array([0.3, 0.5, 0.3, 0.9, 0.3, 0.5] * 20)
        m = PriceMarkovModel.fit(prices)
        expected = PriceMarkovModel.fit(prices).stationary()
        m.seed_stationary(expected)
        assert m.stationary() is not None
        assert np.array_equal(m.stationary(), expected)

    def test_local_result_wins_over_late_seed(self):
        prices = np.array([0.3, 0.5, 0.3, 0.9, 0.3, 0.5] * 20)
        m = PriceMarkovModel.fit(prices)
        local = m.stationary()
        bogus = np.full(m.num_states, 1.0 / m.num_states)
        m.seed_stationary(bogus)
        assert m.stationary() is local

    def test_shape_mismatch_rejected(self):
        prices = np.array([0.3, 0.5, 0.3, 0.9, 0.3, 0.5] * 20)
        m = PriceMarkovModel.fit(prices)
        with pytest.raises(MarkovError):
            m.seed_stationary(np.ones(m.num_states + 1))

    def test_seed_shared_with_initial_copies(self):
        prices = np.array([0.3, 0.5, 0.3, 0.9, 0.3, 0.5] * 20)
        m = PriceMarkovModel.fit(prices)
        v = PriceMarkovModel.fit(prices).stationary()
        m.seed_stationary(v)
        clone = m.with_initial(0.9)
        assert np.array_equal(clone.stationary(), v)
