"""Unit tests for the VAR estimator (Section 3.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.var import (
    VARError,
    fit_var,
    select_order_aic,
    zone_dependence_report,
)


def simulate_var1(
    a_own: float, a_cross: float, n: int = 4000, seed: int = 0, k: int = 2
) -> np.ndarray:
    """Simulate a stationary VAR(1) with known coefficients."""
    rng = np.random.default_rng(seed)
    coef = np.full((k, k), a_cross)
    np.fill_diagonal(coef, a_own)
    y = np.zeros((n, k))
    for t in range(1, n):
        y[t] = coef @ y[t - 1] + 0.1 * rng.standard_normal(k)
    return y


class TestFitVar:
    def test_recovers_var1_coefficients(self):
        y = simulate_var1(0.8, 0.05)
        fit = fit_var(y, order=1)
        assert fit.coefficients[0][0, 0] == pytest.approx(0.8, abs=0.05)
        assert fit.coefficients[0][0, 1] == pytest.approx(0.05, abs=0.05)

    def test_own_vs_cross_magnitudes(self):
        y = simulate_var1(0.8, 0.01)
        fit = fit_var(y, order=1)
        assert fit.own_effect_magnitude() > 10 * fit.cross_effect_magnitude()

    def test_effect_ratio_infinite_when_independent(self):
        fit = fit_var(simulate_var1(0.8, 0.0, n=200), order=1)
        assert fit.effect_ratio() > 5  # near-zero cross effects

    def test_nobs(self):
        y = simulate_var1(0.5, 0.0, n=100)
        fit = fit_var(y, order=3)
        assert fit.nobs == 97

    def test_validation(self):
        y = simulate_var1(0.5, 0.0, n=100)
        with pytest.raises(VARError):
            fit_var(y, order=0)
        with pytest.raises(VARError):
            fit_var(y[:3], order=5)
        with pytest.raises(VARError):
            fit_var(y[:, 0], order=1)  # 1-D

    def test_predict_next(self):
        y = simulate_var1(0.9, 0.0, n=2000)
        fit = fit_var(y, order=1)
        pred = fit.predict_next(y[-1:])
        assert pred.shape == (2,)
        assert pred == pytest.approx(fit.intercept + fit.coefficients[0] @ y[-1],
                                     rel=1e-9)

    def test_predict_shape_checked(self):
        fit = fit_var(simulate_var1(0.5, 0.0, n=100), order=2)
        with pytest.raises(VARError):
            fit.predict_next(np.zeros((1, 2)))


class TestOrderSelection:
    def test_aic_selects_reasonable_order(self):
        y = simulate_var1(0.8, 0.02, n=3000)
        best = select_order_aic(y, max_order=5)
        assert 1 <= best.order <= 5

    def test_aic_improves_over_misfit(self):
        # AR(2)-like process: y_t = 0.5 y_{t-1} + 0.3 y_{t-2} + e
        rng = np.random.default_rng(1)
        n = 3000
        y = np.zeros((n, 1))
        for t in range(2, n):
            y[t] = 0.5 * y[t - 1] + 0.3 * y[t - 2] + 0.1 * rng.standard_normal(1)
        best = select_order_aic(y, max_order=6)
        assert best.order >= 2

    def test_bad_max_order(self):
        with pytest.raises(VARError):
            select_order_aic(simulate_var1(0.5, 0.0, n=50), max_order=0)


class TestDependenceReport:
    def test_report_fields(self):
        y = simulate_var1(0.8, 0.02, n=2000)
        report = zone_dependence_report(y, max_order=4)
        assert set(report) == {
            "order", "nobs", "own_effect", "cross_effect", "ratio",
            "orders_of_magnitude",
        }
        assert report["ratio"] > 1.0

    def test_canonical_archive_shows_paper_structure(self):
        """The Section 3.1 result on the synthetic archive itself."""
        from repro.traces.library import evaluation_window

        trace, eval_start = evaluation_window("high")
        series = trace.slice(eval_start, eval_start + 14 * 86400.0).matrix().T
        report = zone_dependence_report(series, max_order=6)
        # own-zone effects dominate by about 1-2 orders of magnitude
        assert 0.5 <= report["orders_of_magnitude"] <= 2.5
