"""Unit tests for availability segmentation (Figure 2 machinery)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.availability import (
    availability_fraction,
    availability_report,
    combined_segments,
    mask_to_segments,
    mean_up_run_s,
    zone_segments,
)
from repro.traces.model import SpotPriceTrace, ZoneTrace


def zone(prices):
    return ZoneTrace(zone="za", start_time=0.0, prices=np.asarray(prices, float))


class TestSegments:
    def test_single_run(self):
        segs = mask_to_segments(np.array([True, True, True]), 0.0, 300.0)
        assert len(segs) == 1
        assert segs[0].up and segs[0].duration_s == 900.0

    def test_alternating(self):
        segs = mask_to_segments(np.array([True, False, True]), 0.0, 300.0)
        assert [s.up for s in segs] == [True, False, True]
        assert [s.start_time for s in segs] == [0.0, 300.0, 600.0]

    def test_empty(self):
        assert mask_to_segments(np.array([], dtype=bool), 0.0, 300.0) == []

    def test_segments_partition_time(self):
        mask = np.array([True, False, False, True, True])
        segs = mask_to_segments(mask, 100.0, 300.0)
        assert segs[0].start_time == 100.0
        for a, b in zip(segs, segs[1:]):
            assert a.end_time == b.start_time
        assert segs[-1].end_time == 100.0 + 5 * 300.0

    def test_zone_segments_threshold(self):
        z = zone([0.3, 0.9, 0.3])
        segs = zone_segments(z, 0.5)
        assert [s.up for s in segs] == [True, False, True]


class TestFractionsAndReport:
    def test_availability_fraction(self):
        segs = mask_to_segments(np.array([True, True, False, False]), 0.0, 300.0)
        assert availability_fraction(segs) == 0.5

    def test_empty_fraction_zero(self):
        assert availability_fraction([]) == 0.0

    def test_combined_segments(self):
        t = SpotPriceTrace.from_arrays(
            0.0, {"za": [0.3, 0.9], "zb": [0.9, 0.3]}
        )
        segs = combined_segments(t, 0.5)
        assert len(segs) == 1 and segs[0].up

    def test_report(self):
        t = SpotPriceTrace.from_arrays(
            0.0, {"za": [0.3, 0.9, 0.9, 0.9], "zb": [0.9, 0.3, 0.9, 0.9]}
        )
        rep = availability_report(t, 0.5)
        assert rep.per_zone["za"] == 0.25
        assert rep.per_zone["zb"] == 0.25
        assert rep.combined == 0.5
        assert rep.redundancy_gain() == pytest.approx(0.25)


class TestMeanUpRun:
    def test_known_runs(self):
        z = zone([0.3, 0.3, 0.9, 0.3, 0.9, 0.3, 0.3, 0.3])
        # up runs: 2, 1, 3 samples -> mean 2 samples = 600 s
        assert mean_up_run_s(z, 0.5) == pytest.approx(600.0)

    def test_never_up(self):
        z = zone([0.9, 0.9])
        assert mean_up_run_s(z, 0.5) == 0.0

    def test_always_up(self):
        z = zone([0.3, 0.3, 0.3])
        assert mean_up_run_s(z, 0.5) == pytest.approx(900.0)


@given(
    mask=st.lists(st.booleans(), min_size=1, max_size=200)
)
def test_segments_reconstruct_mask(mask):
    mask = np.array(mask)
    segs = mask_to_segments(mask, 0.0, 300.0)
    # total covered time and up time match the mask exactly
    assert sum(s.duration_s for s in segs) == pytest.approx(mask.size * 300.0)
    up_time = sum(s.duration_s for s in segs if s.up)
    assert up_time == pytest.approx(mask.sum() * 300.0)
    # adjacent segments alternate state
    for a, b in zip(segs, segs[1:]):
        assert a.up != b.up
