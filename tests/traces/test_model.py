"""Unit tests for trace containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.market.constants import SAMPLE_INTERVAL_S
from repro.traces.model import (
    SpotPriceTrace,
    TraceError,
    ZoneTrace,
    overlapping_starts,
)


def zt(prices, start=0.0, zone="za"):
    return ZoneTrace(zone=zone, start_time=start, prices=np.asarray(prices, float))


class TestZoneTraceConstruction:
    def test_basic_properties(self):
        z = zt([0.3, 0.4, 0.5], start=1000.0)
        assert len(z) == 3
        assert z.start_time == 1000.0
        assert z.end_time == 1000.0 + 3 * SAMPLE_INTERVAL_S
        assert z.duration_s == 900.0

    def test_prices_are_read_only(self):
        z = zt([0.3, 0.4])
        with pytest.raises(ValueError):
            z.prices[0] = 1.0

    def test_rejects_empty(self):
        with pytest.raises(TraceError):
            zt([])

    def test_rejects_2d(self):
        with pytest.raises(TraceError):
            ZoneTrace(zone="za", start_time=0.0, prices=np.ones((2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(TraceError):
            zt([0.3, float("nan")])

    def test_rejects_nonpositive_prices(self):
        with pytest.raises(TraceError):
            zt([0.3, 0.0])
        with pytest.raises(TraceError):
            zt([0.3, -0.1])

    def test_rejects_bad_interval(self):
        with pytest.raises(TraceError):
            ZoneTrace(zone="za", start_time=0.0, prices=np.array([0.3]),
                      interval_s=0)


class TestZoneTraceLookups:
    def test_price_piecewise_constant(self):
        z = zt([0.3, 0.4])
        assert z.price_at(0.0) == 0.3
        assert z.price_at(299.9) == 0.3
        assert z.price_at(300.0) == 0.4
        assert z.price_at(599.9) == 0.4

    def test_price_outside_range(self):
        z = zt([0.3, 0.4])
        with pytest.raises(TraceError):
            z.price_at(-1.0)
        with pytest.raises(TraceError):
            z.price_at(600.0)

    def test_times_axis(self):
        z = zt([0.3, 0.4, 0.5], start=100.0)
        assert list(z.times) == [100.0, 400.0, 700.0]

    def test_slice_covers_requested_span(self):
        z = zt([0.1, 0.2, 0.3, 0.4, 0.5])
        s = z.slice(300.0, 900.0)
        assert list(s.prices) == [0.2, 0.3]
        assert s.start_time == 300.0

    def test_slice_snaps_right_edge_outward(self):
        z = zt([0.1, 0.2, 0.3])
        s = z.slice(0.0, 450.0)  # 450 lands mid-sample; include it
        assert list(s.prices) == [0.1, 0.2]

    def test_empty_slice_rejected(self):
        z = zt([0.1, 0.2])
        with pytest.raises(TraceError):
            z.slice(300.0, 300.0)

    def test_window(self):
        z = zt([0.1, 0.2, 0.3, 0.4])
        w = z.window(300.0, 600.0)
        assert list(w.prices) == [0.2, 0.3]


class TestZoneTraceStatistics:
    def test_mean_variance_min_max(self):
        z = zt([0.2, 0.4])
        assert z.mean() == pytest.approx(0.3)
        assert z.variance() == pytest.approx(0.01)
        assert z.minimum() == 0.2
        assert z.maximum() == 0.4

    def test_availability(self):
        z = zt([0.2, 0.4, 0.6, 0.8])
        assert z.availability(0.5) == pytest.approx(0.5)
        assert z.availability(0.1) == 0.0
        assert z.availability(1.0) == 1.0

    def test_availability_boundary_inclusive(self):
        z = zt([0.5])
        assert z.availability(0.5) == 1.0

    def test_rising_edges(self):
        z = zt([0.3, 0.3, 0.5, 0.4, 0.6])
        assert list(z.rising_edges()) == [2, 4]

    def test_distinct_prices_sorted(self):
        z = zt([0.5, 0.3, 0.5, 0.4])
        assert list(z.distinct_prices()) == [0.3, 0.4, 0.5]


class TestSpotPriceTrace:
    def _trace(self):
        return SpotPriceTrace.from_arrays(
            0.0, {"za": [0.3, 0.4], "zb": [0.5, 0.2]}
        )

    def test_alignment_checks(self):
        a = zt([0.3, 0.4], zone="za")
        b = zt([0.3, 0.4], start=300.0, zone="zb")
        with pytest.raises(TraceError):
            SpotPriceTrace(zones=(a, b))

    def test_length_mismatch_rejected(self):
        a = zt([0.3, 0.4], zone="za")
        b = zt([0.3], zone="zb")
        with pytest.raises(TraceError):
            SpotPriceTrace(zones=(a, b))

    def test_duplicate_zone_names_rejected(self):
        a = zt([0.3], zone="za")
        b = zt([0.4], zone="za")
        with pytest.raises(TraceError):
            SpotPriceTrace(zones=(a, b))

    def test_interval_mismatch_rejected(self):
        a = zt([0.3], zone="za")
        b = ZoneTrace(zone="zb", start_time=0.0, prices=np.array([0.4]),
                      interval_s=600)
        with pytest.raises(TraceError):
            SpotPriceTrace(zones=(a, b))

    def test_zone_lookup(self):
        t = self._trace()
        assert t.zone("zb").price_at(0.0) == 0.5
        with pytest.raises(TraceError):
            t.zone("nope")

    def test_matrix_shape(self):
        t = self._trace()
        assert t.matrix().shape == (2, 2)

    def test_prices_at(self):
        t = self._trace()
        assert t.prices_at(300.0) == {"za": 0.4, "zb": 0.2}

    def test_combined_availability(self):
        t = self._trace()
        # bid 0.35: sample 0 -> za up; sample 1 -> zb up => combined 1.0
        assert t.combined_availability(0.35) == 1.0
        # bid 0.25: sample 0 -> none; sample 1 -> zb => 0.5
        assert t.combined_availability(0.25) == 0.5

    def test_select_zones_order(self):
        t = self._trace()
        sel = t.select_zones(["zb"])
        assert sel.zone_names == ("zb",)

    def test_slice_aligned(self):
        t = SpotPriceTrace.from_arrays(
            0.0, {"za": [0.1, 0.2, 0.3], "zb": [0.4, 0.5, 0.6]}
        )
        s = t.slice(300.0, 900.0)
        assert len(s) == 2
        assert s.zone("zb").price_at(300.0) == 0.5

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError):
            SpotPriceTrace(zones=())


class TestOverlappingStarts:
    def test_spacing_and_count(self):
        starts = overlapping_starts(100 * 3600, 23 * 3600, 10)
        assert len(starts) == 10
        assert starts[0] == 0.0
        assert starts[-1] <= (100 - 23) * 3600

    def test_snapped_to_grid(self):
        starts = overlapping_starts(50 * 3600, 23 * 3600, 7)
        assert all(s % SAMPLE_INTERVAL_S == 0 for s in starts)

    def test_single_start(self):
        starts = overlapping_starts(24 * 3600, 23 * 3600, 1)
        assert list(starts) == [0.0]

    def test_too_long_experiment_rejected(self):
        with pytest.raises(ValueError):
            overlapping_starts(10 * 3600, 23 * 3600, 5)

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            overlapping_starts(100 * 3600, 23 * 3600, 0)


class TestSliceBoundaries:
    def trace(self):
        return ZoneTrace(zone="za", start_time=1000.0,
                         prices=np.array([0.3, 0.5, 0.4, 0.8, 0.2, 0.6]),
                         interval_s=300)

    def test_window_start_exactly_on_sample(self):
        z = self.trace()
        w = z.window(1000.0 + 2 * 300, 2 * 300)
        assert w.start_time == 1600.0
        assert np.array_equal(w.prices, np.array([0.4, 0.8]))

    def test_window_past_trace_end_clamps(self):
        z = self.trace()
        w = z.window(1000.0 + 4 * 300, 10 * 300)  # runs past the end
        assert np.array_equal(w.prices, np.array([0.2, 0.6]))
        assert w.end_time == z.end_time

    def test_zero_length_window_rejected(self):
        z = self.trace()
        with pytest.raises(TraceError):
            z.window(1000.0, 0.0)
        with pytest.raises(TraceError):
            z.slice(1300.0, 1300.0)

    def test_mid_sample_start_snaps_to_covering_sample(self):
        z = self.trace()
        w = z.window(1000.0 + 2 * 300 + 150, 300)
        assert w.start_time == 1600.0  # the sample covering t0
        assert w.prices[0] == 0.4


class TestDerivedCacheIsolation:
    """Slices must never inherit the parent's memoized indices."""

    def trace(self):
        return ZoneTrace(zone="za", start_time=0.0,
                         prices=np.array([0.3, 0.5, 0.3, 0.5, 0.3, 0.5, 0.3]),
                         interval_s=300)

    def test_slice_gets_fresh_cache(self):
        z = self.trace()
        parent_crossings = z.threshold_crossings(0.4)
        parent_edges = z.rising_edges()
        w = z.slice(2 * 300, 6 * 300)
        assert w._derived == {}  # nothing leaked from the parent
        assert np.array_equal(w.threshold_crossings(0.4),
                              np.flatnonzero(np.diff(w.prices <= 0.4)) + 1)
        assert w.threshold_crossings(0.4) is not parent_crossings
        assert w.rising_edges() is not parent_edges

    def test_slice_indices_are_local(self):
        z = self.trace()
        z.threshold_crossings(0.4)
        w = z.slice(300, 7 * 300)  # shifted by one sample
        # same price pattern flips at different *local* indices, so a
        # parent-cache leak would corrupt every crossing lookup
        assert not np.array_equal(
            w.threshold_crossings(0.4), z.threshold_crossings(0.4)
        )
        assert np.array_equal(
            w.threshold_crossings(0.4),
            np.flatnonzero(np.diff(w.prices <= 0.4)) + 1,
        )


class TestSeedThresholdCrossings:
    def trace(self):
        return ZoneTrace(zone="za", start_time=0.0,
                         prices=np.array([0.3, 0.5, 0.3, 0.5, 0.3]),
                         interval_s=300)

    def test_seeded_index_is_served(self):
        z = self.trace()
        expected = np.flatnonzero(np.diff(z.prices <= 0.4)) + 1
        z.seed_threshold_crossings(0.4, expected)
        assert z.threshold_crossings(0.4) is not None
        assert np.array_equal(z.threshold_crossings(0.4), expected)
        assert z.next_threshold_crossing(0, 0.4) == int(expected[0])

    def test_locally_computed_index_wins(self):
        z = self.trace()
        local = z.threshold_crossings(0.4)
        z.seed_threshold_crossings(0.4, np.array([99], dtype=np.int64))
        assert z.threshold_crossings(0.4) is local

    def test_seeded_array_read_only(self):
        z = self.trace()
        idx = np.array([1, 2], dtype=np.int64)
        z.seed_threshold_crossings(0.4, idx)
        with pytest.raises(ValueError):
            z.threshold_crossings(0.4)[0] = 5
