"""Unit tests for CSV trace I/O."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.traces.io import (
    format_timestamp,
    parse_timestamp,
    read_price_events,
    read_trace,
    resample_events,
    trace_to_csv_string,
    write_trace,
)
from repro.traces.model import SpotPriceTrace, TraceError

CSV = """timestamp,availability_zone,instance_type,product_description,spot_price
2013-01-01T00:00:00Z,us-east-1a,cc2.8xlarge,Linux/UNIX,0.270
2013-01-01T00:00:00Z,us-east-1b,cc2.8xlarge,Linux/UNIX,0.300
2013-01-01T01:00:00Z,us-east-1a,cc2.8xlarge,Linux/UNIX,0.500
2013-01-01T02:00:00Z,us-east-1a,cc2.8xlarge,Linux/UNIX,0.270
2013-01-01T02:30:00Z,us-east-1b,cc2.8xlarge,Linux/UNIX,0.310
"""


class TestTimestamps:
    def test_parse_z_suffix(self):
        assert parse_timestamp("2013-01-01T00:00:00Z") == 1356998400.0

    def test_parse_offset(self):
        assert parse_timestamp("2013-01-01T01:00:00+01:00") == 1356998400.0

    def test_parse_naive_assumed_utc(self):
        assert parse_timestamp("2013-01-01T00:00:00") == 1356998400.0

    def test_bad_timestamp(self):
        with pytest.raises(TraceError):
            parse_timestamp("yesterday")

    def test_round_trip(self):
        t = 1356998400.0
        assert parse_timestamp(format_timestamp(t)) == t


class TestReadEvents:
    def test_events_sorted_per_zone(self):
        shuffled = CSV.splitlines()
        shuffled = [shuffled[0]] + list(reversed(shuffled[1:]))
        events = read_price_events(io.StringIO("\n".join(shuffled)))
        times_a = [t for t, _ in events["us-east-1a"]]
        assert times_a == sorted(times_a)

    def test_missing_columns_rejected(self):
        with pytest.raises(TraceError):
            read_price_events(io.StringIO("a,b\n1,2\n"))

    def test_empty_file_rejected(self):
        with pytest.raises(TraceError):
            read_price_events(io.StringIO(""))

    def test_no_rows_rejected(self):
        header = CSV.splitlines()[0]
        with pytest.raises(TraceError):
            read_price_events(io.StringIO(header + "\n"))

    def test_nonpositive_price_rejected(self):
        bad = CSV + "2013-01-01T03:00:00Z,us-east-1a,cc2.8xlarge,Linux/UNIX,0\n"
        with pytest.raises(TraceError):
            read_price_events(io.StringIO(bad))


class TestResample:
    def test_forward_fill(self):
        events = [(0.0, 0.3), (700.0, 0.5)]
        grid = resample_events(events, 0.0, 4)
        # samples at 0, 300, 600 before the change; 900 after
        assert list(grid) == [0.3, 0.3, 0.3, 0.5]

    def test_event_after_start_rejected(self):
        with pytest.raises(TraceError):
            resample_events([(500.0, 0.3)], 0.0, 3)

    def test_empty_events_rejected(self):
        with pytest.raises(TraceError):
            resample_events([], 0.0, 3)


class TestReadWrite:
    def test_read_trace_from_csv(self):
        t = read_trace(io.StringIO(CSV))
        assert t.zone_names == ("us-east-1a", "us-east-1b")
        assert t.zone("us-east-1a").price_at(t.start_time) == 0.27
        # after the 01:00 change
        one_am = parse_timestamp("2013-01-01T01:00:00Z")
        assert t.zone("us-east-1a").price_at(one_am) == 0.5

    def test_grid_spans_overlap_only(self):
        t = read_trace(io.StringIO(CSV))
        # both zones defined from 00:00; last events 02:00 and 02:30
        assert t.start_time == parse_timestamp("2013-01-01T00:00:00Z")
        assert t.end_time >= parse_timestamp("2013-01-01T02:00:00Z")

    def test_round_trip_preserves_grid(self):
        original = SpotPriceTrace.from_arrays(
            1356998400.0,
            {"za": [0.3, 0.3, 0.5, 0.4], "zb": [0.2, 0.2, 0.2, 0.9]},
        )
        text = trace_to_csv_string(original)
        restored = read_trace(io.StringIO(text))
        assert np.allclose(restored.matrix(), original.matrix())
        assert restored.start_time == original.start_time

    def test_write_emits_change_rows_only(self):
        trace = SpotPriceTrace.from_arrays(
            0.0, {"za": [0.3, 0.3, 0.3, 0.5]}
        )
        buf = io.StringIO()
        rows = write_trace(trace, buf)
        assert rows == 2  # initial + one change

    def test_file_round_trip(self, tmp_path):
        trace = SpotPriceTrace.from_arrays(
            1356998400.0, {"za": [0.3, 0.4, 0.5]}
        )
        path = tmp_path / "t.csv"
        write_trace(trace, path)
        restored = read_trace(path)
        assert np.allclose(restored.matrix(), trace.matrix())


BASE = 1356998400.0  # 2013-01-01T00:00:00Z


class TestDuplicateTimestamps:
    """Equal-timestamp change events must resolve deterministically:
    the last row in *file order* wins (regression for the
    forward-fill picking a price by searchsorted tie-breaking)."""

    def _csv(self, rows):
        header = ",".join(
            ("timestamp", "availability_zone", "instance_type",
             "product_description", "spot_price")
        )
        lines = [header] + [
            f"{ts},za,cc2.8xlarge,Linux/UNIX,{price}" for ts, price in rows
        ]
        return io.StringIO("\n".join(lines) + "\n")

    def test_last_row_in_file_order_wins(self):
        events = read_price_events(self._csv([
            ("2013-01-01T00:10:00Z", "0.9"),
            ("2013-01-01T00:00:00Z", "0.3"),
            ("2013-01-01T00:10:00Z", "0.5"),  # same instant, later row
        ]))
        prices = resample_events(events["za"], BASE, 4)
        assert prices.tolist() == [0.3, 0.3, 0.5, 0.5]

    def test_duplicates_are_dropped_not_kept(self):
        events = read_price_events(self._csv([
            ("2013-01-01T00:00:00Z", "0.3"),
            ("2013-01-01T00:00:00Z", "0.4"),
            ("2013-01-01T00:05:00Z", "0.6"),
            ("2013-01-01T00:05:00Z", "0.2"),
        ]))
        times = [t for t, _ in events["za"]]
        assert times == sorted(set(times))  # unique and sorted
        assert events["za"] == [(BASE, 0.4), (BASE + 300.0, 0.2)]

    def test_duplicate_at_grid_start(self):
        events = read_price_events(self._csv([
            ("2013-01-01T00:00:00Z", "0.7"),
            ("2013-01-01T00:00:00Z", "0.3"),
        ]))
        prices = resample_events(events["za"], BASE, 2)
        assert prices.tolist() == [0.3, 0.3]

    def test_descending_duplicate_prices_keep_file_order(self):
        # would fail under any tie-break that compares prices
        events = read_price_events(self._csv([
            ("2013-01-01T00:10:00Z", "0.1"),
            ("2013-01-01T00:10:00Z", "0.9"),
            ("2013-01-01T00:00:00Z", "0.5"),
        ]))
        assert events["za"][-1] == (BASE + 600.0, 0.9)


class TestSubSecondPrecision:
    """CSV round-trips must not truncate fractional seconds
    (regression: ``timespec="seconds"`` shifted every change event of
    a fractional-second grid up to 1 s earlier)."""

    def test_format_preserves_fraction(self):
        assert format_timestamp(100.5) == "1970-01-01T00:01:40.500000Z"

    def test_format_keeps_compact_form_for_whole_seconds(self):
        assert format_timestamp(BASE) == "2013-01-01T00:00:00Z"

    def test_parse_format_round_trip_fractional(self):
        for t in (0.5, BASE + 0.25, BASE + 600.5):
            assert parse_timestamp(format_timestamp(t)) == t

    def test_change_events_round_trip_exactly(self):
        from repro.traces.model import ZoneTrace

        zone = ZoneTrace(zone="za", start_time=BASE + 0.5,
                         prices=np.array([0.3, 0.3, 0.5, 0.5, 0.7]))
        buf = io.StringIO()
        write_trace(SpotPriceTrace(zones=(zone,)), buf)
        buf.seek(0)
        events = read_price_events(buf)["za"]
        assert events == [(BASE + 0.5, 0.3), (BASE + 600.5, 0.5),
                          (BASE + 1200.5, 0.7)]

    def test_fractional_grid_round_trip_does_not_shift_prices(self):
        # The change truly happens at BASE+600.5; truncation used to
        # move it to BASE+600, flipping the resampled price at that
        # exact grid point.
        from repro.traces.model import ZoneTrace

        zone = ZoneTrace(zone="za", start_time=BASE + 0.5,
                         prices=np.array([0.3, 0.3, 0.5, 0.5, 0.7]))
        buf = io.StringIO()
        write_trace(SpotPriceTrace(zones=(zone,)), buf)
        buf.seek(0)
        restored = read_trace(buf)
        assert restored.zone("za").price_at(BASE + 600.0) == 0.3

    def test_integral_grid_round_trip_is_exact(self):
        # last sample changes in every zone, so the change-event CSV
        # covers the full grid and nothing is trimmed on read-back
        original = SpotPriceTrace.from_arrays(
            BASE, {"za": [0.3, 0.31, 0.29, 0.3], "zb": [0.4, 0.4, 0.5, 0.6]}
        )
        restored = read_trace(io.StringIO(trace_to_csv_string(original)))
        assert restored.start_time == original.start_time
        assert (restored.matrix() == original.matrix()).all()
