"""Unit tests for CSV trace I/O."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.traces.io import (
    format_timestamp,
    parse_timestamp,
    read_price_events,
    read_trace,
    resample_events,
    trace_to_csv_string,
    write_trace,
)
from repro.traces.model import SpotPriceTrace, TraceError

CSV = """timestamp,availability_zone,instance_type,product_description,spot_price
2013-01-01T00:00:00Z,us-east-1a,cc2.8xlarge,Linux/UNIX,0.270
2013-01-01T00:00:00Z,us-east-1b,cc2.8xlarge,Linux/UNIX,0.300
2013-01-01T01:00:00Z,us-east-1a,cc2.8xlarge,Linux/UNIX,0.500
2013-01-01T02:00:00Z,us-east-1a,cc2.8xlarge,Linux/UNIX,0.270
2013-01-01T02:30:00Z,us-east-1b,cc2.8xlarge,Linux/UNIX,0.310
"""


class TestTimestamps:
    def test_parse_z_suffix(self):
        assert parse_timestamp("2013-01-01T00:00:00Z") == 1356998400.0

    def test_parse_offset(self):
        assert parse_timestamp("2013-01-01T01:00:00+01:00") == 1356998400.0

    def test_parse_naive_assumed_utc(self):
        assert parse_timestamp("2013-01-01T00:00:00") == 1356998400.0

    def test_bad_timestamp(self):
        with pytest.raises(TraceError):
            parse_timestamp("yesterday")

    def test_round_trip(self):
        t = 1356998400.0
        assert parse_timestamp(format_timestamp(t)) == t


class TestReadEvents:
    def test_events_sorted_per_zone(self):
        shuffled = CSV.splitlines()
        shuffled = [shuffled[0]] + list(reversed(shuffled[1:]))
        events = read_price_events(io.StringIO("\n".join(shuffled)))
        times_a = [t for t, _ in events["us-east-1a"]]
        assert times_a == sorted(times_a)

    def test_missing_columns_rejected(self):
        with pytest.raises(TraceError):
            read_price_events(io.StringIO("a,b\n1,2\n"))

    def test_empty_file_rejected(self):
        with pytest.raises(TraceError):
            read_price_events(io.StringIO(""))

    def test_no_rows_rejected(self):
        header = CSV.splitlines()[0]
        with pytest.raises(TraceError):
            read_price_events(io.StringIO(header + "\n"))

    def test_nonpositive_price_rejected(self):
        bad = CSV + "2013-01-01T03:00:00Z,us-east-1a,cc2.8xlarge,Linux/UNIX,0\n"
        with pytest.raises(TraceError):
            read_price_events(io.StringIO(bad))


class TestResample:
    def test_forward_fill(self):
        events = [(0.0, 0.3), (700.0, 0.5)]
        grid = resample_events(events, 0.0, 4)
        # samples at 0, 300, 600 before the change; 900 after
        assert list(grid) == [0.3, 0.3, 0.3, 0.5]

    def test_event_after_start_rejected(self):
        with pytest.raises(TraceError):
            resample_events([(500.0, 0.3)], 0.0, 3)

    def test_empty_events_rejected(self):
        with pytest.raises(TraceError):
            resample_events([], 0.0, 3)


class TestReadWrite:
    def test_read_trace_from_csv(self):
        t = read_trace(io.StringIO(CSV))
        assert t.zone_names == ("us-east-1a", "us-east-1b")
        assert t.zone("us-east-1a").price_at(t.start_time) == 0.27
        # after the 01:00 change
        one_am = parse_timestamp("2013-01-01T01:00:00Z")
        assert t.zone("us-east-1a").price_at(one_am) == 0.5

    def test_grid_spans_overlap_only(self):
        t = read_trace(io.StringIO(CSV))
        # both zones defined from 00:00; last events 02:00 and 02:30
        assert t.start_time == parse_timestamp("2013-01-01T00:00:00Z")
        assert t.end_time >= parse_timestamp("2013-01-01T02:00:00Z")

    def test_round_trip_preserves_grid(self):
        original = SpotPriceTrace.from_arrays(
            1356998400.0,
            {"za": [0.3, 0.3, 0.5, 0.4], "zb": [0.2, 0.2, 0.2, 0.9]},
        )
        text = trace_to_csv_string(original)
        restored = read_trace(io.StringIO(text))
        assert np.allclose(restored.matrix(), original.matrix())
        assert restored.start_time == original.start_time

    def test_write_emits_change_rows_only(self):
        trace = SpotPriceTrace.from_arrays(
            0.0, {"za": [0.3, 0.3, 0.3, 0.5]}
        )
        buf = io.StringIO()
        rows = write_trace(trace, buf)
        assert rows == 2  # initial + one change

    def test_file_round_trip(self, tmp_path):
        trace = SpotPriceTrace.from_arrays(
            1356998400.0, {"za": [0.3, 0.4, 0.5]}
        )
        path = tmp_path / "t.csv"
        write_trace(trace, path)
        restored = read_trace(path)
        assert np.allclose(restored.matrix(), trace.matrix())
