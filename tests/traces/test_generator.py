"""Unit tests for the synthetic price generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces.generator import (
    ZoneRegimeConfig,
    calm_zone_config,
    generate_zones,
    inject_spike,
    vary_zone_configs,
    volatile_zone_config,
)


class TestConfigValidation:
    def test_calm_defaults_valid(self):
        calm_zone_config()

    def test_volatile_defaults_valid(self):
        volatile_zone_config()

    def test_rejects_negative_base(self):
        with pytest.raises(ValueError):
            calm_zone_config(base_price=-0.1)

    def test_rejects_bad_probabilities(self):
        cfg = volatile_zone_config()
        with pytest.raises(ValueError):
            ZoneRegimeConfig(**{**cfg.__dict__, "spike_prob": 1.5})

    def test_rejects_short_spike_duration(self):
        cfg = volatile_zone_config()
        with pytest.raises(ValueError):
            ZoneRegimeConfig(**{**cfg.__dict__, "spike_mean_duration": 0.5})

    def test_rejects_max_below_floor(self):
        cfg = calm_zone_config()
        with pytest.raises(ValueError):
            ZoneRegimeConfig(**{**cfg.__dict__, "max_price": 0.1})

    def test_base_below_floor_allowed(self):
        # floor-dwelling calm months rely on this
        cfg = calm_zone_config(base_price=0.20)
        assert cfg.base_price < cfg.floor_price


class TestGeneration:
    def _gen(self, cfg=None, n=2000, seed=1, zones=("za", "zb")):
        cfg = cfg or volatile_zone_config()
        rng = np.random.default_rng(seed)
        return generate_zones({z: cfg for z in zones}, n, rng)

    def test_shape_and_alignment(self):
        t = self._gen()
        assert t.num_zones == 2
        assert len(t) == 2000
        assert t.interval_s == 300

    def test_reproducible_from_seed(self):
        a = self._gen(seed=42)
        b = self._gen(seed=42)
        assert np.array_equal(a.matrix(), b.matrix())

    def test_different_seeds_differ(self):
        a = self._gen(seed=1)
        b = self._gen(seed=2)
        assert not np.array_equal(a.matrix(), b.matrix())

    def test_prices_respect_floor_and_cap(self):
        cfg = volatile_zone_config()
        t = self._gen(cfg)
        m = t.matrix()
        assert m.min() >= cfg.floor_price
        assert m.max() <= cfg.max_price

    def test_calm_prices_quantized(self):
        cfg = calm_zone_config()
        t = self._gen(cfg, n=5000)
        levels = t.zone("za").distinct_prices()
        # every level sits on the calm or spike grid, or at the
        # floor/cap boundaries
        for level in levels:
            on_calm = abs(level / cfg.calm_quantum - round(level / cfg.calm_quantum)) < 1e-9
            on_spike = abs(level / cfg.spike_quantum - round(level / cfg.spike_quantum)) < 1e-9
            boundary = level in (pytest.approx(cfg.floor_price),
                                 pytest.approx(cfg.max_price))
            assert on_calm or on_spike or boundary

    def test_calm_window_has_modest_state_count(self):
        t = self._gen(calm_zone_config(), n=576)
        assert len(t.zone("za").distinct_prices()) < 40

    def test_rejects_zero_samples(self):
        with pytest.raises(ValueError):
            self._gen(n=0)

    def test_hazard_envelope_shapes_validated(self):
        cfg = volatile_zone_config()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            generate_zones({"za": cfg}, 100, rng,
                           hazard_envelopes={"za": np.ones(99)})
        with pytest.raises(ValueError):
            generate_zones({"za": cfg}, 100, rng,
                           hazard_envelopes={"za": -np.ones(100)})

    def test_hazard_envelope_damps_spikes(self):
        cfg = volatile_zone_config(spike_prob=0.05)
        rng1 = np.random.default_rng(3)
        rng2 = np.random.default_rng(3)
        n = 5000
        stormy = generate_zones({"za": cfg}, n, rng1,
                                hazard_envelopes={"za": np.ones(n)})
        quiet = generate_zones({"za": cfg}, n, rng2,
                               hazard_envelopes={"za": np.zeros(n)})
        thresh = cfg.base_price * 2
        assert quiet.zone("za").availability(thresh) > stormy.zone(
            "za"
        ).availability(thresh)

    def test_quiet_envelope_means_no_spikes(self):
        cfg = volatile_zone_config()
        rng = np.random.default_rng(5)
        n = 3000
        t = generate_zones({"za": cfg}, n, rng,
                           hazard_envelopes={"za": np.zeros(n)})
        # without spikes the price stays in calm-level territory
        assert t.zone("za").maximum() < cfg.spike_level / 1.5


class TestInjectSpike:
    def test_spike_written_into_target_zone_only(self):
        cfg = calm_zone_config()
        rng = np.random.default_rng(0)
        t = generate_zones({"za": cfg, "zb": cfg}, 288, rng)
        spiked = inject_spike(t, "zb", t0=3600.0, duration_s=1800.0, price=20.02)
        assert spiked.zone("zb").price_at(3600.0) == 20.02
        assert spiked.zone("zb").price_at(3600.0 + 1799.0) == 20.02
        assert spiked.zone("zb").price_at(3600.0 + 1800.0) != 20.02
        assert np.array_equal(spiked.zone("za").prices, t.zone("za").prices)

    def test_original_unmodified(self):
        cfg = calm_zone_config()
        t = generate_zones({"za": cfg}, 100, np.random.default_rng(0))
        before = t.zone("za").prices.copy()
        inject_spike(t, "za", t0=300.0, duration_s=600.0, price=9.0)
        assert np.array_equal(t.zone("za").prices, before)

    def test_zero_duration_rejected(self):
        cfg = calm_zone_config()
        t = generate_zones({"za": cfg}, 100, np.random.default_rng(0))
        with pytest.raises(ValueError):
            inject_spike(t, "za", t0=300.0, duration_s=1.0, price=9.0)


class TestVaryZoneConfigs:
    def test_produces_one_config_per_zone(self):
        base = volatile_zone_config()
        out = vary_zone_configs(base, ("za", "zb", "zc"),
                                np.random.default_rng(0),
                                base_price_spread=0.1)
        assert set(out) == {"za", "zb", "zc"}

    def test_spread_zero_keeps_base(self):
        base = volatile_zone_config()
        out = vary_zone_configs(base, ("za",), np.random.default_rng(0))
        assert out["za"].base_price == pytest.approx(base.base_price)

    def test_base_may_fall_below_floor(self):
        base = calm_zone_config(base_price=0.215)
        out = vary_zone_configs(base, ("za",), np.random.default_rng(1),
                                base_price_spread=0.05)
        assert out["za"].base_price > 0


class TestCrossExcitation:
    def test_coupling_detectable_but_weak(self):
        """The generator's cross-excitation term reproduces §3.1:
        statistically present, 1-2 orders below own-zone effects."""
        import numpy as np
        from repro.stats.var import zone_dependence_report
        from repro.traces.generator import generate_zones, volatile_zone_config

        cfg = volatile_zone_config(spike_prob=0.03)
        rng = np.random.default_rng(7)
        trace = generate_zones({z: cfg for z in ("za", "zb", "zc")},
                               20_000, rng)
        report = zone_dependence_report(trace.matrix().T, max_order=4)
        assert report["own_effect"] > report["cross_effect"]
        assert report["orders_of_magnitude"] >= 0.5

    def test_zero_coupling_gives_larger_ratio(self):
        import numpy as np
        from dataclasses import replace
        from repro.stats.var import zone_dependence_report
        from repro.traces.generator import generate_zones, volatile_zone_config

        coupled_cfg = volatile_zone_config(spike_prob=0.03)
        free_cfg = replace(coupled_cfg, cross_excitation=0.0)
        rng1, rng2 = np.random.default_rng(7), np.random.default_rng(7)
        coupled = generate_zones({z: coupled_cfg for z in ("za", "zb")},
                                 20_000, rng1)
        free = generate_zones({z: free_cfg for z in ("za", "zb")},
                              20_000, rng2)
        r_coupled = zone_dependence_report(coupled.matrix().T, max_order=3)
        r_free = zone_dependence_report(free.matrix().T, max_order=3)
        # independent zones show an (even) weaker cross effect
        assert r_free["cross_effect"] <= r_coupled["cross_effect"] * 1.5
