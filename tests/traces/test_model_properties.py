"""Property-based tests for trace containers (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.model import SpotPriceTrace, ZoneTrace

prices_arrays = st.lists(
    st.floats(min_value=0.01, max_value=50.0, allow_nan=False,
              allow_infinity=False),
    min_size=1,
    max_size=200,
)


@given(prices=prices_arrays)
def test_price_at_matches_array(prices):
    z = ZoneTrace(zone="za", start_time=0.0, prices=np.array(prices))
    for i in (0, len(prices) // 2, len(prices) - 1):
        assert z.price_at(i * 300.0) == prices[i]


@given(prices=prices_arrays, bid=st.floats(min_value=0.0, max_value=60.0))
def test_availability_is_exact_fraction(prices, bid):
    z = ZoneTrace(zone="za", start_time=0.0, prices=np.array(prices))
    expected = sum(1 for p in prices if p <= bid) / len(prices)
    assert z.availability(bid) == expected


@given(prices=prices_arrays)
def test_slice_preserves_prices(prices):
    z = ZoneTrace(zone="za", start_time=0.0, prices=np.array(prices))
    n = len(prices)
    i0, i1 = 0, max(n // 2, 1)
    s = z.slice(i0 * 300.0, i1 * 300.0)
    assert list(s.prices) == prices[i0:i1]
    # slicing never changes the timeline: prices agree at shared times
    for i in range(i0, i1):
        assert s.price_at(i * 300.0) == z.price_at(i * 300.0)


@given(prices=prices_arrays)
def test_rising_edges_are_exactly_upward_moves(prices):
    z = ZoneTrace(zone="za", start_time=0.0, prices=np.array(prices))
    edges = set(z.rising_edges().tolist())
    for i in range(1, len(prices)):
        assert (i in edges) == (prices[i] > prices[i - 1])


@given(
    data=st.lists(
        st.tuples(
            st.floats(min_value=0.05, max_value=5.0),
            st.floats(min_value=0.05, max_value=5.0),
        ),
        min_size=1,
        max_size=100,
    ),
    bid=st.floats(min_value=0.0, max_value=6.0),
)
def test_combined_availability_bounds(data, bid):
    """Combined availability dominates each zone's and is subadditive."""
    za = np.array([a for a, _ in data])
    zb = np.array([b for _, b in data])
    t = SpotPriceTrace.from_arrays(0.0, {"za": za, "zb": zb})
    combined = t.combined_availability(bid)
    av_a = t.zone("za").availability(bid)
    av_b = t.zone("zb").availability(bid)
    assert combined >= max(av_a, av_b) - 1e-12
    assert combined <= min(av_a + av_b, 1.0) + 1e-12


@given(prices=prices_arrays)
@settings(max_examples=25)
def test_distinct_prices_cover_all_samples(prices):
    z = ZoneTrace(zone="za", start_time=0.0, prices=np.array(prices))
    levels = set(z.distinct_prices().tolist())
    assert all(p in levels for p in z.prices)
