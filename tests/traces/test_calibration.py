"""Unit tests for calibration targets and robust statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces.calibration import (
    HIGH_VOLATILITY_TARGET,
    LOW_VOLATILITY_TARGET,
    SPIKE_CUTOFF_FACTOR,
    WindowTarget,
    robust_bulk,
    verify_window,
)
from repro.traces.model import ZoneTrace


def zone(prices):
    return ZoneTrace(zone="za", start_time=0.0, prices=np.asarray(prices, float))


class TestRobustBulk:
    def test_keeps_everything_when_no_spikes(self):
        prices = np.full(100, 0.3)
        assert len(robust_bulk(prices)) == 100

    def test_drops_outliers_above_cutoff(self):
        prices = np.concatenate([np.full(99, 0.3), [20.02]])
        bulk = robust_bulk(prices)
        assert len(bulk) == 99
        assert 20.02 not in bulk

    def test_cutoff_relative_to_median(self):
        prices = np.concatenate([np.full(50, 1.0), np.full(50, 4.9)])
        # median 2.95, cutoff 14.75 -> everything kept
        assert len(robust_bulk(prices)) == 100

    def test_never_empties(self):
        prices = np.array([0.3])
        assert len(robust_bulk(prices)) == 1


class TestWindowTarget:
    def _target(self):
        return WindowTarget(
            name="t", mean_low=0.25, mean_high=0.35, variance_max=0.01,
            min_price_low=0.2, min_price_high=0.3,
        )

    def test_passing_zone(self):
        z = zone(np.full(100, 0.3) + np.linspace(-0.05, 0.05, 100))
        assert self._target().check(z) == []

    def test_mean_violation_reported(self):
        z = zone(np.full(100, 0.9))
        problems = self._target().check(z)
        assert any("mean" in p for p in problems)

    def test_variance_violation_reported(self):
        prices = np.where(np.arange(100) % 2 == 0, 0.21, 0.45)
        problems = self._target().check(zone(prices))
        assert any("variance" in p for p in problems)

    def test_min_violation_reported(self):
        z = zone(np.full(100, 0.32))
        problems = self._target().check(z)
        assert any("min price" in p for p in problems)

    def test_spike_excluded_from_bulk_check(self):
        prices = np.concatenate([np.full(999, 0.3), [20.0]])
        problems = [p for p in self._target().check(zone(prices))
                    if "variance" in p or "mean" in p]
        assert problems == []

    def test_verify_window_raises_with_details(self):
        z = zone(np.full(10, 5.0))
        with pytest.raises(ValueError, match="fails calibration"):
            verify_window([z], self._target())


class TestPaperTargets:
    def test_low_target_matches_paper_numbers(self):
        # mean ~= $0.30, variance < 0.01
        assert LOW_VOLATILITY_TARGET.mean_low <= 0.30 <= LOW_VOLATILITY_TARGET.mean_high
        assert LOW_VOLATILITY_TARGET.variance_max == 0.01

    def test_high_target_matches_paper_numbers(self):
        # per-zone means $0.70-$1.12, variance up to 2.02
        assert HIGH_VOLATILITY_TARGET.mean_low <= 0.70
        assert HIGH_VOLATILITY_TARGET.mean_high >= 1.12
        assert HIGH_VOLATILITY_TARGET.variance_max >= 2.02

    def test_cutoff_factor_excludes_freak_spike(self):
        # $20.02 against a $0.30 median is way past the cutoff
        assert 20.02 > SPIKE_CUTOFF_FACTOR * 0.30
