"""Memoized derived arrays on trace objects.

The engine's fast path, the Edge/Threshold policies and the figures all
lean on the per-trace caches added for segment skipping: the price
matrix, the rising-edge index/mask, and per-threshold crossing indices.
These tests pin down (a) the cached values against naive recomputation
and (b) the memoization contract itself — same object back, read-only,
and excluded from trace equality.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.model import SpotPriceTrace, ZoneTrace

PRICES = [0.30, 0.30, 0.45, 0.45, 0.70, 0.30, 0.30, 0.95, 0.95, 0.20]


def _zone(prices=PRICES):
    return ZoneTrace(zone="za", start_time=0.0,
                     prices=np.asarray(prices, dtype=np.float64))


price_arrays = st.lists(
    st.sampled_from([0.20, 0.30, 0.45, 0.70, 0.95, 1.20]),
    min_size=2, max_size=60,
)


class TestMatrixMemoization:
    def test_same_object_returned(self):
        t = SpotPriceTrace.from_arrays(
            0.0, {"za": PRICES, "zb": PRICES[::-1]}
        )
        assert t.matrix() is t.matrix()

    def test_values_and_readonly(self):
        t = SpotPriceTrace.from_arrays(
            0.0, {"za": PRICES, "zb": PRICES[::-1]}
        )
        m = t.matrix()
        assert np.array_equal(
            m, np.vstack([t.zone("za").prices, t.zone("zb").prices])
        )
        assert not m.flags.writeable


class TestRisingEdgeCache:
    def test_cached_identity(self):
        z = _zone()
        assert z.rising_edges() is z.rising_edges()
        assert not z.rising_edges().flags.writeable

    def test_mask_matches_pairwise_comparison(self):
        z = _zone()
        assert z.is_rising_edge_at(0) is False  # no earlier sample
        for i in range(1, len(z)):
            expected = bool(z.prices[i] > z.prices[i - 1])
            assert z.is_rising_edge_at(i) == expected

    @given(prices=price_arrays)
    @settings(max_examples=50, deadline=None)
    def test_next_rising_edge_matches_scan(self, prices):
        z = _zone(prices)
        edges = set(z.rising_edges().tolist())
        for i in range(len(z)):
            naive = next(
                (j for j in range(i + 1, len(z)) if j in edges), len(z)
            )
            assert z.next_rising_edge(i) == naive


class TestThresholdCrossingCache:
    def test_cached_per_theta(self):
        z = _zone()
        assert z.threshold_crossings(0.5) is z.threshold_crossings(0.5)
        assert z.threshold_crossings(0.5) is not z.threshold_crossings(0.8)

    @given(
        prices=price_arrays,
        theta=st.sampled_from([0.25, 0.50, 0.80, 1.50]),
    )
    @settings(max_examples=50, deadline=None)
    def test_crossings_are_availability_flips(self, prices, theta):
        z = _zone(prices)
        up = z.prices <= theta
        expected = [i for i in range(1, len(z)) if up[i] != up[i - 1]]
        assert z.threshold_crossings(theta).tolist() == expected
        for i in range(len(z)):
            naive = next((j for j in expected if j > i), len(z))
            assert z.next_threshold_crossing(i, theta) == naive


class TestCacheIsInvisible:
    def test_repr_hides_populated_caches(self):
        z = _zone()
        z.rising_edges()
        z.threshold_crossings(0.5)
        z.is_rising_edge_at(3)
        assert "_derived" not in repr(z)
        assert "crossings" not in repr(z)

    def test_slices_get_fresh_caches(self):
        z = _zone()
        z.rising_edges()
        sub = z.slice(0.0, 5 * 300.0)
        assert list(sub.rising_edges()) == [
            i for i in range(1, len(sub))
            if sub.prices[i] > sub.prices[i - 1]
        ]
