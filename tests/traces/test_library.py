"""Unit tests for the canonical archive."""

from __future__ import annotations

import numpy as np
import pytest

from repro.market.constants import MARKOV_HISTORY_S, ZONES
from repro.traces import library
from repro.traces.model import TraceError


class TestMonths:
    def test_archive_span(self):
        assert library.MONTHS[0] == (2012, 12)
        assert library.MONTHS[-1] == (2014, 1)
        assert len(library.MONTHS) == 14

    def test_month_num_samples(self):
        assert library.month_num_samples(2013, 1) == 31 * 288
        assert library.month_num_samples(2013, 2) == 28 * 288

    def test_regimes(self):
        assert library.regime_name(2013, 1) == "volatile"
        assert library.regime_name(2013, 3) == "calm"
        assert library.regime_name(2013, 7) == "moderate"

    def test_month_outside_span_rejected(self):
        with pytest.raises(TraceError):
            library.month_trace(2014, 2)

    def test_month_trace_zones_and_length(self):
        t = library.month_trace(2013, 2)
        assert t.zone_names == ZONES
        assert len(t) == 28 * 288

    def test_months_reproducible(self):
        a = library.month_trace(2013, 5)
        b = library.month_trace(2013, 5)
        assert a is b  # cached
        library.month_trace.cache_clear()
        c = library.month_trace(2013, 5)
        assert np.array_equal(a.matrix(), c.matrix())

    def test_seed_changes_data(self):
        a = library.month_trace(2013, 5)
        b = library.month_trace(2013, 5, seed=1)
        assert not np.array_equal(a.matrix(), b.matrix())


class TestFreakSpike:
    def test_spike_present_in_march(self):
        t = library.month_trace(*library.LOW_VOLATILITY_MONTH)
        z = t.zone(library.FREAK_SPIKE_ZONE)
        assert z.price_at(library.FREAK_SPIKE_START) == library.FREAK_SPIKE_PRICE
        end = library.FREAK_SPIKE_START + library.FREAK_SPIKE_DURATION_S
        assert z.price_at(end - 1.0) == library.FREAK_SPIKE_PRICE
        assert z.price_at(end + 1.0) != library.FREAK_SPIKE_PRICE

    def test_spike_only_in_one_zone(self):
        t = library.month_trace(*library.LOW_VOLATILITY_MONTH)
        for z in t.zones:
            if z.zone == library.FREAK_SPIKE_ZONE:
                continue
            assert z.maximum() < library.FREAK_SPIKE_PRICE


class TestConcat:
    def test_concat_adjacent_months(self):
        a = library.month_trace(2013, 4)
        b = library.month_trace(2013, 5)
        joined = library.concat_traces([a, b])
        assert len(joined) == len(a) + len(b)
        assert joined.start_time == a.start_time
        assert joined.end_time == b.end_time

    def test_concat_rejects_gaps(self):
        a = library.month_trace(2013, 4)
        c = library.month_trace(2013, 6)
        with pytest.raises(TraceError):
            library.concat_traces([a, c])

    def test_concat_rejects_empty(self):
        with pytest.raises(TraceError):
            library.concat_traces([])


class TestEvaluationWindow:
    @pytest.mark.parametrize("name,month", [("low", 3), ("high", 1)])
    def test_window_includes_history(self, name, month):
        trace, eval_start = library.evaluation_window(name)
        assert eval_start == library.month_start(2013, month)
        assert eval_start - trace.start_time == pytest.approx(MARKOV_HISTORY_S)
        assert trace.end_time == library.month_start(2013, month) + \
            library.month_num_samples(2013, month) * 300

    def test_unknown_window_rejected(self):
        with pytest.raises(TraceError):
            library.evaluation_window("medium")

    def test_window_agrees_with_months(self):
        trace, eval_start = library.evaluation_window("low")
        month = library.month_trace(2013, 3)
        assert trace.zone("us-east-1a").price_at(eval_start) == \
            month.zone("us-east-1a").price_at(eval_start)


class TestCalibration:
    def test_canonical_windows_calibrated(self):
        library.verify_calibration()

    def test_volatile_means_span_paper_band(self):
        t = library.month_trace(*library.HIGH_VOLATILITY_MONTH)
        means = sorted(z.mean() for z in t.zones)
        assert 0.60 <= means[0] <= 0.90
        assert 0.90 <= means[-1] <= 1.30

    def test_storm_envelope_alternates(self):
        env = library._storm_envelope(8928, np.random.default_rng(0))
        values = set(np.unique(env))
        assert values == {library.QUIET_HAZARD_FACTOR, 1.0}
        # both phases occur
        assert 0.1 < np.mean(env == 1.0) < 0.95
