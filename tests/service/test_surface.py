"""Offline half of the advisor: specs, cells, artifacts, the store."""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.service.surface import (
    SURFACE_SCHEMA_VERSION,
    PolicySurface,
    SurfaceBuilder,
    SurfaceCell,
    SurfaceSpec,
    SurfaceStore,
)

SMALL = dict(
    window="low",
    compute_s=2 * 3600.0,
    deadline_s=3 * 3600.0,
    ckpt_cost_s=300.0,
    restart_cost_s=300.0,
    policies=("periodic",),
    bids=(0.27, 0.81),
    zone_counts=(1,),
    num_experiments=2,
)


@pytest.fixture(scope="module")
def built(tmp_path_factory):
    store = SurfaceStore(tmp_path_factory.mktemp("surfaces"))
    surface = SurfaceBuilder(store=store).build(SurfaceSpec(**SMALL))
    return store, surface


class TestSpec:
    def test_key_is_deterministic_and_sensitive(self):
        a = SurfaceSpec(**SMALL)
        b = SurfaceSpec(**SMALL)
        assert a.key() == b.key()
        tighter = SurfaceSpec(**{**SMALL, "deadline_s": 2.5 * 3600.0})
        assert tighter.key() != a.key()

    def test_covers_is_exact_shape_match(self):
        spec = SurfaceSpec(**SMALL)
        assert spec.covers(2 * 3600.0, 3 * 3600.0, 300.0)
        assert not spec.covers(2 * 3600.0, 3 * 3600.0 + 60.0, 300.0)
        assert not spec.covers(2 * 3600.0, 3 * 3600.0, 900.0)

    def test_rejects_unknown_policy_and_empty_axes(self):
        with pytest.raises(ValueError):
            SurfaceSpec(**{**SMALL, "policies": ("no-such-policy",)})
        with pytest.raises(ValueError):
            SurfaceSpec(**{**SMALL, "bids": ()})


class TestCell:
    def test_from_records_aggregates(self):
        rec = lambda cost, makespan, met: SimpleNamespace(  # noqa: E731
            cost=cost,
            met_deadline=met,
            result=SimpleNamespace(makespan_s=makespan),
        )
        cell = SurfaceCell.from_records(
            "periodic", 1, 0.81,
            [rec(10.0, 3600.0, True), rec(20.0, 7200.0, True),
             rec(30.0, 10800.0, False), rec(40.0, 14400.0, True)],
        )
        assert cell.expected_cost == pytest.approx(25.0)
        assert cell.worst_cost == pytest.approx(40.0)
        assert cell.miss_risk == pytest.approx(0.25)
        assert cell.mean_makespan_s == pytest.approx(9000.0)
        assert cell.num_runs == 4


def _cell(policy="periodic", zones=1, bid=0.81, cost=10.0, risk=0.0):
    return SurfaceCell(
        policy=policy, zones=zones, bid=bid, expected_cost=cost,
        worst_cost=cost, miss_risk=risk, mean_makespan_s=3600.0, num_runs=4,
    )


class TestBest:
    def _surface(self, *cells):
        return PolicySurface(
            spec=SurfaceSpec(**SMALL), cells=tuple(cells),
            build_seconds=0.0, built_unix=0.0,
        )

    def test_cheapest_guaranteed_cell_wins(self):
        s = self._surface(
            _cell(bid=0.27, cost=5.0, risk=0.5),  # cheap but risky
            _cell(bid=0.81, cost=12.0),
            _cell(bid=2.40, cost=9.0),
        )
        assert s.best().bid == 2.40

    def test_budget_filters_then_falls_back_to_none(self):
        s = self._surface(_cell(bid=0.81, cost=12.0), _cell(bid=2.40, cost=9.0))
        assert s.best(budget=10.0).bid == 2.40
        assert s.best(budget=1.0) is None

    def test_all_risky_means_none(self):
        s = self._surface(_cell(cost=5.0, risk=1.0))
        assert s.best() is None


class TestArtifact:
    def test_round_trip(self, built):
        _, surface = built
        again = PolicySurface.from_payload(surface.to_payload())
        assert again == surface
        assert again.key == surface.key

    def test_grid_is_complete(self, built):
        _, surface = built
        spec = surface.spec
        assert len(surface.cells) == (
            len(spec.policies) * len(spec.zone_counts) * len(spec.bids)
        )
        for bid in spec.bids:
            assert surface.cell("periodic", 1, bid) is not None

    def test_version_and_format_are_enforced(self, built):
        _, surface = built
        payload = surface.to_payload()
        with pytest.raises(ValueError, match="version"):
            PolicySurface.from_payload(
                {**payload, "version": SURFACE_SCHEMA_VERSION + 1}
            )
        with pytest.raises(ValueError, match="artifact"):
            PolicySurface.from_payload({**payload, "format": "something-else"})


class TestStore:
    def test_save_load_catalog(self, built):
        store, surface = built
        assert store.path(surface.key).exists()
        assert store.load(surface.key) == surface
        assert surface.spec in store.catalog()

    def test_foreign_and_corrupt_files_are_skipped(self, built, tmp_path):
        store, surface = built
        fresh = SurfaceStore(tmp_path)
        fresh.save(surface)
        (tmp_path / "surface-bogus.json").write_text("{not json")
        (tmp_path / "surface-foreign.json").write_text(
            json.dumps({"format": "other"})
        )
        assert [s.key for s in fresh.surfaces()] == [surface.key]

    def test_rebuild_is_identical_and_cache_backed(self, built):
        """Same spec -> same artifact; the second build runs over the
        store's warm run cache (the runcache directory is populated)."""
        store, surface = built
        rebuilt = SurfaceBuilder(store=store).build(surface.spec)
        assert rebuilt.cells == surface.cells
        assert rebuilt.key == surface.key
        cache_files = list(
            (store.root / "runcache").glob("**/*.pkl")
        )
        assert cache_files
