"""CLI smoke tests for the advisor verbs: surface build/ls, advise, serve."""

from __future__ import annotations

import json
import re

import pytest

from repro.cli import build_parser, main
from repro.core.vector_engine import FALLBACK_REASONS

#: The stderr stats line's whole grammar: fixed counters, then an
#: optional parenthesized reason tally.  Reasons are validated against
#: the closed FALLBACK_REASONS enum separately.
VECTOR_LINE = re.compile(
    r"^vector-engine: native=\d+ cloned=\d+ fallback=\d+"
    r"(?: \((?:[a-z-]+=\d+)(?: [a-z-]+=\d+)*\))?$"
)

SMALL = ["--experiments", "2", "--compute-hours", "2",
         "--policies", "periodic", "--bids", "0.27,0.81", "--zone-counts", "1"]


class TestParser:
    def test_service_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["surface", "build", "--store", "/tmp/s"],
            ["surface", "ls", "--store", "/tmp/s"],
            ["advise", "--store", "/tmp/s", "--budget", "25"],
            ["serve", "--store", "/tmp/s", "--batch", "8"],
        ):
            assert parser.parse_args(argv) is not None

    def test_store_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["advise"])


class TestSurfaceCommand:
    def test_build_then_ls(self, tmp_path, capsys):
        store = str(tmp_path / "surfaces")
        assert main(["surface", "build", "--store", store,
                     "--slack", "0.5", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "built surface" in out
        assert main(["surface", "ls", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "1 surface(s)" in out
        assert "C=2.0h" in out

    def test_empty_store_ls(self, tmp_path, capsys):
        assert main(["surface", "ls", "--store", str(tmp_path)]) == 0
        assert "0 surface(s)" in capsys.readouterr().out

    def test_build_reports_vector_stats_to_stderr(self, tmp_path, capsys):
        """surface build prints the vector-engine tally so operators
        see when a build silently fell back to scalar runs; the line
        follows the same closed-enum contract as the figure commands."""
        store = str(tmp_path / "surfaces")
        assert main(["surface", "build", "--store", store,
                     "--slack", "0.5", *SMALL]) == 0
        captured = capsys.readouterr()
        assert "vector-engine: native=" in captured.err
        assert "fallback=0" in captured.err
        assert "vector-engine" not in captured.out


class TestFamilyBuildCommand:
    def test_deadlines_builds_a_family(self, tmp_path, capsys):
        store = str(tmp_path / "surfaces")
        assert main(["surface", "build", "--store", store,
                     "--deadlines", "2.4,3,4", *SMALL]) == 0
        captured = capsys.readouterr()
        assert captured.out.count("built surface") == 3
        assert "family of 3 surfaces built in one cube pass" in captured.out
        assert "vector-engine: native=" in captured.err
        assert main(["surface", "ls", "--store", store]) == 0
        assert "3 surface(s)" in capsys.readouterr().out

    def test_deadlines_excludes_slack(self, tmp_path, capsys):
        assert main(["surface", "build", "--store", str(tmp_path),
                     "--deadlines", "3,4", "--slack", "0.5", *SMALL]) == 2
        assert "mutually exclusive" in capsys.readouterr().err


class TestAdviseCommand:
    def test_warm_answer_from_built_surface(self, tmp_path, capsys):
        store = str(tmp_path / "surfaces")
        main(["surface", "build", "--store", store, "--slack", "0.5", *SMALL])
        capsys.readouterr()
        assert main(["advise", "--store", store, "--slack", "0.5",
                     "--compute-hours", "2", "--experiments", "2"]) == 0
        captured = capsys.readouterr()
        assert "recommendation: policy=periodic" in captured.out
        assert "source: surface" in captured.out
        assert "cold_builds=0" in captured.err
        # warm path ran no engine batches: no vector-engine line
        assert "vector-engine" not in captured.err

    def test_cold_build_through_reports_vector_stats(self, tmp_path, capsys):
        """A cold advise runs surface builds through the engine, so the
        stderr report carries the same vector-engine tally line that
        `surface build` prints, ahead of the advisor counters."""
        assert main(["advise", "--store", str(tmp_path / "empty"),
                     "--slack", "0.5", "--compute-hours", "2",
                     "--experiments", "2"]) == 0
        captured = capsys.readouterr()
        assert "source: cold" in captured.out
        assert "cold_builds=1" in captured.err
        lines = captured.err.splitlines()
        vector_lines = [l for l in lines if l.startswith("vector-engine:")]
        assert len(vector_lines) == 1
        # the line's format is pinned: fixed counters plus reasons drawn
        # only from the engine's closed fallback enum
        assert VECTOR_LINE.match(vector_lines[0]), vector_lines[0]
        reasons = {
            tok.split("=")[0]
            for tok in re.findall(r"\(([^)]*)\)", vector_lines[0])
            for tok in tok.split()
        }
        assert reasons <= FALLBACK_REASONS
        # ordering: engine tally first, advisor counters after
        assert lines.index(vector_lines[0]) < lines.index(
            next(l for l in lines if l.startswith("advisor:"))
        )


class TestServeCommand:
    def test_jsonl_loop(self, tmp_path, capsys, monkeypatch):
        import io

        store = str(tmp_path / "surfaces")
        main(["surface", "build", "--store", store, "--slack", "0.5", *SMALL])
        capsys.readouterr()

        query = json.dumps(
            {"compute_s": 7200.0, "deadline_s": 10800.0, "ckpt_cost_s": 300.0}
        )
        monkeypatch.setattr(
            "sys.stdin", io.StringIO(query + "\n" + query + "\n")
        )
        assert main(["serve", "--store", store, "--experiments", "2"]) == 0
        captured = capsys.readouterr()
        responses = [json.loads(x) for x in captured.out.splitlines()]
        assert len(responses) == 2
        assert responses[0]["policy"] == "periodic"
        assert "coalesced=1" in captured.err
