"""Online half of the advisor: paths, coalescing, LRU, serve loop.

The acceptance anchor lives here too: a warm ``advise`` answer must be
*identical* — policy, bid, zones and expected cost — to the argmin a
caller would compute from a direct :meth:`ExperimentRunner.run_grid`
sweep over the same grid, because a surface is nothing but that sweep
cached to disk.
"""

from __future__ import annotations

import asyncio
import io
import json

import numpy as np
import pytest

from repro.experiments.runner import ExperimentRunner
from repro.service import (
    AdvisorService,
    JobSpec,
    SurfaceBuilder,
    SurfaceSpec,
    SurfaceStore,
    serve_lines,
)

BASE = dict(
    window="low",
    compute_s=2 * 3600.0,
    ckpt_cost_s=300.0,
    restart_cost_s=300.0,
    policies=("periodic", "markov-daly"),
    bids=(0.27, 0.81),
    zone_counts=(1, 3),
    num_experiments=2,
)
DEADLINE = 3 * 3600.0


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    """A store holding one surface for the BASE job shape."""
    store = SurfaceStore(tmp_path_factory.mktemp("adv-surfaces"))
    SurfaceBuilder(store=store).build(SurfaceSpec(deadline_s=DEADLINE, **BASE))
    return store


def job(deadline_s=DEADLINE, **kwargs) -> JobSpec:
    return JobSpec(
        compute_s=BASE["compute_s"],
        deadline_s=deadline_s,
        ckpt_cost_s=BASE["ckpt_cost_s"],
        **kwargs,
    )


class TestJobSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            JobSpec(compute_s=0.0, deadline_s=3600.0, ckpt_cost_s=300.0)
        with pytest.raises(ValueError):
            JobSpec(compute_s=7200.0, deadline_s=3600.0, ckpt_cost_s=300.0)
        with pytest.raises(ValueError):
            JobSpec(compute_s=3600.0, deadline_s=7200.0, ckpt_cost_s=0.0)

    def test_from_payload(self):
        spec = JobSpec.from_payload(
            {"compute_s": 7200, "deadline_s": 10800, "ckpt_cost_s": 300,
             "budget": 25, "window": "high"}
        )
        assert spec.budget == 25.0
        assert spec.window == "high"


class TestWarmPath:
    def test_exact_match_is_surface_sourced(self, store):
        service = AdvisorService(store)
        advice = run(service.advise(job()))
        assert advice.source == "surface"
        assert advice.miss_risk == 0.0
        assert service.stats.disk_loads == 1
        assert service.stats.cold_builds == 0

    def test_warm_advice_equals_run_grid_argmin(self, store):
        """Acceptance: the advisor's answer is the direct sweep's argmin."""
        advice = run(AdvisorService(store).advise(job()))

        spec = SurfaceSpec(deadline_s=DEADLINE, **BASE)
        config = spec.config()
        candidates = []
        with ExperimentRunner(
            "low", num_experiments=spec.num_experiments, seed=spec.seed
        ) as runner:
            for policy in spec.policies:
                for n in spec.zone_counts:
                    per_bid = runner.run_grid(
                        policy, config, spec.bids,
                        redundant=n > 1, num_zones=n,
                    )
                    for bid in spec.bids:
                        records = per_bid[float(bid)]
                        if not all(r.met_deadline for r in records):
                            continue
                        cost = float(
                            np.mean([r.cost for r in records])
                        )
                        candidates.append((policy, n, float(bid), cost))
        assert candidates, "direct sweep found no guaranteed cell"
        policy, zones, bid, cost = min(candidates, key=lambda c: c[3])
        assert (advice.policy, advice.zones, advice.bid) == (policy, zones, bid)
        assert advice.expected_cost == pytest.approx(cost)

    def test_budget_flag(self, store):
        service = AdvisorService(store)
        generous = run(service.advise(job(budget=1e9)))
        assert generous.within_budget
        broke = run(service.advise(job(budget=0.01)))
        assert not broke.within_budget
        # still the cheapest guaranteed plan, just flagged
        assert broke.policy == generous.policy
        assert broke.bid == generous.bid


class TestCoalescingAndLRU:
    def test_identical_queries_coalesce(self, store):
        service = AdvisorService(store)

        async def burst():
            return await asyncio.gather(*(service.advise(job()) for _ in range(4)))

        answers = run(burst())
        assert len({(a.policy, a.bid, a.zones) for a in answers}) == 1
        assert service.stats.queries == 4
        assert service.stats.coalesced == 3
        assert service.stats.disk_loads == 1  # one computation served all

    def test_distinct_queries_do_not_coalesce(self, store):
        service = AdvisorService(store)

        async def burst():
            return await asyncio.gather(
                service.advise(job()), service.advise(job(budget=1e9))
            )

        run(burst())
        assert service.stats.coalesced == 0

    def test_lru_eviction_and_reheat(self, store, tmp_path):
        # second surface in the same store, different deadline
        SurfaceBuilder(store=store).build(
            SurfaceSpec(deadline_s=4 * 3600.0, **BASE)
        )
        service = AdvisorService(store, max_hot=1)
        run(service.advise(job()))                      # load A
        run(service.advise(job(deadline_s=4 * 3600.0)))  # load B, evict A
        run(service.advise(job()))                      # re-load A
        assert service.stats.disk_loads == 3
        assert service.stats.hot_hits == 0
        run(service.advise(job()))                      # A is hot now
        assert service.stats.hot_hits == 1
        assert service.stats.disk_loads == 3


class TestInterpolatedPath:
    @pytest.fixture(scope="class")
    def bracket_store(self, tmp_path_factory):
        store = SurfaceStore(tmp_path_factory.mktemp("brackets"))
        builder = SurfaceBuilder(store=store)
        for deadline in (3 * 3600.0, 4 * 3600.0):
            builder.build(SurfaceSpec(deadline_s=deadline, **BASE))
        return store

    def test_between_brackets_interpolates_cost(self, bracket_store):
        service = AdvisorService(bracket_store)
        advice = run(service.advise(job(deadline_s=3.5 * 3600.0)))
        assert advice.source == "interpolated"
        assert service.stats.interpolated == 1
        assert service.stats.cold_builds == 0

        lo = bracket_store.load(SurfaceSpec(deadline_s=3 * 3600.0, **BASE).key())
        hi = bracket_store.load(SurfaceSpec(deadline_s=4 * 3600.0, **BASE).key())
        # cost estimate is linear between the brackets' best-guaranteed
        # costs (the recommended cell is still the near surface's best)
        expected = 0.5 * (lo.best().expected_cost + hi.best().expected_cost)
        assert advice.expected_cost == pytest.approx(expected)

    def test_outside_brackets_is_not_interpolated(self, bracket_store):
        service = AdvisorService(bracket_store)
        advice = run(service.advise(job(deadline_s=6 * 3600.0)))
        assert advice.source == "cold"


class TestColdPath:
    def test_cold_build_then_warm(self, tmp_path):
        store = SurfaceStore(tmp_path)
        template = SurfaceSpec(deadline_s=DEADLINE, **BASE)
        service = AdvisorService(store, cold_spec=template)
        first = run(service.advise(job()))
        assert first.source == "cold"
        assert service.stats.cold_builds == 1
        # write-through: the artifact exists and the next query is warm
        assert store.path(first.surface_key).exists()
        second = run(service.advise(job()))
        assert second.source == "surface"
        assert service.stats.cold_builds == 1
        assert (second.policy, second.bid, second.zones) == (
            first.policy, first.bid, first.zones
        )
        assert second.expected_cost == first.expected_cost


class TestServeLines:
    def test_batch_coalesces_and_keeps_order(self, store):
        q = json.dumps(
            {"compute_s": BASE["compute_s"], "deadline_s": DEADLINE,
             "ckpt_cost_s": BASE["ckpt_cost_s"]}
        )
        lines = [
            json.dumps({"id": 1, "compute_s": BASE["compute_s"],
                        "deadline_s": DEADLINE,
                        "ckpt_cost_s": BASE["ckpt_cost_s"]}),
            q,
            q,  # duplicate -> coalesces
            "",  # blank lines are skipped
            "{broken json",
            json.dumps({"compute_s": -1, "deadline_s": 1,
                        "ckpt_cost_s": 1}),  # invalid job
        ]
        service = AdvisorService(store)
        out = io.StringIO()
        answered = run(serve_lines(service, lines, out))
        responses = [json.loads(x) for x in out.getvalue().splitlines()]
        assert answered == 3
        assert len(responses) == 5
        assert responses[0]["id"] == 1
        assert responses[1]["policy"] == responses[2]["policy"]
        assert "error" in responses[3]
        assert "error" in responses[4]
        assert service.stats.coalesced >= 1
