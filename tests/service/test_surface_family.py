"""Surface families: one cube pass, a whole deadline ladder of artifacts.

:meth:`SurfaceBuilder.build_family` must emit, per spec, an artifact
bit-identical in content to a standalone :meth:`build` of that spec
(the cube pass is an execution strategy, not a semantic change), and
the advisor must answer intermediate-deadline queries from the family
brackets — no cold build — preferring bracket pairs drawn from one
family over mixed-axes pairs.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service import (
    AdvisorService,
    JobSpec,
    SurfaceBuilder,
    SurfaceSpec,
    SurfaceStore,
)

BASE = dict(
    window="low",
    compute_s=2 * 3600.0,
    ckpt_cost_s=300.0,
    restart_cost_s=300.0,
    policies=("periodic", "markov-daly"),
    bids=(0.27, 0.81),
    zone_counts=(1, 3),
    num_experiments=2,
)
LADDER = (3 * 3600.0, 4 * 3600.0, 5 * 3600.0)


def run(coro):
    return asyncio.run(coro)


def spec(deadline_s, **overrides):
    return SurfaceSpec(deadline_s=deadline_s, **{**BASE, **overrides})


def job(deadline_s, **kwargs):
    return JobSpec(
        compute_s=BASE["compute_s"],
        deadline_s=deadline_s,
        ckpt_cost_s=BASE["ckpt_cost_s"],
        **kwargs,
    )


@pytest.fixture(scope="module")
def family_store(tmp_path_factory):
    """A store populated by one build_family pass over LADDER."""
    store = SurfaceStore(tmp_path_factory.mktemp("family"))
    SurfaceBuilder(store=store).build_family([spec(d) for d in LADDER])
    return store


class TestBuildFamily:
    def test_family_matches_standalone_builds(self, family_store,
                                              tmp_path_factory):
        """Acceptance: every rung of the family ladder carries exactly
        the cells a standalone build of that spec produces."""
        solo_store = SurfaceStore(tmp_path_factory.mktemp("solo"))
        solo_builder = SurfaceBuilder(store=solo_store)
        for d in LADDER:
            family = family_store.load(spec(d).key())
            solo = solo_builder.build(spec(d))
            assert family.spec == solo.spec
            assert family.cells == solo.cells
            assert family.key == solo.key

    def test_one_artifact_per_deadline(self, family_store):
        keys = {s.key() for s in family_store.catalog()}
        assert keys == {spec(d).key() for d in LADDER}

    def test_family_build_reports_vector_stats(self, tmp_path):
        builder = SurfaceBuilder(store=SurfaceStore(tmp_path))
        builder.build_family([spec(d) for d in LADDER[:2]])
        stats = builder.drain_vector_stats()
        assert stats is not None and stats.native > 0
        assert builder.drain_vector_stats() is None  # drained

    def test_family_shares_one_build_pass(self, family_store):
        surfaces = list(family_store.surfaces())
        assert len({s.build_seconds for s in surfaces}) == 1
        assert len({s.built_unix for s in surfaces}) == 1

    def test_mismatched_axes_rejected(self, tmp_path):
        builder = SurfaceBuilder(store=SurfaceStore(tmp_path))
        with pytest.raises(ValueError, match="must share num_experiments"):
            builder.build_family(
                [spec(LADDER[0]), spec(LADDER[1], num_experiments=3)]
            )
        with pytest.raises(ValueError, match="at least one spec"):
            builder.build_family([])


class TestFamilyBrackets:
    def test_intermediate_deadline_answers_warm(self, family_store):
        """Acceptance: a warm advise at an intermediate deadline answers
        from family brackets — interpolated, zero cold builds."""
        service = AdvisorService(family_store)
        advice = run(service.advise(job(3.5 * 3600.0)))
        assert advice.source == "interpolated"
        assert service.stats.cold_builds == 0
        assert service.stats.interpolated == 1

    def test_rung_deadline_answers_exact(self, family_store):
        service = AdvisorService(family_store)
        advice = run(service.advise(job(LADDER[1])))
        assert advice.source == "surface"
        assert service.stats.cold_builds == 0

    def test_family_pair_preferred_over_mixed_brackets(
        self, family_store, tmp_path_factory
    ):
        """A lone surface with foreign grid axes sits *closer* to the
        query deadline than the family's lower rung; the advisor must
        still bracket within the family (whose pair interpolates
        cell-for-cell) rather than mix axes."""
        store = SurfaceStore(tmp_path_factory.mktemp("mixed"))
        builder = SurfaceBuilder(store=store)
        builder.build_family([spec(3 * 3600.0), spec(5 * 3600.0)])
        builder.build(spec(3.9 * 3600.0, num_experiments=3))
        service = AdvisorService(store)
        advice = run(service.advise(job(4.2 * 3600.0)))
        assert advice.source == "interpolated"
        # the nearer *family* rung (5h; gap 0.8h) answers, not the
        # mixed-axes 3.9h surface (gap 0.3h) a plain nearest pair
        # would have picked
        assert advice.surface_key == spec(5 * 3600.0).key()

    def test_mixed_brackets_remain_the_fallback(self, tmp_path_factory):
        """With no same-axes pair straddling the deadline, the old
        nearest-pair behavior still interpolates."""
        store = SurfaceStore(tmp_path_factory.mktemp("fallback"))
        builder = SurfaceBuilder(store=store)
        builder.build(spec(3 * 3600.0))
        builder.build(spec(5 * 3600.0, num_experiments=3))
        service = AdvisorService(store)
        advice = run(service.advise(job(4 * 3600.0)))
        assert advice.source == "interpolated"
        assert service.stats.cold_builds == 0
