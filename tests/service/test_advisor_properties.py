"""Property tests over a warm deadline ladder of same-shape surfaces.

The economics the advisor serves must respect slack: for one job shape
against one window, loosening the deadline can only make the
recommended plan cheaper (or leave it unchanged) — more slack means
the policy rides spot longer before the forced on-demand switch.  Over
a warm surface family the hypothesis half sweeps query deadlines
across the ladder and checks that :meth:`AdvisorService.advise` prices
are non-increasing in the deadline and that the ``source`` field
transitions surface -> interpolated -> surface exactly at the rungs.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import AdvisorService, JobSpec, SurfaceBuilder, SurfaceSpec, SurfaceStore

BASE = dict(
    window="low",
    compute_s=2 * 3600.0,
    ckpt_cost_s=300.0,
    restart_cost_s=300.0,
    policies=("periodic", "markov-daly"),
    bids=(0.27, 0.81),
    zone_counts=(1, 3),
    num_experiments=2,
)
#: Rung deadlines in minutes — queries are drawn on the minute grid so
#: no draw lands inside the exact-match float tolerance by accident.
RUNG_MIN = (180, 240, 360)


def run(coro):
    return asyncio.run(coro)


def job(minutes: int) -> JobSpec:
    return JobSpec(
        compute_s=BASE["compute_s"],
        deadline_s=minutes * 60.0,
        ckpt_cost_s=BASE["ckpt_cost_s"],
    )


@pytest.fixture(scope="module")
def ladder_service(tmp_path_factory):
    """A warm advisor over a three-rung deadline ladder (one family)."""
    store = SurfaceStore(tmp_path_factory.mktemp("ladder"))
    specs = [SurfaceSpec(deadline_s=m * 60.0, **BASE) for m in RUNG_MIN]
    SurfaceBuilder(store=store).build_family(specs)
    return AdvisorService(store), {m: spec.key() for m, spec in zip(RUNG_MIN, specs)}


@settings(max_examples=30, deadline=None)
@given(
    minutes=st.lists(
        st.integers(min_value=RUNG_MIN[0], max_value=RUNG_MIN[-1]),
        min_size=2,
        max_size=8,
        unique=True,
    )
)
def test_cost_non_increasing_as_deadline_loosens(ladder_service, minutes):
    """Looser deadline, same job: never a costlier recommendation."""
    service, _ = ladder_service
    minutes = sorted(minutes)
    costs = [run(service.advise(job(m))).expected_cost for m in minutes]
    for tight, loose in zip(costs, costs[1:]):
        assert loose <= tight + 1e-9, (minutes, costs)
    assert service.stats.cold_builds == 0


@settings(max_examples=30, deadline=None)
@given(minutes=st.integers(min_value=RUNG_MIN[0], max_value=RUNG_MIN[-1]))
def test_source_transitions_track_the_rungs(ladder_service, minutes):
    """On a rung: an exact surface answer keyed to that rung.  Between
    rungs: an interpolated answer keyed to one of the family's rungs —
    and never a cold build on a warm ladder."""
    service, keys = ladder_service
    advice = run(service.advise(job(minutes)))
    if minutes in keys:
        assert advice.source == "surface"
        assert advice.surface_key == keys[minutes]
    else:
        assert advice.source == "interpolated"
        assert advice.surface_key in set(keys.values())
    assert service.stats.cold_builds == 0
