"""Runner-level start-axis batching: vector mode is a drop-in.

``engine_mode="vector"`` must be invisible in the results: every grid
API returns records bit-identical — values and order — to the fast
runner, whether the batch runs serially, over a worker pool, against a
warm cache, or falls back per run for non-native policies.
"""

from __future__ import annotations

import pytest

from repro.app.workload import paper_experiment
from repro.experiments.runner import CellTask, ExperimentRunner

EXPERIMENTS = 10


@pytest.fixture(scope="module")
def config():
    return paper_experiment(slack_fraction=0.15, ckpt_cost_s=300.0)


@pytest.fixture(scope="module")
def fast_runner():
    return ExperimentRunner("low", num_experiments=EXPERIMENTS)


@pytest.fixture(scope="module")
def vector_runner():
    return ExperimentRunner(
        "low", num_experiments=EXPERIMENTS, engine_mode="vector"
    )


def test_vector_runner_matches_fast_native(fast_runner, vector_runner, config):
    """Native policy: the whole merged-zone cell goes through one batch."""
    a = fast_runner.run_single_zone("periodic", config, 0.27)
    b = vector_runner.run_single_zone("periodic", config, 0.27)
    assert a == b


def test_vector_runner_matches_fast_markov_daly(fast_runner, vector_runner, config):
    """Markov-Daly rides the native path with its re-arm clock as a column."""
    a = fast_runner.run_single_zone("markov-daly", config, 0.40)
    b = vector_runner.run_single_zone("markov-daly", config, 0.40)
    assert a == b


def test_vector_runner_matches_fast_adaptive(fast_runner, vector_runner,
                                             config):
    """Adaptive cells go through the batched decision columns and must
    be invisible: identical records, every run served native."""
    a = fast_runner.run_adaptive(config)
    vector_runner.drain_vector_stats()  # isolate this cell's tally
    b = vector_runner.run_adaptive(config)
    stats = vector_runner.drain_vector_stats()
    assert a == b
    assert stats is not None
    assert stats.native == len(b)
    assert stats.fallback == {}


def test_vector_runner_matches_fast_large_bid(fast_runner, vector_runner,
                                              config):
    """Large-bid cells (threshold and Naive) ride the native columns."""
    for threshold in (0.81, None):
        a = fast_runner.run_large_bid(config, threshold)
        vector_runner.drain_vector_stats()
        b = vector_runner.run_large_bid(config, threshold)
        stats = vector_runner.drain_vector_stats()
        assert a == b
        assert stats is not None and stats.native == len(b)
        assert stats.fallback == {}


def test_run_start_axis_equals_run_single_zone(fast_runner, config):
    """The explicit batched API matches the per-run grid on any runner."""
    a = fast_runner.run_single_zone("edge", config, 0.81)
    b = fast_runner.run_start_axis("edge", config, 0.81)
    assert a == b


def test_run_start_axis_subset_of_zones(fast_runner, config):
    zones = fast_runner.trace.zone_names[:1]
    a = fast_runner.run_single_zone("periodic", config, 0.81, zones=zones)
    b = fast_runner.run_start_axis("periodic", config, 0.81, zones=zones)
    assert a == b
    assert all(r.result.zones == tuple(zones) for r in b)


def test_start_axis_cells_rejects_unknown_kind(fast_runner, config):
    task = CellTask(kind="mystery", config=config)
    with pytest.raises(ValueError, match="start-axis batching"):
        fast_runner.run_start_axis_cells(task, [fast_runner.eval_start])


def test_start_axis_cells_serves_adaptive(fast_runner, config):
    """Adaptive cells batch the whole axis: batched controller
    decisions, same records as per-start serial cells."""
    task = CellTask(kind="adaptive", config=config)
    starts = [float(s) for s in fast_runner.starts(config)[:3]]
    batched = fast_runner.run_start_axis_cells(task, starts)
    serial = [r for s in starts for r in fast_runner.run_cell(task, s)]
    assert batched == serial
    assert all(r.label == "adaptive" for r in batched)


def test_start_axis_cells_serves_large_bid(fast_runner, config):
    """Large-bid cells ride the native columns, merged over zones in
    the serial start-major, zone-minor order."""
    task = CellTask(kind="large-bid", config=config, threshold=0.81,
                    zones=fast_runner.trace.zone_names)
    starts = [float(s) for s in fast_runner.starts(config)[:2]]
    batched = fast_runner.run_start_axis_cells(task, starts)
    serial = [r for s in starts for r in fast_runner.run_cell(task, s)]
    assert batched == serial


def test_start_axis_cells_serves_redundant(fast_runner, config):
    """Merged multi-zone cells run natively as one batch."""
    task = CellTask(kind="redundant", config=config,
                    policy_label="periodic", bid=0.27, num_zones=2)
    starts = [float(s) for s in fast_runner.starts(config)[:3]]
    batched = fast_runner.run_start_axis_cells(task, starts)
    serial = [r for s in starts for r in fast_runner.run_cell(task, s)]
    assert batched == serial
    assert all(r.label == "periodic-r2" for r in batched)


def test_vector_runner_parallel_matches_serial(fast_runner, config):
    """workers > 1 chunks the axis; the ordered merge is bit-identical."""
    a = fast_runner.run_single_zone("periodic", config, 0.27)
    with ExperimentRunner(
        "low", num_experiments=EXPERIMENTS, engine_mode="vector", workers=2
    ) as par:
        b = par.run_single_zone("periodic", config, 0.27)
    assert a == b


def test_vector_runner_with_cache_interop(config, tmp_path):
    """A fast runner's cache entries serve a vector runner and back."""
    cache_dir = str(tmp_path)
    r_fast = ExperimentRunner(
        "low", num_experiments=EXPERIMENTS, cache_dir=cache_dir
    )
    a = r_fast.run_single_zone("periodic", config, 0.27)
    cold = r_fast.drain_cache_stats()
    assert cold.misses == len(a) and cold.hits == 0
    r_vec = ExperimentRunner(
        "low", num_experiments=EXPERIMENTS, engine_mode="vector",
        cache_dir=cache_dir,
    )
    b = r_vec.run_single_zone("periodic", config, 0.27)
    warm = r_vec.drain_cache_stats()
    assert warm.hits == len(a) and warm.misses == 0
    assert a == b


def test_audited_vector_runner_falls_back_per_run(config, fast_runner):
    """Audit mode needs per-run hooks: vector routing steps aside and
    the auditor still observes every run."""
    with ExperimentRunner(
        "low", num_experiments=4, engine_mode="vector", audit=True
    ) as audited:
        b = audited.run_single_zone("periodic", config, 0.27)
        report = audited.drain_audit()
    a = fast_runner.with_workers(1)
    expected = [
        r for r in a.run_single_zone("periodic", config, 0.27)
    ]
    # num_experiments differs; compare the common starts only
    starts = {rec.start_time for rec in b}
    assert [r for r in expected if r.start_time in starts] == list(b)
    assert report.ok
    assert report.counters.ticks > 0


def test_drain_cache_stats_none_without_cache(fast_runner):
    assert fast_runner.drain_cache_stats() is None


def test_vector_bid_axis_unbatched_routes_through_vector(vector_runner,
                                                         fast_runner, config):
    """run_bid_axis(batched=False) per-bid grids ride the vector path."""
    bids = (0.27, 0.81)
    a = fast_runner.run_bid_axis("periodic", config, bids, batched=False)
    b = vector_runner.run_bid_axis("periodic", config, bids, batched=False)
    assert a == b
