"""The shared-memory trace arena must be invisible in the results.

The arena only relocates work: the parent publishes the window's price
arrays and pre-warmed statistic tables once, and workers map them
zero-copy instead of regenerating them.  Every test here pins the
"only relocates" part — attached views equal the generated arrays bit
for bit, seeded oracles answer exactly like cold ones, the fallback
path (no arena) produces the identical records, and the segment is
gone after close.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.app.workload import paper_experiment
from repro.experiments import parallel
from repro.experiments.parallel import (
    ArenaSpec,
    SweepExecutor,
    TraceArena,
    attach_arena,
)
from repro.experiments.runner import CellTask, ExperimentRunner
from repro.market.constants import LARGE_BID, bid_grid
from repro.market.queuing import QueueDelayModel
from repro.market.spot_market import PriceOracle
from repro.traces.library import DEFAULT_SEED, evaluation_window


@pytest.fixture(scope="module")
def low_window():
    return evaluation_window("low")


@pytest.fixture()
def arena(low_window):
    trace, eval_start = low_window
    oracle = PriceOracle(trace)
    warm = oracle.prewarm_stationary(eval_start, trace.end_time)
    thresholds = tuple(float(b) for b in bid_grid()) + (LARGE_BID,)
    arena = TraceArena.publish(
        trace, eval_start, thresholds=thresholds, warm_stationary=warm
    )
    yield arena
    arena.destroy()


class TestPublishAttach:
    def test_round_trip_is_bit_identical(self, low_window, arena):
        trace, eval_start = low_window
        shm, mapped, mapped_start, warm = attach_arena(arena.spec)
        try:
            assert mapped_start == eval_start
            assert mapped.zone_names == trace.zone_names
            assert mapped.start_time == trace.start_time
            assert mapped.interval_s == trace.interval_s
            for name in trace.zone_names:
                assert np.array_equal(
                    mapped.zone(name).prices, trace.zone(name).prices
                )
        finally:
            shm.close()

    def test_views_are_zero_copy_and_read_only(self, arena):
        shm, mapped, _, warm = attach_arena(arena.spec)
        try:
            z = mapped.zones[0]
            # a view into the segment, not a copy
            assert z.prices.base is not None
            assert not z.prices.flags.writeable
            for v in warm.values():
                assert not v.flags.writeable
        finally:
            shm.close()

    def test_crossings_arrive_pre_seeded(self, low_window, arena):
        trace, _ = low_window
        shm, mapped, _, _ = attach_arena(arena.spec)
        try:
            for name in trace.zone_names:
                for theta in tuple(bid_grid()) + (LARGE_BID,):
                    key = ("crossings", float(theta))
                    seeded = mapped.zone(name)._derived.get(key)
                    assert seeded is not None, "crossing index not seeded"
                    assert np.array_equal(
                        seeded, trace.zone(name).threshold_crossings(theta)
                    )
        finally:
            shm.close()

    def test_seeded_oracle_answers_like_a_cold_one(self, low_window, arena):
        trace, eval_start = low_window
        shm, mapped, _, warm = attach_arena(arena.spec)
        try:
            seeded = PriceOracle(mapped)
            seeded.seed_stationary(warm)
            cold = PriceOracle(trace)
            t = eval_start + 26 * 3600.0
            for zone in trace.zone_names:
                a, r, u = seeded.zone_stats(zone, t)
                ca, cr, cu = cold.zone_stats(zone, t)
                assert np.array_equal(a, ca)
                assert np.array_equal(r, cr)
                assert np.array_equal(u, cu)
                # the seeded oracle's vector IS the arena's, not a refit
                model = seeded.markov_model(zone, t)
                key = (zone, seeded.stats_bucket(t))
                assert model.stationary() is warm[key]
        finally:
            shm.close()

    def test_destroy_removes_segment_and_is_idempotent(self, low_window):
        trace, eval_start = low_window
        arena = TraceArena.publish(trace, eval_start)
        name = arena.spec.name
        assert os.path.exists(f"/dev/shm/{name}")
        arena.destroy()
        assert not os.path.exists(f"/dev/shm/{name}")
        arena.destroy()  # second destroy is a no-op


class TestWorkerFallback:
    def test_attach_failure_falls_back_to_local_build(self):
        bogus = ArenaSpec(
            name="psm_repro_does_not_exist",
            start_time=0.0,
            interval_s=300,
            eval_start=0.0,
            zones=(),
            stationary=(),
            crossings=(),
        )
        saved_runner = parallel._WORKER_RUNNER
        saved_shm = parallel._WORKER_SHM
        try:
            parallel._init_worker(
                "low", 4, DEFAULT_SEED, QueueDelayModel(), arena=bogus
            )
            assert parallel._WORKER_SHM is None
            runner = parallel._WORKER_RUNNER
            assert runner is not None
            trace, eval_start = evaluation_window("low", DEFAULT_SEED)
            assert runner.trace is trace  # the regenerated (cached) window
            assert runner.eval_start == eval_start
        finally:
            parallel._WORKER_RUNNER = saved_runner
            parallel._WORKER_SHM = saved_shm

    def test_executor_fallback_records_identical(self):
        config = paper_experiment(slack_fraction=0.15, ckpt_cost_s=300.0)
        serial = ExperimentRunner("low", num_experiments=4)
        task = CellTask(kind="redundant", config=config,
                        policy_label="markov-daly", bid=0.81)
        starts = [float(s) for s in serial.starts(config)]
        expected = []
        for s in starts:
            expected.extend(serial.run_cell(task, s))
        with SweepExecutor("low", num_experiments=4, workers=2,
                           use_arena=True) as ex:
            with_arena = ex.map_cells(task, starts)
            assert ex._arena is not None, "arena path not exercised"
        with SweepExecutor("low", num_experiments=4, workers=2,
                           use_arena=False) as ex:
            without_arena = ex.map_cells(task, starts)
            assert ex._arena is None
        assert with_arena == expected
        assert without_arena == expected

    def test_explicit_trace_requires_eval_start(self):
        trace, _ = evaluation_window("low")
        with pytest.raises(ValueError):
            ExperimentRunner("low", num_experiments=4, trace=trace)


class TestAuditedArenaSweep:
    @pytest.mark.parametrize("engine_mode", ["fast", "tick"])
    def test_zero_violations_through_the_arena(self, engine_mode):
        config = paper_experiment(slack_fraction=0.15, ckpt_cost_s=300.0)
        with ExperimentRunner("low", num_experiments=4, workers=2,
                              engine_mode=engine_mode, audit=True) as runner:
            records = runner.run_adaptive(config)
            report = runner.drain_audit()
        assert records
        assert report.counters.runs > 0
        assert report.ok, f"arena workers reported violations: {report.violations}"
