"""Unit tests for the Figure 1/3 timeline renderer."""

from __future__ import annotations

import pytest

from repro.core.periodic import PeriodicPolicy
from repro.experiments.timeline import (
    STATE_GLYPHS,
    TimelineError,
    build_rows,
    render_timeline,
)

from tests.conftest import make_sim, multi_step_trace, small_config


def recorded_run(trace=None, record_timeline=True):
    trace = trace or multi_step_trace(
        {"za": [(8, 0.30), (5, 0.90), (100, 0.30)]}
    )
    sim = make_sim(trace, queue_delay_s=300.0)
    sim.record_timeline = record_timeline
    config = small_config(compute_h=2.0, slack_fraction=2.0)
    result = sim.run(config, PeriodicPolicy(), 0.50, ("za",), 0.0)
    return result, sim.oracle


class TestBuildRows:
    def test_requires_timeline(self):
        result, oracle = recorded_run(record_timeline=False)
        with pytest.raises(TimelineError):
            build_rows(result, oracle)

    def test_rows_equal_length(self):
        result, oracle = recorded_run()
        rows = build_rows(result, oracle, width=50)
        n = len(rows.times)
        assert len(rows.progress_row) == n
        for zone in rows.price_rows:
            assert len(rows.price_rows[zone]) == n
            assert len(rows.state_rows[zone]) == n

    def test_downsampling_respects_width(self):
        result, oracle = recorded_run()
        rows = build_rows(result, oracle, width=20)
        assert len(rows.times) <= 20

    def test_glyph_vocabulary(self):
        result, oracle = recorded_run()
        rows = build_rows(result, oracle, width=60)
        allowed = set(STATE_GLYPHS.values())
        assert set(rows.state_rows["za"]) <= allowed
        assert set(rows.price_rows["za"]) <= {"-", "^"}
        assert set(rows.progress_row) <= {"_", ">", "="}

    def test_price_marks_match_bid(self):
        result, oracle = recorded_run()
        rows = build_rows(result, oracle, width=200)
        for mark, time in zip(rows.price_rows["za"], rows.times):
            expected = "^" if oracle.price("za", time) > result.bid else "-"
            assert mark == expected

    def test_termination_shows_down_glyphs(self):
        result, oracle = recorded_run()
        rows = build_rows(result, oracle, width=200)
        assert "." in rows.state_rows["za"]
        assert "#" in rows.state_rows["za"]


class TestRenderTimeline:
    def test_renders_all_rows(self):
        result, oracle = recorded_run()
        text = render_timeline(result, oracle, title="T")
        assert text.startswith("T")
        assert "price za" in text
        assert "state za" in text
        assert "progress" in text
        assert "legend" in text

    def test_header_mentions_cost_and_bid(self):
        result, oracle = recorded_run()
        text = render_timeline(result, oracle)
        assert f"bid=${result.bid:.2f}" in text
        assert f"cost=${result.total_cost:.2f}" in text

    def test_multi_zone_rendering(self):
        trace = multi_step_trace(
            {"za": [(60, 0.30)], "zb": [(30, 0.90), (30, 0.30)]}
        )
        sim = make_sim(trace)
        sim.record_timeline = True
        config = small_config(compute_h=1.0, slack_fraction=1.0)
        result = sim.run(config, PeriodicPolicy(), 0.50, ("za", "zb"), 0.0)
        text = render_timeline(result, sim.oracle)
        assert "state za" in text and "state zb" in text
